#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace mlperf::metrics {

double top1_accuracy(const std::vector<std::int64_t>& predictions,
                     const std::vector<std::int64_t>& targets) {
  if (predictions.size() != targets.size() || predictions.empty())
    throw std::invalid_argument("top1_accuracy: size mismatch or empty");
  std::size_t hits = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i)
    if (predictions[i] == targets[i]) ++hits;
  return static_cast<double>(hits) / static_cast<double>(predictions.size());
}

double mask_iou(const tensor::Tensor& pred, const tensor::Tensor& gt) {
  if (!pred.same_shape(gt)) throw std::invalid_argument("mask_iou: shape mismatch");
  std::int64_t inter = 0, uni = 0;
  for (std::int64_t i = 0; i < pred.numel(); ++i) {
    const bool p = pred[i] >= 0.5f;
    const bool g = gt[i] >= 0.5f;
    inter += (p && g) ? 1 : 0;
    uni += (p || g) ? 1 : 0;
  }
  return uni > 0 ? static_cast<double>(inter) / static_cast<double>(uni) : 0.0;
}

double average_precision(const std::vector<Detection>& detections, const GroundTruth& gt,
                         std::int64_t num_classes, float iou_threshold, bool use_mask_iou) {
  double ap_sum = 0.0;
  std::int64_t classes_with_gt = 0;
  for (std::int64_t cls = 0; cls < num_classes; ++cls) {
    // Collect this class's detections, sorted by descending score.
    std::vector<const Detection*> dets;
    for (const auto& d : detections)
      if (d.cls == cls) dets.push_back(&d);
    std::sort(dets.begin(), dets.end(),
              [](const Detection* a, const Detection* b) { return a->score > b->score; });

    std::int64_t total_gt = 0;
    std::vector<std::vector<bool>> matched(gt.per_image.size());
    for (std::size_t im = 0; im < gt.per_image.size(); ++im) {
      matched[im].assign(gt.per_image[im].size(), false);
      for (const auto& o : gt.per_image[im])
        if (o.cls == cls) ++total_gt;
    }
    if (total_gt == 0) continue;
    ++classes_with_gt;

    std::vector<int> tp(dets.size(), 0);
    for (std::size_t k = 0; k < dets.size(); ++k) {
      const Detection& d = *dets[k];
      if (d.image_id < 0 || d.image_id >= static_cast<std::int64_t>(gt.per_image.size()))
        throw std::out_of_range("average_precision: bad image_id");
      const auto& objs = gt.per_image[static_cast<std::size_t>(d.image_id)];
      double best = 0.0;
      std::int64_t best_j = -1;
      for (std::size_t j = 0; j < objs.size(); ++j) {
        if (objs[j].cls != cls || matched[static_cast<std::size_t>(d.image_id)][j]) continue;
        const double overlap = use_mask_iou ? mask_iou(d.mask, objs[j].mask)
                                            : static_cast<double>(data::iou(d.box, objs[j].box));
        if (overlap > best) {
          best = overlap;
          best_j = static_cast<std::int64_t>(j);
        }
      }
      if (best_j >= 0 && best >= static_cast<double>(iou_threshold)) {
        tp[k] = 1;
        matched[static_cast<std::size_t>(d.image_id)][static_cast<std::size_t>(best_j)] = true;
      }
    }

    // All-point interpolated AP.
    double ap = 0.0;
    double cum_tp = 0.0;
    std::vector<double> precisions, recalls;
    for (std::size_t k = 0; k < dets.size(); ++k) {
      cum_tp += tp[k];
      precisions.push_back(cum_tp / static_cast<double>(k + 1));
      recalls.push_back(cum_tp / static_cast<double>(total_gt));
    }
    // Make precision monotonically non-increasing from the right.
    for (std::size_t k = precisions.size(); k-- > 1;)
      precisions[k - 1] = std::max(precisions[k - 1], precisions[k]);
    double prev_recall = 0.0;
    for (std::size_t k = 0; k < precisions.size(); ++k) {
      ap += (recalls[k] - prev_recall) * precisions[k];
      prev_recall = recalls[k];
    }
    ap_sum += ap;
  }
  return classes_with_gt > 0 ? ap_sum / static_cast<double>(classes_with_gt) : 0.0;
}

double coco_map(const std::vector<Detection>& detections, const GroundTruth& gt,
                std::int64_t num_classes, bool use_mask_iou) {
  double sum = 0.0;
  int n = 0;
  for (float thr = 0.5f; thr < 0.96f; thr += 0.05f) {
    sum += average_precision(detections, gt, num_classes, thr, use_mask_iou);
    ++n;
  }
  return sum / static_cast<double>(n);
}

double bleu(const std::vector<data::TokenSeq>& hypotheses,
            const std::vector<data::TokenSeq>& references, int max_n) {
  if (hypotheses.size() != references.size() || hypotheses.empty())
    throw std::invalid_argument("bleu: size mismatch or empty");
  std::vector<double> match(static_cast<std::size_t>(max_n), 0.0);
  std::vector<double> total(static_cast<std::size_t>(max_n), 0.0);
  double hyp_len = 0.0, ref_len = 0.0;

  for (std::size_t s = 0; s < hypotheses.size(); ++s) {
    const auto& hyp = hypotheses[s];
    const auto& ref = references[s];
    hyp_len += static_cast<double>(hyp.size());
    ref_len += static_cast<double>(ref.size());
    for (int n = 1; n <= max_n; ++n) {
      if (static_cast<int>(hyp.size()) < n) continue;
      std::map<std::vector<std::int64_t>, std::int64_t> ref_counts, hyp_counts;
      for (std::size_t i = 0; i + n <= ref.size(); ++i)
        ++ref_counts[std::vector<std::int64_t>(ref.begin() + static_cast<std::ptrdiff_t>(i),
                                               ref.begin() + static_cast<std::ptrdiff_t>(i + n))];
      for (std::size_t i = 0; i + n <= hyp.size(); ++i)
        ++hyp_counts[std::vector<std::int64_t>(hyp.begin() + static_cast<std::ptrdiff_t>(i),
                                               hyp.begin() + static_cast<std::ptrdiff_t>(i + n))];
      for (const auto& [ng, cnt] : hyp_counts) {
        const auto it = ref_counts.find(ng);
        if (it != ref_counts.end())
          match[static_cast<std::size_t>(n - 1)] += std::min(cnt, it->second);
      }
      total[static_cast<std::size_t>(n - 1)] += static_cast<double>(hyp.size() - static_cast<std::size_t>(n) + 1);
    }
  }

  double log_precision = 0.0;
  for (int n = 0; n < max_n; ++n) {
    if (total[static_cast<std::size_t>(n)] == 0.0 || match[static_cast<std::size_t>(n)] == 0.0)
      return 0.0;
    log_precision +=
        std::log(match[static_cast<std::size_t>(n)] / total[static_cast<std::size_t>(n)]);
  }
  log_precision /= static_cast<double>(max_n);
  const double bp = hyp_len >= ref_len ? 1.0 : std::exp(1.0 - ref_len / std::max(hyp_len, 1.0));
  return 100.0 * bp * std::exp(log_precision);
}

double hit_rate_at_k(const std::vector<std::vector<float>>& scores, std::int64_t k) {
  if (scores.empty()) throw std::invalid_argument("hit_rate_at_k: empty");
  std::size_t hits = 0;
  for (const auto& user_scores : scores) {
    if (user_scores.empty()) throw std::invalid_argument("hit_rate_at_k: empty candidate list");
    const float positive = user_scores[0];
    std::int64_t rank = 1;
    for (std::size_t i = 1; i < user_scores.size(); ++i)
      if (user_scores[i] > positive) ++rank;
    if (rank <= k) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(scores.size());
}

double move_prediction_accuracy(const std::vector<std::int64_t>& predicted_moves,
                                const std::vector<std::int64_t>& reference_moves) {
  return top1_accuracy(predicted_moves, reference_moves);
}

}  // namespace mlperf::metrics
