#pragma once

#include <cstdint>
#include <vector>

#include "data/detection.h"
#include "data/translation.h"

namespace mlperf::metrics {

/// Fraction of rows whose argmax matches the target (Table 1: ResNet quality).
double top1_accuracy(const std::vector<std::int64_t>& predictions,
                     const std::vector<std::int64_t>& targets);

/// One detection emitted by a model for evaluation.
struct Detection {
  std::int64_t image_id = 0;
  std::int64_t cls = 0;
  float score = 0.0f;
  data::Box box;
  tensor::Tensor mask;  ///< optional [H, W] in [0,1]; empty for box-only models
};

/// Ground truth for a set of images, indexed by image id.
struct GroundTruth {
  std::vector<std::vector<data::GtObject>> per_image;
};

/// COCO-style average precision at a single IoU threshold, macro-averaged
/// over classes (all-point interpolation of the PR curve).
double average_precision(const std::vector<Detection>& detections, const GroundTruth& gt,
                         std::int64_t num_classes, float iou_threshold,
                         bool use_mask_iou = false);

/// COCO mAP: mean AP over IoU thresholds 0.5 : 0.05 : 0.95 (Table 1: SSD and
/// Mask R-CNN quality; with use_mask_iou the match criterion is mask IoU,
/// giving the paper's "Mask min AP").
double coco_map(const std::vector<Detection>& detections, const GroundTruth& gt,
                std::int64_t num_classes, bool use_mask_iou = false);

/// Corpus-level BLEU with n-grams up to `max_n` (default 4) and brevity
/// penalty (Table 1: GNMT and Transformer quality). Inputs exclude
/// BOS/EOS/PAD. Returns BLEU in [0, 100].
double bleu(const std::vector<data::TokenSeq>& hypotheses,
            const std::vector<data::TokenSeq>& references, int max_n = 4);

/// Hit-rate@K over per-user ranked candidate lists: item 0 of each candidate
/// list is the held-out positive (Table 1: NCF quality, HR@10).
/// `scores[u][i]` is the model score for candidate i of user u.
double hit_rate_at_k(const std::vector<std::vector<float>>& scores, std::int64_t k);

/// Fraction of moves matching the reference games (Table 1: MiniGo quality).
double move_prediction_accuracy(const std::vector<std::int64_t>& predicted_moves,
                                const std::vector<std::int64_t>& reference_moves);

/// Mask IoU between a predicted soft mask (threshold 0.5) and a binary gt mask.
double mask_iou(const tensor::Tensor& pred, const tensor::Tensor& gt);

}  // namespace mlperf::metrics
