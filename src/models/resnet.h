#pragma once

#include <memory>
#include <optional>

#include "data/dataset.h"
#include "data/loader.h"
#include "models/workload.h"
#include "nn/layers.h"
#include "numerics/format.h"
#include "optim/optimizer.h"

namespace mlperf::models {

/// A residual bottleneck block implementing the three ResNet-v1.5 deviations
/// the paper pins down (§3.1.1):
///   1. downsampling is applied by the 3x3 convolution (stride on the 3x3,
///      not the first 1x1);
///   2. the first residual block's skip connection has no 1x1 projection
///      when the shapes already match;
///   3. the residual addition happens after batch normalization.
class BottleneckBlock : public nn::Module {
 public:
  BottleneckBlock(std::int64_t in_ch, std::int64_t mid_ch, std::int64_t out_ch,
                  std::int64_t stride, tensor::Rng& rng);

  autograd::Variable forward(const autograd::Variable& x);

 private:
  nn::Conv2d conv1_, conv2_, conv3_;
  nn::BatchNorm2d bn1_, bn2_, bn3_;
  std::unique_ptr<nn::Conv2d> proj_;      // nullptr = identity skip (v1.5 rule 2)
  std::unique_ptr<nn::BatchNorm2d> proj_bn_;
};

/// Scaled-down ResNet-v1.5 classifier (DESIGN.md: ImageNet -> synthetic).
class ResNetMini : public nn::Module {
 public:
  struct Config {
    std::int64_t num_classes = 10;
    std::int64_t in_channels = 3;
    std::int64_t stem_channels = 8;
    std::vector<std::int64_t> stage_channels = {8, 16};  ///< mid channels per stage
    std::vector<std::int64_t> stage_blocks = {1, 1};
    std::int64_t expansion = 2;  ///< out = mid * expansion (ResNet-50 uses 4)
  };

  ResNetMini(const Config& config, tensor::Rng& rng);

  /// images: [N, C, H, W] -> logits [N, num_classes].
  autograd::Variable forward(const autograd::Variable& images);

  const Config& config() const { return config_; }

 private:
  Config config_;
  nn::Conv2d stem_;
  nn::BatchNorm2d stem_bn_;
  std::vector<std::unique_ptr<BottleneckBlock>> blocks_;
  nn::Linear fc_;
};

/// The image-classification reference workload (Table 1 row 1).
class ResNetWorkload : public Workload {
 public:
  struct Config {
    data::SyntheticImageDataset::Config dataset;
    ResNetMini::Config model;
    std::int64_t batch_size = 32;
    float base_lr = 0.08f;
    std::int64_t base_batch = 32;      ///< linear-scaling reference batch
    std::int64_t warmup_steps = 10;
    float lr_decay_gamma = 0.6f;
    std::int64_t lr_decay_epochs = 4;  ///< decay every N epochs
    float momentum = 0.9f;
    float weight_decay = 5e-4f;
    bool use_lars = false;             ///< the v0.6 rule change
    float lars_eta = 0.02f;
    /// Figure-1 study: quantize weights through this format each step.
    numerics::Format weight_format = numerics::Format::kFP32;
    /// Eq.1 vs Eq.2 momentum semantics (§2.2.4 ablation).
    optim::MomentumSemantics momentum_semantics =
        optim::MomentumSemantics::kLrOutsideMomentum;
    /// Double-buffer the training loader: batch k+1 is augmented/assembled
    /// on the parallel::ThreadPool while batch k trains. Deterministic for a
    /// fixed seed at any thread count, but a different (per-batch split)
    /// augmentation stream than the default in-line loader — so it defaults
    /// off to keep legacy trajectories bit-for-bit.
    bool prefetch_loader = false;
  };

  explicit ResNetWorkload(Config config);

  std::string name() const override { return "image_classification"; }
  void prepare_data() override;
  void build_model(std::uint64_t seed) override;
  void train_epoch() override;
  double evaluate() override;
  std::map<std::string, double> hyperparameters() const override;
  std::int64_t global_batch_size() const override { return config_.batch_size; }
  std::string model_signature() const override { return "ResNet-50 v1.5"; }
  std::string optimizer_name() const override {
    return config_.use_lars ? "lars" : "sgd_momentum";
  }
  std::string augmentation_signature() const override { return augment_.signature(); }

  /// Full-state checkpointing: model parameters AND batch-norm running
  /// statistics, the optimizer's slot buffers (SGD-momentum velocity or LARS
  /// velocity), the LR-schedule position (global step), the run rng, and the
  /// train-loader traversal position. save_state drains the (possibly
  /// prefetching) loader and requires an epoch boundary.
  bool supports_checkpoint() const override { return true; }
  void save_state(checkpoint::CheckpointWriter& out) const override;
  void restore_state(const checkpoint::CheckpointReader& in) override;

  /// Direct access for tests and the precision/batch-size benches.
  ResNetMini* model() { return model_.get(); }
  std::int64_t step() const { return step_; }

 private:
  Config config_;
  data::SyntheticImageDataset dataset_;
  data::ReformattedSplits splits_;
  bool data_prepared_ = false;
  data::AugmentationPipeline augment_;
  std::unique_ptr<ResNetMini> model_;
  std::unique_ptr<optim::Optimizer> optimizer_;
  std::unique_ptr<optim::LrSchedule> schedule_;
  tensor::Rng rng_;
  std::int64_t step_ = 0;
  std::int64_t epochs_trained_ = 0;
  /// Epochs the loader had started before this session began (restore_state
  /// sets it to the cumulative epochs_trained_). The loader is rebuilt lazily
  /// after a resume, so its epochs_started() counts this session only;
  /// checkpoints record base + session so the audit stays cumulative across
  /// any number of preempt/restart generations.
  std::int64_t loader_epoch_base_ = 0;
  /// Persistent training loader, created lazily on the first train_epoch so
  /// the rng draw order (one permutation per epoch start, then the per-batch
  /// augmentation draws) is exactly the draw order of the historical
  /// loader-per-epoch code. Declared after splits_/augment_/rng_, which it
  /// references, so it is destroyed first.
  std::unique_ptr<data::ImageLoader> train_loader_;
};

}  // namespace mlperf::models
