#pragma once

#include <memory>

#include "data/recsys.h"
#include "models/workload.h"
#include "nn/layers.h"
#include "optim/optimizer.h"

namespace mlperf::models {

/// NeuMF (He et al. 2017): a GMF branch (elementwise product of user/item
/// embeddings) fused with an MLP branch over concatenated embeddings. The
/// concatenations are expressed as sums of parallel linear maps (algebraically
/// identical to a linear layer over the concatenated vector).
class NeuMf : public nn::Module {
 public:
  struct Config {
    std::int64_t num_users = 64;
    std::int64_t num_items = 128;
    std::int64_t gmf_dim = 8;
    std::int64_t mlp_dim = 8;
    std::int64_t mlp_hidden = 16;
  };

  NeuMf(const Config& config, tensor::Rng& rng);

  /// Scores (logits) for user/item id pairs; returns [n, 1].
  autograd::Variable forward(const std::vector<std::int64_t>& users,
                             const std::vector<std::int64_t>& items);

 private:
  Config config_;
  nn::Embedding user_gmf_, item_gmf_, user_mlp_, item_mlp_;
  nn::Linear mlp_u1_, mlp_i1_;  // first MLP layer split over the concat halves
  nn::Linear mlp2_;
  nn::Linear out_gmf_, out_mlp_;  // final layer split over the concat halves
};

/// The recommendation reference workload (Table 1 row 6).
class NcfWorkload : public Workload {
 public:
  struct Config {
    data::ImplicitCfDataset::Config dataset;
    NeuMf::Config model;
    std::int64_t batch_size = 64;
    std::int64_t negatives_per_positive = 4;
    float lr = 0.02f;
  };

  explicit NcfWorkload(Config config);

  std::string name() const override { return "recommendation"; }
  void prepare_data() override;
  void build_model(std::uint64_t seed) override;
  void train_epoch() override;
  double evaluate() override;
  std::map<std::string, double> hyperparameters() const override;
  std::int64_t global_batch_size() const override { return config_.batch_size; }
  std::string model_signature() const override { return "NCF"; }
  std::string optimizer_name() const override { return "adam"; }

  /// Full-state checkpointing: model, Adam slots + step, run rng. The NCF
  /// traversal (shuffle + negative sampling) is a pure function of the rng,
  /// so these three sections are the complete training state.
  bool supports_checkpoint() const override { return true; }
  void save_state(checkpoint::CheckpointWriter& out) const override;
  void restore_state(const checkpoint::CheckpointReader& in) override;

  /// Direct access for the resume-identity tests (final-weights hashing).
  NeuMf* model() { return model_.get(); }

 private:
  Config config_;
  std::unique_ptr<data::ImplicitCfDataset> dataset_;
  std::unique_ptr<NeuMf> model_;
  std::unique_ptr<optim::Adam> optimizer_;
  tensor::Rng rng_;
};

}  // namespace mlperf::models
