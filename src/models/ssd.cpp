#include "models/ssd.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/functional.h"

namespace mlperf::models {

using autograd::Variable;
using data::Box;
using tensor::Tensor;

AnchorSet AnchorSet::make_grid(std::int64_t grid_h, std::int64_t grid_w,
                               const std::vector<float>& scales) {
  AnchorSet set;
  for (std::int64_t i = 0; i < grid_h; ++i)
    for (std::int64_t j = 0; j < grid_w; ++j)
      for (float s : scales) {
        const float cy = (static_cast<float>(i) + 0.5f) / static_cast<float>(grid_h);
        const float cx = (static_cast<float>(j) + 0.5f) / static_cast<float>(grid_w);
        set.anchors.push_back(
            Box{cx - s / 2.0f, cy - s / 2.0f, cx + s / 2.0f, cy + s / 2.0f});
      }
  return set;
}

void AnchorSet::append(const AnchorSet& other) {
  anchors.insert(anchors.end(), other.anchors.begin(), other.anchors.end());
}

std::array<float, 4> BoxCodec::encode(const Box& gt, const Box& anchor) const {
  return {(gt.cx() - anchor.cx()) / (anchor.w() * center_variance),
          (gt.cy() - anchor.cy()) / (anchor.h() * center_variance),
          std::log(std::max(gt.w(), 1e-4f) / anchor.w()) / size_variance,
          std::log(std::max(gt.h(), 1e-4f) / anchor.h()) / size_variance};
}

Box BoxCodec::decode(const float* offsets, const Box& anchor) const {
  const float cx = offsets[0] * center_variance * anchor.w() + anchor.cx();
  const float cy = offsets[1] * center_variance * anchor.h() + anchor.cy();
  const float w = std::exp(std::clamp(offsets[2] * size_variance, -4.0f, 4.0f)) * anchor.w();
  const float h = std::exp(std::clamp(offsets[3] * size_variance, -4.0f, 4.0f)) * anchor.h();
  return Box{cx - w / 2.0f, cy - h / 2.0f, cx + w / 2.0f, cy + h / 2.0f};
}

MatchResult match_anchors(const AnchorSet& anchors, const std::vector<data::GtObject>& gts,
                          float iou_threshold) {
  MatchResult result;
  result.gt_index.assign(static_cast<std::size_t>(anchors.size()), -1);
  if (gts.empty()) return result;
  // Pass 1: every anchor above threshold matches its best gt.
  for (std::int64_t a = 0; a < anchors.size(); ++a) {
    float best = 0.0f;
    std::int64_t best_g = -1;
    for (std::size_t g = 0; g < gts.size(); ++g) {
      const float overlap = data::iou(anchors.anchors[static_cast<std::size_t>(a)], gts[g].box);
      if (overlap > best) {
        best = overlap;
        best_g = static_cast<std::int64_t>(g);
      }
    }
    if (best >= iou_threshold) result.gt_index[static_cast<std::size_t>(a)] = best_g;
  }
  // Pass 2: every gt claims its single best anchor (guarantees a positive).
  for (std::size_t g = 0; g < gts.size(); ++g) {
    float best = -1.0f;
    std::int64_t best_a = -1;
    for (std::int64_t a = 0; a < anchors.size(); ++a) {
      const float overlap = data::iou(anchors.anchors[static_cast<std::size_t>(a)], gts[g].box);
      if (overlap > best) {
        best = overlap;
        best_a = a;
      }
    }
    if (best_a >= 0) result.gt_index[static_cast<std::size_t>(best_a)] = static_cast<std::int64_t>(g);
  }
  return result;
}

std::vector<std::size_t> nms(const std::vector<Box>& boxes, const std::vector<float>& scores,
                             float iou_threshold) {
  if (boxes.size() != scores.size()) throw std::invalid_argument("nms: size mismatch");
  std::vector<std::size_t> order(boxes.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });
  std::vector<std::size_t> keep;
  std::vector<bool> suppressed(boxes.size(), false);
  for (std::size_t i : order) {
    if (suppressed[i]) continue;
    keep.push_back(i);
    for (std::size_t j : order) {
      if (j == i || suppressed[j]) continue;
      if (data::iou(boxes[i], boxes[j]) > iou_threshold) suppressed[j] = true;
    }
  }
  return keep;
}

SsdModel::SsdModel(const Config& config, tensor::Rng& rng)
    : config_(config),
      f1_(config.image_size / 2), f2_(config.image_size / 4),
      stem_(config.in_channels, config.c1, 3, 1, 1, rng),
      down1_(config.c1, config.c1, 3, 2, 1, rng),
      down2_(config.c1, config.c2, 3, 2, 1, rng),
      bn_stem_(config.c1), bn1_(config.c1), bn2_(config.c2),
      head1_cls_(config.c1,
                 static_cast<std::int64_t>(config.scales1.size()) * (config.num_classes + 1), 3,
                 1, 1, rng, /*bias=*/true),
      head1_box_(config.c1, static_cast<std::int64_t>(config.scales1.size()) * 4, 3, 1, 1, rng,
                 /*bias=*/true),
      head2_cls_(config.c2,
                 static_cast<std::int64_t>(config.scales2.size()) * (config.num_classes + 1), 3,
                 1, 1, rng, /*bias=*/true),
      head2_box_(config.c2, static_cast<std::int64_t>(config.scales2.size()) * 4, 3, 1, 1, rng,
                 /*bias=*/true) {
  register_module("stem", stem_);
  register_module("down1", down1_);
  register_module("down2", down2_);
  register_module("bn_stem", bn_stem_);
  register_module("bn1", bn1_);
  register_module("bn2", bn2_);
  register_module("head1_cls", head1_cls_);
  register_module("head1_box", head1_box_);
  register_module("head2_cls", head2_cls_);
  register_module("head2_box", head2_box_);
  anchors_ = AnchorSet::make_grid(f1_, f1_, config.scales1);
  anchors_.append(AnchorSet::make_grid(f2_, f2_, config.scales2));
}

namespace {
/// [N, A*K, H, W] -> [N*H*W*A, K]: put per-anchor predictions in the same
/// order as AnchorSet::make_grid enumerates anchors (row, col, scale).
Variable flatten_head(const Variable& head, std::int64_t num_anchors, std::int64_t k) {
  const std::int64_t n = head.shape()[0], h = head.shape()[2], w = head.shape()[3];
  Variable x = autograd::reshape(head, {n, num_anchors, k, h, w});
  x = autograd::permute(x, {0, 3, 4, 1, 2});  // [N, H, W, A, K]
  return autograd::reshape(x, {n * h * w * num_anchors, k});
}
}  // namespace

SsdModel::Output SsdModel::forward(const Variable& images) {
  Variable x = autograd::relu(bn_stem_.forward(stem_.forward(images)));
  Variable feat1 = autograd::relu(bn1_.forward(down1_.forward(x)));   // stride 2
  Variable feat2 = autograd::relu(bn2_.forward(down2_.forward(feat1)));  // stride 4

  const std::int64_t a1 = static_cast<std::int64_t>(config_.scales1.size());
  const std::int64_t a2 = static_cast<std::int64_t>(config_.scales2.size());
  const std::int64_t ncls = config_.num_classes + 1;
  Variable cls1 = flatten_head(head1_cls_.forward(feat1), a1, ncls);
  Variable box1 = flatten_head(head1_box_.forward(feat1), a1, 4);
  Variable cls2 = flatten_head(head2_cls_.forward(feat2), a2, ncls);
  Variable box2 = flatten_head(head2_box_.forward(feat2), a2, 4);

  // Per-image concat order must match anchors_ (map1 then map2). With batch
  // N we interleave per image: reshape to [N, A_i, K], cat along anchors.
  const std::int64_t n = images.shape()[0];
  const std::int64_t na1 = f1_ * f1_ * a1, na2 = f2_ * f2_ * a2;
  Variable c1 = autograd::reshape(cls1, {n, na1, ncls});
  Variable c2 = autograd::reshape(cls2, {n, na2, ncls});
  Variable b1 = autograd::reshape(box1, {n, na1, 4});
  Variable b2 = autograd::reshape(box2, {n, na2, 4});
  // cat along dim1 via permute->cat0->permute.
  auto cat1 = [](const Variable& p, const Variable& q) {
    Variable pp = autograd::permute(p, {1, 0, 2});
    Variable qq = autograd::permute(q, {1, 0, 2});
    return autograd::permute(autograd::cat0({pp, qq}), {1, 0, 2});
  };
  Variable cls = cat1(c1, c2);  // [N, A, ncls]
  Variable box = cat1(b1, b2);  // [N, A, 4]
  return {autograd::reshape(cls, {n * (na1 + na2), ncls}),
          autograd::reshape(box, {n * (na1 + na2), 4})};
}

SsdWorkload::SsdWorkload(Config config) : config_(std::move(config)), rng_(1) {
  config_.model.in_channels = config_.dataset.channels;
  config_.model.image_size = config_.dataset.height;
  config_.model.num_classes = config_.dataset.num_classes;
}

void SsdWorkload::prepare_data() {
  dataset_ = std::make_unique<data::SyntheticDetectionDataset>(config_.dataset);
}

void SsdWorkload::build_model(std::uint64_t seed) {
  rng_ = tensor::Rng(seed);
  tensor::Rng init_rng = rng_.split();
  model_ = std::make_unique<SsdModel>(config_.model, init_rng);
  optimizer_ = std::make_unique<optim::SgdMomentum>(model_->parameters(), config_.momentum);
}

void SsdWorkload::train_epoch() {
  if (!dataset_ || !model_) throw std::logic_error("SsdWorkload: not prepared");
  model_->set_training(true);
  const AnchorSet& anchors = model_->anchors();
  const std::int64_t num_anchors = anchors.size();
  std::vector<std::size_t> order = rng_.permutation(static_cast<std::size_t>(dataset_->train_size()));

  for (std::size_t off = 0; off < order.size(); off += static_cast<std::size_t>(config_.batch_size)) {
    const std::size_t end =
        std::min(off + static_cast<std::size_t>(config_.batch_size), order.size());
    const std::int64_t n = static_cast<std::int64_t>(end - off);

    // Assemble image batch (with reference flip augmentation) and targets.
    const auto& first = dataset_->train(static_cast<std::int64_t>(order[off]));
    Tensor images({n, first.image.shape()[0], first.image.shape()[1], first.image.shape()[2]});
    std::vector<std::int64_t> cls_targets(static_cast<std::size_t>(n * num_anchors), 0);
    Tensor box_targets({n * num_anchors, 4});
    std::vector<float> pos_weight(static_cast<std::size_t>(n * num_anchors), 0.0f);

    std::vector<std::vector<float>> neg_candidates;  // (filled after forward)
    std::vector<data::DetectionExample> flipped;
    flipped.reserve(static_cast<std::size_t>(n));
    for (std::int64_t b = 0; b < n; ++b) {
      data::DetectionExample ex = dataset_->train(static_cast<std::int64_t>(order[off + static_cast<std::size_t>(b)]));
      if (rng_.uniform() < 0.5) {  // horizontal flip, boxes/masks follow
        const std::int64_t c = ex.image.shape()[0], h = ex.image.shape()[1],
                           w = ex.image.shape()[2];
        Tensor img({c, h, w});
        for (std::int64_t ch = 0; ch < c; ++ch)
          for (std::int64_t i = 0; i < h; ++i)
            for (std::int64_t j = 0; j < w; ++j)
              img.at({ch, i, j}) = ex.image.at({ch, i, w - 1 - j});
        ex.image = img;
        for (auto& o : ex.objects) {
          const float x1 = 1.0f - o.box.x2, x2 = 1.0f - o.box.x1;
          o.box.x1 = x1;
          o.box.x2 = x2;
          Tensor m({h, w});
          for (std::int64_t i = 0; i < h; ++i)
            for (std::int64_t j = 0; j < w; ++j) m.at({i, j}) = o.mask.at({i, w - 1 - j});
          o.mask = m;
        }
      }
      std::copy(ex.image.vec().begin(), ex.image.vec().end(),
                images.vec().begin() + b * ex.image.numel());
      const MatchResult match = match_anchors(anchors, ex.objects, config_.match_iou);
      for (std::int64_t a = 0; a < num_anchors; ++a) {
        const std::int64_t g = match.gt_index[static_cast<std::size_t>(a)];
        if (g < 0) continue;
        const std::int64_t row = b * num_anchors + a;
        cls_targets[static_cast<std::size_t>(row)] = ex.objects[static_cast<std::size_t>(g)].cls + 1;
        pos_weight[static_cast<std::size_t>(row)] = 1.0f;
        const auto enc = codec_.encode(ex.objects[static_cast<std::size_t>(g)].box,
                                       anchors.anchors[static_cast<std::size_t>(a)]);
        for (int k = 0; k < 4; ++k) box_targets[row * 4 + k] = enc[static_cast<std::size_t>(k)];
      }
      flipped.push_back(std::move(ex));
    }

    SsdModel::Output out = model_->forward(Variable(images));

    // Hard-negative mining (3:1): rank negatives by background log-loss.
    std::vector<float> cls_weight = pos_weight;
    {
      const Tensor logp = out.class_logits.value().log_softmax_last();
      const std::int64_t ncls = logp.shape()[1];
      std::int64_t num_pos = 0;
      for (float w : pos_weight)
        if (w > 0.0f) ++num_pos;
      std::vector<std::pair<float, std::int64_t>> neg_losses;
      for (std::int64_t row = 0; row < n * num_anchors; ++row) {
        if (pos_weight[static_cast<std::size_t>(row)] > 0.0f) continue;
        neg_losses.emplace_back(-logp[row * ncls + 0], row);  // background NLL
      }
      std::sort(neg_losses.begin(), neg_losses.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      const std::int64_t num_neg = std::min<std::int64_t>(
          static_cast<std::int64_t>(neg_losses.size()),
          std::max<std::int64_t>(static_cast<std::int64_t>(config_.neg_pos_ratio *
                                                           static_cast<float>(num_pos)),
                                 4));
      for (std::int64_t k = 0; k < num_neg; ++k)
        cls_weight[static_cast<std::size_t>(neg_losses[static_cast<std::size_t>(k)].second)] = 1.0f;
    }

    Variable cls_loss = nn::weighted_cross_entropy(out.class_logits, cls_targets, cls_weight);
    Variable box_loss = nn::smooth_l1(out.box_offsets, box_targets, pos_weight);
    Variable loss = autograd::add(cls_loss, box_loss);
    optimizer_->zero_grad();
    loss.backward();
    optimizer_->step(config_.lr);
  }
}

std::vector<metrics::Detection> SsdWorkload::detect(const Tensor& image, std::int64_t image_id) {
  model_->set_training(false);
  Tensor batch({1, image.shape()[0], image.shape()[1], image.shape()[2]});
  std::copy(image.vec().begin(), image.vec().end(), batch.vec().begin());
  SsdModel::Output out = model_->forward(Variable(batch));
  model_->set_training(true);
  const AnchorSet& anchors = model_->anchors();
  const Tensor probs = out.class_logits.value().softmax_last();
  const std::int64_t ncls = probs.shape()[1];

  std::vector<metrics::Detection> detections;
  for (std::int64_t cls = 1; cls < ncls; ++cls) {
    std::vector<data::Box> boxes;
    std::vector<float> scores;
    for (std::int64_t a = 0; a < anchors.size(); ++a) {
      const float score = probs[a * ncls + cls];
      if (score < config_.score_threshold) continue;
      boxes.push_back(codec_.decode(out.box_offsets.value().data() + a * 4,
                                    anchors.anchors[static_cast<std::size_t>(a)]));
      scores.push_back(score);
    }
    for (std::size_t k : nms(boxes, scores, config_.nms_iou)) {
      metrics::Detection d;
      d.image_id = image_id;
      d.cls = cls - 1;
      d.score = scores[k];
      d.box = boxes[k];
      detections.push_back(std::move(d));
    }
  }
  return detections;
}

double SsdWorkload::evaluate() {
  if (!dataset_ || !model_) throw std::logic_error("SsdWorkload: not prepared");
  metrics::GroundTruth gt;
  std::vector<metrics::Detection> detections;
  gt.per_image.resize(static_cast<std::size_t>(dataset_->val_size()));
  for (std::int64_t i = 0; i < dataset_->val_size(); ++i) {
    const auto& ex = dataset_->val(i);
    gt.per_image[static_cast<std::size_t>(i)] = ex.objects;
    auto dets = detect(ex.image, i);
    detections.insert(detections.end(), dets.begin(), dets.end());
  }
  return metrics::coco_map(detections, gt, config_.model.num_classes);
}

std::map<std::string, double> SsdWorkload::hyperparameters() const {
  return {{"global_batch_size", static_cast<double>(config_.batch_size)},
          {"learning_rate", config_.lr},
          {"momentum", config_.momentum}};
}

}  // namespace mlperf::models
