#include "models/gnmt.h"

#include <stdexcept>

#include "metrics/metrics.h"
#include "nn/functional.h"

namespace mlperf::models {

using autograd::Variable;
using data::TokenSeq;
using tensor::Tensor;

GnmtModel::GnmtModel(const Config& config, tensor::Rng& rng)
    : config_(config), embedding_(config.vocab, config.embed_dim, rng),
      encoder_(config.embed_dim, config.hidden_dim, config.encoder_layers, rng),
      decoder_(config.embed_dim + config.hidden_dim, config.hidden_dim,
               config.decoder_layers, rng),
      attn_query_(config.hidden_dim, config.attn_dim, rng),
      attn_key_(config.hidden_dim, config.attn_dim, rng, /*bias=*/false),
      attn_v_(config.attn_dim, 1, rng, /*bias=*/false),
      out_hidden_(config.hidden_dim, config.vocab, rng),
      out_context_(config.hidden_dim, config.vocab, rng, /*bias=*/false) {
  register_module("embedding", embedding_);
  register_module("encoder", encoder_);
  register_module("decoder", decoder_);
  register_module("attn_query", attn_query_);
  register_module("attn_key", attn_key_);
  register_module("attn_v", attn_v_);
  register_module("out_hidden", out_hidden_);
  register_module("out_context", out_context_);
}

Variable GnmtModel::embed_step(const std::vector<std::int64_t>& tokens) {
  return embedding_.forward(tokens);  // [B, E]
}

std::vector<Variable> GnmtModel::encode(const std::vector<TokenSeq>& src) {
  if (src.empty()) throw std::invalid_argument("GnmtModel: empty batch");
  const std::size_t t_len = src[0].size();
  std::vector<Variable> xs;
  xs.reserve(t_len);
  for (std::size_t t = 0; t < t_len; ++t) {
    std::vector<std::int64_t> toks;
    toks.reserve(src.size());
    for (const auto& s : src) {
      if (s.size() != t_len)
        throw std::invalid_argument("GnmtModel: ragged batch (bucket by length)");
      toks.push_back(s[t]);
    }
    xs.push_back(embed_step(toks));
  }
  return encoder_.forward(xs).hiddens;
}

Variable GnmtModel::attend(const Variable& query, const std::vector<Variable>& enc_hiddens) {
  const std::int64_t b = query.shape()[0];
  const std::int64_t t_len = static_cast<std::int64_t>(enc_hiddens.size());
  // scores[t] = v^T tanh(Wq q + Wk h_t), assembled as [T, B] then softmaxed.
  Variable q_proj = attn_query_.forward(query);  // [B, A]
  std::vector<Variable> score_rows;
  score_rows.reserve(static_cast<std::size_t>(t_len));
  for (const auto& h : enc_hiddens) {
    Variable s = attn_v_.forward(
        autograd::tanh_op(autograd::add(q_proj, attn_key_.forward(h))));  // [B, 1]
    score_rows.push_back(autograd::reshape(s, {1, b}));
  }
  Variable scores_tb = autograd::cat0(score_rows);                   // [T, B]
  Variable alphas = autograd::softmax_last(autograd::permute(scores_tb, {1, 0}));  // [B, T]
  Variable alphas_tb = autograd::permute(alphas, {1, 0});            // [T, B]
  Variable context;  // accumulate sum_t alpha_t * h_t
  for (std::int64_t t = 0; t < t_len; ++t) {
    Variable a_t = autograd::reshape(autograd::slice0(alphas_tb, t, t + 1), {b, 1});
    Variable term = autograd::mul(a_t, enc_hiddens[static_cast<std::size_t>(t)]);  // [B, H]
    context = (t == 0) ? term : autograd::add(context, term);
  }
  return context;
}

namespace {
/// Concatenate [B, E] and [B, H] along the feature axis via per-row copy
/// (decoder input feeding needs a real concat, not the split-linear trick,
/// because the LSTM consumes it as one input).
Variable concat_features(const Variable& a, const Variable& b) {
  const std::int64_t n = a.shape()[0], da = a.shape()[1], db = b.shape()[1];
  if (b.shape()[0] != n) throw std::invalid_argument("concat_features: batch mismatch");
  Tensor out({n, da + db});
  for (std::int64_t r = 0; r < n; ++r) {
    std::copy(a.value().data() + r * da, a.value().data() + (r + 1) * da,
              out.data() + r * (da + db));
    std::copy(b.value().data() + r * db, b.value().data() + (r + 1) * db,
              out.data() + r * (da + db) + da);
  }
  auto an = a.node();
  auto bn = b.node();
  return Variable::from_op(std::move(out), {a, b}, [an, bn, n, da, db](const Tensor& g) {
    if (an->requires_grad) {
      Tensor ga({n, da});
      for (std::int64_t r = 0; r < n; ++r)
        std::copy(g.data() + r * (da + db), g.data() + r * (da + db) + da, ga.data() + r * da);
      an->accumulate_grad(ga);
    }
    if (bn->requires_grad) {
      Tensor gb({n, db});
      for (std::int64_t r = 0; r < n; ++r)
        std::copy(g.data() + r * (da + db) + da, g.data() + (r + 1) * (da + db),
                  gb.data() + r * db);
      bn->accumulate_grad(gb);
    }
  });
}
}  // namespace

Variable GnmtModel::forward_teacher(const std::vector<TokenSeq>& src,
                                    const std::vector<TokenSeq>& tgt_in) {
  std::vector<Variable> enc = encode(src);
  const std::int64_t b = static_cast<std::int64_t>(src.size());
  auto states = decoder_.zero_states(b);
  Variable context(Tensor({b, config_.hidden_dim}));
  std::vector<Variable> step_logits;
  const std::size_t t_len = tgt_in[0].size();
  for (std::size_t t = 0; t < t_len; ++t) {
    std::vector<std::int64_t> toks;
    toks.reserve(tgt_in.size());
    for (const auto& s : tgt_in) toks.push_back(s[t]);
    Variable inp = concat_features(embed_step(toks), context);
    auto out = decoder_.forward({inp}, states);
    states = out.final_states;
    Variable h = out.hiddens[0];
    context = attend(h, enc);
    step_logits.push_back(
        autograd::add(out_hidden_.forward(h), out_context_.forward(context)));  // [B, V]
  }
  // Assemble [B*T, V] in batch-major order: row (i*T + t).
  std::vector<Variable> rows;
  rows.reserve(step_logits.size());
  for (auto& l : step_logits) rows.push_back(autograd::reshape(l, {1, b, config_.vocab}));
  Variable tbv = autograd::cat0(rows);                       // [T, B, V]
  Variable btv = autograd::permute(tbv, {1, 0, 2});          // [B, T, V]
  return autograd::reshape(btv, {b * static_cast<std::int64_t>(t_len), config_.vocab});
}

std::vector<TokenSeq> GnmtModel::greedy_translate(const std::vector<TokenSeq>& src,
                                                  std::int64_t max_len) {
  std::vector<Variable> enc = encode(src);
  const std::int64_t b = static_cast<std::int64_t>(src.size());
  auto states = decoder_.zero_states(b);
  Variable context(Tensor({b, config_.hidden_dim}));
  std::vector<std::int64_t> current(static_cast<std::size_t>(b), data::kBos);
  std::vector<TokenSeq> out(static_cast<std::size_t>(b));
  std::vector<bool> done(static_cast<std::size_t>(b), false);
  for (std::int64_t step = 0; step < max_len; ++step) {
    Variable inp = concat_features(embed_step(current), context);
    auto dec = decoder_.forward({inp}, states);
    states = dec.final_states;
    Variable h = dec.hiddens[0];
    context = attend(h, enc);
    Variable logits = autograd::add(out_hidden_.forward(h), out_context_.forward(context));
    bool all_done = true;
    for (std::int64_t i = 0; i < b; ++i) {
      if (done[static_cast<std::size_t>(i)]) continue;
      const float* row = logits.value().data() + i * config_.vocab;
      std::int64_t best = 0;
      for (std::int64_t v = 1; v < config_.vocab; ++v)
        if (row[v] > row[best]) best = v;
      current[static_cast<std::size_t>(i)] = best;
      if (best == data::kEos) {
        done[static_cast<std::size_t>(i)] = true;
      } else {
        out[static_cast<std::size_t>(i)].push_back(best);
        all_done = false;
      }
    }
    if (all_done) break;
  }
  return out;
}

GnmtWorkload::GnmtWorkload(Config config) : config_(std::move(config)), rng_(1) {
  config_.model.vocab = config_.dataset.vocab + data::kFirstWord;
}

void GnmtWorkload::prepare_data() {
  dataset_ = std::make_unique<data::SyntheticTranslationDataset>(config_.dataset);
  length_buckets_.assign(static_cast<std::size_t>(config_.dataset.max_len + 1), {});
  for (std::int64_t i = 0; i < dataset_->train_size(); ++i)
    length_buckets_[dataset_->train(i).source.size()].push_back(i);
}

void GnmtWorkload::build_model(std::uint64_t seed) {
  rng_ = tensor::Rng(seed);
  tensor::Rng init_rng = rng_.split();
  model_ = std::make_unique<GnmtModel>(config_.model, init_rng);
  optimizer_ = std::make_unique<optim::Adam>(model_->parameters());
}

void GnmtWorkload::train_epoch() {
  if (!dataset_ || !model_) throw std::logic_error("GnmtWorkload: not prepared");
  std::vector<std::pair<std::size_t, std::size_t>> batches;
  for (std::size_t bkt = 0; bkt < length_buckets_.size(); ++bkt) {
    rng_.shuffle(length_buckets_[bkt]);
    for (std::size_t off = 0; off < length_buckets_[bkt].size();
         off += static_cast<std::size_t>(config_.batch_size))
      batches.emplace_back(bkt, off);
  }
  rng_.shuffle(batches);
  for (const auto& [bkt, off] : batches) {
    const auto& bucket = length_buckets_[bkt];
    const std::size_t end =
        std::min(off + static_cast<std::size_t>(config_.batch_size), bucket.size());
    std::vector<TokenSeq> src, tgt_in;
    std::vector<std::int64_t> targets;
    for (std::size_t k = off; k < end; ++k) {
      const auto& pair = dataset_->train(bucket[k]);
      src.push_back(pair.source);
      TokenSeq in{data::kBos};
      in.insert(in.end(), pair.target.begin(), pair.target.end());
      tgt_in.push_back(std::move(in));
      for (std::int64_t tok : pair.target) targets.push_back(tok);
      targets.push_back(data::kEos);
    }
    Variable logits = model_->forward_teacher(src, tgt_in);
    Variable loss = nn::cross_entropy(logits, targets);
    optimizer_->zero_grad();
    loss.backward();
    optim::clip_grad_norm(optimizer_->params(), config_.grad_clip_norm);
    optimizer_->step(config_.lr);
  }
}

double GnmtWorkload::evaluate() {
  if (!dataset_ || !model_) throw std::logic_error("GnmtWorkload: not prepared");
  std::vector<TokenSeq> hyps, refs;
  std::vector<std::vector<std::int64_t>> buckets(
      static_cast<std::size_t>(config_.dataset.max_len + 1));
  for (std::int64_t i = 0; i < dataset_->val_size(); ++i)
    buckets[dataset_->val(i).source.size()].push_back(i);
  for (const auto& bucket : buckets) {
    for (std::size_t off = 0; off < bucket.size();
         off += static_cast<std::size_t>(config_.batch_size)) {
      const std::size_t end =
          std::min(off + static_cast<std::size_t>(config_.batch_size), bucket.size());
      std::vector<TokenSeq> src;
      for (std::size_t k = off; k < end; ++k) src.push_back(dataset_->val(bucket[k]).source);
      std::vector<TokenSeq> out = model_->greedy_translate(src, config_.dataset.max_len + 2);
      for (std::size_t k = off; k < end; ++k) {
        refs.push_back(dataset_->val(bucket[k]).target);
        hyps.push_back(out[k - off]);
      }
    }
  }
  return metrics::bleu(hyps, refs);
}

std::map<std::string, double> GnmtWorkload::hyperparameters() const {
  return {{"global_batch_size", static_cast<double>(config_.batch_size)},
          {"learning_rate", config_.lr},
          {"grad_clip_norm", config_.grad_clip_norm}};
}

}  // namespace mlperf::models
