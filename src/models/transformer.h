#pragma once

#include <memory>

#include "data/translation.h"
#include "models/workload.h"
#include "nn/layers.h"
#include "optim/optimizer.h"

namespace mlperf::models {

/// One Transformer block: (optionally causal) self-attention, optional
/// cross-attention, and a position-wise feed-forward net, each wrapped in a
/// post-LN residual (Vaswani et al. 2017).
class TransformerBlock : public nn::Module {
 public:
  TransformerBlock(std::int64_t model_dim, std::int64_t heads, std::int64_t ff_dim,
                   bool causal, bool cross_attention, tensor::Rng& rng);

  /// x: [B, T, D]; memory: encoder output [B, S, D] (required iff cross).
  autograd::Variable forward(const autograd::Variable& x, const autograd::Variable* memory);

 private:
  bool causal_;
  bool cross_;
  nn::MultiHeadAttention self_attn_;
  std::unique_ptr<nn::MultiHeadAttention> cross_attn_;
  nn::LayerNorm ln1_, ln2_, ln3_;
  nn::Linear ff1_, ff2_;
};

/// Mini encoder-decoder Transformer for the synthetic translation task.
class TransformerModel : public nn::Module {
 public:
  struct Config {
    std::int64_t vocab = 35;
    std::int64_t model_dim = 32;
    std::int64_t heads = 2;
    std::int64_t ff_dim = 64;
    std::int64_t encoder_blocks = 2;
    std::int64_t decoder_blocks = 2;
    std::int64_t max_len = 16;
  };

  TransformerModel(const Config& config, tensor::Rng& rng);

  /// src: [B][S] token ids (same length per batch). Returns encoder memory.
  autograd::Variable encode(const std::vector<data::TokenSeq>& src);
  /// Decoder with teacher forcing: tgt_in [B][T] -> logits [B*T, vocab].
  autograd::Variable decode(const std::vector<data::TokenSeq>& tgt_in,
                            const autograd::Variable& memory);
  /// Greedy decode; returns output tokens (EOS trimmed) per sequence.
  std::vector<data::TokenSeq> greedy_translate(const std::vector<data::TokenSeq>& src,
                                               std::int64_t max_len);

  const Config& config() const { return config_; }

 private:
  autograd::Variable embed(const std::vector<data::TokenSeq>& batch);

  Config config_;
  nn::Embedding embedding_;
  tensor::Tensor positional_;  // [max_len, D]
  std::vector<std::unique_ptr<TransformerBlock>> encoder_;
  std::vector<std::unique_ptr<TransformerBlock>> decoder_;
  nn::Linear out_;
};

/// The non-recurrent translation reference workload (Table 1 row 5).
class TransformerWorkload : public Workload {
 public:
  struct Config {
    data::SyntheticTranslationDataset::Config dataset;
    TransformerModel::Config model;
    std::int64_t batch_size = 16;
    float lr = 3e-3f;
    float label_smoothing = 0.0f;
  };

  explicit TransformerWorkload(Config config);

  std::string name() const override { return "translation_nonrecurrent"; }
  void prepare_data() override;
  void build_model(std::uint64_t seed) override;
  void train_epoch() override;
  double evaluate() override;
  std::map<std::string, double> hyperparameters() const override;
  std::int64_t global_batch_size() const override { return config_.batch_size; }
  std::string model_signature() const override { return "Transformer"; }
  std::string optimizer_name() const override { return "adam"; }

 private:
  Config config_;
  std::unique_ptr<data::SyntheticTranslationDataset> dataset_;
  std::unique_ptr<TransformerModel> model_;
  std::unique_ptr<optim::Adam> optimizer_;
  tensor::Rng rng_;
  /// Train sentence indices bucketed by source length (equal-length batches).
  std::vector<std::vector<std::int64_t>> length_buckets_;
};

}  // namespace mlperf::models
