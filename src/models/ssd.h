#pragma once

#include <memory>

#include "data/detection.h"
#include "metrics/metrics.h"
#include "models/workload.h"
#include "nn/layers.h"
#include "optim/optimizer.h"

namespace mlperf::models {

/// Anchor geometry shared by SSD and the Mask R-CNN RPN.
struct AnchorSet {
  std::vector<data::Box> anchors;  ///< normalized coordinates

  /// Grid anchors: one per cell per scale, centered, square.
  static AnchorSet make_grid(std::int64_t grid_h, std::int64_t grid_w,
                             const std::vector<float>& scales);
  void append(const AnchorSet& other);
  std::int64_t size() const { return static_cast<std::int64_t>(anchors.size()); }
};

/// SSD box encoding (offsets relative to an anchor, with the standard
/// variance scaling 0.1 / 0.2).
struct BoxCodec {
  float center_variance = 0.1f;
  float size_variance = 0.2f;

  std::array<float, 4> encode(const data::Box& gt, const data::Box& anchor) const;
  data::Box decode(const float* offsets, const data::Box& anchor) const;
};

/// Result of matching anchors to ground truth for one image.
struct MatchResult {
  /// Per anchor: matched gt index, or -1 (background).
  std::vector<std::int64_t> gt_index;
};

/// SSD-style matching: each gt gets its best anchor; every anchor with
/// IoU >= threshold also matches that gt.
MatchResult match_anchors(const AnchorSet& anchors, const std::vector<data::GtObject>& gts,
                          float iou_threshold);

/// Greedy non-maximum suppression; returns indices of kept detections.
std::vector<std::size_t> nms(const std::vector<data::Box>& boxes,
                             const std::vector<float>& scores, float iou_threshold);

/// Mini SSD detector: a small residual backbone producing two feature maps,
/// each with a conv head predicting per-anchor class logits (+background)
/// and box offsets (Liu et al. 2016, Table 1 row 2).
class SsdModel : public nn::Module {
 public:
  struct Config {
    std::int64_t in_channels = 3;
    std::int64_t image_size = 24;
    std::int64_t num_classes = 3;       ///< foreground classes
    std::int64_t c1 = 12, c2 = 24;      ///< feature channels per map
    std::vector<float> scales1 = {0.25f};
    std::vector<float> scales2 = {0.5f, 0.75f};
  };

  SsdModel(const Config& config, tensor::Rng& rng);

  struct Output {
    autograd::Variable class_logits;  ///< [N * A_total, C+1]
    autograd::Variable box_offsets;   ///< [N * A_total, 4]
  };
  Output forward(const autograd::Variable& images);

  const AnchorSet& anchors() const { return anchors_; }
  std::int64_t num_classes() const { return config_.num_classes; }

 private:
  Config config_;
  AnchorSet anchors_;
  std::int64_t f1_, f2_;  ///< feature map sizes
  nn::Conv2d stem_, down1_, down2_;
  nn::BatchNorm2d bn_stem_, bn1_, bn2_;
  nn::Conv2d head1_cls_, head1_box_, head2_cls_, head2_box_;
};

/// The light-weight object-detection reference workload (Table 1 row 2).
class SsdWorkload : public Workload {
 public:
  struct Config {
    data::SyntheticDetectionDataset::Config dataset;
    SsdModel::Config model;
    std::int64_t batch_size = 8;
    float lr = 0.01f;
    float momentum = 0.9f;
    float match_iou = 0.5f;
    float neg_pos_ratio = 3.0f;   ///< hard-negative mining ratio
    float nms_iou = 0.45f;
    float score_threshold = 0.05f;
  };

  explicit SsdWorkload(Config config);

  std::string name() const override { return "object_detection_light"; }
  void prepare_data() override;
  void build_model(std::uint64_t seed) override;
  void train_epoch() override;
  double evaluate() override;
  std::map<std::string, double> hyperparameters() const override;
  std::int64_t global_batch_size() const override { return config_.batch_size; }
  std::string model_signature() const override { return "SSD-ResNet-34"; }
  std::string optimizer_name() const override { return "sgd_momentum"; }
  std::string augmentation_signature() const override { return "horizontal_flip"; }

  /// Run inference on one image; exposed for examples and tests.
  std::vector<metrics::Detection> detect(const tensor::Tensor& image, std::int64_t image_id);

 private:
  Config config_;
  std::unique_ptr<data::SyntheticDetectionDataset> dataset_;
  std::unique_ptr<SsdModel> model_;
  std::unique_ptr<optim::SgdMomentum> optimizer_;
  BoxCodec codec_;
  tensor::Rng rng_;
};

}  // namespace mlperf::models
