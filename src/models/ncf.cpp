#include "models/ncf.h"

#include <stdexcept>

#include "checkpoint/state.h"
#include "metrics/metrics.h"
#include "nn/functional.h"

namespace mlperf::models {

using autograd::Variable;

NeuMf::NeuMf(const Config& config, tensor::Rng& rng)
    : config_(config),
      user_gmf_(config.num_users, config.gmf_dim, rng),
      item_gmf_(config.num_items, config.gmf_dim, rng),
      user_mlp_(config.num_users, config.mlp_dim, rng),
      item_mlp_(config.num_items, config.mlp_dim, rng),
      mlp_u1_(config.mlp_dim, config.mlp_hidden, rng),
      mlp_i1_(config.mlp_dim, config.mlp_hidden, rng, /*bias=*/false),
      mlp2_(config.mlp_hidden, config.mlp_hidden / 2, rng),
      out_gmf_(config.gmf_dim, 1, rng),
      out_mlp_(config.mlp_hidden / 2, 1, rng, /*bias=*/false) {
  register_module("user_gmf", user_gmf_);
  register_module("item_gmf", item_gmf_);
  register_module("user_mlp", user_mlp_);
  register_module("item_mlp", item_mlp_);
  register_module("mlp_u1", mlp_u1_);
  register_module("mlp_i1", mlp_i1_);
  register_module("mlp2", mlp2_);
  register_module("out_gmf", out_gmf_);
  register_module("out_mlp", out_mlp_);
}

Variable NeuMf::forward(const std::vector<std::int64_t>& users,
                        const std::vector<std::int64_t>& items) {
  if (users.size() != items.size()) throw std::invalid_argument("NeuMf: size mismatch");
  Variable gmf = autograd::mul(user_gmf_.forward(users), item_gmf_.forward(items));
  // MLP tower: first layer over concat(u, i) == W_u u + W_i i + b.
  // Both ReLUs use the fused add_relu path (bitwise identical, one pass).
  Variable h = autograd::add_relu(mlp_u1_.forward(user_mlp_.forward(users)),
                                  mlp_i1_.forward(item_mlp_.forward(items)));
  h = mlp2_.forward_relu(h);
  // Output over concat(gmf, mlp) == out_gmf(gmf) + out_mlp(mlp).
  return autograd::add(out_gmf_.forward(gmf), out_mlp_.forward(h));
}

NcfWorkload::NcfWorkload(Config config) : config_(std::move(config)), rng_(1) {
  config_.model.num_users = config_.dataset.num_users;
  config_.model.num_items = config_.dataset.num_items;
}

void NcfWorkload::prepare_data() {
  dataset_ = std::make_unique<data::ImplicitCfDataset>(config_.dataset);
}

void NcfWorkload::build_model(std::uint64_t seed) {
  rng_ = tensor::Rng(seed);
  tensor::Rng init_rng = rng_.split();
  model_ = std::make_unique<NeuMf>(config_.model, init_rng);
  optimizer_ = std::make_unique<optim::Adam>(model_->parameters());
}

void NcfWorkload::train_epoch() {
  if (!dataset_ || !model_) throw std::logic_error("NcfWorkload: not prepared");
  const auto& interactions = dataset_->train_interactions();
  std::vector<std::size_t> order = rng_.permutation(interactions.size());
  std::vector<std::int64_t> users, items;
  std::vector<float> labels;
  auto flush = [&] {
    if (users.empty()) return;
    autograd::GraphEpoch epoch_scope;  // step-scoped pool instrumentation
    Variable logits = model_->forward(users, items);
    Variable loss = nn::bce_with_logits(logits, labels);
    optimizer_->zero_grad();
    loss.backward();
    optimizer_->step(config_.lr);
    users.clear();
    items.clear();
    labels.clear();
  };
  for (std::size_t idx : order) {
    const auto& inter = interactions[idx];
    users.push_back(inter.user);
    items.push_back(inter.item);
    labels.push_back(1.0f);
    for (std::int64_t k = 0; k < config_.negatives_per_positive; ++k) {
      users.push_back(inter.user);
      items.push_back(dataset_->sample_negative(inter.user, rng_));
      labels.push_back(0.0f);
    }
    if (static_cast<std::int64_t>(users.size()) >= config_.batch_size) flush();
  }
  flush();
}

double NcfWorkload::evaluate() {
  if (!dataset_ || !model_) throw std::logic_error("NcfWorkload: not prepared");
  std::vector<std::vector<float>> scores;
  scores.reserve(static_cast<std::size_t>(dataset_->num_users()));
  for (std::int64_t u = 0; u < dataset_->num_users(); ++u) {
    const auto& cand = dataset_->eval_candidates()[static_cast<std::size_t>(u)];
    std::vector<std::int64_t> users(cand.size(), u);
    Variable logits = model_->forward(users, cand);
    std::vector<float> s(cand.size());
    for (std::size_t i = 0; i < cand.size(); ++i)
      s[i] = logits.value()[static_cast<std::int64_t>(i)];
    scores.push_back(std::move(s));
  }
  return metrics::hit_rate_at_k(scores, 10);
}

void NcfWorkload::save_state(checkpoint::CheckpointWriter& out) const {
  if (!model_ || !optimizer_)
    throw std::logic_error("NcfWorkload: cannot checkpoint before build_model");
  checkpoint::write_module(out.section("model"), *model_);
  checkpoint::write_optimizer(out.section("optimizer"), *optimizer_);
  checkpoint::write_rng(out.section("rng"), rng_);
}

void NcfWorkload::restore_state(const checkpoint::CheckpointReader& in) {
  if (!model_ || !optimizer_)
    throw std::logic_error("NcfWorkload: cannot restore before build_model");
  checkpoint::ByteReader model_in = in.section("model");
  checkpoint::read_module(model_in, *model_);
  checkpoint::ByteReader opt_in = in.section("optimizer");
  checkpoint::read_optimizer(opt_in, *optimizer_);
  checkpoint::ByteReader rng_in = in.section("rng");
  checkpoint::read_rng(rng_in, rng_);
}

std::map<std::string, double> NcfWorkload::hyperparameters() const {
  return {{"global_batch_size", static_cast<double>(config_.batch_size)},
          {"learning_rate", config_.lr},
          {"negatives_per_positive", static_cast<double>(config_.negatives_per_positive)}};
}

}  // namespace mlperf::models
