#include "models/minigo.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "nn/functional.h"

namespace mlperf::models {

using autograd::Variable;
using go::Board;
using go::Move;
using go::Stone;
using tensor::Tensor;

Tensor board_planes(const Board& board) {
  const std::int64_t n = board.size();
  Tensor planes({3, n, n});
  const Stone me = board.to_play();
  const Stone opp = go::opponent(me);
  for (std::int64_t p = 0; p < n * n; ++p) {
    const Stone s = board.at(p);
    if (s == me) planes[p] = 1.0f;
    else if (s == opp) planes[n * n + p] = 1.0f;
    planes[2 * n * n + p] = me == Stone::kBlack ? 1.0f : 0.0f;
  }
  return planes;
}

PolicyValueNet::PolicyValueNet(const Config& config, tensor::Rng& rng)
    : config_(config),
      stem_(3, config.channels, 3, 1, 1, rng),
      stem_bn_(config.channels),
      policy_conv_(config.channels, 2, 1, 1, 0, rng),
      policy_bn_(2),
      policy_fc_(2 * config.board_size * config.board_size,
                 config.board_size * config.board_size + 1, rng),
      value_conv_(config.channels, 1, 1, 1, 0, rng),
      value_bn_(1),
      value_fc1_(config.board_size * config.board_size, 16, rng),
      value_fc2_(16, 1, rng) {
  register_module("stem", stem_);
  register_module("stem_bn", stem_bn_);
  for (std::int64_t b = 0; b < config.blocks; ++b) {
    Block blk;
    blk.c1 = std::make_unique<nn::Conv2d>(config.channels, config.channels, 3, 1, 1, rng);
    blk.b1 = std::make_unique<nn::BatchNorm2d>(config.channels);
    blk.c2 = std::make_unique<nn::Conv2d>(config.channels, config.channels, 3, 1, 1, rng);
    blk.b2 = std::make_unique<nn::BatchNorm2d>(config.channels);
    register_module("block" + std::to_string(b) + "_c1", *blk.c1);
    register_module("block" + std::to_string(b) + "_b1", *blk.b1);
    register_module("block" + std::to_string(b) + "_c2", *blk.c2);
    register_module("block" + std::to_string(b) + "_b2", *blk.b2);
    blocks_.push_back(std::move(blk));
  }
  register_module("policy_conv", policy_conv_);
  register_module("policy_bn", policy_bn_);
  register_module("policy_fc", policy_fc_);
  register_module("value_conv", value_conv_);
  register_module("value_bn", value_bn_);
  register_module("value_fc1", value_fc1_);
  register_module("value_fc2", value_fc2_);
}

PolicyValueNet::Output PolicyValueNet::forward(const Variable& planes) {
  const std::int64_t n = planes.shape()[0];
  const std::int64_t bs = config_.board_size;
  Variable x = autograd::relu(stem_bn_.forward(stem_.forward(planes)));
  for (auto& blk : blocks_) {
    Variable y = autograd::relu(blk.b1->forward(blk.c1->forward(x)));
    y = blk.b2->forward(blk.c2->forward(y));
    x = autograd::add_relu(x, y);  // fused residual-add+ReLU
  }
  Variable p = autograd::relu(policy_bn_.forward(policy_conv_.forward(x)));
  Variable policy = policy_fc_.forward(autograd::reshape(p, {n, 2 * bs * bs}));
  Variable v = autograd::relu(value_bn_.forward(value_conv_.forward(x)));
  Variable value = autograd::tanh_op(
      value_fc2_.forward(value_fc1_.forward_relu(autograd::reshape(v, {n, bs * bs}))));
  return {policy, value};
}

std::pair<std::vector<float>, float> PolicyValueNet::infer(const Board& board) {
  const bool was_training = training();
  set_training(false);
  Tensor planes = board_planes(board);
  Tensor batch({1, 3, board.size(), board.size()});
  std::copy(planes.vec().begin(), planes.vec().end(), batch.vec().begin());
  Output out = forward(Variable(batch));
  set_training(was_training);
  Tensor probs = out.policy_logits.value().softmax_last();
  std::vector<float> prior(static_cast<std::size_t>(probs.numel()));
  for (std::int64_t i = 0; i < probs.numel(); ++i) prior[static_cast<std::size_t>(i)] = probs[i];
  return {std::move(prior), out.value.value()[0]};
}

// ---- MCTS -------------------------------------------------------------------

struct Mcts::Node {
  bool expanded = false;
  float value = 0.0f;
  std::vector<Move> moves;
  std::vector<float> priors;
  std::vector<std::int64_t> visits;
  std::vector<float> value_sum;
  std::vector<std::unique_ptr<Node>> children;
};

float Mcts::simulate(Node& node, const Board& board, tensor::Rng& rng) {
  if (board.game_over()) {
    // Terminal: Tromp-Taylor result from the *current* player's view.
    const float score = board.tromp_taylor_score();
    const float black_result = score > 0 ? 1.0f : (score < 0 ? -1.0f : 0.0f);
    return board.to_play() == Stone::kBlack ? black_result : -black_result;
  }
  if (!node.expanded) {
    auto [prior, value] = evaluator_(board);
    node.moves = board.legal_moves();
    node.priors.resize(node.moves.size());
    const std::int64_t pass_idx = board.num_points();
    float total = 0.0f;
    for (std::size_t i = 0; i < node.moves.size(); ++i) {
      const std::int64_t idx = node.moves[i].is_pass() ? pass_idx : node.moves[i].point;
      node.priors[i] = std::max(prior[static_cast<std::size_t>(idx)], 1e-6f);
      total += node.priors[i];
    }
    for (auto& p : node.priors) p /= total;
    node.visits.assign(node.moves.size(), 0);
    node.value_sum.assign(node.moves.size(), 0.0f);
    node.children.resize(node.moves.size());
    node.expanded = true;
    return value;
  }
  // PUCT selection.
  std::int64_t total_visits = 0;
  for (std::int64_t v : node.visits) total_visits += v;
  const float sqrt_total = std::sqrt(static_cast<float>(total_visits) + 1.0f);
  std::size_t best = 0;
  float best_score = -1e30f;
  for (std::size_t i = 0; i < node.moves.size(); ++i) {
    const float q = node.visits[i] > 0
                        ? node.value_sum[i] / static_cast<float>(node.visits[i])
                        : 0.0f;
    const float u = config_.c_puct * node.priors[i] * sqrt_total /
                    (1.0f + static_cast<float>(node.visits[i]));
    const float s = q + u;
    if (s > best_score) {
      best_score = s;
      best = i;
    }
  }
  Board next = board;
  next.play(node.moves[best]);
  if (!node.children[best]) node.children[best] = std::make_unique<Node>();
  const float child_value = simulate(*node.children[best], next, rng);
  const float v = -child_value;  // value flips with the player to move
  node.visits[best] += 1;
  node.value_sum[best] += v;
  return v;
}

std::vector<float> Mcts::search(const Board& root, tensor::Rng& rng) {
  Node node;
  // Expand the root once, then optionally mix Dirichlet noise into priors.
  simulate(node, root, rng);
  if (config_.dirichlet_weight > 0.0f && node.moves.size() > 1) {
    // Gamma(alpha) draws normalized -> Dirichlet.
    std::vector<float> noise(node.priors.size());
    float total = 0.0f;
    for (auto& x : noise) {
      // Marsaglia-Tsang needs alpha >= 1; use the boost for alpha < 1.
      const float u = static_cast<float>(rng.uniform()) + 1e-9f;
      const float g = static_cast<float>(std::pow(u, 1.0 / config_.dirichlet_alpha));
      x = g;
      total += g;
    }
    if (total > 0.0f)
      for (std::size_t i = 0; i < node.priors.size(); ++i)
        node.priors[i] = (1.0f - config_.dirichlet_weight) * node.priors[i] +
                         config_.dirichlet_weight * noise[i] / total;
  }
  for (std::int64_t s = 1; s < config_.simulations; ++s) simulate(node, root, rng);

  std::vector<float> pi(static_cast<std::size_t>(root.num_points() + 1), 0.0f);
  std::int64_t total = 0;
  for (std::size_t i = 0; i < node.moves.size(); ++i) total += node.visits[i];
  if (total == 0) total = 1;
  for (std::size_t i = 0; i < node.moves.size(); ++i) {
    const std::int64_t idx =
        node.moves[i].is_pass() ? root.num_points() : node.moves[i].point;
    pi[static_cast<std::size_t>(idx)] =
        static_cast<float>(node.visits[i]) / static_cast<float>(total);
  }
  return pi;
}

Move Mcts::select_move(const std::vector<float>& visits, const Board& board, float temperature,
                       tensor::Rng& rng) {
  const std::int64_t pass_idx = board.num_points();
  if (temperature <= 0.0f) {
    std::int64_t best = 0;
    for (std::int64_t i = 1; i <= pass_idx; ++i)
      if (visits[static_cast<std::size_t>(i)] > visits[static_cast<std::size_t>(best)]) best = i;
    return best == pass_idx ? Move::pass() : Move::at(best);
  }
  const double r = rng.uniform();
  double cum = 0.0;
  for (std::int64_t i = 0; i <= pass_idx; ++i) {
    cum += visits[static_cast<std::size_t>(i)];
    if (r <= cum) return i == pass_idx ? Move::pass() : Move::at(i);
  }
  return Move::pass();
}

SelfPlayResult self_play_game(const Mcts::Config& mcts_config, const Mcts::Evaluator& evaluator,
                              std::int64_t board_size, float komi, std::int64_t max_moves,
                              std::int64_t temperature_moves, tensor::Rng& rng) {
  SelfPlayResult result;
  result.record.board_size = board_size;
  result.record.komi = komi;
  Board board(board_size, komi);
  Mcts mcts(mcts_config, evaluator);
  std::vector<Stone> to_play_history;
  while (!board.game_over() && board.move_count() < max_moves) {
    const std::vector<float> pi = mcts.search(board, rng);
    SelfPlayExample ex;
    ex.planes = board_planes(board);
    ex.pi = pi;
    result.examples.push_back(std::move(ex));
    to_play_history.push_back(board.to_play());
    const float temp = board.move_count() < temperature_moves ? 1.0f : 0.0f;
    Move m = Mcts::select_move(pi, board, temp, rng);
    if (!board.is_legal(m)) m = Move::pass();  // visits can point at stale moves
    board.play(m);
    result.record.moves.push_back(m);
  }
  const Stone winner = board.winner();
  result.record.winner = winner;
  for (std::size_t i = 0; i < result.examples.size(); ++i) {
    const Stone player = to_play_history[i];
    result.examples[i].z =
        winner == Stone::kEmpty ? 0.0f : (winner == player ? 1.0f : -1.0f);
  }
  return result;
}

Mcts::Evaluator heuristic_evaluator() {
  return [](const Board& board) {
    const std::int64_t n = board.num_points();
    std::vector<float> prior(static_cast<std::size_t>(n + 1),
                             1.0f / static_cast<float>(n + 1));
    // Value: squashed Tromp-Taylor score from the side to play.
    float score = board.tromp_taylor_score();  // black perspective
    if (board.to_play() == Stone::kWhite) score = -score;
    return std::make_pair(prior, std::tanh(score / 10.0f));
  };
}

// ---- workload ----------------------------------------------------------------

MiniGoWorkload::MiniGoWorkload(Config config) : config_(std::move(config)), rng_(1) {
  config_.model.board_size = config_.board_size;
}

void MiniGoWorkload::prepare_data() {
  // Reference games: the teacher's MCTS is independent of the run seed, so
  // every run predicts against the same "pro games" (as with real data).
  references_.clear();
  reference_examples_.clear();
  tensor::Rng ref_rng(0xD0D0CAFEULL);
  Mcts::Config teacher = config_.mcts;
  teacher.simulations = config_.reference_teacher_sims;
  teacher.dirichlet_weight = 0.1f;  // mild diversity between reference games
  for (std::int64_t g = 0; g < config_.reference_games; ++g) {
    SelfPlayResult game =
        self_play_game(teacher, heuristic_evaluator(), config_.board_size, config_.komi,
                       config_.max_game_moves, /*temperature_moves=*/4, ref_rng);
    references_.push_back(std::move(game.record));
    for (auto& ex : game.examples) reference_examples_.push_back(std::move(ex));
  }
}

void MiniGoWorkload::build_model(std::uint64_t seed) {
  rng_ = tensor::Rng(seed);
  if (config_.nondeterministic_scheduling) {
    // Fig. 2's fixed-seed variability: mix in a wall-clock-derived value, the
    // analogue of thread-scheduling nondeterminism in the real pipeline.
    const auto now = std::chrono::steady_clock::now().time_since_epoch().count();
    rng_ = tensor::Rng(seed ^ static_cast<std::uint64_t>(now));
  }
  tensor::Rng init_rng = rng_.split();
  net_ = std::make_unique<PolicyValueNet>(config_.model, init_rng);
  optimizer_ = std::make_unique<optim::SgdMomentum>(net_->parameters(), config_.momentum);
  replay_.clear();
}

void MiniGoWorkload::train_batch(const std::vector<const SelfPlayExample*>& batch) {
  const std::int64_t n = static_cast<std::int64_t>(batch.size());
  const std::int64_t bs = config_.board_size;
  const std::int64_t num_moves = bs * bs + 1;
  Tensor planes({n, 3, bs, bs});
  Tensor pi({n, num_moves});
  Tensor z({n, 1});
  for (std::int64_t i = 0; i < n; ++i) {
    const SelfPlayExample& ex = *batch[static_cast<std::size_t>(i)];
    std::copy(ex.planes.vec().begin(), ex.planes.vec().end(),
              planes.vec().begin() + i * 3 * bs * bs);
    for (std::int64_t m = 0; m < num_moves; ++m)
      pi[i * num_moves + m] = ex.pi[static_cast<std::size_t>(m)];
    z[i] = ex.z;
  }
  net_->set_training(true);
  PolicyValueNet::Output out = net_->forward(Variable(planes));
  // Policy loss: cross-entropy against the full MCTS distribution:
  // -sum pi * log_softmax(logits), averaged over the batch.
  Variable logp = autograd::log_softmax_last(out.policy_logits);
  Variable policy_loss =
      autograd::mul_scalar(autograd::sum_all(autograd::mul(Variable(pi), logp)),
                           -1.0f / static_cast<float>(n));
  Variable value_loss = nn::mse(out.value, z);
  Variable loss = autograd::add(policy_loss, value_loss);
  optimizer_->zero_grad();
  loss.backward();
  optimizer_->step(config_.lr);
}

void MiniGoWorkload::train_epoch() {
  if (!net_) throw std::logic_error("MiniGoWorkload: not prepared");
  // 1) Self-play data generation with the current net.
  Mcts::Evaluator eval = [this](const Board& b) { return net_->infer(b); };
  for (std::int64_t g = 0; g < config_.selfplay_games_per_epoch; ++g) {
    SelfPlayResult game =
        self_play_game(config_.mcts, eval, config_.board_size, config_.komi,
                       config_.max_game_moves, config_.temperature_moves, rng_);
    for (auto& ex : game.examples) {
      replay_.push_back(std::move(ex));
      if (static_cast<std::int64_t>(replay_.size()) > config_.replay_capacity)
        replay_.pop_front();
    }
  }
  // 2) Gradient steps: batches mix self-play replay with reference-game
  //    positions per config_.reference_mix (see header).
  if (replay_.empty() && reference_examples_.empty()) return;
  for (std::int64_t b = 0; b < config_.train_batches_per_epoch; ++b) {
    std::vector<const SelfPlayExample*> batch;
    batch.reserve(static_cast<std::size_t>(config_.batch_size));
    for (std::int64_t i = 0; i < config_.batch_size; ++i) {
      const bool from_ref =
          !reference_examples_.empty() &&
          (replay_.empty() || rng_.uniform() < config_.reference_mix);
      if (from_ref) {
        batch.push_back(
            &reference_examples_[static_cast<std::size_t>(rng_.randint(reference_examples_.size()))]);
      } else {
        batch.push_back(&replay_[static_cast<std::size_t>(rng_.randint(replay_.size()))]);
      }
    }
    train_batch(batch);
  }
}

double MiniGoWorkload::evaluate() {
  if (!net_) throw std::logic_error("MiniGoWorkload: not prepared");
  std::vector<std::int64_t> predicted, reference;
  for (const auto& game : references_) {
    Board board(game.board_size, game.komi);
    const std::int64_t limit =
        std::min<std::int64_t>(static_cast<std::int64_t>(game.moves.size()),
                               config_.reference_moves_per_game);
    for (std::int64_t m = 0; m < limit; ++m) {
      auto [prior, value] = net_->infer(board);
      (void)value;
      // Predicted move: highest-probability *legal* move.
      std::int64_t best = -1;
      float best_p = -1.0f;
      for (const Move& mv : board.legal_moves()) {
        const std::int64_t idx = mv.is_pass() ? board.num_points() : mv.point;
        if (prior[static_cast<std::size_t>(idx)] > best_p) {
          best_p = prior[static_cast<std::size_t>(idx)];
          best = idx;
        }
      }
      predicted.push_back(best);
      const Move& ref = game.moves[static_cast<std::size_t>(m)];
      reference.push_back(ref.is_pass() ? board.num_points() : ref.point);
      board.play(ref);
    }
  }
  if (predicted.empty()) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i)
    if (predicted[i] == reference[i]) ++hits;
  return static_cast<double>(hits) / static_cast<double>(predicted.size());
}

std::map<std::string, double> MiniGoWorkload::hyperparameters() const {
  return {{"global_batch_size", static_cast<double>(config_.batch_size)},
          {"learning_rate", config_.lr},
          {"selfplay_games_per_epoch", static_cast<double>(config_.selfplay_games_per_epoch)},
          {"mcts_simulations", static_cast<double>(config_.mcts.simulations)}};
}

}  // namespace mlperf::models
