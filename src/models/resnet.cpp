#include "models/resnet.h"

#include <stdexcept>

#include "checkpoint/state.h"
#include "metrics/metrics.h"

namespace mlperf::models {

using autograd::Variable;
using tensor::Tensor;

BottleneckBlock::BottleneckBlock(std::int64_t in_ch, std::int64_t mid_ch, std::int64_t out_ch,
                                 std::int64_t stride, tensor::Rng& rng)
    : conv1_(in_ch, mid_ch, 1, 1, 0, rng),
      conv2_(mid_ch, mid_ch, 3, stride, 1, rng),  // v1.5: stride lives on the 3x3
      conv3_(mid_ch, out_ch, 1, 1, 0, rng),
      bn1_(mid_ch), bn2_(mid_ch), bn3_(out_ch) {
  register_module("conv1", conv1_);
  register_module("conv2", conv2_);
  register_module("conv3", conv3_);
  register_module("bn1", bn1_);
  register_module("bn2", bn2_);
  register_module("bn3", bn3_);
  if (in_ch != out_ch || stride != 1) {
    proj_ = std::make_unique<nn::Conv2d>(in_ch, out_ch, 1, stride, 0, rng);
    proj_bn_ = std::make_unique<nn::BatchNorm2d>(out_ch);
    register_module("proj", *proj_);
    register_module("proj_bn", *proj_bn_);
  }
  // else: identity skip — v1.5's "no 1x1 in the first block's skip".
}

Variable BottleneckBlock::forward(const Variable& x) {
  Variable y = autograd::relu(bn1_.forward(conv1_.forward(x)));
  y = autograd::relu(bn2_.forward(conv2_.forward(y)));
  y = bn3_.forward(conv3_.forward(y));  // v1.5: add AFTER batch norm
  Variable skip = proj_ ? proj_bn_->forward(proj_->forward(x)) : x;
  // Fused residual-add+ReLU: one pass, bitwise identical to relu(add(..)).
  return autograd::add_relu(y, skip);
}

ResNetMini::ResNetMini(const Config& config, tensor::Rng& rng)
    : config_(config),
      stem_(config.in_channels, config.stem_channels, 3, 1, 1, rng),
      stem_bn_(config.stem_channels),
      fc_(config.stage_channels.back() * config.expansion, config.num_classes, rng) {
  if (config.stage_channels.size() != config.stage_blocks.size())
    throw std::invalid_argument("ResNetMini: stage config mismatch");
  register_module("stem", stem_);
  register_module("stem_bn", stem_bn_);
  std::int64_t in_ch = config.stem_channels;
  for (std::size_t s = 0; s < config.stage_channels.size(); ++s) {
    const std::int64_t mid = config.stage_channels[s];
    const std::int64_t out = mid * config.expansion;
    for (std::int64_t b = 0; b < config.stage_blocks[s]; ++b) {
      const std::int64_t stride = (s > 0 && b == 0) ? 2 : 1;
      blocks_.push_back(std::make_unique<BottleneckBlock>(in_ch, mid, out, stride, rng));
      register_module("stage" + std::to_string(s) + "_block" + std::to_string(b),
                      *blocks_.back());
      in_ch = out;
    }
  }
  register_module("fc", fc_);
}

Variable ResNetMini::forward(const Variable& images) {
  Variable y = autograd::relu(stem_bn_.forward(stem_.forward(images)));
  for (auto& block : blocks_) y = block->forward(y);
  return fc_.forward(nn::global_avg_pool(y));
}

ResNetWorkload::ResNetWorkload(Config config)
    : config_(std::move(config)), dataset_(config_.dataset),
      augment_(data::AugmentationPipeline::reference_image_pipeline()), rng_(1) {}

void ResNetWorkload::prepare_data() {
  splits_ = data::reformat(dataset_);
  data_prepared_ = true;
}

void ResNetWorkload::build_model(std::uint64_t seed) {
  rng_ = tensor::Rng(seed);
  tensor::Rng init_rng = rng_.split();
  model_ = std::make_unique<ResNetMini>(config_.model, init_rng);
  std::vector<autograd::Variable> params = model_->parameters();
  if (config_.use_lars) {
    optimizer_ = std::make_unique<optim::Lars>(params, config_.momentum, config_.weight_decay,
                                               config_.lars_eta);
  } else {
    optimizer_ = std::make_unique<optim::SgdMomentum>(params, config_.momentum,
                                                      config_.weight_decay,
                                                      config_.momentum_semantics);
  }
  const std::int64_t steps_per_epoch =
      (dataset_.train_size() + config_.batch_size - 1) / config_.batch_size;
  schedule_ = std::make_unique<optim::LinearScalingWarmupLr>(
      config_.base_lr, config_.batch_size, config_.base_batch, config_.warmup_steps,
      config_.lr_decay_gamma, config_.lr_decay_epochs * steps_per_epoch);
  step_ = 0;
  epochs_trained_ = 0;
  loader_epoch_base_ = 0;
  train_loader_.reset();
}

void ResNetWorkload::train_epoch() {
  if (!data_prepared_ || !model_) throw std::logic_error("ResNetWorkload: not prepared");
  model_->set_training(true);
  // Lazy construction + start_epoch() replays the historical per-epoch-local
  // loader's rng draws exactly (the constructor starts the first epoch).
  if (!train_loader_) {
    train_loader_ = std::make_unique<data::ImageLoader>(splits_.train, config_.batch_size,
                                                        &augment_, rng_, /*drop_last=*/false,
                                                        config_.prefetch_loader);
  } else {
    train_loader_->start_epoch();
  }
  data::ImageLoader& loader = *train_loader_;
  const bool quantized = config_.weight_format != numerics::Format::kFP32;
  std::vector<autograd::Variable> params = model_->parameters();
  while (loader.has_next()) {
    // Step-scoped pool instrumentation: after warm-up every buffer this step
    // allocates should come from the pool (GraphEpoch::last_pool_misses()==0).
    autograd::GraphEpoch epoch_scope;
    data::ImageBatch batch = loader.next();
    // Figure-1 emulation: master weights stay fp32; forward/backward see the
    // quantized copy, and the update is re-quantized afterwards.
    std::vector<Tensor> master;
    if (quantized) {
      master.reserve(params.size());
      for (auto& p : params) {
        master.push_back(p.value());
        p.mutable_value() = numerics::quantize_tensor(p.value(), config_.weight_format);
      }
    }
    Variable logits = model_->forward(Variable(batch.images));
    Variable loss = nn::cross_entropy(logits, batch.labels);
    optimizer_->zero_grad();
    loss.backward();
    if (quantized) {
      for (std::size_t i = 0; i < params.size(); ++i)
        params[i].mutable_value() = master[i];
    }
    optimizer_->step(schedule_->lr(step_));
    if (quantized) {
      for (auto& p : params)
        p.mutable_value() = numerics::quantize_tensor(p.value(), config_.weight_format);
    }
    ++step_;
  }
  ++epochs_trained_;
}

double ResNetWorkload::evaluate() {
  if (!data_prepared_ || !model_) throw std::logic_error("ResNetWorkload: not prepared");
  model_->set_training(false);
  tensor::Rng eval_rng(0);  // no augmentation, order irrelevant
  data::ImageLoader loader(splits_.val, config_.batch_size, nullptr, eval_rng);
  std::vector<std::int64_t> preds, targets;
  while (loader.has_next()) {
    data::ImageBatch batch = loader.next();
    Variable logits = model_->forward(Variable(batch.images));
    for (std::int64_t p : logits.value().argmax_last()) preds.push_back(p);
    targets.insert(targets.end(), batch.labels.begin(), batch.labels.end());
  }
  model_->set_training(true);
  return metrics::top1_accuracy(preds, targets);
}

void ResNetWorkload::save_state(checkpoint::CheckpointWriter& out) const {
  if (!model_ || !optimizer_)
    throw std::logic_error("ResNetWorkload: cannot checkpoint before build_model");
  checkpoint::write_module(out.section("model"), *model_);
  checkpoint::write_optimizer(out.section("optimizer"), *optimizer_);
  checkpoint::write_rng(out.section("rng"), rng_);
  checkpoint::ByteWriter& progress = out.section("progress");
  progress.put_i64(step_);
  progress.put_i64(epochs_trained_);
  // Loader traversal position. Checkpoints are epoch-boundary-only: between
  // epochs the traversal is a pure function of the (saved) rng, so epoch
  // count + an exhausted cursor is the complete loader state.
  checkpoint::ByteWriter& loader = out.section("loader");
  if (train_loader_) {
    train_loader_->drain();
    if (!train_loader_->epoch_exhausted())
      throw std::logic_error(
          "ResNetWorkload: checkpoint requested mid-epoch (loader not exhausted)");
    // epochs_started() counts this session only (the loader is rebuilt after
    // a resume); add the restored base so the recorded count is cumulative.
    loader.put_i64(loader_epoch_base_ + train_loader_->epochs_started());
    loader.put_i64(train_loader_->cursor());
    loader.put_i64(train_loader_->epoch_limit());
  } else {
    loader.put_i64(loader_epoch_base_);
    loader.put_i64(0);
    loader.put_i64(0);
  }
}

void ResNetWorkload::restore_state(const checkpoint::CheckpointReader& in) {
  if (!model_ || !optimizer_)
    throw std::logic_error("ResNetWorkload: cannot restore before build_model");
  checkpoint::ByteReader model_in = in.section("model");
  checkpoint::read_module(model_in, *model_);
  checkpoint::ByteReader opt_in = in.section("optimizer");
  checkpoint::read_optimizer(opt_in, *optimizer_);
  checkpoint::ByteReader rng_in = in.section("rng");
  checkpoint::read_rng(rng_in, rng_);
  checkpoint::ByteReader progress = in.section("progress");
  step_ = progress.get_i64();
  epochs_trained_ = progress.get_i64();
  checkpoint::ByteReader loader = in.section("loader");
  const std::int64_t epochs_started = loader.get_i64();
  if (epochs_started != epochs_trained_)
    throw checkpoint::CheckpointError(
        "ResNetWorkload: loader epoch count " + std::to_string(epochs_started) +
        " does not match trained epochs " + std::to_string(epochs_trained_));
  // The loader itself is rebuilt lazily on the next train_epoch; constructing
  // it from the restored rng replays the shuffle the uninterrupted run drew.
  // The rebuilt loader counts epochs from zero, so remember the cumulative
  // count it resumes from for the next generation's checkpoint.
  loader_epoch_base_ = epochs_trained_;
  train_loader_.reset();
}

std::map<std::string, double> ResNetWorkload::hyperparameters() const {
  return {{"global_batch_size", static_cast<double>(config_.batch_size)},
          {"learning_rate", config_.base_lr},
          {"warmup_steps", static_cast<double>(config_.warmup_steps)},
          {"momentum", config_.momentum},
          {"lr_decay_steps", static_cast<double>(config_.lr_decay_epochs)}};
}

}  // namespace mlperf::models
