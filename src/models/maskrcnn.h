#pragma once

#include <memory>

#include "data/detection.h"
#include "metrics/metrics.h"
#include "models/ssd.h"  // AnchorSet, BoxCodec, nms, match_anchors
#include "models/workload.h"
#include "nn/layers.h"
#include "optim/optimizer.h"

namespace mlperf::models {

/// Differentiable ROIAlign: crop a [C, H, W] feature plane to [C, P, P] per
/// ROI with bilinear sampling (one sample per bin). features: [1, C, H, W];
/// rois in normalized image coordinates. Output: [R, C, P, P].
autograd::Variable roi_align(const autograd::Variable& features,
                             const std::vector<data::Box>& rois, std::int64_t pool);

/// Mini Mask R-CNN (He et al. 2017a): shared backbone, region-proposal
/// network, ROIAlign, and parallel box + mask heads (Table 1 row 3).
class MaskRcnnModel : public nn::Module {
 public:
  struct Config {
    std::int64_t in_channels = 3;
    std::int64_t image_size = 24;
    std::int64_t num_classes = 3;
    std::int64_t feat_channels = 24;
    std::int64_t roi_pool = 4;       ///< ROIAlign output P
    std::int64_t mask_size = 8;      ///< mask head output resolution
    std::vector<float> rpn_scales = {0.3f, 0.55f};
    std::int64_t proposals_per_image = 8;
    float rpn_nms_iou = 0.7f;
  };

  MaskRcnnModel(const Config& config, tensor::Rng& rng);

  /// Backbone: [N, C, H, W] -> [N, F, H/2, W/2].
  autograd::Variable backbone(const autograd::Variable& images);

  struct RpnOutput {
    autograd::Variable objectness;  ///< [A_total] logits (single image)
    autograd::Variable deltas;      ///< [A_total, 4]
  };
  RpnOutput rpn(const autograd::Variable& features);

  /// Decode proposals from RPN output (no gradient; standard practice).
  std::vector<data::Box> decode_proposals(const RpnOutput& out) const;

  struct RoiOutput {
    autograd::Variable class_logits;  ///< [R, C+1]
    autograd::Variable box_deltas;    ///< [R, 4] (class-agnostic)
  };
  RoiOutput box_head(const autograd::Variable& roi_feats);

  /// Mask head: per-ROI per-class mask logits [R, C, M, M].
  autograd::Variable mask_head(const autograd::Variable& roi_feats);

  const Config& config() const { return config_; }
  const AnchorSet& rpn_anchors() const { return anchors_; }
  const BoxCodec& codec() const { return codec_; }

 private:
  Config config_;
  AnchorSet anchors_;
  BoxCodec codec_;
  nn::Conv2d conv1_, conv2_;
  nn::BatchNorm2d bn1_, bn2_;
  nn::Conv2d rpn_conv_, rpn_obj_, rpn_delta_;
  nn::Linear fc1_, fc_cls_, fc_box_;
  nn::Conv2d mask_conv1_, mask_conv2_;
};

/// The heavy-weight detection + instance segmentation workload (Table 1 row 3).
class MaskRcnnWorkload : public Workload {
 public:
  struct Config {
    /// Smaller splits than SSD: two-stage training is per-image and heavier.
    data::SyntheticDetectionDataset::Config dataset{.train_size = 96, .val_size = 48};
    MaskRcnnModel::Config model;
    float lr = 0.01f;
    float momentum = 0.9f;
    float roi_match_iou = 0.5f;
    float nms_iou = 0.45f;
    float score_threshold = 0.05f;
  };

  explicit MaskRcnnWorkload(Config config);

  std::string name() const override { return "object_detection_heavy"; }
  void prepare_data() override;
  void build_model(std::uint64_t seed) override;
  void train_epoch() override;
  /// Returns min(box mAP, mask mAP): both Table-1 thresholds must hold.
  double evaluate() override;
  std::map<std::string, double> hyperparameters() const override;
  std::int64_t global_batch_size() const override { return 1; }  // per-image training
  std::string model_signature() const override { return "Mask R-CNN"; }
  std::string optimizer_name() const override { return "sgd_momentum"; }
  std::string augmentation_signature() const override { return "horizontal_flip"; }

  struct EvalDetail {
    double box_map = 0.0;
    double mask_map = 0.0;
  };
  EvalDetail evaluate_detail();

 private:
  void train_image(const data::DetectionExample& ex);
  std::vector<metrics::Detection> detect(const tensor::Tensor& image, std::int64_t image_id);

  Config config_;
  std::unique_ptr<data::SyntheticDetectionDataset> dataset_;
  std::unique_ptr<MaskRcnnModel> model_;
  std::unique_ptr<optim::SgdMomentum> optimizer_;
  tensor::Rng rng_;
};

}  // namespace mlperf::models
