#pragma once

#include <memory>

#include "data/translation.h"
#include "models/workload.h"
#include "nn/layers.h"
#include "optim/optimizer.h"

namespace mlperf::models {

/// Mini GNMT (Wu et al. 2016): multi-layer LSTM encoder, multi-layer LSTM
/// decoder with additive (Bahdanau) attention over encoder hidden states, and
/// residual-style input feeding of the attention context into the output
/// projection. The only RNN in the suite (Table 1 row 4).
class GnmtModel : public nn::Module {
 public:
  struct Config {
    std::int64_t vocab = 35;
    std::int64_t embed_dim = 24;
    std::int64_t hidden_dim = 32;
    std::int64_t encoder_layers = 2;
    std::int64_t decoder_layers = 2;
    std::int64_t attn_dim = 24;
  };

  GnmtModel(const Config& config, tensor::Rng& rng);

  /// Teacher-forced forward: returns logits [B*T_tgt, vocab].
  autograd::Variable forward_teacher(const std::vector<data::TokenSeq>& src,
                                     const std::vector<data::TokenSeq>& tgt_in);

  /// Greedy decode (batch of equal-length sources).
  std::vector<data::TokenSeq> greedy_translate(const std::vector<data::TokenSeq>& src,
                                               std::int64_t max_len);

 private:
  /// Encode source; returns per-timestep top-layer hiddens.
  std::vector<autograd::Variable> encode(const std::vector<data::TokenSeq>& src);
  /// Additive attention: context [B, H] over encoder hiddens given query.
  autograd::Variable attend(const autograd::Variable& query,
                            const std::vector<autograd::Variable>& enc_hiddens);
  /// Embed one timestep's tokens: [B] ids -> [B, E].
  autograd::Variable embed_step(const std::vector<std::int64_t>& tokens);

  Config config_;
  nn::Embedding embedding_;
  nn::LSTM encoder_;
  nn::LSTM decoder_;
  nn::Linear attn_query_, attn_key_, attn_v_;
  nn::Linear out_hidden_, out_context_;  // concat(h, ctx) -> vocab, split
};

/// The recurrent translation reference workload (Table 1 row 4).
class GnmtWorkload : public Workload {
 public:
  struct Config {
    data::SyntheticTranslationDataset::Config dataset;
    GnmtModel::Config model;
    std::int64_t batch_size = 16;
    float lr = 2e-3f;
    float grad_clip_norm = 5.0f;
  };

  explicit GnmtWorkload(Config config);

  std::string name() const override { return "translation_recurrent"; }
  void prepare_data() override;
  void build_model(std::uint64_t seed) override;
  void train_epoch() override;
  double evaluate() override;
  std::map<std::string, double> hyperparameters() const override;
  std::int64_t global_batch_size() const override { return config_.batch_size; }
  std::string model_signature() const override { return "GNMT"; }
  std::string optimizer_name() const override { return "adam"; }

 private:
  Config config_;
  std::unique_ptr<data::SyntheticTranslationDataset> dataset_;
  std::unique_ptr<GnmtModel> model_;
  std::unique_ptr<optim::Adam> optimizer_;
  tensor::Rng rng_;
  std::vector<std::vector<std::int64_t>> length_buckets_;
};

}  // namespace mlperf::models
