#include "models/transformer.h"

#include <cmath>
#include <stdexcept>

#include "metrics/metrics.h"
#include "nn/functional.h"

namespace mlperf::models {

using autograd::Variable;
using data::TokenSeq;
using tensor::Tensor;

TransformerBlock::TransformerBlock(std::int64_t model_dim, std::int64_t heads,
                                   std::int64_t ff_dim, bool causal, bool cross_attention,
                                   tensor::Rng& rng)
    : causal_(causal), cross_(cross_attention), self_attn_(model_dim, heads, rng),
      ln1_(model_dim), ln2_(model_dim), ln3_(model_dim),
      ff1_(model_dim, ff_dim, rng), ff2_(ff_dim, model_dim, rng) {
  register_module("self_attn", self_attn_);
  register_module("ln1", ln1_);
  register_module("ln2", ln2_);
  register_module("ln3", ln3_);
  register_module("ff1", ff1_);
  register_module("ff2", ff2_);
  if (cross_) {
    cross_attn_ = std::make_unique<nn::MultiHeadAttention>(model_dim, heads, rng);
    register_module("cross_attn", *cross_attn_);
  }
}

Variable TransformerBlock::forward(const Variable& x, const Variable* memory) {
  Variable y = ln1_.forward(autograd::add(x, self_attn_.forward(x, x, x, causal_)));
  if (cross_) {
    if (!memory) throw std::invalid_argument("TransformerBlock: cross block needs memory");
    y = ln2_.forward(autograd::add(y, cross_attn_->forward(y, *memory, *memory, false)));
  }
  const std::int64_t b = y.shape()[0], t = y.shape()[1], d = y.shape()[2];
  Variable flat = autograd::reshape(y, {b * t, d});
  Variable ff = ff2_.forward(ff1_.forward_relu(flat));  // fused bias+ReLU
  return ln3_.forward(autograd::add(y, autograd::reshape(ff, {b, t, d})));
}

TransformerModel::TransformerModel(const Config& config, tensor::Rng& rng)
    : config_(config), embedding_(config.vocab, config.model_dim, rng),
      positional_({config.max_len, config.model_dim}),
      out_(config.model_dim, config.vocab, rng) {
  register_module("embedding", embedding_);
  register_module("out", out_);
  for (std::int64_t i = 0; i < config.encoder_blocks; ++i) {
    encoder_.push_back(std::make_unique<TransformerBlock>(config.model_dim, config.heads,
                                                          config.ff_dim, false, false, rng));
    register_module("enc" + std::to_string(i), *encoder_.back());
  }
  for (std::int64_t i = 0; i < config.decoder_blocks; ++i) {
    decoder_.push_back(std::make_unique<TransformerBlock>(config.model_dim, config.heads,
                                                          config.ff_dim, true, true, rng));
    register_module("dec" + std::to_string(i), *decoder_.back());
  }
  // Sinusoidal positional encodings (Vaswani et al. §3.5).
  for (std::int64_t pos = 0; pos < config.max_len; ++pos)
    for (std::int64_t i = 0; i < config.model_dim; ++i) {
      const double rate =
          static_cast<double>(pos) /
          std::pow(10000.0, 2.0 * static_cast<double>(i / 2) / static_cast<double>(config.model_dim));
      positional_.at({pos, i}) =
          static_cast<float>(i % 2 == 0 ? std::sin(rate) : std::cos(rate));
    }
}

Variable TransformerModel::embed(const std::vector<TokenSeq>& batch) {
  if (batch.empty()) throw std::invalid_argument("TransformerModel: empty batch");
  const std::int64_t b = static_cast<std::int64_t>(batch.size());
  const std::int64_t t = static_cast<std::int64_t>(batch[0].size());
  if (t > config_.max_len) throw std::invalid_argument("TransformerModel: sequence too long");
  std::vector<std::int64_t> flat;
  flat.reserve(static_cast<std::size_t>(b * t));
  for (const auto& seq : batch) {
    if (static_cast<std::int64_t>(seq.size()) != t)
      throw std::invalid_argument("TransformerModel: ragged batch (bucket by length)");
    flat.insert(flat.end(), seq.begin(), seq.end());
  }
  Variable emb = embedding_.forward(flat);  // [b*t, D]
  emb = autograd::mul_scalar(emb, std::sqrt(static_cast<float>(config_.model_dim)));
  // Add positional encodings: build [b*t, D] constant.
  Tensor pos({b * t, config_.model_dim});
  for (std::int64_t r = 0; r < b * t; ++r) {
    const std::int64_t p = r % t;
    std::copy(positional_.data() + p * config_.model_dim,
              positional_.data() + (p + 1) * config_.model_dim,
              pos.data() + r * config_.model_dim);
  }
  return autograd::reshape(autograd::add(emb, Variable(pos)), {b, t, config_.model_dim});
}

Variable TransformerModel::encode(const std::vector<TokenSeq>& src) {
  Variable x = embed(src);
  for (auto& block : encoder_) x = block->forward(x, nullptr);
  return x;
}

Variable TransformerModel::decode(const std::vector<TokenSeq>& tgt_in, const Variable& memory) {
  Variable x = embed(tgt_in);
  for (auto& block : decoder_) x = block->forward(x, &memory);
  const std::int64_t b = x.shape()[0], t = x.shape()[1];
  return out_.forward(autograd::reshape(x, {b * t, config_.model_dim}));
}

std::vector<TokenSeq> TransformerModel::greedy_translate(const std::vector<TokenSeq>& src,
                                                         std::int64_t max_len) {
  Variable memory = encode(src);
  const std::int64_t b = static_cast<std::int64_t>(src.size());
  std::vector<TokenSeq> generated(static_cast<std::size_t>(b), TokenSeq{data::kBos});
  std::vector<bool> done(static_cast<std::size_t>(b), false);
  for (std::int64_t step = 0; step < max_len; ++step) {
    Variable logits = decode(generated, memory);  // [b*(step+1), vocab]
    const std::int64_t t = step + 1;
    bool all_done = true;
    for (std::int64_t i = 0; i < b; ++i) {
      if (done[static_cast<std::size_t>(i)]) {
        generated[static_cast<std::size_t>(i)].push_back(data::kPad);
        continue;
      }
      // Logits row for the last position of sequence i.
      const std::int64_t row = i * t + (t - 1);
      const float* rp = logits.value().data() + row * config_.vocab;
      std::int64_t best = 0;
      for (std::int64_t v = 1; v < config_.vocab; ++v)
        if (rp[v] > rp[best]) best = v;
      generated[static_cast<std::size_t>(i)].push_back(best);
      if (best == data::kEos) {
        done[static_cast<std::size_t>(i)] = true;
      } else {
        all_done = false;
      }
    }
    if (all_done) break;
  }
  // Trim BOS / EOS / PAD.
  std::vector<TokenSeq> out;
  out.reserve(generated.size());
  for (auto& g : generated) {
    TokenSeq t;
    for (std::size_t i = 1; i < g.size(); ++i) {
      if (g[i] == data::kEos || g[i] == data::kPad) break;
      t.push_back(g[i]);
    }
    out.push_back(std::move(t));
  }
  return out;
}

TransformerWorkload::TransformerWorkload(Config config) : config_(std::move(config)), rng_(1) {
  config_.model.vocab = config_.dataset.vocab + data::kFirstWord;
  config_.model.max_len = config_.dataset.max_len + 2;  // BOS/EOS headroom
}

void TransformerWorkload::prepare_data() {
  dataset_ = std::make_unique<data::SyntheticTranslationDataset>(config_.dataset);
  length_buckets_.assign(static_cast<std::size_t>(config_.dataset.max_len + 1), {});
  for (std::int64_t i = 0; i < dataset_->train_size(); ++i) {
    const std::size_t len = dataset_->train(i).source.size();
    length_buckets_[len].push_back(i);
  }
}

void TransformerWorkload::build_model(std::uint64_t seed) {
  rng_ = tensor::Rng(seed);
  tensor::Rng init_rng = rng_.split();
  model_ = std::make_unique<TransformerModel>(config_.model, init_rng);
  optimizer_ = std::make_unique<optim::Adam>(model_->parameters());
}

void TransformerWorkload::train_epoch() {
  if (!dataset_ || !model_) throw std::logic_error("TransformerWorkload: not prepared");
  // Visit buckets in random order; batches are equal-length by construction.
  std::vector<std::pair<std::size_t, std::size_t>> batches;  // (bucket, offset)
  for (std::size_t bkt = 0; bkt < length_buckets_.size(); ++bkt) {
    rng_.shuffle(length_buckets_[bkt]);
    for (std::size_t off = 0; off < length_buckets_[bkt].size();
         off += static_cast<std::size_t>(config_.batch_size))
      batches.emplace_back(bkt, off);
  }
  rng_.shuffle(batches);

  for (const auto& [bkt, off] : batches) {
    autograd::GraphEpoch epoch_scope;  // step-scoped pool instrumentation
    const auto& bucket = length_buckets_[bkt];
    const std::size_t end =
        std::min(off + static_cast<std::size_t>(config_.batch_size), bucket.size());
    std::vector<TokenSeq> src, tgt_in;
    std::vector<std::int64_t> targets;
    for (std::size_t k = off; k < end; ++k) {
      const auto& pair = dataset_->train(bucket[k]);
      src.push_back(pair.source);
      TokenSeq in{data::kBos};
      in.insert(in.end(), pair.target.begin(), pair.target.end());
      tgt_in.push_back(std::move(in));
      for (std::int64_t tok : pair.target) targets.push_back(tok);
      targets.push_back(data::kEos);
    }
    Variable memory = model_->encode(src);
    Variable logits = model_->decode(tgt_in, memory);
    Variable loss = config_.label_smoothing > 0.0f
                        ? nn::smoothed_cross_entropy(logits, targets, config_.label_smoothing)
                        : nn::cross_entropy(logits, targets);
    optimizer_->zero_grad();
    loss.backward();
    optimizer_->step(config_.lr);
  }
}

double TransformerWorkload::evaluate() {
  if (!dataset_ || !model_) throw std::logic_error("TransformerWorkload: not prepared");
  std::vector<TokenSeq> hyps, refs;
  // Translate per-length groups (batched greedy decode needs equal lengths).
  std::vector<std::vector<std::int64_t>> buckets(
      static_cast<std::size_t>(config_.dataset.max_len + 1));
  for (std::int64_t i = 0; i < dataset_->val_size(); ++i)
    buckets[dataset_->val(i).source.size()].push_back(i);
  for (const auto& bucket : buckets) {
    for (std::size_t off = 0; off < bucket.size();
         off += static_cast<std::size_t>(config_.batch_size)) {
      const std::size_t end =
          std::min(off + static_cast<std::size_t>(config_.batch_size), bucket.size());
      std::vector<TokenSeq> src;
      for (std::size_t k = off; k < end; ++k) src.push_back(dataset_->val(bucket[k]).source);
      std::vector<TokenSeq> out =
          model_->greedy_translate(src, config_.dataset.max_len + 2);
      for (std::size_t k = off; k < end; ++k) {
        refs.push_back(dataset_->val(bucket[k]).target);
        hyps.push_back(out[k - off]);
      }
    }
  }
  return metrics::bleu(hyps, refs);
}

std::map<std::string, double> TransformerWorkload::hyperparameters() const {
  return {{"global_batch_size", static_cast<double>(config_.batch_size)},
          {"learning_rate", config_.lr},
          {"label_smoothing", config_.label_smoothing}};
}

}  // namespace mlperf::models
