#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>

namespace mlperf::checkpoint {
class CheckpointWriter;
class CheckpointReader;
}  // namespace mlperf::checkpoint

namespace mlperf::models {

/// The reference-implementation interface (paper §3.4). A workload packages a
/// dataset, model and training procedure; the harness drives it through the
/// timing rules:
///
///   prepare_data()   -> inside the untimed reformat region
///   build_model(seed)-> inside the (capped) untimed model-creation region
///   train_epoch()    -> timed, once per epoch
///   evaluate()       -> timed, returns the quality metric value
///
/// All stochasticity must derive from the seed passed to build_model so that
/// a run is exactly reproducible (§2.2.3 protocol: runs differ only by seed).
class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;
  virtual void prepare_data() = 0;
  virtual void build_model(std::uint64_t seed) = 0;
  virtual void train_epoch() = 0;
  virtual double evaluate() = 0;

  /// ---- checkpoint/restore (opt-in) --------------------------------------
  /// A checkpointable workload serializes its COMPLETE training state —
  /// model parameters and buffers, optimizer slot buffers and step counters,
  /// every RNG stream, and data-traversal position — such that a restored
  /// run continues bitwise-identically to one that was never interrupted.
  /// save_state may only be called at an epoch boundary (after train_epoch /
  /// evaluate returned, before the next train_epoch); implementations must
  /// drain any asynchronous work (e.g. a prefetching loader) before
  /// snapshotting. The harness stores its own sections ("meta", "curve",
  /// "timer", "log") alongside the workload's.
  virtual bool supports_checkpoint() const { return false; }
  virtual void save_state(checkpoint::CheckpointWriter& /*out*/) const {
    throw std::logic_error(name() + ": workload does not support checkpointing");
  }
  virtual void restore_state(const checkpoint::CheckpointReader& /*in*/) {
    throw std::logic_error(name() + ": workload does not support checkpointing");
  }

  /// Hyperparameters to log (names should match the Closed-division
  /// whitelist vocabulary where applicable).
  virtual std::map<std::string, double> hyperparameters() const = 0;
  virtual std::int64_t global_batch_size() const = 0;
  /// Signature for Closed-division equivalence checking (model identity).
  virtual std::string model_signature() const = 0;
  virtual std::string optimizer_name() const = 0;
  virtual std::string augmentation_signature() const { return ""; }
};

}  // namespace mlperf::models
