#include "models/maskrcnn.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/functional.h"

namespace mlperf::models {

using autograd::Variable;
using data::Box;
using tensor::Tensor;

Variable roi_align(const Variable& features, const std::vector<Box>& rois, std::int64_t pool) {
  const Tensor& f = features.value();
  if (f.ndim() != 4 || f.shape()[0] != 1)
    throw std::invalid_argument("roi_align: features must be [1, C, H, W]");
  const std::int64_t c = f.shape()[1], h = f.shape()[2], w = f.shape()[3];
  const std::int64_t r = static_cast<std::int64_t>(rois.size());
  Tensor out({r, c, pool, pool});
  // Record bilinear sample corners/weights for the backward scatter.
  struct Sample {
    std::int64_t i0, j0;
    float wi, wj;  // weight of the (i0, j0) corner along each axis
  };
  auto samples = std::make_shared<std::vector<Sample>>(
      static_cast<std::size_t>(r * pool * pool));
  for (std::int64_t rr = 0; rr < r; ++rr) {
    const Box& roi = rois[static_cast<std::size_t>(rr)];
    for (std::int64_t pi = 0; pi < pool; ++pi)
      for (std::int64_t pj = 0; pj < pool; ++pj) {
        const float y = roi.y1 + (static_cast<float>(pi) + 0.5f) / static_cast<float>(pool) *
                                     std::max(roi.h(), 1e-4f);
        const float x = roi.x1 + (static_cast<float>(pj) + 0.5f) / static_cast<float>(pool) *
                                     std::max(roi.w(), 1e-4f);
        // Normalized -> feature coordinates (align_corners=false convention).
        float fy = y * static_cast<float>(h) - 0.5f;
        float fx = x * static_cast<float>(w) - 0.5f;
        fy = std::clamp(fy, 0.0f, static_cast<float>(h - 1));
        fx = std::clamp(fx, 0.0f, static_cast<float>(w - 1));
        const std::int64_t i0 = std::min<std::int64_t>(static_cast<std::int64_t>(fy), h - 2 >= 0 ? h - 2 : 0);
        const std::int64_t j0 = std::min<std::int64_t>(static_cast<std::int64_t>(fx), w - 2 >= 0 ? w - 2 : 0);
        const float wi = 1.0f - (fy - static_cast<float>(i0));
        const float wj = 1.0f - (fx - static_cast<float>(j0));
        (*samples)[static_cast<std::size_t>((rr * pool + pi) * pool + pj)] =
            Sample{i0, j0, wi, wj};
        for (std::int64_t ch = 0; ch < c; ++ch) {
          const float* plane = f.data() + (ch * h) * w;
          const std::int64_t i1 = std::min(i0 + 1, h - 1), j1 = std::min(j0 + 1, w - 1);
          const float v = wi * wj * plane[i0 * w + j0] + wi * (1 - wj) * plane[i0 * w + j1] +
                          (1 - wi) * wj * plane[i1 * w + j0] +
                          (1 - wi) * (1 - wj) * plane[i1 * w + j1];
          out[((rr * c + ch) * pool + pi) * pool + pj] = v;
        }
      }
  }
  auto fn = features.node();
  return Variable::from_op(std::move(out), {features},
                           [fn, samples, r, c, h, w, pool](const Tensor& g) {
                             Tensor df(fn->value.shape());
                             for (std::int64_t rr = 0; rr < r; ++rr)
                               for (std::int64_t pi = 0; pi < pool; ++pi)
                                 for (std::int64_t pj = 0; pj < pool; ++pj) {
                                   const auto& s = (*samples)[static_cast<std::size_t>(
                                       (rr * pool + pi) * pool + pj)];
                                   const std::int64_t i1 = std::min(s.i0 + 1, h - 1);
                                   const std::int64_t j1 = std::min(s.j0 + 1, w - 1);
                                   for (std::int64_t ch = 0; ch < c; ++ch) {
                                     const float gv =
                                         g[((rr * c + ch) * pool + pi) * pool + pj];
                                     float* plane = df.data() + (ch * h) * w;
                                     plane[s.i0 * w + s.j0] += gv * s.wi * s.wj;
                                     plane[s.i0 * w + j1] += gv * s.wi * (1 - s.wj);
                                     plane[i1 * w + s.j0] += gv * (1 - s.wi) * s.wj;
                                     plane[i1 * w + j1] += gv * (1 - s.wi) * (1 - s.wj);
                                   }
                                 }
                             fn->accumulate_grad(df);
                           });
}

MaskRcnnModel::MaskRcnnModel(const Config& config, tensor::Rng& rng)
    : config_(config),
      conv1_(config.in_channels, config.feat_channels / 2, 3, 1, 1, rng),
      conv2_(config.feat_channels / 2, config.feat_channels, 3, 2, 1, rng),
      bn1_(config.feat_channels / 2), bn2_(config.feat_channels),
      rpn_conv_(config.feat_channels, config.feat_channels, 3, 1, 1, rng),
      rpn_obj_(config.feat_channels, static_cast<std::int64_t>(config.rpn_scales.size()), 1, 1,
               0, rng, /*bias=*/true),
      rpn_delta_(config.feat_channels, static_cast<std::int64_t>(config.rpn_scales.size()) * 4,
                 1, 1, 0, rng, /*bias=*/true),
      fc1_(config.feat_channels * config.roi_pool * config.roi_pool, 64, rng),
      fc_cls_(64, config.num_classes + 1, rng),
      fc_box_(64, 4, rng),
      mask_conv1_(config.feat_channels, 16, 3, 1, 1, rng, /*bias=*/true),
      mask_conv2_(16, config.num_classes, 1, 1, 0, rng, /*bias=*/true) {
  register_module("conv1", conv1_);
  register_module("conv2", conv2_);
  register_module("bn1", bn1_);
  register_module("bn2", bn2_);
  register_module("rpn_conv", rpn_conv_);
  register_module("rpn_obj", rpn_obj_);
  register_module("rpn_delta", rpn_delta_);
  register_module("fc1", fc1_);
  register_module("fc_cls", fc_cls_);
  register_module("fc_box", fc_box_);
  register_module("mask_conv1", mask_conv1_);
  register_module("mask_conv2", mask_conv2_);
  const std::int64_t grid = config.image_size / 2;
  anchors_ = AnchorSet::make_grid(grid, grid, config.rpn_scales);
}

Variable MaskRcnnModel::backbone(const Variable& images) {
  Variable x = autograd::relu(bn1_.forward(conv1_.forward(images)));
  return autograd::relu(bn2_.forward(conv2_.forward(x)));
}

MaskRcnnModel::RpnOutput MaskRcnnModel::rpn(const Variable& features) {
  Variable x = autograd::relu(rpn_conv_.forward(features));
  const std::int64_t a = static_cast<std::int64_t>(config_.rpn_scales.size());
  const std::int64_t grid = config_.image_size / 2;
  // [1, A, H, W] -> [H*W*A] matching AnchorSet order (row, col, scale).
  Variable obj = autograd::reshape(
      autograd::permute(rpn_obj_.forward(x), {0, 2, 3, 1}), {grid * grid * a});
  Variable delta4 = autograd::reshape(rpn_delta_.forward(x), {1, a, 4, grid, grid});
  Variable delta = autograd::reshape(autograd::permute(delta4, {0, 3, 4, 1, 2}),
                                     {grid * grid * a, 4});
  return {obj, delta};
}

std::vector<Box> MaskRcnnModel::decode_proposals(const RpnOutput& out) const {
  const Tensor& obj = out.objectness.value();
  std::vector<std::pair<float, std::int64_t>> ranked;
  ranked.reserve(static_cast<std::size_t>(obj.numel()));
  for (std::int64_t i = 0; i < obj.numel(); ++i) ranked.emplace_back(obj[i], i);
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  // Decode the top pool, NMS, keep proposals_per_image.
  const std::int64_t top = std::min<std::int64_t>(obj.numel(), 4 * config_.proposals_per_image);
  std::vector<Box> boxes;
  std::vector<float> scores;
  for (std::int64_t k = 0; k < top; ++k) {
    const std::int64_t a = ranked[static_cast<std::size_t>(k)].second;
    Box b = codec_.decode(out.deltas.value().data() + a * 4,
                          anchors_.anchors[static_cast<std::size_t>(a)]);
    b.x1 = std::clamp(b.x1, 0.0f, 1.0f);
    b.y1 = std::clamp(b.y1, 0.0f, 1.0f);
    b.x2 = std::clamp(b.x2, 0.0f, 1.0f);
    b.y2 = std::clamp(b.y2, 0.0f, 1.0f);
    if (b.w() <= 0.01f || b.h() <= 0.01f) continue;
    boxes.push_back(b);
    scores.push_back(ranked[static_cast<std::size_t>(k)].first);
  }
  std::vector<Box> proposals;
  for (std::size_t k : nms(boxes, scores, config_.rpn_nms_iou)) {
    proposals.push_back(boxes[k]);
    if (static_cast<std::int64_t>(proposals.size()) >= config_.proposals_per_image) break;
  }
  return proposals;
}

MaskRcnnModel::RoiOutput MaskRcnnModel::box_head(const Variable& roi_feats) {
  const std::int64_t r = roi_feats.shape()[0];
  Variable flat = autograd::reshape(
      roi_feats, {r, config_.feat_channels * config_.roi_pool * config_.roi_pool});
  Variable h = fc1_.forward_relu(flat);  // fused bias+ReLU
  return {fc_cls_.forward(h), fc_box_.forward(h)};
}

Variable MaskRcnnModel::mask_head(const Variable& roi_feats) {
  Variable x = autograd::relu(mask_conv1_.forward(roi_feats));
  x = nn::upsample2x(x);  // P -> 2P (= mask_size with P=4, M=8)
  return mask_conv2_.forward(x);
}

// ---- workload ---------------------------------------------------------------

MaskRcnnWorkload::MaskRcnnWorkload(Config config) : config_(std::move(config)), rng_(1) {
  config_.model.in_channels = config_.dataset.channels;
  config_.model.image_size = config_.dataset.height;
  config_.model.num_classes = config_.dataset.num_classes;
}

void MaskRcnnWorkload::prepare_data() {
  dataset_ = std::make_unique<data::SyntheticDetectionDataset>(config_.dataset);
}

void MaskRcnnWorkload::build_model(std::uint64_t seed) {
  rng_ = tensor::Rng(seed);
  tensor::Rng init_rng = rng_.split();
  model_ = std::make_unique<MaskRcnnModel>(config_.model, init_rng);
  optimizer_ = std::make_unique<optim::SgdMomentum>(model_->parameters(), config_.momentum);
}

namespace {
/// Resample a full-image binary mask to MxM inside a ROI (nearest).
Tensor crop_mask(const Tensor& mask, const Box& roi, std::int64_t m) {
  const std::int64_t h = mask.shape()[0], w = mask.shape()[1];
  Tensor out({m, m});
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < m; ++j) {
      const float y = roi.y1 + (static_cast<float>(i) + 0.5f) / static_cast<float>(m) * roi.h();
      const float x = roi.x1 + (static_cast<float>(j) + 0.5f) / static_cast<float>(m) * roi.w();
      const std::int64_t ii =
          std::clamp<std::int64_t>(static_cast<std::int64_t>(y * static_cast<float>(h)), 0, h - 1);
      const std::int64_t jj =
          std::clamp<std::int64_t>(static_cast<std::int64_t>(x * static_cast<float>(w)), 0, w - 1);
      out.at({i, j}) = mask.at({ii, jj});
    }
  return out;
}

/// Paste an MxM soft mask back into an HxW image grid inside the ROI.
Tensor paste_mask(const Tensor& soft, const Box& roi, std::int64_t h, std::int64_t w) {
  const std::int64_t m = soft.shape()[0];
  Tensor out({h, w});
  for (std::int64_t i = 0; i < h; ++i)
    for (std::int64_t j = 0; j < w; ++j) {
      const float y = (static_cast<float>(i) + 0.5f) / static_cast<float>(h);
      const float x = (static_cast<float>(j) + 0.5f) / static_cast<float>(w);
      if (y < roi.y1 || y > roi.y2 || x < roi.x1 || x > roi.x2) continue;
      const std::int64_t mi = std::clamp<std::int64_t>(
          static_cast<std::int64_t>((y - roi.y1) / std::max(roi.h(), 1e-4f) *
                                    static_cast<float>(m)),
          0, m - 1);
      const std::int64_t mj = std::clamp<std::int64_t>(
          static_cast<std::int64_t>((x - roi.x1) / std::max(roi.w(), 1e-4f) *
                                    static_cast<float>(m)),
          0, m - 1);
      out.at({i, j}) = soft.at({mi, mj});
    }
  return out;
}
}  // namespace

void MaskRcnnWorkload::train_image(const data::DetectionExample& ex) {
  Tensor batch({1, ex.image.shape()[0], ex.image.shape()[1], ex.image.shape()[2]});
  std::copy(ex.image.vec().begin(), ex.image.vec().end(), batch.vec().begin());
  Variable feats = model_->backbone(Variable(batch));

  // ---- RPN loss: balanced-sampled objectness BCE + positive box regression.
  MaskRcnnModel::RpnOutput rpn_out = model_->rpn(feats);
  const AnchorSet& anchors = model_->rpn_anchors();
  const MatchResult match = match_anchors(anchors, ex.objects, 0.4f);
  std::vector<float> obj_targets;
  std::vector<std::int64_t> sampled;  // anchor indices used for objectness loss
  std::vector<std::int64_t> positives;
  for (std::int64_t a = 0; a < anchors.size(); ++a)
    if (match.gt_index[static_cast<std::size_t>(a)] >= 0) positives.push_back(a);
  std::vector<std::int64_t> negatives;
  for (std::int64_t a = 0; a < anchors.size(); ++a)
    if (match.gt_index[static_cast<std::size_t>(a)] < 0) negatives.push_back(a);
  rng_.shuffle(negatives);
  const std::size_t n_neg = std::min<std::size_t>(negatives.size(), positives.size() * 2 + 4);
  for (std::int64_t a : positives) {
    sampled.push_back(a);
    obj_targets.push_back(1.0f);
  }
  for (std::size_t k = 0; k < n_neg; ++k) {
    sampled.push_back(negatives[k]);
    obj_targets.push_back(0.0f);
  }
  // Gather sampled objectness logits via cat of slices.
  std::vector<Variable> obj_rows;
  obj_rows.reserve(sampled.size());
  Variable obj2d = autograd::reshape(rpn_out.objectness, {anchors.size(), 1});
  for (std::int64_t a : sampled) obj_rows.push_back(autograd::slice0(obj2d, a, a + 1));
  Variable obj_logits = autograd::reshape(autograd::cat0(obj_rows),
                                          {static_cast<std::int64_t>(sampled.size())});
  Variable rpn_cls_loss = nn::bce_with_logits(obj_logits, obj_targets);

  Variable loss = rpn_cls_loss;
  if (!positives.empty()) {
    std::vector<Variable> delta_rows;
    Tensor delta_targets({static_cast<std::int64_t>(positives.size()), 4});
    std::vector<float> wts(positives.size(), 1.0f);
    for (std::size_t k = 0; k < positives.size(); ++k) {
      const std::int64_t a = positives[k];
      delta_rows.push_back(autograd::slice0(rpn_out.deltas, a, a + 1));
      const std::int64_t g = match.gt_index[static_cast<std::size_t>(a)];
      const auto enc = model_->codec().encode(ex.objects[static_cast<std::size_t>(g)].box,
                                              anchors.anchors[static_cast<std::size_t>(a)]);
      for (int q = 0; q < 4; ++q)
        delta_targets[static_cast<std::int64_t>(k) * 4 + q] = enc[static_cast<std::size_t>(q)];
    }
    Variable rpn_box_loss =
        nn::smooth_l1(autograd::cat0(delta_rows), delta_targets, wts);
    loss = autograd::add(loss, rpn_box_loss);
  }

  // ---- ROI heads: proposals = RPN proposals + gt + jittered gt.
  std::vector<Box> rois = model_->decode_proposals(rpn_out);
  for (const auto& o : ex.objects) {
    rois.push_back(o.box);
    Box jit = o.box;
    const float dx = rng_.uniform(-0.05f, 0.05f), dy = rng_.uniform(-0.05f, 0.05f);
    jit.x1 = std::clamp(jit.x1 + dx, 0.0f, 1.0f);
    jit.x2 = std::clamp(jit.x2 + dx, 0.0f, 1.0f);
    jit.y1 = std::clamp(jit.y1 + dy, 0.0f, 1.0f);
    jit.y2 = std::clamp(jit.y2 + dy, 0.0f, 1.0f);
    if (jit.w() > 0.02f && jit.h() > 0.02f) rois.push_back(jit);
  }

  // Match ROIs to gt.
  std::vector<std::int64_t> roi_cls(rois.size(), 0);
  std::vector<std::int64_t> roi_gt(rois.size(), -1);
  for (std::size_t r = 0; r < rois.size(); ++r) {
    float best = 0.0f;
    for (std::size_t g = 0; g < ex.objects.size(); ++g) {
      const float overlap = data::iou(rois[r], ex.objects[g].box);
      if (overlap > best) {
        best = overlap;
        roi_gt[r] = static_cast<std::int64_t>(g);
      }
    }
    if (best >= config_.roi_match_iou && roi_gt[r] >= 0) {
      roi_cls[r] = ex.objects[static_cast<std::size_t>(roi_gt[r])].cls + 1;
    } else {
      roi_gt[r] = -1;
    }
  }

  Variable roi_feats = roi_align(feats, rois, config_.model.roi_pool);
  MaskRcnnModel::RoiOutput roi_out = model_->box_head(roi_feats);
  Variable roi_cls_loss = nn::cross_entropy(roi_out.class_logits, roi_cls);
  loss = autograd::add(loss, roi_cls_loss);

  // Box regression for positive ROIs (targets encoded relative to the ROI).
  Tensor box_targets({static_cast<std::int64_t>(rois.size()), 4});
  std::vector<float> box_w(rois.size(), 0.0f);
  for (std::size_t r = 0; r < rois.size(); ++r) {
    if (roi_gt[r] < 0) continue;
    box_w[r] = 1.0f;
    const auto enc = model_->codec().encode(
        ex.objects[static_cast<std::size_t>(roi_gt[r])].box, rois[r]);
    for (int q = 0; q < 4; ++q)
      box_targets[static_cast<std::int64_t>(r) * 4 + q] = enc[static_cast<std::size_t>(q)];
  }
  loss = autograd::add(loss, nn::smooth_l1(roi_out.box_deltas, box_targets, box_w));

  // Mask loss on positive ROIs: BCE between the matched class's mask logits
  // and the gt mask cropped to the ROI.
  std::vector<std::int64_t> pos_rois;
  for (std::size_t r = 0; r < rois.size(); ++r)
    if (roi_gt[r] >= 0) pos_rois.push_back(static_cast<std::int64_t>(r));
  if (!pos_rois.empty()) {
    Variable masks = model_->mask_head(roi_feats);  // [R, C, M, M]
    const std::int64_t m = config_.model.mask_size;
    const std::int64_t ncls = config_.model.num_classes;
    std::vector<Variable> mask_logit_rows;
    std::vector<float> mask_targets;
    for (std::int64_t r : pos_rois) {
      const std::int64_t g = roi_gt[static_cast<std::size_t>(r)];
      const std::int64_t cls = ex.objects[static_cast<std::size_t>(g)].cls;
      Variable row = autograd::slice0(masks, r, r + 1);            // [1, C, M, M]
      Variable crow = autograd::reshape(row, {ncls, m * m});
      mask_logit_rows.push_back(autograd::slice0(crow, cls, cls + 1));  // [1, M*M]
      const Tensor gt_crop = crop_mask(ex.objects[static_cast<std::size_t>(g)].mask,
                                       rois[static_cast<std::size_t>(r)], m);
      for (std::int64_t q = 0; q < m * m; ++q) mask_targets.push_back(gt_crop[q]);
    }
    Variable mask_logits = autograd::reshape(
        autograd::cat0(mask_logit_rows),
        {static_cast<std::int64_t>(pos_rois.size()) * m * m});
    loss = autograd::add(loss, nn::bce_with_logits(mask_logits, mask_targets));
  }

  optimizer_->zero_grad();
  loss.backward();
  optimizer_->step(config_.lr);
}

void MaskRcnnWorkload::train_epoch() {
  if (!dataset_ || !model_) throw std::logic_error("MaskRcnnWorkload: not prepared");
  model_->set_training(true);
  std::vector<std::size_t> order =
      rng_.permutation(static_cast<std::size_t>(dataset_->train_size()));
  for (std::size_t idx : order) train_image(dataset_->train(static_cast<std::int64_t>(idx)));
}

std::vector<metrics::Detection> MaskRcnnWorkload::detect(const Tensor& image,
                                                         std::int64_t image_id) {
  model_->set_training(false);
  Tensor batch({1, image.shape()[0], image.shape()[1], image.shape()[2]});
  std::copy(image.vec().begin(), image.vec().end(), batch.vec().begin());
  Variable feats = model_->backbone(Variable(batch));
  MaskRcnnModel::RpnOutput rpn_out = model_->rpn(feats);
  std::vector<Box> proposals = model_->decode_proposals(rpn_out);
  model_->set_training(true);
  if (proposals.empty()) return {};

  model_->set_training(false);
  Variable roi_feats = roi_align(feats, proposals, config_.model.roi_pool);
  MaskRcnnModel::RoiOutput roi_out = model_->box_head(roi_feats);
  Variable mask_logits = model_->mask_head(roi_feats);  // [R, C, M, M]
  model_->set_training(true);

  const Tensor probs = roi_out.class_logits.value().softmax_last();
  const std::int64_t ncls = probs.shape()[1];
  const std::int64_t m = config_.model.mask_size;
  const std::int64_t h = image.shape()[1], w = image.shape()[2];

  std::vector<metrics::Detection> all;
  for (std::int64_t cls = 1; cls < ncls; ++cls) {
    std::vector<Box> boxes;
    std::vector<float> scores;
    std::vector<std::int64_t> roi_idx;
    for (std::size_t r = 0; r < proposals.size(); ++r) {
      const float score = probs[static_cast<std::int64_t>(r) * ncls + cls];
      if (score < config_.score_threshold) continue;
      Box refined = model_->codec().decode(
          roi_out.box_deltas.value().data() + static_cast<std::int64_t>(r) * 4, proposals[r]);
      refined.x1 = std::clamp(refined.x1, 0.0f, 1.0f);
      refined.y1 = std::clamp(refined.y1, 0.0f, 1.0f);
      refined.x2 = std::clamp(refined.x2, 0.0f, 1.0f);
      refined.y2 = std::clamp(refined.y2, 0.0f, 1.0f);
      if (refined.w() <= 0.01f || refined.h() <= 0.01f) continue;
      boxes.push_back(refined);
      scores.push_back(score);
      roi_idx.push_back(static_cast<std::int64_t>(r));
    }
    for (std::size_t k : nms(boxes, scores, config_.nms_iou)) {
      metrics::Detection d;
      d.image_id = image_id;
      d.cls = cls - 1;
      d.score = scores[k];
      d.box = boxes[k];
      // Mask: sigmoid of this class's logits, pasted into the refined box.
      Tensor soft({m, m});
      const std::int64_t r = roi_idx[k];
      for (std::int64_t q = 0; q < m * m; ++q) {
        const float logit = mask_logits.value()[((r * (ncls - 1)) + (cls - 1)) * m * m + q];
        soft[q] = 1.0f / (1.0f + std::exp(-logit));
      }
      d.mask = paste_mask(soft, boxes[k], h, w);
      all.push_back(std::move(d));
    }
  }
  return all;
}

MaskRcnnWorkload::EvalDetail MaskRcnnWorkload::evaluate_detail() {
  metrics::GroundTruth gt;
  std::vector<metrics::Detection> detections;
  gt.per_image.resize(static_cast<std::size_t>(dataset_->val_size()));
  for (std::int64_t i = 0; i < dataset_->val_size(); ++i) {
    const auto& ex = dataset_->val(i);
    gt.per_image[static_cast<std::size_t>(i)] = ex.objects;
    auto dets = detect(ex.image, i);
    detections.insert(detections.end(), dets.begin(), dets.end());
  }
  EvalDetail d;
  d.box_map = metrics::coco_map(detections, gt, config_.model.num_classes, false);
  d.mask_map = metrics::coco_map(detections, gt, config_.model.num_classes, true);
  return d;
}

double MaskRcnnWorkload::evaluate() {
  if (!dataset_ || !model_) throw std::logic_error("MaskRcnnWorkload: not prepared");
  const EvalDetail d = evaluate_detail();
  return std::min(d.box_map, d.mask_map);
}

std::map<std::string, double> MaskRcnnWorkload::hyperparameters() const {
  return {{"global_batch_size", 1.0},
          {"learning_rate", config_.lr},
          {"momentum", config_.momentum}};
}

}  // namespace mlperf::models
