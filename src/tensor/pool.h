#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace mlperf::tensor {

/// Process-wide caching allocator for Tensor data buffers.
///
/// Steady-state training allocates and frees the same buffer sizes every
/// step (forward values, gradients, elementwise temporaries). The pool keeps
/// released `std::vector<float>` storage on size-bucketed free lists so the
/// next step's `Tensor(Shape)` reuses it instead of round-tripping through
/// the heap. Buckets are powers of two starting at kMinBucketFloats; a
/// request is served by the smallest bucket that fits it, so a recycled
/// buffer's capacity always covers the request and filling it never
/// reallocates.
///
/// Two-level structure:
///   - buckets below kSharedBucketFloats use per-thread free lists (no
///     locking on the hot path; overflow past kTlsMaxPerBucket spills to the
///     shared list, and a dying thread's cache is spilled too);
///   - larger buckets go straight to a mutex-guarded shared list, so buffers
///     produced on one thread and freed on another (the prefetching loader's
///     batch images) still recycle instead of missing every time.
///
/// The pool only changes where storage comes from, never what is in it:
/// Tensor's fill semantics are applied after acquisition, so numerics are
/// bitwise unaffected at any thread count. Counters (hits / misses /
/// bytes outstanding / bytes cached) feed the zero-allocation pin tests,
/// `autograd::GraphEpoch`, and the harness's pool-stats run event.
class TensorPool {
 public:
  struct Stats {
    std::int64_t hits = 0;      ///< acquires served from a free list
    std::int64_t misses = 0;    ///< acquires that fell through to the heap
    std::int64_t releases = 0;  ///< buffers parked on a free list
    std::int64_t bytes_outstanding = 0;  ///< acquired minus released bytes
    std::int64_t bytes_cached = 0;       ///< bytes parked on free lists
  };

  /// The singleton. Deliberately leaked: Tensors with static storage
  /// duration release their buffers during process teardown, after which a
  /// destroyed pool (or a destroyed thread cache) must still be safe to
  /// call into.
  static TensorPool& instance();

  /// Capacity bucket (in floats) serving a request of n floats: the
  /// smallest power of two >= max(n, kMinBucketFloats). Returns 0 for n <= 0
  /// (such requests bypass the pool).
  static std::int64_t bucket_for(std::int64_t n);

  /// Fetch storage with capacity() >= bucket_for(n). The contents and size()
  /// are unspecified (recycled buffers keep their old size); the caller
  /// assigns or resizes before use. Returns an empty, capacity-0 vector when
  /// the pool is disabled or the request is unpoolable — the caller's
  /// assign/resize then allocates from the heap as before.
  std::vector<float> acquire(std::int64_t n);

  /// Park a buffer on the free list for its capacity's bucket. Buffers with
  /// capacity below kMinBucketFloats (or when disabled) are simply freed.
  void release(std::vector<float>&& buf) noexcept;

  Stats stats() const;

  /// Drop cached buffers: the shared lists and the calling thread's lists
  /// immediately, other threads' lists lazily on their next pool touch.
  void trim();

  /// Disabling makes acquire/release no-ops (plain heap behaviour) without
  /// touching already-cached buffers; call trim() to drop those too.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  static constexpr std::int64_t kMinBucketFloats = 64;
  /// Buckets >= this many floats (64 KiB) skip the thread-local tier.
  static constexpr std::int64_t kSharedBucketFloats = std::int64_t{1} << 14;
  static constexpr std::size_t kTlsMaxPerBucket = 8;
  static constexpr int kNumBuckets = 34;

  TensorPool(const TensorPool&) = delete;
  TensorPool& operator=(const TensorPool&) = delete;

 private:
  struct ThreadCache;

  TensorPool();
  ~TensorPool() = delete;  // leaked on purpose, see instance()

  ThreadCache* thread_cache();
  /// Clear a thread cache that predates the last trim().
  void refresh(ThreadCache& tc);
  void spill(ThreadCache& tc) noexcept;

  std::atomic<bool> enabled_{true};
  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> misses_{0};
  std::atomic<std::int64_t> releases_{0};
  std::atomic<std::int64_t> bytes_acquired_{0};
  std::atomic<std::int64_t> bytes_released_{0};
  std::atomic<std::int64_t> bytes_cached_{0};
  std::atomic<std::uint64_t> generation_{0};

  struct SharedLists;
  SharedLists* shared_;  // owned, never freed (teardown safety)
};

}  // namespace mlperf::tensor
