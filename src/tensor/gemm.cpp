#include "tensor/gemm.h"

#include <algorithm>

#include "tensor/scratch.h"

namespace mlperf::tensor {

namespace {

constexpr std::int64_t MR = kGemmMR;
constexpr std::int64_t NR = kGemmNR;
constexpr std::int64_t MC = kGemmMC;

// Pack one MR-row strip of op(A) k-major: ap[p*MR + r] = opA[i0+r][p].
// rs/cs are the row/column strides of op(A) over the stored matrix, so the
// same routine serves both orientations. Rows past `mr` are zero-padded;
// their accumulator lanes are computed but never stored.
void pack_a_strip(const float* a, std::int64_t rs, std::int64_t cs, std::int64_t i0,
                  std::int64_t mr, std::int64_t k, float* ap) {
  for (std::int64_t p = 0; p < k; ++p) {
    float* dst = ap + p * MR;
    const float* src = a + i0 * rs + p * cs;
    std::int64_t r = 0;
    for (; r < mr; ++r) dst[r] = src[r * rs];
    for (; r < MR; ++r) dst[r] = 0.0f;
  }
}

// MR x NR register tile: acc starts from the existing C values and folds the
// packed panels' k-products in ascending k, one float accumulator per
// element — the exact accumulation order of gemm_accumulate_ref, which is
// what keeps the packed kernel bitwise equal to it. The fixed-extent inner
// loops auto-vectorize; edge tiles only bound the C loads/stores.
void micro_kernel(std::int64_t k, const float* ap, const float* bp, float* c, std::int64_t ldc,
                  std::int64_t mr, std::int64_t nr) {
  float acc[MR][NR];
  for (std::int64_t r = 0; r < MR; ++r)
    for (std::int64_t j = 0; j < NR; ++j) acc[r][j] = 0.0f;
  for (std::int64_t r = 0; r < mr; ++r)
    for (std::int64_t j = 0; j < nr; ++j) acc[r][j] = c[r * ldc + j];
  for (std::int64_t p = 0; p < k; ++p) {
    const float* av = ap + p * MR;
    const float* bv = bp + p * NR;
    for (std::int64_t r = 0; r < MR; ++r) {
      const float arp = av[r];
      for (std::int64_t j = 0; j < NR; ++j) acc[r][j] += arp * bv[j];
    }
  }
  for (std::int64_t r = 0; r < mr; ++r)
    for (std::int64_t j = 0; j < nr; ++j) c[r * ldc + j] = acc[r][j];
}

// Double-accumulator twin of micro_kernel for the dW numerics contract: the
// product stays float (rounding exactly where the naive `acc += g*c` loop
// rounds), the fold is double, one accumulator per element, ascending k.
// Overwrite semantics — acc starts at zero and C is stored, not added to.
// NR double lanes still auto-vectorize (two AVX double vectors per row).
void micro_kernel_f64(std::int64_t k, const float* ap, const float* bp, float* c,
                      std::int64_t ldc, std::int64_t mr, std::int64_t nr) {
  double acc[MR][NR];
  for (std::int64_t r = 0; r < MR; ++r)
    for (std::int64_t j = 0; j < NR; ++j) acc[r][j] = 0.0;
  for (std::int64_t p = 0; p < k; ++p) {
    const float* av = ap + p * MR;
    const float* bv = bp + p * NR;
    for (std::int64_t r = 0; r < MR; ++r) {
      const float arp = av[r];
      for (std::int64_t j = 0; j < NR; ++j)
        acc[r][j] += static_cast<double>(arp * bv[j]);
    }
  }
  for (std::int64_t r = 0; r < mr; ++r)
    for (std::int64_t j = 0; j < nr; ++j) c[r * ldc + j] = static_cast<float>(acc[r][j]);
}

}  // namespace

std::int64_t gemm_packed_b_size(std::int64_t k, std::int64_t n) {
  if (k <= 0 || n <= 0) return 0;
  return (n + NR - 1) / NR * NR * k;
}

void gemm_pack_b(Trans tb, const float* b, std::int64_t ldb, std::int64_t k, std::int64_t n,
                 float* bp) {
  const std::int64_t rs = tb == Trans::N ? ldb : 1;
  const std::int64_t cs = tb == Trans::N ? 1 : ldb;
  for (std::int64_t j0 = 0; j0 < n; j0 += NR) {
    const std::int64_t nr = std::min(NR, n - j0);
    float* panel = bp + j0 * k;  // panels are k*NR floats each
    for (std::int64_t p = 0; p < k; ++p) {
      float* dst = panel + p * NR;
      const float* src = b + p * rs + j0 * cs;
      std::int64_t j = 0;
      for (; j < nr; ++j) dst[j] = src[j * cs];
      for (; j < NR; ++j) dst[j] = 0.0f;
    }
  }
}

void gemm_packed(Trans ta, const float* a, std::int64_t lda, const float* bp, std::int64_t m,
                 std::int64_t n, std::int64_t k, float* c, std::int64_t ldc) {
  if (m <= 0 || n <= 0 || k <= 0) return;  // k == 0: C += 0, nothing to do
  const std::int64_t rs = ta == Trans::N ? lda : 1;
  const std::int64_t cs = ta == Trans::N ? 1 : lda;
  ScratchArena::Frame frame(ScratchArena::tls());
  const std::int64_t mc_cap = std::min(MC, (m + MR - 1) / MR * MR);
  float* ap = frame.alloc(mc_cap * k);
  for (std::int64_t ic = 0; ic < m; ic += MC) {
    const std::int64_t mc = std::min(MC, m - ic);
    const std::int64_t strips = (mc + MR - 1) / MR;
    for (std::int64_t s = 0; s < strips; ++s) {
      const std::int64_t i0 = ic + s * MR;
      pack_a_strip(a, rs, cs, i0, std::min(MR, m - i0), k, ap + s * MR * k);
    }
    // B panel innermost-reused: one [k][NR] panel stays L1-hot while the
    // packed A strips of this row block stream past it.
    for (std::int64_t j0 = 0; j0 < n; j0 += NR) {
      const std::int64_t nr = std::min(NR, n - j0);
      const float* bpanel = bp + j0 * k;
      for (std::int64_t s = 0; s < strips; ++s) {
        const std::int64_t i0 = ic + s * MR;
        micro_kernel(k, ap + s * MR * k, bpanel, c + i0 * ldc + j0, ldc, std::min(MR, m - i0),
                     nr);
      }
    }
  }
}

void gemm_accumulate(Trans ta, Trans tb, std::int64_t m, std::int64_t n, std::int64_t k,
                     const float* a, std::int64_t lda, const float* b, std::int64_t ldb, float* c,
                     std::int64_t ldc) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  ScratchArena::Frame frame(ScratchArena::tls());
  float* bp = frame.alloc(gemm_packed_b_size(k, n));
  gemm_pack_b(tb, b, ldb, k, n, bp);
  gemm_packed(ta, a, lda, bp, m, n, k, c, ldc);
}

void gemm_accumulate(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
                     std::int64_t n) {
  gemm_accumulate(Trans::N, Trans::N, m, n, k, a, k, b, n, c, n);
}

void gemm_accumulate_ref(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
                         std::int64_t n) {
  // i-k-j loop order: unit-stride inner loop over both B and C rows. One
  // accumulator per C element, k folded in ascending order — the numerics
  // contract the packed kernel reproduces bit-for-bit.
  constexpr std::int64_t kBlock = 64;
  for (std::int64_t i0 = 0; i0 < m; i0 += kBlock) {
    const std::int64_t i1 = std::min(i0 + kBlock, m);
    for (std::int64_t k0 = 0; k0 < k; k0 += kBlock) {
      const std::int64_t k1 = std::min(k0 + kBlock, k);
      for (std::int64_t i = i0; i < i1; ++i) {
        float* crow = c + i * n;
        for (std::int64_t kk = k0; kk < k1; ++kk) {
          const float av = a[i * k + kk];
          const float* brow = b + kk * n;
          for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

void gemm_f64acc(Trans ta, Trans tb, std::int64_t m, std::int64_t n, std::int64_t k,
                 const float* a, std::int64_t lda, const float* b, std::int64_t ldb, float* c,
                 std::int64_t ldc) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    // Overwrite contract: an empty fold stores float(0.0) everywhere, just
    // as the naive loop's untouched `double acc = 0.0` would.
    for (std::int64_t i = 0; i < m; ++i)
      for (std::int64_t j = 0; j < n; ++j) c[i * ldc + j] = 0.0f;
    return;
  }
  const std::int64_t rs = ta == Trans::N ? lda : 1;
  const std::int64_t cs = ta == Trans::N ? 1 : lda;
  ScratchArena::Frame frame(ScratchArena::tls());
  float* bp = frame.alloc(gemm_packed_b_size(k, n));
  gemm_pack_b(tb, b, ldb, k, n, bp);
  const std::int64_t mc_cap = std::min(MC, (m + MR - 1) / MR * MR);
  float* ap = frame.alloc(mc_cap * k);
  for (std::int64_t ic = 0; ic < m; ic += MC) {
    const std::int64_t mc = std::min(MC, m - ic);
    const std::int64_t strips = (mc + MR - 1) / MR;
    for (std::int64_t s = 0; s < strips; ++s) {
      const std::int64_t i0 = ic + s * MR;
      pack_a_strip(a, rs, cs, i0, std::min(MR, m - i0), k, ap + s * MR * k);
    }
    for (std::int64_t j0 = 0; j0 < n; j0 += NR) {
      const std::int64_t nr = std::min(NR, n - j0);
      const float* bpanel = bp + j0 * k;
      for (std::int64_t s = 0; s < strips; ++s) {
        const std::int64_t i0 = ic + s * MR;
        micro_kernel_f64(k, ap + s * MR * k, bpanel, c + i0 * ldc + j0, ldc,
                         std::min(MR, m - i0), nr);
      }
    }
  }
}

void gemm_f64acc_ref(Trans ta, Trans tb, std::int64_t m, std::int64_t n, std::int64_t k,
                     const float* a, std::int64_t lda, const float* b, std::int64_t ldb, float* c,
                     std::int64_t ldc) {
  const std::int64_t ars = ta == Trans::N ? lda : 1;
  const std::int64_t acs = ta == Trans::N ? 1 : lda;
  const std::int64_t brs = tb == Trans::N ? ldb : 1;
  const std::int64_t bcs = tb == Trans::N ? 1 : ldb;
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p)
        acc += a[i * ars + p * acs] * b[p * brs + j * bcs];  // float product, double fold
      c[i * ldc + j] = static_cast<float>(acc);
    }
  }
}

}  // namespace mlperf::tensor
