#include "tensor/rng.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace mlperf::tensor {

std::uint64_t Rng::next_u64() {
  state_ += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

float Rng::uniform(float lo, float hi) {
  return lo + static_cast<float>(uniform()) * (hi - lo);
}

std::uint64_t Rng::randint(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("Rng::randint: n must be > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = n * ((~0ULL) / n);
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % n;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  shuffle(p);
  return p;
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace mlperf::tensor
