#pragma once

#include <cstdint>

namespace mlperf::tensor {

/// Operand orientation for the GEMM entry points. `T` means the stored
/// matrix is consumed transposed; the pack routines absorb the transpose
/// while copying panels, so no materialized transpose is ever needed.
enum class Trans : std::uint8_t { N, T };

// Blocking parameters of the packed kernel (see EXPERIMENTS.md, "GEMM
// micro-kernel"). MR x NR is the register tile: NR = 8 matches one AVX
// vector (two SSE vectors) so the inner loop auto-vectorizes under plain
// -O2/-O3 without intrinsics. MC bounds the packed A panel so it stays
// cache-resident while a B panel streams past it. K is not blocked: each
// C element folds its k-products in one ascending pass, which is what
// makes the kernel bitwise reproducible (see gemm_accumulate_ref).
inline constexpr std::int64_t kGemmMR = 4;
inline constexpr std::int64_t kGemmNR = 8;
inline constexpr std::int64_t kGemmMC = 64;

/// Floats needed for a packed B panel of op(B) with k rows and n columns
/// (n rounded up to a multiple of kGemmNR, zero-padded).
std::int64_t gemm_packed_b_size(std::int64_t k, std::int64_t n);

/// Pack op(B) (k x n after the optional transpose) into `bp`, laid out as
/// ceil(n/NR) panels of [k][NR]. `ldb` is the leading dimension of the
/// STORED matrix: op(B)[p][j] = b[p*ldb + j] when N, b[j*ldb + p] when T.
/// A packed panel is read-only afterwards and may be shared across the
/// row-partitions of a threaded GEMM.
void gemm_pack_b(Trans tb, const float* b, std::int64_t ldb, std::int64_t k, std::int64_t n,
                 float* bp);

/// C[m,n] (row-major, leading dimension ldc) += op(A) * Bp, where Bp was
/// filled by gemm_pack_b. op(A)[i][p] = a[i*lda + p] when N, a[p*lda + i]
/// when T. A panels are packed into the calling thread's ScratchArena.
/// Deterministic: every C element accumulates C_initial + sum of its
/// k-products in ascending k order with a single float accumulator, so the
/// result is independent of tiling, threading and call-site partitioning.
void gemm_packed(Trans ta, const float* a, std::int64_t lda, const float* bp, std::int64_t m,
                 std::int64_t n, std::int64_t k, float* c, std::int64_t ldc);

/// One-call form: packs op(B) into the calling thread's scratch arena, then
/// runs gemm_packed. C[m,n] += op(A)[m,k] * op(B)[k,n].
void gemm_accumulate(Trans ta, Trans tb, std::int64_t m, std::int64_t n, std::int64_t k,
                     const float* a, std::int64_t lda, const float* b, std::int64_t ldb, float* c,
                     std::int64_t ldc);

/// Back-compat entry point: C[m,n] += A[m,k] * B[k,n], all contiguous
/// row-major. Bitwise identical to gemm_accumulate_ref (see below).
void gemm_accumulate(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
                     std::int64_t n);

/// The pre-PR2 scalar kernel, retained as the numerics reference: blocked
/// i-k-j loops, one accumulator per C element, ascending k. The packed
/// kernel keeps exactly this per-element accumulation order, so the
/// refcheck contract (tests/test_gemm.cpp) is EXACT BITWISE EQUALITY —
/// a 0-ULP tolerance. Any future kernel that reorders the summation
/// (k-splitting, multiple accumulators, FMA-only paths) must widen the
/// documented tolerance in EXPERIMENTS.md and relax the test in the same
/// change.
void gemm_accumulate_ref(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
                         std::int64_t n);

/// Packed, cache-blocked GEMM with DOUBLE accumulators — the conv2d weight
/// gradient kernel. OVERWRITE semantics:
///
///   C[i][j] = float( sum over p ascending of double( op(A)[i][p] * op(B)[p][j] ) )
///
/// Each product is computed in float (exactly as the naive dW dot-product
/// loop does: float*float rounds before widening) and folded into ONE double
/// accumulator per C element in ascending k order. MR x NR register tiling
/// with double accumulator lanes, MC blocking on the packed A panel, K
/// un-blocked — so the result is bitwise identical to gemm_f64acc_ref at any
/// tiling, threading or call-site partitioning (a 0-ULP contract, pinned in
/// tests/test_gemm.cpp). k <= 0 zeroes C (the naive loop writes float(0.0)).
/// Existing C contents are ignored — this is NOT an accumulate kernel.
void gemm_f64acc(Trans ta, Trans tb, std::int64_t m, std::int64_t n, std::int64_t k,
                 const float* a, std::int64_t lda, const float* b, std::int64_t ldb, float* c,
                 std::int64_t ldc);

/// The naive reference for gemm_f64acc: the exact double-accumulator
/// dot-product loop conv2d's dW used before the packed kernel, generalized to
/// the four Trans orientations. Retained forever as the 0-ULP refcheck
/// target; any future kernel that widens the product to double or splits the
/// k-fold must update EXPERIMENTS.md and the test tolerance in one change.
void gemm_f64acc_ref(Trans ta, Trans tb, std::int64_t m, std::int64_t n, std::int64_t k,
                     const float* a, std::int64_t lda, const float* b, std::int64_t ldb, float* c,
                     std::int64_t ldc);

}  // namespace mlperf::tensor
