#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "parallel/parallel_for.h"
#include "tensor/gemm.h"
#include "tensor/rng.h"

namespace mlperf::tensor {

using Shape = std::vector<std::int64_t>;

/// Dense, contiguous, row-major float32 tensor with value semantics.
///
/// This is the numeric substrate for the whole stack: autograd, layers and
/// models are built on it. It deliberately favours simplicity and
/// debuggability: one dtype, contiguous storage, explicit broadcast rules
/// (NumPy-style, right-aligned), no views. All shapes use signed 64-bit
/// extents; any rank mismatch or out-of-range access throws.
class Tensor {
 public:
  /// Empty scalar-less tensor (numel == 0, rank 0).
  Tensor() = default;

  /// Zero-filled tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Constant-filled tensor.
  Tensor(Shape shape, float fill);

  /// Tensor adopting the given data (size must match the shape's numel).
  Tensor(Shape shape, std::vector<float> data);

  /// Value semantics, with storage recycled through the TensorPool: the
  /// destructor parks the buffer on a free list, copies and the filling
  /// constructors draw from it. Only the storage's origin changes — fill
  /// and copy semantics (and therefore numerics) are untouched.
  ~Tensor();
  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&& other) noexcept = default;
  Tensor& operator=(Tensor&& other) noexcept;

  // ----- factories ---------------------------------------------------------
  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor ones(Shape shape) { return Tensor(std::move(shape), 1.0f); }
  static Tensor full(Shape shape, float v) { return Tensor(std::move(shape), v); }
  static Tensor scalar(float v) { return Tensor({1}, {v}); }
  /// [0, 1, ..., n-1] as a 1-D tensor.
  static Tensor arange(std::int64_t n);
  /// I.i.d. N(mean, stddev) entries.
  static Tensor randn(Shape shape, Rng& rng, float mean = 0.0f, float stddev = 1.0f);
  /// I.i.d. U[lo, hi) entries.
  static Tensor rand(Shape shape, Rng& rng, float lo = 0.0f, float hi = 1.0f);
  /// Tensor whose elements are NOT initialized (recycled buffers carry stale
  /// values). Strictly for producers that overwrite every element before the
  /// tensor escapes — never for accumulation targets (GEMM `C +=`,
  /// scatter-add gradients), which rely on the zero fill of Tensor(Shape).
  static Tensor uninitialized(Shape shape);

  // ----- structure ---------------------------------------------------------
  const Shape& shape() const { return shape_; }
  std::int64_t ndim() const { return static_cast<std::int64_t>(shape_.size()); }
  std::int64_t size(std::int64_t dim) const;
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  float& operator[](std::int64_t flat) { return data_[static_cast<std::size_t>(flat)]; }
  float operator[](std::int64_t flat) const { return data_[static_cast<std::size_t>(flat)]; }

  /// Bounds-checked multi-dimensional access.
  float& at(std::initializer_list<std::int64_t> idx);
  float at(std::initializer_list<std::int64_t> idx) const;

  /// Flat offset of a multi-dimensional index (bounds-checked).
  std::int64_t offset(std::initializer_list<std::int64_t> idx) const;

  // ----- shape manipulation (all return fresh tensors) ---------------------
  /// Same data, new shape; one extent may be -1 (inferred). Numel must match.
  Tensor reshape(Shape new_shape) const;
  /// Permute dimensions, e.g. permute({1,0}) is a 2-D transpose.
  Tensor permute(const std::vector<std::int64_t>& dims) const;
  /// 2-D transpose convenience.
  Tensor transpose2d() const;
  /// Slice along dim 0: rows [begin, end).
  Tensor slice0(std::int64_t begin, std::int64_t end) const;
  /// Concatenate along dim 0 (all other extents must match).
  static Tensor cat0(const std::vector<Tensor>& parts);

  // ----- elementwise & broadcast binary ops ---------------------------------
  Tensor add(const Tensor& o) const { return binary(o, std::plus<float>{}); }
  Tensor sub(const Tensor& o) const { return binary(o, std::minus<float>{}); }
  Tensor mul(const Tensor& o) const { return binary(o, std::multiplies<float>{}); }
  Tensor div(const Tensor& o) const { return binary(o, std::divides<float>{}); }
  Tensor add_scalar(float s) const;
  Tensor mul_scalar(float s) const;
  /// General broadcast binary op (NumPy right-aligned broadcast rules).
  Tensor binary(const Tensor& o, const std::function<float(float, float)>& f) const;
  /// Statically-typed overload: the functor inlines into the element loop
  /// instead of going through a per-element std::function dispatch. Iteration
  /// order and arithmetic are identical to the std::function overload (which
  /// now delegates here), so the bits are too — this is pure dispatch cost.
  template <typename F>
  Tensor binary(const Tensor& o, F f) const {
    if (shape_ == o.shape_) {  // same-shape fast path
      Tensor out = uninitialized(shape_);
      const float* pa = data();
      const float* pb = o.data();
      float* po = out.data();
      parallel::parallel_for(kElemGrain, numel(), [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) po[i] = f(pa[i], pb[i]);
      });
      return out;
    }
    const BroadcastPlan plan = broadcast_plan(*this, o);
    Tensor out = uninitialized(plan.shape);
    const std::size_t rank = plan.shape.size();
    const float* pa = data();
    const float* pb = o.data();
    float* po = out.data();
    parallel::parallel_for(kElemGrain, out.numel(), [&](std::int64_t begin, std::int64_t end) {
      // Odometer iteration: decompose `begin` once, then advance coordinates
      // incrementally — no per-element div/mod.
      std::vector<std::int64_t> coord(rank, 0);
      std::int64_t ia = 0, ib = 0, rem = begin;
      for (std::size_t d = 0; d < rank; ++d) {
        coord[d] = rem / plan.so[d];
        rem %= plan.so[d];
        ia += coord[d] * plan.sa[d];
        ib += coord[d] * plan.sb[d];
      }
      for (std::int64_t flat = begin; flat < end; ++flat) {
        po[flat] = f(pa[ia], pb[ib]);
        for (std::size_t d = rank; d-- > 0;) {
          ++coord[d];
          ia += plan.sa[d];
          ib += plan.sb[d];
          if (coord[d] < plan.shape[d]) break;
          ia -= coord[d] * plan.sa[d];
          ib -= coord[d] * plan.sb[d];
          coord[d] = 0;
        }
      }
    });
    return out;
  }
  /// Shape of broadcasting `a` with `b`; throws if incompatible.
  static Shape broadcast_shape(const Shape& a, const Shape& b);
  /// Sum this tensor down to `target` shape (reverse of broadcast).
  Tensor reduce_to(const Shape& target) const;

  // ----- unary maps ---------------------------------------------------------
  Tensor map(const std::function<float(float)>& f) const;
  /// Statically-typed overload of map (see the binary overload).
  template <typename F>
  Tensor map(F f) const {
    Tensor out = uninitialized(shape_);
    const float* ps = data();
    float* po = out.data();
    parallel::parallel_for(kElemGrain, numel(), [&](std::int64_t b, std::int64_t e) {
      for (std::int64_t i = b; i < e; ++i) po[i] = f(ps[i]);
    });
    return out;
  }
  Tensor neg() const;
  Tensor relu() const;
  Tensor exp() const;
  Tensor log() const;
  Tensor tanh() const;
  Tensor sigmoid() const;
  Tensor sqrt() const;
  Tensor pow(float e) const;
  Tensor clamp(float lo, float hi) const;

  // ----- reductions ---------------------------------------------------------
  float sum() const;
  float mean() const;
  float max() const;
  float min() const;
  /// Index of max element (flat).
  std::int64_t argmax() const;
  /// Sum along one axis; keepdim keeps the axis with extent 1.
  Tensor sum_axis(std::int64_t axis, bool keepdim = false) const;
  Tensor mean_axis(std::int64_t axis, bool keepdim = false) const;
  Tensor max_axis(std::int64_t axis, bool keepdim = false) const;
  /// Argmax along the last axis: shape drops the last dim.
  std::vector<std::int64_t> argmax_last() const;

  // ----- linear algebra ------------------------------------------------------
  /// 2-D matrix product: [m,k] x [k,n] -> [m,n].
  Tensor matmul(const Tensor& o) const;
  /// 2-D matrix product with either operand consumed transposed in place:
  /// op(this) x op(o). The transpose is absorbed by the GEMM pack step — no
  /// materialized transpose copy — and the result is bitwise identical to
  /// matmul() of explicitly transposed operands.
  Tensor matmul(const Tensor& o, Trans ta, Trans tb) const;
  /// Batched matmul: [b,m,k] x [b,k,n] -> [b,m,n].
  Tensor bmm(const Tensor& o) const;
  /// Batched matmul with per-batch transposed operands (see matmul overload).
  Tensor bmm(const Tensor& o, Trans ta, Trans tb) const;

  // ----- softmax family ------------------------------------------------------
  /// Numerically-stable softmax over the last axis.
  Tensor softmax_last() const;
  /// Numerically-stable log-softmax over the last axis.
  Tensor log_softmax_last() const;

  // ----- misc ----------------------------------------------------------------
  /// Squared L2 norm of all entries.
  float l2_norm_sq() const;
  /// True if all finite.
  bool all_finite() const;
  std::string to_string(std::int64_t max_elems = 32) const;

  /// Elementwise kernels split at this many elements per parallel subrange.
  /// Boundaries never affect bits for disjoint-write ops; ordered reductions
  /// use their own fixed chunking (see tensor.cpp).
  static constexpr std::int64_t kElemGrain = std::int64_t{1} << 15;

 private:
  Shape shape_;
  std::vector<float> data_;

  /// Precomputed right-aligned broadcast strides (0 on broadcast dims) for
  /// the template binary()'s odometer loop.
  struct BroadcastPlan {
    Shape shape;                      ///< broadcast output shape
    std::vector<std::int64_t> sa;     ///< strides into `a`
    std::vector<std::int64_t> sb;     ///< strides into `b`
    std::vector<std::int64_t> so;     ///< contiguous strides of `shape`
  };
  static BroadcastPlan broadcast_plan(const Tensor& a, const Tensor& b);

  static std::int64_t shape_numel(const Shape& s);
  std::vector<std::int64_t> strides() const;
};

/// Diagnostic counter: number of transpose2d() materializations performed by
/// this process so far. Tests use it to pin the transpose-free backward
/// contract (matmul/conv2d backward must not copy-transpose operands).
std::int64_t transpose2d_calls();

}  // namespace mlperf::tensor
