#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "tensor/gemm.h"
#include "tensor/rng.h"

namespace mlperf::tensor {

using Shape = std::vector<std::int64_t>;

/// Dense, contiguous, row-major float32 tensor with value semantics.
///
/// This is the numeric substrate for the whole stack: autograd, layers and
/// models are built on it. It deliberately favours simplicity and
/// debuggability: one dtype, contiguous storage, explicit broadcast rules
/// (NumPy-style, right-aligned), no views. All shapes use signed 64-bit
/// extents; any rank mismatch or out-of-range access throws.
class Tensor {
 public:
  /// Empty scalar-less tensor (numel == 0, rank 0).
  Tensor() = default;

  /// Zero-filled tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Constant-filled tensor.
  Tensor(Shape shape, float fill);

  /// Tensor adopting the given data (size must match the shape's numel).
  Tensor(Shape shape, std::vector<float> data);

  // ----- factories ---------------------------------------------------------
  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor ones(Shape shape) { return Tensor(std::move(shape), 1.0f); }
  static Tensor full(Shape shape, float v) { return Tensor(std::move(shape), v); }
  static Tensor scalar(float v) { return Tensor({1}, {v}); }
  /// [0, 1, ..., n-1] as a 1-D tensor.
  static Tensor arange(std::int64_t n);
  /// I.i.d. N(mean, stddev) entries.
  static Tensor randn(Shape shape, Rng& rng, float mean = 0.0f, float stddev = 1.0f);
  /// I.i.d. U[lo, hi) entries.
  static Tensor rand(Shape shape, Rng& rng, float lo = 0.0f, float hi = 1.0f);

  // ----- structure ---------------------------------------------------------
  const Shape& shape() const { return shape_; }
  std::int64_t ndim() const { return static_cast<std::int64_t>(shape_.size()); }
  std::int64_t size(std::int64_t dim) const;
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  float& operator[](std::int64_t flat) { return data_[static_cast<std::size_t>(flat)]; }
  float operator[](std::int64_t flat) const { return data_[static_cast<std::size_t>(flat)]; }

  /// Bounds-checked multi-dimensional access.
  float& at(std::initializer_list<std::int64_t> idx);
  float at(std::initializer_list<std::int64_t> idx) const;

  /// Flat offset of a multi-dimensional index (bounds-checked).
  std::int64_t offset(std::initializer_list<std::int64_t> idx) const;

  // ----- shape manipulation (all return fresh tensors) ---------------------
  /// Same data, new shape; one extent may be -1 (inferred). Numel must match.
  Tensor reshape(Shape new_shape) const;
  /// Permute dimensions, e.g. permute({1,0}) is a 2-D transpose.
  Tensor permute(const std::vector<std::int64_t>& dims) const;
  /// 2-D transpose convenience.
  Tensor transpose2d() const;
  /// Slice along dim 0: rows [begin, end).
  Tensor slice0(std::int64_t begin, std::int64_t end) const;
  /// Concatenate along dim 0 (all other extents must match).
  static Tensor cat0(const std::vector<Tensor>& parts);

  // ----- elementwise & broadcast binary ops ---------------------------------
  Tensor add(const Tensor& o) const { return binary(o, std::plus<float>{}); }
  Tensor sub(const Tensor& o) const { return binary(o, std::minus<float>{}); }
  Tensor mul(const Tensor& o) const { return binary(o, std::multiplies<float>{}); }
  Tensor div(const Tensor& o) const { return binary(o, std::divides<float>{}); }
  Tensor add_scalar(float s) const;
  Tensor mul_scalar(float s) const;
  /// General broadcast binary op (NumPy right-aligned broadcast rules).
  Tensor binary(const Tensor& o, const std::function<float(float, float)>& f) const;
  /// Shape of broadcasting `a` with `b`; throws if incompatible.
  static Shape broadcast_shape(const Shape& a, const Shape& b);
  /// Sum this tensor down to `target` shape (reverse of broadcast).
  Tensor reduce_to(const Shape& target) const;

  // ----- unary maps ---------------------------------------------------------
  Tensor map(const std::function<float(float)>& f) const;
  Tensor neg() const;
  Tensor relu() const;
  Tensor exp() const;
  Tensor log() const;
  Tensor tanh() const;
  Tensor sigmoid() const;
  Tensor sqrt() const;
  Tensor pow(float e) const;
  Tensor clamp(float lo, float hi) const;

  // ----- reductions ---------------------------------------------------------
  float sum() const;
  float mean() const;
  float max() const;
  float min() const;
  /// Index of max element (flat).
  std::int64_t argmax() const;
  /// Sum along one axis; keepdim keeps the axis with extent 1.
  Tensor sum_axis(std::int64_t axis, bool keepdim = false) const;
  Tensor mean_axis(std::int64_t axis, bool keepdim = false) const;
  Tensor max_axis(std::int64_t axis, bool keepdim = false) const;
  /// Argmax along the last axis: shape drops the last dim.
  std::vector<std::int64_t> argmax_last() const;

  // ----- linear algebra ------------------------------------------------------
  /// 2-D matrix product: [m,k] x [k,n] -> [m,n].
  Tensor matmul(const Tensor& o) const;
  /// 2-D matrix product with either operand consumed transposed in place:
  /// op(this) x op(o). The transpose is absorbed by the GEMM pack step — no
  /// materialized transpose copy — and the result is bitwise identical to
  /// matmul() of explicitly transposed operands.
  Tensor matmul(const Tensor& o, Trans ta, Trans tb) const;
  /// Batched matmul: [b,m,k] x [b,k,n] -> [b,m,n].
  Tensor bmm(const Tensor& o) const;
  /// Batched matmul with per-batch transposed operands (see matmul overload).
  Tensor bmm(const Tensor& o, Trans ta, Trans tb) const;

  // ----- softmax family ------------------------------------------------------
  /// Numerically-stable softmax over the last axis.
  Tensor softmax_last() const;
  /// Numerically-stable log-softmax over the last axis.
  Tensor log_softmax_last() const;

  // ----- misc ----------------------------------------------------------------
  /// Squared L2 norm of all entries.
  float l2_norm_sq() const;
  /// True if all finite.
  bool all_finite() const;
  std::string to_string(std::int64_t max_elems = 32) const;

 private:
  Shape shape_;
  std::vector<float> data_;

  static std::int64_t shape_numel(const Shape& s);
  std::vector<std::int64_t> strides() const;
};

/// Diagnostic counter: number of transpose2d() materializations performed by
/// this process so far. Tests use it to pin the transpose-free backward
/// contract (matmul/conv2d backward must not copy-transpose operands).
std::int64_t transpose2d_calls();

}  // namespace mlperf::tensor
