#include "tensor/tensor.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "parallel/parallel_for.h"
#include "tensor/pool.h"
#include "tensor/scratch.h"

namespace mlperf::tensor {

namespace {

[[noreturn]] void fail(const std::string& msg) { throw std::invalid_argument("Tensor: " + msg); }

// Ordered reductions use fixed chunks of this size (boundaries never depend
// on the thread count, so float accumulation is bitwise stable — see
// parallel_reduce). Disjoint-write elementwise kernels split at
// Tensor::kElemGrain (tensor.h).
constexpr std::int64_t kReduceGrain = std::int64_t{1} << 16;

std::string shape_str(const Shape& s) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i) os << ',';
    os << s[i];
  }
  os << ']';
  return os.str();
}

}  // namespace

std::int64_t Tensor::shape_numel(const Shape& s) {
  std::int64_t n = 1;
  for (auto d : s) {
    if (d < 0) fail("negative extent in shape " + shape_str(s));
    n *= d;
  }
  return n;
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)) {
  const std::int64_t n = shape_numel(shape_);
  data_ = TensorPool::instance().acquire(n);
  data_.assign(static_cast<std::size_t>(n), 0.0f);
}

Tensor::Tensor(Shape shape, float fill) : shape_(std::move(shape)) {
  const std::int64_t n = shape_numel(shape_);
  data_ = TensorPool::instance().acquire(n);
  data_.assign(static_cast<std::size_t>(n), fill);
}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (shape_numel(shape_) != static_cast<std::int64_t>(data_.size()))
    fail("data size " + std::to_string(data_.size()) + " does not match shape " +
         shape_str(shape_));
}

Tensor::~Tensor() { TensorPool::instance().release(std::move(data_)); }

Tensor::Tensor(const Tensor& other) : shape_(other.shape_) {
  data_ = TensorPool::instance().acquire(static_cast<std::int64_t>(other.data_.size()));
  data_.assign(other.data_.begin(), other.data_.end());
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this != &other) {
    shape_ = other.shape_;
    if (data_.capacity() < other.data_.size()) {
      TensorPool::instance().release(std::move(data_));
      data_ = TensorPool::instance().acquire(static_cast<std::int64_t>(other.data_.size()));
    }
    data_.assign(other.data_.begin(), other.data_.end());
  }
  return *this;
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this != &other) {
    TensorPool::instance().release(std::move(data_));
    shape_ = std::move(other.shape_);
    data_ = std::move(other.data_);
  }
  return *this;
}

Tensor Tensor::uninitialized(Shape shape) {
  Tensor t;
  t.shape_ = std::move(shape);
  const std::int64_t n = shape_numel(t.shape_);
  t.data_ = TensorPool::instance().acquire(n);
  // Recycled buffers keep their released size, so within a bucket this
  // resize writes nothing (shrink) or zero-fills only the gap (grow) —
  // amortized free once the pool is warm.
  t.data_.resize(static_cast<std::size_t>(n));
  return t;
}

Tensor Tensor::arange(std::int64_t n) {
  Tensor t = uninitialized({n});
  for (std::int64_t i = 0; i < n; ++i) t[i] = static_cast<float>(i);
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t = uninitialized(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.normal(mean, stddev));
  return t;
}

Tensor Tensor::rand(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t = uninitialized(std::move(shape));
  for (auto& v : t.data_) v = rng.uniform(lo, hi);
  return t;
}

std::int64_t Tensor::size(std::int64_t dim) const {
  if (dim < 0) dim += ndim();
  if (dim < 0 || dim >= ndim()) fail("size(): dim out of range");
  return shape_[static_cast<std::size_t>(dim)];
}

std::vector<std::int64_t> Tensor::strides() const {
  std::vector<std::int64_t> st(shape_.size(), 1);
  for (std::int64_t i = ndim() - 2; i >= 0; --i)
    st[static_cast<std::size_t>(i)] =
        st[static_cast<std::size_t>(i + 1)] * shape_[static_cast<std::size_t>(i + 1)];
  return st;
}

std::int64_t Tensor::offset(std::initializer_list<std::int64_t> idx) const {
  if (static_cast<std::int64_t>(idx.size()) != ndim()) fail("offset(): rank mismatch");
  const auto st = strides();
  std::int64_t off = 0;
  std::size_t d = 0;
  for (auto i : idx) {
    if (i < 0 || i >= shape_[d]) fail("offset(): index out of range");
    off += i * st[d];
    ++d;
  }
  return off;
}

float& Tensor::at(std::initializer_list<std::int64_t> idx) {
  return data_[static_cast<std::size_t>(offset(idx))];
}

float Tensor::at(std::initializer_list<std::int64_t> idx) const {
  return data_[static_cast<std::size_t>(offset(idx))];
}

Tensor Tensor::reshape(Shape new_shape) const {
  std::int64_t known = 1;
  std::int64_t infer_at = -1;
  for (std::size_t i = 0; i < new_shape.size(); ++i) {
    if (new_shape[i] == -1) {
      if (infer_at >= 0) fail("reshape(): more than one -1");
      infer_at = static_cast<std::int64_t>(i);
    } else {
      known *= new_shape[i];
    }
  }
  if (infer_at >= 0) {
    if (known == 0 || numel() % known != 0) fail("reshape(): cannot infer extent");
    new_shape[static_cast<std::size_t>(infer_at)] = numel() / known;
  }
  if (shape_numel(new_shape) != numel()) fail("reshape(): numel mismatch");
  Tensor out(*this);  // pooled copy (the old Tensor(shape, data_) bypassed the pool)
  out.shape_ = std::move(new_shape);
  return out;
}

Tensor Tensor::permute(const std::vector<std::int64_t>& dims) const {
  if (static_cast<std::int64_t>(dims.size()) != ndim()) fail("permute(): rank mismatch");
  std::vector<bool> seen(dims.size(), false);
  Shape new_shape(dims.size());
  for (std::size_t i = 0; i < dims.size(); ++i) {
    const auto d = dims[i];
    if (d < 0 || d >= ndim() || seen[static_cast<std::size_t>(d)]) fail("permute(): bad dims");
    seen[static_cast<std::size_t>(d)] = true;
    new_shape[i] = shape_[static_cast<std::size_t>(d)];
  }
  Tensor out = uninitialized(new_shape);  // every element written below
  const auto in_st = strides();
  const auto out_st = out.strides();
  const std::size_t rank = dims.size();
  // Input stride of each OUTPUT dimension.
  std::vector<std::int64_t> src_st(rank);
  for (std::size_t i = 0; i < rank; ++i)
    src_st[i] = in_st[static_cast<std::size_t>(dims[i])];
  const std::int64_t n = numel();
  const float* src_p = data();
  float* dst = out.data();
  parallel::parallel_for(kElemGrain, n, [&](std::int64_t begin, std::int64_t end) {
    // Odometer over OUTPUT coordinates: decompose `begin` once, then advance
    // with carries — no per-element div/mod. Pure data movement, so the
    // result is identical to the naive per-element decomposition.
    std::vector<std::int64_t> coord(rank, 0);
    std::int64_t si = 0, rem = begin;
    for (std::size_t d = 0; d < rank; ++d) {
      coord[d] = rem / out_st[d];
      rem %= out_st[d];
      si += coord[d] * src_st[d];
    }
    for (std::int64_t flat = begin; flat < end; ++flat) {
      dst[flat] = src_p[si];
      for (std::size_t d = rank; d-- > 0;) {
        ++coord[d];
        si += src_st[d];
        if (coord[d] < new_shape[d]) break;
        si -= coord[d] * src_st[d];
        coord[d] = 0;
      }
    }
  });
  return out;
}

namespace {
std::atomic<std::int64_t> g_transpose2d_calls{0};
}  // namespace

std::int64_t transpose2d_calls() { return g_transpose2d_calls.load(std::memory_order_relaxed); }

Tensor Tensor::transpose2d() const {
  if (ndim() != 2) fail("transpose2d(): expects rank 2");
  g_transpose2d_calls.fetch_add(1, std::memory_order_relaxed);
  return permute({1, 0});
}

Tensor Tensor::slice0(std::int64_t begin, std::int64_t end) const {
  if (ndim() < 1) fail("slice0(): rank 0");
  if (begin < 0 || end > shape_[0] || begin > end) fail("slice0(): bad range");
  Shape out_shape = shape_;
  out_shape[0] = end - begin;
  const std::int64_t row = numel() / std::max<std::int64_t>(shape_[0], 1);
  Tensor out = uninitialized(std::move(out_shape));  // fully covered by the copy
  std::copy(data_.begin() + static_cast<std::ptrdiff_t>(begin * row),
            data_.begin() + static_cast<std::ptrdiff_t>(end * row), out.data_.begin());
  return out;
}

Tensor Tensor::cat0(const std::vector<Tensor>& parts) {
  if (parts.empty()) fail("cat0(): empty");
  Shape out_shape = parts[0].shape_;
  std::int64_t total0 = 0;
  for (const auto& p : parts) {
    if (p.ndim() != static_cast<std::int64_t>(out_shape.size())) fail("cat0(): rank mismatch");
    for (std::size_t d = 1; d < out_shape.size(); ++d)
      if (p.shape_[d] != out_shape[d]) fail("cat0(): trailing extent mismatch");
    total0 += p.shape_[0];
  }
  out_shape[0] = total0;
  Tensor out = uninitialized(out_shape);  // the part copies cover every element
  std::size_t pos = 0;
  for (const auto& p : parts) {
    std::copy(p.data_.begin(), p.data_.end(), out.data_.begin() + static_cast<std::ptrdiff_t>(pos));
    pos += p.data_.size();
  }
  return out;
}

Shape Tensor::broadcast_shape(const Shape& a, const Shape& b) {
  const std::size_t rank = std::max(a.size(), b.size());
  Shape out(rank);
  for (std::size_t i = 0; i < rank; ++i) {
    const std::int64_t da = i < rank - a.size() ? 1 : a[i - (rank - a.size())];
    const std::int64_t db = i < rank - b.size() ? 1 : b[i - (rank - b.size())];
    if (da != db && da != 1 && db != 1)
      fail("broadcast: incompatible shapes " + shape_str(a) + " vs " + shape_str(b));
    out[i] = std::max(da, db);
  }
  return out;
}

Tensor::BroadcastPlan Tensor::broadcast_plan(const Tensor& a, const Tensor& b) {
  BroadcastPlan plan;
  plan.shape = broadcast_shape(a.shape_, b.shape_);
  const std::size_t rank = plan.shape.size();
  // Right-aligned strides with 0 for broadcast dims.
  auto bc_strides = [&](const Tensor& t) {
    std::vector<std::int64_t> st(rank, 0);
    std::int64_t run = 1;
    const std::size_t tr = t.shape_.size();
    for (std::size_t i = 0; i < tr; ++i) {
      const std::size_t d = tr - 1 - i;             // dim in t
      const std::size_t od = rank - 1 - i;          // dim in out
      st[od] = (t.shape_[d] == 1 && plan.shape[od] != 1) ? 0 : run;
      run *= t.shape_[d];
    }
    return st;
  };
  plan.sa = bc_strides(a);
  plan.sb = bc_strides(b);
  plan.so.assign(rank, 1);
  for (std::size_t i = rank; i-- > 1;) plan.so[i - 1] = plan.so[i] * plan.shape[i];
  return plan;
}

Tensor Tensor::binary(const Tensor& o, const std::function<float(float, float)>& f) const {
  // Delegate to the template overload: same iteration order, same arithmetic,
  // only the per-element dispatch differs — bitwise identical results.
  return binary(o, [&f](float a, float b) { return f(a, b); });
}

Tensor Tensor::reduce_to(const Shape& target) const {
  if (shape_ == target) return *this;
  // Verify target broadcasts to our shape, then sum the broadcast dims.
  if (broadcast_shape(shape_, target) != shape_)
    fail("reduce_to(): target " + shape_str(target) + " does not broadcast to " +
         shape_str(shape_));
  Tensor out(target);
  const std::int64_t n = numel();
  const std::int64_t tn = out.numel();
  const float* src = data();
  float* dst = out.data();
  // All paths accumulate in ascending flat order of the source — output slots
  // overlap, and per-slot accumulation order is part of the bitwise contract.
  if (tn == 1) {
    // Everything folds into one slot; a register accumulator performs the
    // exact same chain of float adds as the generic path.
    float acc = dst[0];
    for (std::int64_t flat = 0; flat < n; ++flat) acc += src[flat];
    dst[0] = acc;
    return out;
  }
  // Fast path: target matches a trailing run of our dims exactly (the classic
  // bias-gradient shape, e.g. [N,F] -> [F] or [B,T,D] -> [D]). Ascending flat
  // order visits each output slot with ascending leading index — precisely
  // the generic path's per-slot accumulation order.
  {
    bool trailing = tn > 0 && target.size() <= shape_.size();
    for (std::size_t i = 0; trailing && i < target.size(); ++i)
      trailing = target[target.size() - 1 - i] == shape_[shape_.size() - 1 - i];
    if (trailing) {
      const std::int64_t rows = n / tn;
      for (std::int64_t r = 0; r < rows; ++r) {
        const float* row = src + r * tn;
        for (std::int64_t c = 0; c < tn; ++c) dst[c] += row[c];
      }
      return out;
    }
  }
  const std::size_t rank = shape_.size();
  std::vector<std::int64_t> tstrides(rank, 0);
  {
    std::int64_t run = 1;
    const std::size_t tr = target.size();
    for (std::size_t i = 0; i < tr; ++i) {
      const std::size_t d = tr - 1 - i;
      const std::size_t od = rank - 1 - i;
      tstrides[od] = (target[d] == 1 && shape_[od] != 1) ? 0 : run;
      run *= target[d];
    }
  }
  // Odometer over source coordinates: same visit order as the old per-element
  // div/mod decomposition, without the div/mod.
  std::vector<std::int64_t> coord(rank, 0);
  std::int64_t ti = 0;
  for (std::int64_t flat = 0; flat < n; ++flat) {
    dst[ti] += src[flat];
    for (std::size_t d = rank; d-- > 0;) {
      ++coord[d];
      ti += tstrides[d];
      if (coord[d] < shape_[d]) break;
      ti -= coord[d] * tstrides[d];
      coord[d] = 0;
    }
  }
  return out;
}

Tensor Tensor::add_scalar(float s) const {
  return map([s](float x) { return x + s; });
}
Tensor Tensor::mul_scalar(float s) const {
  return map([s](float x) { return x * s; });
}

Tensor Tensor::map(const std::function<float(float)>& f) const {
  // Delegate to the template overload (see binary above).
  return map([&f](float x) { return f(x); });
}

Tensor Tensor::neg() const {
  return map([](float x) { return -x; });
}
Tensor Tensor::relu() const {
  return map([](float x) { return x > 0.0f ? x : 0.0f; });
}
Tensor Tensor::exp() const {
  return map([](float x) { return std::exp(x); });
}
Tensor Tensor::log() const {
  return map([](float x) { return std::log(x); });
}
Tensor Tensor::tanh() const {
  return map([](float x) { return std::tanh(x); });
}
Tensor Tensor::sigmoid() const {
  return map([](float x) { return 1.0f / (1.0f + std::exp(-x)); });
}
Tensor Tensor::sqrt() const {
  return map([](float x) { return std::sqrt(x); });
}
Tensor Tensor::pow(float e) const {
  return map([e](float x) { return std::pow(x, e); });
}
Tensor Tensor::clamp(float lo, float hi) const {
  return map([lo, hi](float x) { return std::min(std::max(x, lo), hi); });
}

float Tensor::sum() const {
  const double s = parallel::parallel_reduce(
      kReduceGrain, numel(), 0.0,
      [&](std::int64_t begin, std::int64_t end) {
        double a = 0.0;
        for (std::int64_t i = begin; i < end; ++i) a += data_[static_cast<std::size_t>(i)];
        return a;
      },
      [](double a, double b) { return a + b; });
  return static_cast<float>(s);
}

float Tensor::mean() const {
  if (data_.empty()) fail("mean(): empty tensor");
  return sum() / static_cast<float>(data_.size());
}

float Tensor::max() const {
  if (data_.empty()) fail("max(): empty tensor");
  // min/max combines are exactly associative, so any chunking is bit-stable.
  return parallel::parallel_reduce(
      kReduceGrain, numel(), -std::numeric_limits<float>::infinity(),
      [&](std::int64_t begin, std::int64_t end) {
        return *std::max_element(data_.begin() + begin, data_.begin() + end);
      },
      [](float a, float b) { return std::max(a, b); });
}

float Tensor::min() const {
  if (data_.empty()) fail("min(): empty tensor");
  return parallel::parallel_reduce(
      kReduceGrain, numel(), std::numeric_limits<float>::infinity(),
      [&](std::int64_t begin, std::int64_t end) {
        return *std::min_element(data_.begin() + begin, data_.begin() + end);
      },
      [](float a, float b) { return std::min(a, b); });
}

std::int64_t Tensor::argmax() const {
  if (data_.empty()) fail("argmax(): empty tensor");
  return static_cast<std::int64_t>(
      std::max_element(data_.begin(), data_.end()) - data_.begin());
}

namespace {
// Shared axis-reduction driver: out[pre, post] = reduce over axis.
template <typename Init, typename Step, typename Fin>
Tensor reduce_axis(const Tensor& t, std::int64_t axis, bool keepdim, Init init, Step step,
                   Fin fin) {
  auto nd = t.ndim();
  if (axis < 0) axis += nd;
  if (axis < 0 || axis >= nd) fail("axis reduction: axis out of range");
  const auto& sh = t.shape();
  std::int64_t pre = 1, post = 1;
  for (std::int64_t i = 0; i < axis; ++i) pre *= sh[static_cast<std::size_t>(i)];
  for (std::int64_t i = axis + 1; i < nd; ++i) post *= sh[static_cast<std::size_t>(i)];
  const std::int64_t ax = sh[static_cast<std::size_t>(axis)];
  Shape out_shape;
  for (std::int64_t i = 0; i < nd; ++i) {
    if (i == axis) {
      if (keepdim) out_shape.push_back(1);
    } else {
      out_shape.push_back(sh[static_cast<std::size_t>(i)]);
    }
  }
  if (out_shape.empty()) out_shape.push_back(1);
  Tensor out = Tensor::uninitialized(out_shape);  // every dst[r] written below
  const float* src = t.data();
  float* dst = out.data();
  // Each output element folds its axis in the original order, so splitting
  // over output elements is bitwise identical at any thread count.
  parallel::parallel_for(
      parallel::grain_for(ax), pre * post, [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t r = begin; r < end; ++r) {
          const std::int64_t p = r / post, q = r % post;
          auto acc = init();
          for (std::int64_t a = 0; a < ax; ++a)
            acc = step(acc, src[(p * ax + a) * post + q]);
          dst[r] = fin(acc, ax);
        }
      });
  return out;
}
}  // namespace

Tensor Tensor::sum_axis(std::int64_t axis, bool keepdim) const {
  return reduce_axis(
      *this, axis, keepdim, [] { return 0.0; },
      [](double acc, float v) { return acc + v; },
      [](double acc, std::int64_t) { return static_cast<float>(acc); });
}

Tensor Tensor::mean_axis(std::int64_t axis, bool keepdim) const {
  return reduce_axis(
      *this, axis, keepdim, [] { return 0.0; },
      [](double acc, float v) { return acc + v; },
      [](double acc, std::int64_t n) { return static_cast<float>(acc / static_cast<double>(n)); });
}

Tensor Tensor::max_axis(std::int64_t axis, bool keepdim) const {
  return reduce_axis(
      *this, axis, keepdim, [] { return -std::numeric_limits<float>::infinity(); },
      [](float acc, float v) { return std::max(acc, v); },
      [](float acc, std::int64_t) { return acc; });
}

std::vector<std::int64_t> Tensor::argmax_last() const {
  if (ndim() < 1) fail("argmax_last(): rank 0");
  const std::int64_t last = shape_.back();
  if (last == 0) fail("argmax_last(): empty last axis");
  const std::int64_t rows = numel() / last;
  std::vector<std::int64_t> out(static_cast<std::size_t>(rows));
  parallel::parallel_for(
      parallel::grain_for(last), rows, [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t r = begin; r < end; ++r) {
          const float* row = data() + r * last;
          out[static_cast<std::size_t>(r)] =
              static_cast<std::int64_t>(std::max_element(row, row + last) - row);
        }
      });
  return out;
}

Tensor Tensor::matmul(const Tensor& o) const { return matmul(o, Trans::N, Trans::N); }

Tensor Tensor::matmul(const Tensor& o, Trans ta, Trans tb) const {
  if (ndim() != 2 || o.ndim() != 2) fail("matmul(): expects rank-2 operands");
  const std::int64_t m = ta == Trans::N ? shape_[0] : shape_[1];
  const std::int64_t ka = ta == Trans::N ? shape_[1] : shape_[0];
  const std::int64_t kb = tb == Trans::N ? o.shape_[0] : o.shape_[1];
  const std::int64_t n = tb == Trans::N ? o.shape_[1] : o.shape_[0];
  if (ka != kb)
    fail("matmul(): inner extent mismatch " + shape_str(shape_) + " x " + shape_str(o.shape_));
  const std::int64_t lda = shape_[1], ldb = o.shape_[1];
  Tensor out({m, n});
  // Pack op(B) once on the calling thread; the packed panels are shared
  // read-only across the row-partitions below. Each row of C accumulates its
  // k-products in ascending order with a single accumulator, so any row
  // partition is bitwise identical to the single-threaded result.
  ScratchArena::Frame frame(ScratchArena::tls());
  float* bp = frame.alloc(gemm_packed_b_size(ka, n));
  gemm_pack_b(tb, o.data(), ldb, ka, n, bp);
  const std::int64_t a_row_stride = ta == Trans::N ? lda : 1;
  parallel::parallel_for(
      parallel::grain_for(ka * n), m, [&](std::int64_t begin, std::int64_t end) {
        gemm_packed(ta, data() + begin * a_row_stride, lda, bp, end - begin, n, ka,
                    out.data() + begin * n, n);
      });
  return out;
}

Tensor Tensor::bmm(const Tensor& o) const { return bmm(o, Trans::N, Trans::N); }

Tensor Tensor::bmm(const Tensor& o, Trans ta, Trans tb) const {
  if (ndim() != 3 || o.ndim() != 3) fail("bmm(): expects rank-3 operands");
  const std::int64_t b = shape_[0];
  const std::int64_t m = ta == Trans::N ? shape_[1] : shape_[2];
  const std::int64_t ka = ta == Trans::N ? shape_[2] : shape_[1];
  const std::int64_t kb = tb == Trans::N ? o.shape_[1] : o.shape_[2];
  const std::int64_t n = tb == Trans::N ? o.shape_[2] : o.shape_[1];
  if (o.shape_[0] != b || ka != kb)
    fail("bmm(): shape mismatch " + shape_str(shape_) + " x " + shape_str(o.shape_));
  const std::int64_t lda = shape_[2], ldb = o.shape_[2];
  const std::int64_t a_batch = shape_[1] * shape_[2], b_batch = o.shape_[1] * o.shape_[2];
  Tensor out({b, m, n});
  parallel::parallel_for(
      parallel::grain_for(m * ka * n), b, [&](std::int64_t begin, std::int64_t end) {
        ScratchArena::Frame frame(ScratchArena::tls());
        float* bp = frame.alloc(gemm_packed_b_size(ka, n));
        for (std::int64_t i = begin; i < end; ++i) {
          gemm_pack_b(tb, o.data() + i * b_batch, ldb, ka, n, bp);
          gemm_packed(ta, data() + i * a_batch, lda, bp, m, n, ka, out.data() + i * m * n, n);
        }
      });
  return out;
}

Tensor Tensor::softmax_last() const {
  if (ndim() < 1) fail("softmax_last(): rank 0");
  const std::int64_t last = shape_.back();
  const std::int64_t rows = numel() / std::max<std::int64_t>(last, 1);
  Tensor out = uninitialized(shape_);  // every row fully written below
  parallel::parallel_for(
      parallel::grain_for(4 * last), rows, [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t r = begin; r < end; ++r) {
          const float* src = data() + r * last;
          float* dst = out.data() + r * last;
          const float mx = *std::max_element(src, src + last);
          double denom = 0.0;
          for (std::int64_t j = 0; j < last; ++j) {
            dst[j] = std::exp(src[j] - mx);
            denom += dst[j];
          }
          const float inv = static_cast<float>(1.0 / denom);
          for (std::int64_t j = 0; j < last; ++j) dst[j] *= inv;
        }
      });
  return out;
}

Tensor Tensor::log_softmax_last() const {
  if (ndim() < 1) fail("log_softmax_last(): rank 0");
  const std::int64_t last = shape_.back();
  const std::int64_t rows = numel() / std::max<std::int64_t>(last, 1);
  Tensor out = uninitialized(shape_);  // every row fully written below
  parallel::parallel_for(
      parallel::grain_for(4 * last), rows, [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t r = begin; r < end; ++r) {
          const float* src = data() + r * last;
          float* dst = out.data() + r * last;
          const float mx = *std::max_element(src, src + last);
          double denom = 0.0;
          for (std::int64_t j = 0; j < last; ++j) denom += std::exp(src[j] - mx);
          const float lse = mx + static_cast<float>(std::log(denom));
          for (std::int64_t j = 0; j < last; ++j) dst[j] = src[j] - lse;
        }
      });
  return out;
}

float Tensor::l2_norm_sq() const {
  const double s = parallel::parallel_reduce(
      kReduceGrain, numel(), 0.0,
      [&](std::int64_t begin, std::int64_t end) {
        double a = 0.0;
        for (std::int64_t i = begin; i < end; ++i) {
          const double v = data_[static_cast<std::size_t>(i)];
          a += v * v;
        }
        return a;
      },
      [](double a, double b) { return a + b; });
  return static_cast<float>(s);
}

bool Tensor::all_finite() const {
  return std::all_of(data_.begin(), data_.end(), [](float v) { return std::isfinite(v); });
}

std::string Tensor::to_string(std::int64_t max_elems) const {
  std::ostringstream os;
  os << "Tensor" << shape_str(shape_) << " {";
  const std::int64_t n = std::min<std::int64_t>(numel(), max_elems);
  for (std::int64_t i = 0; i < n; ++i) {
    if (i) os << ", ";
    os << data_[static_cast<std::size_t>(i)];
  }
  if (numel() > n) os << ", ...";
  os << '}';
  return os.str();
}

}  // namespace mlperf::tensor
