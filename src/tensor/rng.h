#pragma once

#include <cstdint>
#include <vector>

namespace mlperf::tensor {

/// Deterministic, seedable pseudo-random generator (SplitMix64 core).
///
/// Every stochastic component in the stack (weight init, shuffling,
/// augmentation, dropout, negative sampling, MCTS) draws from an explicit
/// `Rng`, so run-to-run variance studies (paper Fig. 2/3) are reproducible:
/// the same seed always yields the same training trajectory.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t randint(std::uint64_t n);

  /// Standard normal via Box-Muller (cached second value).
  double normal();

  /// Normal with given mean / stddev.
  double normal(double mean, double stddev);

  /// Fisher-Yates shuffle of an index permutation [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(randint(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child stream (for per-worker determinism).
  Rng split();

  /// Complete generator state, for checkpointing. Restoring a saved state
  /// resumes the draw sequence exactly where it left off, including the
  /// Box-Muller cached second normal — bitwise-identical continuation is the
  /// contract the checkpoint subsystem's resume tests pin down.
  struct State {
    std::uint64_t state = 0;
    bool has_cached_normal = false;
    double cached_normal = 0.0;
  };
  State save_state() const { return {state_, has_cached_normal_, cached_normal_}; }
  void restore_state(const State& s) {
    state_ = s.state;
    has_cached_normal_ = s.has_cached_normal;
    cached_normal_ = s.cached_normal;
  }

 private:
  std::uint64_t state_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace mlperf::tensor
