#include "tensor/pool.h"

#include <array>
#include <mutex>
#include <utility>

namespace mlperf::tensor {

namespace {

/// Trivially-destructible tombstone for the per-thread cache. Thread-local
/// destruction order is unspecified relative to other thread-locals and
/// statics, so Tensors destroyed late in thread teardown may call into the
/// pool after the cache is gone; a plain bool stays readable forever, and
/// thread_cache() returns nullptr once it is set (those releases take the
/// shared-list path instead).
thread_local bool g_tls_dead = false;

constexpr std::int64_t kBytesPerFloat =
    static_cast<std::int64_t>(sizeof(float));

/// Bucket index for a capacity of exactly `bucket` floats (a power of two
/// >= kMinBucketFloats).
int index_of_bucket(std::int64_t bucket) {
  int idx = 0;
  while ((TensorPool::kMinBucketFloats << idx) < bucket) ++idx;
  return idx;
}

}  // namespace

struct TensorPool::SharedLists {
  std::mutex mu;
  std::array<std::vector<std::vector<float>>, TensorPool::kNumBuckets> lists;
};

struct TensorPool::ThreadCache {
  explicit ThreadCache(TensorPool& owner) : pool(&owner) {}
  ~ThreadCache() {
    g_tls_dead = true;
    pool->spill(*this);
  }
  TensorPool* pool;
  std::uint64_t generation = 0;
  std::array<std::vector<std::vector<float>>, TensorPool::kNumBuckets> lists;
};

TensorPool::TensorPool() : shared_(new SharedLists) {}

TensorPool& TensorPool::instance() {
  static TensorPool* pool = new TensorPool();  // leaked, see header
  return *pool;
}

std::int64_t TensorPool::bucket_for(std::int64_t n) {
  if (n <= 0) return 0;
  std::int64_t b = kMinBucketFloats;
  while (b < n) b <<= 1;
  return b;
}

TensorPool::ThreadCache* TensorPool::thread_cache() {
  if (g_tls_dead) return nullptr;
  thread_local ThreadCache cache(instance());
  return &cache;
}

void TensorPool::refresh(ThreadCache& tc) {
  const std::uint64_t g = generation_.load(std::memory_order_relaxed);
  if (tc.generation == g) return;
  std::int64_t dropped = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    dropped += static_cast<std::int64_t>(tc.lists[i].size()) *
               (kMinBucketFloats << i) * kBytesPerFloat;
    tc.lists[i].clear();
  }
  bytes_cached_.fetch_sub(dropped, std::memory_order_relaxed);
  tc.generation = g;
}

void TensorPool::spill(ThreadCache& tc) noexcept {
  std::lock_guard<std::mutex> lock(shared_->mu);
  for (int i = 0; i < kNumBuckets; ++i) {
    for (auto& buf : tc.lists[i]) shared_->lists[i].push_back(std::move(buf));
    tc.lists[i].clear();
  }
}

std::vector<float> TensorPool::acquire(std::int64_t n) {
  if (n <= 0 || !enabled_.load(std::memory_order_relaxed)) return {};
  const std::int64_t bucket = bucket_for(n);
  const int idx = index_of_bucket(bucket);
  if (idx >= kNumBuckets) return {};
  std::vector<float> buf;
  bool hit = false;
  if (bucket < kSharedBucketFloats) {
    if (ThreadCache* tc = thread_cache()) {
      refresh(*tc);
      if (!tc->lists[idx].empty()) {
        buf = std::move(tc->lists[idx].back());
        tc->lists[idx].pop_back();
        hit = true;
      }
    }
  }
  if (!hit) {
    std::lock_guard<std::mutex> lock(shared_->mu);
    if (!shared_->lists[idx].empty()) {
      buf = std::move(shared_->lists[idx].back());
      shared_->lists[idx].pop_back();
      hit = true;
    }
  }
  const std::int64_t bytes = bucket * kBytesPerFloat;
  if (hit) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    bytes_cached_.fetch_sub(bytes, std::memory_order_relaxed);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    buf.reserve(static_cast<std::size_t>(bucket));
  }
  bytes_acquired_.fetch_add(bytes, std::memory_order_relaxed);
  return buf;
}

void TensorPool::release(std::vector<float>&& buf) noexcept {
  const std::int64_t cap = static_cast<std::int64_t>(buf.capacity());
  if (cap < kMinBucketFloats || !enabled_.load(std::memory_order_relaxed))
    return;  // freed by the caller's vector destructor
  // Park under the largest bucket the capacity covers, so every buffer in
  // bucket i has capacity >= kMinBucketFloats << i. Donated buffers (adopted
  // vectors that never came from acquire) round down and recycle too.
  int idx = 0;
  while (idx + 1 < kNumBuckets && (kMinBucketFloats << (idx + 1)) <= cap) ++idx;
  const std::int64_t bucket = kMinBucketFloats << idx;
  const std::int64_t bytes = bucket * kBytesPerFloat;
  releases_.fetch_add(1, std::memory_order_relaxed);
  bytes_released_.fetch_add(bytes, std::memory_order_relaxed);
  bytes_cached_.fetch_add(bytes, std::memory_order_relaxed);
  if (bucket < kSharedBucketFloats) {
    if (ThreadCache* tc = thread_cache()) {
      refresh(*tc);
      if (tc->lists[idx].size() < kTlsMaxPerBucket) {
        tc->lists[idx].push_back(std::move(buf));
        return;
      }
    }
  }
  std::lock_guard<std::mutex> lock(shared_->mu);
  shared_->lists[idx].push_back(std::move(buf));
}

TensorPool::Stats TensorPool::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.releases = releases_.load(std::memory_order_relaxed);
  const std::int64_t acquired = bytes_acquired_.load(std::memory_order_relaxed);
  const std::int64_t released = bytes_released_.load(std::memory_order_relaxed);
  s.bytes_outstanding = acquired > released ? acquired - released : 0;
  s.bytes_cached = bytes_cached_.load(std::memory_order_relaxed);
  return s;
}

void TensorPool::trim() {
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    std::int64_t dropped = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
      dropped += static_cast<std::int64_t>(shared_->lists[i].size()) *
                 (kMinBucketFloats << i) * kBytesPerFloat;
      shared_->lists[i].clear();
    }
    bytes_cached_.fetch_sub(dropped, std::memory_order_relaxed);
  }
  generation_.fetch_add(1, std::memory_order_relaxed);
  if (ThreadCache* tc = thread_cache()) refresh(*tc);  // this thread: eager
}

}  // namespace mlperf::tensor
