#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace mlperf::tensor {

/// Per-thread bump allocator for kernel scratch: GEMM pack panels, im2col
/// column buffers, per-sample gradient partials. Chunks are 64-byte aligned
/// and retained across frames, so a steady-state training step performs zero
/// heap allocations for scratch — the arena only grows until the largest
/// working set has been seen once.
///
/// Usage: open a Frame, alloc() from it, let the Frame restore the watermark
/// on scope exit. Frames nest (a GEMM called inside a conv reuses the same
/// arena above the conv's own buffers). Pointers stay valid for the lifetime
/// of the frame that allocated them, including across mid-frame growth: a
/// full chunk is never reallocated, a new chunk is appended instead.
///
/// Not thread-safe; each thread uses its own instance via tls(). Scratch
/// written by the calling thread before a parallel_for (e.g. a shared packed
/// B panel) may be read by pool workers: task dispatch/join provides the
/// happens-before edges.
class ScratchArena {
 public:
  class Frame {
   public:
    explicit Frame(ScratchArena& arena)
        : arena_(arena), saved_chunk_(arena.cur_chunk_), saved_used_(arena.cur_used_) {}
    ~Frame() {
      arena_.cur_chunk_ = saved_chunk_;
      arena_.cur_used_ = saved_used_;
    }
    Frame(const Frame&) = delete;
    Frame& operator=(const Frame&) = delete;

    /// Uninitialized, 64-byte-aligned storage for n floats (n >= 0).
    float* alloc(std::int64_t n) { return arena_.alloc(n); }

   private:
    ScratchArena& arena_;
    std::size_t saved_chunk_;
    std::int64_t saved_used_;
  };

  ScratchArena() = default;
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// The calling thread's arena. Pool workers each get their own.
  static ScratchArena& tls();

  /// Cumulative number of chunk (heap) allocations this arena has made.
  /// Flat across steps == the steady state allocates nothing.
  std::int64_t chunk_allocations() const { return chunk_allocations_; }

  /// Total floats of capacity currently retained.
  std::int64_t capacity() const;

  /// Drop all retained chunks (only valid with no open frames).
  void release();

 private:
  struct AlignedDelete {
    void operator()(float* p) const;
  };
  struct Chunk {
    std::unique_ptr<float[], AlignedDelete> data;
    std::int64_t size = 0;
  };

  float* alloc(std::int64_t n);

  std::vector<Chunk> chunks_;
  std::size_t cur_chunk_ = 0;   // chunk the bump pointer is in
  std::int64_t cur_used_ = 0;   // floats used in chunks_[cur_chunk_]
  std::int64_t chunk_allocations_ = 0;
};

}  // namespace mlperf::tensor
