#include "tensor/scratch.h"

#include <algorithm>
#include <new>

namespace mlperf::tensor {

namespace {
constexpr std::size_t kAlign = 64;
// Smallest chunk worth carving up; below this the bookkeeping dominates.
constexpr std::int64_t kMinChunkFloats = std::int64_t{1} << 16;  // 256 KiB

// Keep every allocation a multiple of the alignment so successive alloc()
// results within a chunk stay 64-byte aligned.
std::int64_t round_up(std::int64_t n) {
  const std::int64_t unit = static_cast<std::int64_t>(kAlign / sizeof(float));
  return (n + unit - 1) / unit * unit;
}
}  // namespace

void ScratchArena::AlignedDelete::operator()(float* p) const {
  ::operator delete[](p, std::align_val_t{kAlign});
}

ScratchArena& ScratchArena::tls() {
  static thread_local ScratchArena arena;
  return arena;
}

std::int64_t ScratchArena::capacity() const {
  std::int64_t total = 0;
  for (const auto& c : chunks_) total += c.size;
  return total;
}

void ScratchArena::release() {
  chunks_.clear();
  cur_chunk_ = 0;
  cur_used_ = 0;
}

float* ScratchArena::alloc(std::int64_t n) {
  if (n < 0) n = 0;
  const std::int64_t need = round_up(std::max<std::int64_t>(n, 1));
  // Advance through retained chunks looking for room; a full chunk is left
  // untouched so earlier pointers in this frame stay valid.
  while (cur_chunk_ < chunks_.size() &&
         chunks_[cur_chunk_].size - cur_used_ < need) {
    ++cur_chunk_;
    cur_used_ = 0;
  }
  if (cur_chunk_ == chunks_.size()) {
    const std::int64_t prev = chunks_.empty() ? 0 : chunks_.back().size;
    const std::int64_t size = std::max({need, 2 * prev, kMinChunkFloats});
    Chunk c;
    c.data.reset(static_cast<float*>(
        ::operator new[](static_cast<std::size_t>(size) * sizeof(float), std::align_val_t{kAlign})));
    c.size = size;
    chunks_.push_back(std::move(c));
    ++chunk_allocations_;
    cur_used_ = 0;
  }
  float* p = chunks_[cur_chunk_].data.get() + cur_used_;
  cur_used_ += need;
  return p;
}

}  // namespace mlperf::tensor
