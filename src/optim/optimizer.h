#pragma once

#include <memory>
#include <vector>

#include "autograd/variable.h"

namespace mlperf::optim {

/// Learning-rate schedule: maps a global step index to a learning rate.
/// Schedules are first-class because the paper's §2.2.4 point — the two SGD
/// momentum semantics only diverge when the LR *changes* during training —
/// and the §3.4 hyperparameter rules (linear-scaling + warmup for large
/// minibatches, per Goyal et al. 2017) both hinge on them.
class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  virtual float lr(std::int64_t step) const = 0;
};

class ConstantLr final : public LrSchedule {
 public:
  explicit ConstantLr(float lr) : lr_(lr) {}
  float lr(std::int64_t) const override { return lr_; }

 private:
  float lr_;
};

/// lr = base * gamma^(step / step_size) — classic staircase decay.
class StepDecayLr final : public LrSchedule {
 public:
  StepDecayLr(float base, float gamma, std::int64_t step_size);
  float lr(std::int64_t step) const override;

 private:
  float base_;
  float gamma_;
  std::int64_t step_size_;
};

/// Goyal-style large-batch schedule: linear warmup from ~0 to
/// base * (batch / base_batch) over `warmup_steps`, then staircase decay.
class LinearScalingWarmupLr final : public LrSchedule {
 public:
  LinearScalingWarmupLr(float base_lr, std::int64_t batch, std::int64_t base_batch,
                        std::int64_t warmup_steps, float gamma, std::int64_t decay_step_size);
  float lr(std::int64_t step) const override;
  float peak_lr() const { return peak_; }

 private:
  float peak_;
  std::int64_t warmup_steps_;
  float gamma_;
  std::int64_t decay_step_size_;
};

/// Half-cosine from base to ~0 over `total_steps`.
class CosineLr final : public LrSchedule {
 public:
  CosineLr(float base, std::int64_t total_steps);
  float lr(std::int64_t step) const override;

 private:
  float base_;
  std::int64_t total_steps_;
};

/// A named, ordered view of an optimizer's mutable state: the slot buffers
/// (velocity / moment tensors, one per parameter, in parameter order) plus
/// any integer scalars (e.g. Adam's bias-correction step count). The view
/// aliases the optimizer's own storage, so it serves both introspection and
/// in-place checkpoint restore. Names are stable ("velocity.3", "m.0",
/// "step") and pinned by unit tests, so a checkpoint fails loudly — by name
/// or shape mismatch — when the architecture or optimizer choice drifts.
struct OptimizerStateDict {
  std::string kind;  ///< "sgd_momentum", "adam", "lars"
  std::vector<std::pair<std::string, tensor::Tensor*>> tensors;
  std::vector<std::pair<std::string, std::int64_t*>> scalars;
};

/// Optimizer over a fixed parameter list. step(lr) consumes the gradients
/// currently stored on the parameters; callers zero_grad() between batches.
class Optimizer {
 public:
  explicit Optimizer(std::vector<autograd::Variable> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  virtual void step(float lr) = 0;

  /// Full mutable training state beyond the parameters themselves. Every
  /// optimizer must expose it — resumable training (checkpoint subsystem)
  /// depends on slot buffers surviving a restart bit-for-bit.
  virtual OptimizerStateDict state_dict() = 0;

  void zero_grad() {
    for (auto& p : params_) p.zero_grad();
  }

  const std::vector<autograd::Variable>& params() const { return params_; }

 protected:
  std::vector<autograd::Variable> params_;
};

/// The two SGD+momentum semantics the paper contrasts (§2.2.4):
///   Eq. 1 (Caffe):      m = a*m + lr*g;  w -= m
///   Eq. 2 (PyTorch/TF): m = a*m + g;     w -= lr*m
/// Identical under constant LR; they diverge when the LR decays mid-training,
/// which bench/ablation_momentum demonstrates.
enum class MomentumSemantics { kLrInsideMomentum /*Eq.1*/, kLrOutsideMomentum /*Eq.2*/ };

class SgdMomentum final : public Optimizer {
 public:
  SgdMomentum(std::vector<autograd::Variable> params, float momentum = 0.9f,
              float weight_decay = 0.0f,
              MomentumSemantics semantics = MomentumSemantics::kLrOutsideMomentum);

  void step(float lr) override;
  /// Reference per-element update. step() is a fused single-sweep kernel that
  /// must produce exactly these bits (pinned by refcheck tests); this method
  /// is retained as the executable specification.
  void step_unfused(float lr);
  OptimizerStateDict state_dict() override;

 private:
  float momentum_;
  float weight_decay_;
  MomentumSemantics semantics_;
  std::vector<tensor::Tensor> velocity_;
};

/// Adam (Kingma & Ba 2015) with bias correction.
class Adam final : public Optimizer {
 public:
  Adam(std::vector<autograd::Variable> params, float beta1 = 0.9f, float beta2 = 0.999f,
       float eps = 1e-8f, float weight_decay = 0.0f);

  void step(float lr) override;
  /// Reference per-element update; step() must match it bitwise (refchecked).
  void step_unfused(float lr);
  OptimizerStateDict state_dict() override;

 private:
  float beta1_, beta2_, eps_, weight_decay_;
  std::int64_t t_ = 0;
  std::vector<tensor::Tensor> m_, v_;
};

/// LARS (You et al. 2017): layer-wise adaptive rate scaling, the optimizer
/// MLPerf v0.6 allowed for large-batch ResNet (paper §5/§6). Per layer:
///   trust = eta * ||w|| / (||g|| + wd * ||w||)
///   m = mu * m + trust * lr * (g + wd * w);  w -= m
class Lars final : public Optimizer {
 public:
  Lars(std::vector<autograd::Variable> params, float momentum = 0.9f,
       float weight_decay = 1e-4f, float eta = 0.001f);

  void step(float lr) override;
  /// Reference per-element update; step() must match it bitwise (refchecked).
  void step_unfused(float lr);
  OptimizerStateDict state_dict() override;

 private:
  float momentum_, weight_decay_, eta_;
  std::vector<tensor::Tensor> velocity_;
};

/// Global-norm gradient clipping (used by GNMT reference); returns the norm.
float clip_grad_norm(const std::vector<autograd::Variable>& params, float max_norm);

}  // namespace mlperf::optim
