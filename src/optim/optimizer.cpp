#include "optim/optimizer.h"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <utility>

#include "parallel/parallel_for.h"

namespace {

// Mirror of the ordered-reduction chunk size in src/tensor/tensor.cpp
// (kReduceGrain). Lars::step() computes both layer norms in one fused
// parallel_reduce and must chunk exactly like Tensor::l2_norm_sq() to stay
// bitwise identical to step_unfused(); a refcheck test with numel > 1<<16
// pins the coupling, so a drift in either constant fails loudly.
constexpr std::int64_t kReduceGrain = std::int64_t{1} << 16;

}  // namespace

namespace mlperf::optim {

using autograd::Variable;
using tensor::Tensor;

StepDecayLr::StepDecayLr(float base, float gamma, std::int64_t step_size)
    : base_(base), gamma_(gamma), step_size_(step_size) {
  if (step_size <= 0) throw std::invalid_argument("StepDecayLr: step_size must be > 0");
}

float StepDecayLr::lr(std::int64_t step) const {
  return base_ * std::pow(gamma_, static_cast<float>(step / step_size_));
}

LinearScalingWarmupLr::LinearScalingWarmupLr(float base_lr, std::int64_t batch,
                                             std::int64_t base_batch, std::int64_t warmup_steps,
                                             float gamma, std::int64_t decay_step_size)
    : peak_(base_lr * static_cast<float>(batch) / static_cast<float>(base_batch)),
      warmup_steps_(warmup_steps), gamma_(gamma), decay_step_size_(decay_step_size) {
  if (base_batch <= 0 || decay_step_size <= 0)
    throw std::invalid_argument("LinearScalingWarmupLr: bad arguments");
}

float LinearScalingWarmupLr::lr(std::int64_t step) const {
  if (step < warmup_steps_)
    return peak_ * static_cast<float>(step + 1) / static_cast<float>(warmup_steps_);
  const std::int64_t after = step - warmup_steps_;
  return peak_ * std::pow(gamma_, static_cast<float>(after / decay_step_size_));
}

CosineLr::CosineLr(float base, std::int64_t total_steps)
    : base_(base), total_steps_(total_steps) {
  if (total_steps <= 0) throw std::invalid_argument("CosineLr: total_steps must be > 0");
}

float CosineLr::lr(std::int64_t step) const {
  const float t = std::min(1.0f, static_cast<float>(step) / static_cast<float>(total_steps_));
  return 0.5f * base_ * (1.0f + std::cos(static_cast<float>(std::numbers::pi) * t));
}

SgdMomentum::SgdMomentum(std::vector<Variable> params, float momentum, float weight_decay,
                         MomentumSemantics semantics)
    : Optimizer(std::move(params)), momentum_(momentum), weight_decay_(weight_decay),
      semantics_(semantics) {
  velocity_.reserve(params_.size());
  for (const auto& p : params_) velocity_.emplace_back(p.shape());
}

void SgdMomentum::step(float lr) {
  // Fused single-sweep update: the semantics branch is hoisted out of the
  // element loop and the buffers are walked through raw pointers. Per-element
  // arithmetic is expression-for-expression identical to step_unfused(), so
  // the resulting bits are the same (no FMA contraction at the default build
  // flags; refcheck tests pin the equivalence).
  const float mu = momentum_;
  const float wd = weight_decay_;
  const bool lr_inside = semantics_ == MomentumSemantics::kLrInsideMomentum;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    float* w = p.mutable_value().data();
    const float* g = p.grad().data();
    float* v = velocity_[i].data();
    const std::int64_t n = velocity_[i].numel();
    if (lr_inside) {
      for (std::int64_t j = 0; j < n; ++j) {
        const float grad = g[j] + wd * w[j];
        const float vj = mu * v[j] + lr * grad;  // Eq. 1
        v[j] = vj;
        w[j] -= vj;
      }
    } else {
      for (std::int64_t j = 0; j < n; ++j) {
        const float grad = g[j] + wd * w[j];
        const float vj = mu * v[j] + grad;       // Eq. 2
        v[j] = vj;
        w[j] -= lr * vj;
      }
    }
  }
}

void SgdMomentum::step_unfused(float lr) {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    Tensor& w = p.mutable_value();
    const Tensor& g = p.grad();
    Tensor& v = velocity_[i];
    const std::int64_t n = w.numel();
    for (std::int64_t j = 0; j < n; ++j) {
      const float grad = g[j] + weight_decay_ * w[j];
      if (semantics_ == MomentumSemantics::kLrInsideMomentum) {
        v[j] = momentum_ * v[j] + lr * grad;  // Eq. 1
        w[j] -= v[j];
      } else {
        v[j] = momentum_ * v[j] + grad;       // Eq. 2
        w[j] -= lr * v[j];
      }
    }
  }
}

OptimizerStateDict SgdMomentum::state_dict() {
  OptimizerStateDict d;
  d.kind = "sgd_momentum";
  for (std::size_t i = 0; i < velocity_.size(); ++i)
    d.tensors.emplace_back("velocity." + std::to_string(i), &velocity_[i]);
  return d;
}

Adam::Adam(std::vector<Variable> params, float beta1, float beta2, float eps, float weight_decay)
    : Optimizer(std::move(params)), beta1_(beta1), beta2_(beta2), eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.shape());
    v_.emplace_back(p.shape());
  }
}

void Adam::step(float lr) {
  // Fused single-sweep update over raw pointers; moment reads/writes go
  // through locals so each slot is loaded and stored once per element. The
  // per-element expressions (including the explicit /bc1 and /bc2 divisions —
  // no reciprocal-multiply) match step_unfused() exactly, so the bits do too.
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  const float b1 = beta1_;
  const float b2 = beta2_;
  const float one_minus_b1 = 1.0f - beta1_;
  const float one_minus_b2 = 1.0f - beta2_;
  const float wd = weight_decay_;
  const float eps = eps_;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    float* w = p.mutable_value().data();
    const float* g = p.grad().data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    const std::int64_t n = m_[i].numel();
    for (std::int64_t j = 0; j < n; ++j) {
      const float grad = g[j] + wd * w[j];
      const float mj = b1 * m[j] + one_minus_b1 * grad;
      const float vj = b2 * v[j] + one_minus_b2 * grad * grad;
      m[j] = mj;
      v[j] = vj;
      const float mhat = mj / bc1;
      const float vhat = vj / bc2;
      w[j] -= lr * mhat / (std::sqrt(vhat) + eps);
    }
  }
}

void Adam::step_unfused(float lr) {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    Tensor& w = p.mutable_value();
    const Tensor& g = p.grad();
    const std::int64_t n = w.numel();
    for (std::int64_t j = 0; j < n; ++j) {
      const float grad = g[j] + weight_decay_ * w[j];
      m_[i][j] = beta1_ * m_[i][j] + (1.0f - beta1_) * grad;
      v_[i][j] = beta2_ * v_[i][j] + (1.0f - beta2_) * grad * grad;
      const float mhat = m_[i][j] / bc1;
      const float vhat = v_[i][j] / bc2;
      w[j] -= lr * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

OptimizerStateDict Adam::state_dict() {
  OptimizerStateDict d;
  d.kind = "adam";
  for (std::size_t i = 0; i < m_.size(); ++i)
    d.tensors.emplace_back("m." + std::to_string(i), &m_[i]);
  for (std::size_t i = 0; i < v_.size(); ++i)
    d.tensors.emplace_back("v." + std::to_string(i), &v_[i]);
  d.scalars.emplace_back("step", &t_);
  return d;
}

Lars::Lars(std::vector<Variable> params, float momentum, float weight_decay, float eta)
    : Optimizer(std::move(params)), momentum_(momentum), weight_decay_(weight_decay), eta_(eta) {
  velocity_.reserve(params_.size());
  for (const auto& p : params_) velocity_.emplace_back(p.shape());
}

void Lars::step(float lr) {
  // Fused LARS: both layer norms come from ONE ordered reduction over the
  // parameter (each chunk sums ||w||^2 and ||g||^2 partials side by side),
  // then a single raw-pointer sweep applies decay + trust + momentum + step.
  // Each pair component accumulates in exactly the chunk boundaries and
  // ascending combine order of Tensor::l2_norm_sq() (kReduceGrain mirrored
  // above), so the norms — and therefore the update — are bitwise identical
  // to step_unfused().
  const float mu = momentum_;
  const float wd = weight_decay_;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    float* w = p.mutable_value().data();
    const float* g = p.grad().data();
    float* v = velocity_[i].data();
    const std::int64_t n = velocity_[i].numel();
    const std::pair<double, double> norms_sq = parallel::parallel_reduce(
        kReduceGrain, n, std::pair<double, double>{0.0, 0.0},
        [&](std::int64_t begin, std::int64_t end) {
          double aw = 0.0;
          for (std::int64_t j = begin; j < end; ++j) {
            const double x = w[j];
            aw += x * x;
          }
          double ag = 0.0;
          for (std::int64_t j = begin; j < end; ++j) {
            const double x = g[j];
            ag += x * x;
          }
          return std::pair<double, double>{aw, ag};
        },
        [](const std::pair<double, double>& a, const std::pair<double, double>& b) {
          return std::pair<double, double>{a.first + b.first, a.second + b.second};
        });
    const float w_norm = std::sqrt(static_cast<float>(norms_sq.first));
    const float g_norm = std::sqrt(static_cast<float>(norms_sq.second));
    float trust = 1.0f;
    if (w_norm > 0.0f && g_norm > 0.0f)
      trust = eta_ * w_norm / (g_norm + wd * w_norm);
    // step_unfused evaluates momentum_*v + trust*lr*grad left-to-right, so
    // hoisting (trust * lr) preserves the bits.
    const float tl = trust * lr;
    for (std::int64_t j = 0; j < n; ++j) {
      const float grad = g[j] + wd * w[j];
      const float vj = mu * v[j] + tl * grad;
      v[j] = vj;
      w[j] -= vj;
    }
  }
}

void Lars::step_unfused(float lr) {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    Tensor& w = p.mutable_value();
    const Tensor& g = p.grad();
    const float w_norm = std::sqrt(w.l2_norm_sq());
    const float g_norm = std::sqrt(g.l2_norm_sq());
    float trust = 1.0f;
    if (w_norm > 0.0f && g_norm > 0.0f)
      trust = eta_ * w_norm / (g_norm + weight_decay_ * w_norm);
    const std::int64_t n = w.numel();
    Tensor& v = velocity_[i];
    for (std::int64_t j = 0; j < n; ++j) {
      const float grad = g[j] + weight_decay_ * w[j];
      v[j] = momentum_ * v[j] + trust * lr * grad;
      w[j] -= v[j];
    }
  }
}

OptimizerStateDict Lars::state_dict() {
  OptimizerStateDict d;
  d.kind = "lars";
  for (std::size_t i = 0; i < velocity_.size(); ++i)
    d.tensors.emplace_back("velocity." + std::to_string(i), &velocity_[i]);
  return d;
}

float clip_grad_norm(const std::vector<Variable>& params, float max_norm) {
  double total = 0.0;
  for (const auto& p : params) total += p.grad().l2_norm_sq();
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (const auto& p : params) {
      // Grad tensors are mutated in place through the node.
      Tensor& g = p.node()->grad;
      for (std::int64_t j = 0; j < g.numel(); ++j) g[j] *= scale;
    }
  }
  return norm;
}

}  // namespace mlperf::optim
