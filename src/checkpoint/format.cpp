#include "checkpoint/format.h"

#include <array>
#include <bit>
#include <cstring>

#include "core/fileio.h"

static_assert(std::endian::native == std::endian::little,
              "checkpoint format assumes a little-endian target");

namespace mlperf::checkpoint {

namespace {

std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int k = 0; k < 8; ++k)
      crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78U : 0);  // reflected Castagnoli
    table[i] = crc;
  }
  return table;
}

constexpr std::uint64_t kMaxNameLen = 1 << 16;

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t size, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc32c_table();
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i) crc = (crc >> 8) ^ table[(crc ^ p[i]) & 0xFF];
  return ~crc;
}

void ByteWriter::put_raw(const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  bytes_.insert(bytes_.end(), p, p + size);
}

void ByteWriter::put_tensor(const tensor::Tensor& t) {
  const auto& shape = t.shape();
  put_u64(shape.size());
  for (auto d : shape) put_i64(d);
  put_raw(t.data(), static_cast<std::size_t>(t.numel()) * sizeof(float));
}

void ByteReader::get_raw(void* out, std::size_t size) {
  if (size > size_ - offset_)
    throw CheckpointError("checkpoint section '" + section_ + "' truncated: need " +
                          std::to_string(size) + " bytes at offset " +
                          std::to_string(offset_) + ", have " +
                          std::to_string(size_ - offset_));
  std::memcpy(out, data_ + offset_, size);
  offset_ += size;
}

std::string ByteReader::get_string() {
  const std::uint64_t n = get_u64();
  if (n > kMaxNameLen)
    throw CheckpointError("checkpoint section '" + section_ +
                          "': implausible string length " + std::to_string(n));
  std::string s(static_cast<std::size_t>(n), '\0');
  get_raw(s.data(), s.size());
  return s;
}

tensor::Tensor ByteReader::get_tensor() {
  const std::uint64_t rank = get_u64();
  if (rank > 8)
    throw CheckpointError("checkpoint section '" + section_ + "': implausible rank " +
                          std::to_string(rank));
  tensor::Shape shape(static_cast<std::size_t>(rank));
  for (auto& d : shape) {
    d = get_i64();
    if (d < 0) throw CheckpointError("checkpoint section '" + section_ + "': negative extent");
  }
  // Overflow-safe element count: cap numel at what the payload could possibly
  // hold BEFORE each multiply, so corrupt extents can neither overflow the
  // accumulator nor wrap the size check into a huge allocation.
  const std::uint64_t max_numel = remaining() / sizeof(float);
  std::uint64_t numel = 1;
  for (auto d : shape) {
    const auto ud = static_cast<std::uint64_t>(d);
    if (ud != 0 && numel > max_numel / ud)
      throw CheckpointError("checkpoint section '" + section_ +
                            "' truncated inside tensor payload");
    numel *= ud;
  }
  if (numel > max_numel)
    throw CheckpointError("checkpoint section '" + section_ +
                          "' truncated inside tensor payload");
  tensor::Tensor t(std::move(shape));
  get_raw(t.data(), static_cast<std::size_t>(t.numel()) * sizeof(float));
  return t;
}

ByteWriter& CheckpointWriter::section(const std::string& name) {
  for (auto& [n, w] : sections_)
    if (n == name) return w;
  sections_.emplace_back(name, ByteWriter());
  return sections_.back().second;
}

bool CheckpointWriter::has_section(const std::string& name) const {
  for (const auto& [n, w] : sections_)
    if (n == name) return true;
  return false;
}

std::size_t CheckpointWriter::byte_size() const {
  std::size_t total = sizeof(kMagic) + sizeof(kFormatVersion) + sizeof(std::uint64_t);
  for (const auto& [name, w] : sections_)
    total += sizeof(std::uint64_t) + name.size() +  // name
             sizeof(std::uint64_t) + sizeof(std::uint32_t) + w.size();
  return total;
}

std::vector<std::uint8_t> CheckpointWriter::serialize() const {
  ByteWriter out;
  out.put_u32(kMagic);
  out.put_u32(kFormatVersion);
  out.put_u64(sections_.size());
  for (const auto& [name, w] : sections_) {
    out.put_string(name);
    out.put_u64(w.size());
    out.put_u32(crc32c(w.bytes().data(), w.size()));
    out.put_raw(w.bytes().data(), w.size());
  }
  return out.bytes();
}

void CheckpointWriter::write_file(const std::string& path) const {
  const std::vector<std::uint8_t> bytes = serialize();
  core::atomic_write_file(path, bytes.data(), bytes.size());
}

CheckpointReader CheckpointReader::parse(std::vector<std::uint8_t> bytes,
                                         const std::string& origin) {
  CheckpointReader r;
  r.bytes_ = std::move(bytes);
  ByteReader header(r.bytes_.data(), r.bytes_.size(), "header:" + origin);
  const std::uint32_t magic = header.get_u32();
  if (magic != kMagic)
    throw CheckpointError("not a checkpoint file (bad magic) in " + origin);
  r.version_ = header.get_u32();
  if (r.version_ != kFormatVersion)
    throw CheckpointError("checkpoint format version mismatch in " + origin + ": file has v" +
                          std::to_string(r.version_) + ", this build reads v" +
                          std::to_string(kFormatVersion));
  const std::uint64_t count = header.get_u64();
  if (count > 1024)
    throw CheckpointError("implausible section count " + std::to_string(count) + " in " +
                          origin);
  for (std::uint64_t i = 0; i < count; ++i) {
    SectionInfo info;
    info.name = header.get_string();
    info.size = header.get_u64();
    info.stored_crc = header.get_u32();
    if (info.size > header.remaining())
      throw CheckpointError("checkpoint truncated in " + origin + ": section '" + info.name +
                            "' claims " + std::to_string(info.size) + " bytes, " +
                            std::to_string(header.remaining()) + " remain");
    const std::size_t offset = r.bytes_.size() - header.remaining();
    info.computed_crc = crc32c(r.bytes_.data() + offset, static_cast<std::size_t>(info.size));
    if (!info.crc_ok())
      throw CheckpointError("checkpoint corrupted in " + origin + ": section '" + info.name +
                            "' CRC32C mismatch (stored " + std::to_string(info.stored_crc) +
                            ", computed " + std::to_string(info.computed_crc) + ")");
    std::vector<std::uint8_t> skip(static_cast<std::size_t>(info.size));
    header.get_raw(skip.data(), skip.size());
    r.infos_.push_back(std::move(info));
    r.offsets_.push_back(offset);
  }
  if (!header.done())
    throw CheckpointError("checkpoint has " + std::to_string(header.remaining()) +
                          " trailing bytes in " + origin);
  return r;
}

CheckpointReader CheckpointReader::read_file(const std::string& path) {
  std::vector<std::uint8_t> bytes;
  try {
    bytes = core::read_file_bytes(path);
  } catch (const std::runtime_error& e) {
    throw CheckpointError(std::string("cannot read checkpoint: ") + e.what());
  }
  return parse(std::move(bytes), path);
}

bool CheckpointReader::has_section(const std::string& name) const {
  for (const auto& info : infos_)
    if (info.name == name) return true;
  return false;
}

ByteReader CheckpointReader::section(const std::string& name) const {
  for (std::size_t i = 0; i < infos_.size(); ++i)
    if (infos_[i].name == name)
      return ByteReader(bytes_.data() + offsets_[i],
                        static_cast<std::size_t>(infos_[i].size), name);
  throw CheckpointError("checkpoint is missing section '" + name + "'");
}

InspectReport inspect_file(const std::string& path) {
  std::vector<std::uint8_t> bytes;
  try {
    bytes = core::read_file_bytes(path);
  } catch (const std::runtime_error& e) {
    throw CheckpointError(std::string("cannot read checkpoint: ") + e.what());
  }
  InspectReport report;
  report.file_bytes = bytes.size();
  ByteReader header(bytes.data(), bytes.size(), "header:" + path);
  report.magic = header.get_u32();
  report.magic_ok = report.magic == kMagic;
  report.version = header.get_u32();
  report.version_ok = report.version == kFormatVersion;
  if (!report.magic_ok) return report;  // not our file; stop before the table walk
  const std::uint64_t count = header.get_u64();
  if (count > 1024) throw CheckpointError("implausible section count in " + path);
  for (std::uint64_t i = 0; i < count; ++i) {
    CheckpointReader::SectionInfo info;
    info.name = header.get_string();
    info.size = header.get_u64();
    info.stored_crc = header.get_u32();
    if (info.size > header.remaining())
      throw CheckpointError("checkpoint truncated in " + path + ": section '" + info.name +
                            "' payload cut short");
    const std::size_t offset = bytes.size() - header.remaining();
    info.computed_crc = crc32c(bytes.data() + offset, static_cast<std::size_t>(info.size));
    std::vector<std::uint8_t> skip(static_cast<std::size_t>(info.size));
    header.get_raw(skip.data(), skip.size());
    report.sections.push_back(std::move(info));
  }
  return report;
}

}  // namespace mlperf::checkpoint
