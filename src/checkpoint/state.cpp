#include "checkpoint/state.h"

namespace mlperf::checkpoint {

namespace {

std::string shape_str(const tensor::Shape& s) {
  std::string out = "[";
  for (std::size_t i = 0; i < s.size(); ++i)
    out += (i ? "," : "") + std::to_string(s[i]);
  return out + "]";
}

/// Reads one (name, tensor) record and copies it into `dst`, enforcing the
/// expected name and shape.
void read_named_tensor_into(ByteReader& in, const std::string& expect_name,
                            tensor::Tensor& dst, const char* what) {
  const std::string name = in.get_string();
  if (name != expect_name)
    throw CheckpointError(std::string(what) + " name mismatch: checkpoint has '" + name +
                          "', live object expects '" + expect_name + "'");
  tensor::Tensor t = in.get_tensor();
  if (t.shape() != dst.shape())
    throw CheckpointError(std::string(what) + " shape mismatch for '" + name +
                          "': checkpoint " + shape_str(t.shape()) + ", live object " +
                          shape_str(dst.shape()));
  dst = std::move(t);
}

}  // namespace

void write_module(ByteWriter& out, const nn::Module& module) {
  const auto params = module.named_parameters();
  out.put_u64(params.size());
  for (const auto& [name, p] : params) {
    out.put_string(name);
    out.put_tensor(p.value());
  }
  const auto buffers = module.named_buffers();
  out.put_u64(buffers.size());
  for (const auto& [name, t] : buffers) {
    out.put_string(name);
    out.put_tensor(*t);
  }
}

void read_module(ByteReader& in, nn::Module& module) {
  auto params = module.named_parameters();
  const std::uint64_t n_params = in.get_u64();
  if (n_params != params.size())
    throw CheckpointError("model parameter count mismatch: checkpoint has " +
                          std::to_string(n_params) + ", module has " +
                          std::to_string(params.size()));
  for (auto& [name, p] : params)
    read_named_tensor_into(in, name, p.mutable_value(), "model parameter");
  auto buffers = module.named_buffers();
  const std::uint64_t n_buffers = in.get_u64();
  if (n_buffers != buffers.size())
    throw CheckpointError("model buffer count mismatch: checkpoint has " +
                          std::to_string(n_buffers) + ", module has " +
                          std::to_string(buffers.size()));
  for (auto& [name, t] : buffers)
    read_named_tensor_into(in, name, *t, "model buffer");
}

void write_optimizer(ByteWriter& out, optim::Optimizer& optimizer) {
  const optim::OptimizerStateDict d = optimizer.state_dict();
  out.put_string(d.kind);
  out.put_u64(d.tensors.size());
  for (const auto& [name, t] : d.tensors) {
    out.put_string(name);
    out.put_tensor(*t);
  }
  out.put_u64(d.scalars.size());
  for (const auto& [name, s] : d.scalars) {
    out.put_string(name);
    out.put_i64(*s);
  }
}

void read_optimizer(ByteReader& in, optim::Optimizer& optimizer) {
  optim::OptimizerStateDict d = optimizer.state_dict();
  const std::string kind = in.get_string();
  if (kind != d.kind)
    throw CheckpointError("optimizer kind mismatch: checkpoint has '" + kind +
                          "', live optimizer is '" + d.kind + "'");
  const std::uint64_t n_tensors = in.get_u64();
  if (n_tensors != d.tensors.size())
    throw CheckpointError("optimizer slot-buffer count mismatch: checkpoint has " +
                          std::to_string(n_tensors) + ", live optimizer has " +
                          std::to_string(d.tensors.size()));
  for (auto& [name, t] : d.tensors)
    read_named_tensor_into(in, name, *t, "optimizer slot buffer");
  const std::uint64_t n_scalars = in.get_u64();
  if (n_scalars != d.scalars.size())
    throw CheckpointError("optimizer scalar count mismatch: checkpoint has " +
                          std::to_string(n_scalars) + ", live optimizer has " +
                          std::to_string(d.scalars.size()));
  for (auto& [name, s] : d.scalars) {
    const std::string got = in.get_string();
    if (got != name)
      throw CheckpointError("optimizer scalar name mismatch: checkpoint has '" + got +
                            "', live optimizer expects '" + name + "'");
    *s = in.get_i64();
  }
}

void write_rng(ByteWriter& out, const tensor::Rng& rng) {
  const tensor::Rng::State s = rng.save_state();
  out.put_u64(s.state);
  out.put_bool(s.has_cached_normal);
  out.put_f64(s.cached_normal);
}

void read_rng(ByteReader& in, tensor::Rng& rng) {
  tensor::Rng::State s;
  s.state = in.get_u64();
  s.has_cached_normal = in.get_bool();
  s.cached_normal = in.get_f64();
  rng.restore_state(s);
}

std::uint64_t fnv1a(const void* data, std::size_t size, std::uint64_t h) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t hash_module(const nn::Module& module) {
  // Hash the serialized form: names, shapes and raw payloads all contribute.
  ByteWriter w;
  write_module(w, module);
  return fnv1a(w.bytes().data(), w.size());
}

}  // namespace mlperf::checkpoint
