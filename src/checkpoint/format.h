#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <stdexcept>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace mlperf::checkpoint {

/// Every load-side failure — bad magic, version drift, CRC mismatch,
/// truncation, missing sections, name/shape drift — throws this. Checkpoints
/// are either loaded exactly or rejected loudly; nothing is papered over.
class CheckpointError : public std::runtime_error {
 public:
  explicit CheckpointError(const std::string& what) : std::runtime_error(what) {}
};

/// File layout (all integers little-endian, which is asserted at build time
/// for the platforms this project targets):
///
///   u32 magic   "MLCK" (0x4B434C4D on disk)
///   u32 format version (kFormatVersion; a mismatch is an error, never a
///                       best-effort parse)
///   u64 section count
///   per section:
///     u64 name length, name bytes
///     u64 payload length
///     u32 CRC32C of the payload
///     payload bytes
///
/// Sections are independent byte blobs ("meta", "curve", "timer", "log",
/// "model", "optimizer", "rng", ...); each carries its own CRC so corruption
/// is localized in error messages. Files are written atomically
/// (core::atomic_write_file), so a crash mid-save never clobbers the previous
/// checkpoint.
inline constexpr std::uint32_t kMagic = 0x4B434C4DU;  // "MLCK" little-endian
inline constexpr std::uint32_t kFormatVersion = 1;

/// CRC32C (Castagnoli), the checksum used per section. Software table
/// implementation; `seed` chains incremental updates.
std::uint32_t crc32c(const void* data, std::size_t size, std::uint32_t seed = 0);

/// Typed little-endian append-only buffer: the payload builder for one
/// section.
class ByteWriter {
 public:
  void put_u32(std::uint32_t v) { put_raw(&v, sizeof(v)); }
  void put_u64(std::uint64_t v) { put_raw(&v, sizeof(v)); }
  void put_i64(std::int64_t v) { put_raw(&v, sizeof(v)); }
  void put_f32(float v) { put_raw(&v, sizeof(v)); }
  void put_f64(double v) { put_raw(&v, sizeof(v)); }
  void put_bool(bool v) { put_u32(v ? 1 : 0); }
  void put_string(const std::string& s) {
    put_u64(s.size());
    put_raw(s.data(), s.size());
  }
  /// Shape (rank + extents) followed by the raw float32 payload.
  void put_tensor(const tensor::Tensor& t);
  void put_raw(const void* data, std::size_t size);

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::size_t size() const { return bytes_.size(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked reader over one section's payload. Any read past the end
/// throws CheckpointError("...truncated..."), so a short or corrupted
/// payload can never be silently consumed.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size, std::string section)
      : data_(data), size_(size), section_(std::move(section)) {}

  std::uint32_t get_u32() { return get_pod<std::uint32_t>(); }
  std::uint64_t get_u64() { return get_pod<std::uint64_t>(); }
  std::int64_t get_i64() { return get_pod<std::int64_t>(); }
  float get_f32() { return get_pod<float>(); }
  double get_f64() { return get_pod<double>(); }
  bool get_bool() { return get_u32() != 0; }
  std::string get_string();
  /// Reads shape + data written by put_tensor.
  tensor::Tensor get_tensor();
  void get_raw(void* out, std::size_t size);

  std::size_t remaining() const { return size_ - offset_; }
  bool done() const { return offset_ == size_; }
  const std::string& section_name() const { return section_; }

 private:
  template <typename T>
  T get_pod() {
    T v;
    get_raw(&v, sizeof(v));
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t offset_ = 0;
  std::string section_;
};

/// Assembles a checkpoint: named sections, written in insertion order, each
/// CRC32C-protected, the whole file landed atomically.
class CheckpointWriter {
 public:
  /// Create (or retrieve, to keep appending) the section's payload builder.
  /// Returned references stay valid across later section() calls, so callers
  /// may hold several builders and interleave writes.
  ByteWriter& section(const std::string& name);
  bool has_section(const std::string& name) const;

  /// Serialized size of the file this writer would produce.
  std::size_t byte_size() const;
  /// Serialize to memory (header + CRC'd sections).
  std::vector<std::uint8_t> serialize() const;
  /// Serialize and write atomically (temp file + rename).
  void write_file(const std::string& path) const;

 private:
  // deque: section() hands out references that must survive later insertions.
  std::deque<std::pair<std::string, ByteWriter>> sections_;
};

/// Parses and fully validates a checkpoint: magic, format version, and every
/// section CRC are checked up front, so by the time any state is restored
/// the file is known to be intact. All failures throw CheckpointError.
class CheckpointReader {
 public:
  struct SectionInfo {
    std::string name;
    std::uint64_t size = 0;
    std::uint32_t stored_crc = 0;
    std::uint32_t computed_crc = 0;
    bool crc_ok() const { return stored_crc == computed_crc; }
  };

  static CheckpointReader parse(std::vector<std::uint8_t> bytes, const std::string& origin);
  static CheckpointReader read_file(const std::string& path);

  std::uint32_t version() const { return version_; }
  const std::vector<SectionInfo>& sections() const { return infos_; }
  bool has_section(const std::string& name) const;
  /// Bounds-checked reader over the named section; throws if absent.
  ByteReader section(const std::string& name) const;

 private:
  CheckpointReader() = default;

  std::vector<std::uint8_t> bytes_;
  std::uint32_t version_ = 0;
  std::vector<SectionInfo> infos_;
  // offset into bytes_ of each section's payload, parallel to infos_.
  std::vector<std::size_t> offsets_;
};

/// Lenient header walk for `tools/ckpt_inspect`: never throws on CRC or
/// version problems — it reports them, so a damaged checkpoint can still be
/// examined. Structural truncation that prevents walking the section table
/// still throws CheckpointError.
struct InspectReport {
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  bool magic_ok = false;
  bool version_ok = false;
  std::uint64_t file_bytes = 0;
  std::vector<CheckpointReader::SectionInfo> sections;
};
InspectReport inspect_file(const std::string& path);

}  // namespace mlperf::checkpoint
