#pragma once

#include <cstdint>

#include "checkpoint/format.h"
#include "nn/module.h"
#include "optim/optimizer.h"
#include "tensor/rng.h"

namespace mlperf::checkpoint {

/// Serializers for the training-state building blocks workloads compose
/// their checkpoint sections from. All readers are STRICT: counts, names and
/// shapes must match the live object exactly, otherwise CheckpointError —
/// a checkpoint from a drifted architecture or a different optimizer must
/// never be silently loaded (ISSUE acceptance: fail loudly, never quietly).

/// Model section: named parameters then named buffers (batch-norm running
/// statistics etc.), each as (name, shape, raw float32).
void write_module(ByteWriter& out, const nn::Module& module);
/// Restores parameter and buffer values in place.
void read_module(ByteReader& in, nn::Module& module);

/// Optimizer section: the state_dict kind, slot buffers and scalars.
void write_optimizer(ByteWriter& out, optim::Optimizer& optimizer);
void read_optimizer(ByteReader& in, optim::Optimizer& optimizer);

/// RNG section: the full generator state including the Box-Muller cache.
void write_rng(ByteWriter& out, const tensor::Rng& rng);
void read_rng(ByteReader& in, tensor::Rng& rng);

/// FNV-1a 64-bit over raw bytes; the fingerprint primitive the resume tests
/// use to compare final weights / curves across interrupted and
/// uninterrupted runs.
inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
std::uint64_t fnv1a(const void* data, std::size_t size, std::uint64_t h = kFnvOffset);

/// FNV-1a over every parameter and buffer of a module (names, shapes and raw
/// float32 payloads): two modules hash equal iff their state is bitwise
/// identical.
std::uint64_t hash_module(const nn::Module& module);

}  // namespace mlperf::checkpoint
