#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

namespace mlperf::go {

enum class Stone : std::uint8_t { kEmpty = 0, kBlack = 1, kWhite = 2 };

inline Stone opponent(Stone s) {
  if (s == Stone::kBlack) return Stone::kWhite;
  if (s == Stone::kWhite) return Stone::kBlack;
  return Stone::kEmpty;
}

/// A move: a point index in [0, size*size) or pass().
struct Move {
  std::int64_t point = -1;  // -1 = pass

  static Move pass() { return Move{-1}; }
  static Move at(std::int64_t p) { return Move{p}; }
  bool is_pass() const { return point < 0; }
  bool operator==(const Move&) const = default;
};

/// Full Go rules on an N×N board (default 9×9, the paper's MiniGo board):
/// captures, suicide prohibition, positional superko (via Zobrist hashing of
/// all previous positions), two-pass game end, and Tromp-Taylor area scoring.
class Board {
 public:
  explicit Board(std::int64_t size = 9, float komi = 5.5f);

  std::int64_t size() const { return size_; }
  std::int64_t num_points() const { return size_ * size_; }
  float komi() const { return komi_; }
  Stone to_play() const { return to_play_; }
  Stone at(std::int64_t p) const { return grid_.at(static_cast<std::size_t>(p)); }
  Stone at(std::int64_t row, std::int64_t col) const { return at(row * size_ + col); }
  std::int64_t move_count() const { return move_count_; }
  bool game_over() const { return consecutive_passes_ >= 2; }

  /// Is this move legal for the side to play (occupancy, suicide, superko)?
  bool is_legal(Move m) const;

  /// All legal moves (including pass, which is always legal).
  std::vector<Move> legal_moves() const;

  /// Play a move; throws std::invalid_argument if illegal.
  void play(Move m);

  /// Tromp-Taylor area score from Black's perspective (stones + exclusive
  /// territory), minus komi. Positive = Black wins.
  float tromp_taylor_score() const;

  /// Winner under Tromp-Taylor (kEmpty = draw, impossible with half komi).
  Stone winner() const;

  /// Liberties of the group containing p (0 if p is empty).
  std::int64_t liberties(std::int64_t p) const;

  /// Zobrist hash of the current position (stones + side to play not mixed;
  /// superko in this implementation is positional).
  std::uint64_t position_hash() const { return hash_; }

  /// Orthogonal neighbours of a point.
  std::vector<std::int64_t> neighbors(std::int64_t p) const;

  std::string to_string() const;

 private:
  struct GroupInfo {
    std::vector<std::int64_t> stones;
    std::int64_t liberties = 0;
  };
  GroupInfo group_at(std::int64_t p) const;
  void remove_group(const std::vector<std::int64_t>& stones);
  void set_stone(std::int64_t p, Stone s);
  /// Hash after hypothetically playing m (for superko); nullopt if suicide.
  std::optional<std::uint64_t> hash_after(Move m) const;

  std::int64_t size_;
  float komi_;
  std::vector<Stone> grid_;
  Stone to_play_ = Stone::kBlack;
  std::int64_t consecutive_passes_ = 0;
  std::int64_t move_count_ = 0;
  std::uint64_t hash_ = 0;
  std::unordered_set<std::uint64_t> history_;  // positions seen (superko)
};

/// A finished or in-progress game record: the move sequence from an empty
/// board. Used both for MiniGo training data and as "human reference games"
/// for the move-prediction quality metric.
struct GameRecord {
  std::int64_t board_size = 9;
  float komi = 5.5f;
  std::vector<Move> moves;
  Stone winner = Stone::kEmpty;
};

}  // namespace mlperf::go
