#include "go/board.h"

#include <array>
#include <sstream>
#include <stdexcept>

#include "tensor/rng.h"

namespace mlperf::go {

namespace {

// Zobrist table: [point][color-1] for up to 19x19; generated deterministically.
constexpr std::int64_t kMaxPoints = 19 * 19;

const std::array<std::array<std::uint64_t, 2>, kMaxPoints>& zobrist_table() {
  static const auto table = [] {
    std::array<std::array<std::uint64_t, 2>, kMaxPoints> t{};
    tensor::Rng rng(0x60BA9D5EED5EEDULL);
    for (auto& row : t)
      for (auto& v : row) v = rng.next_u64();
    return t;
  }();
  return table;
}

}  // namespace

Board::Board(std::int64_t size, float komi) : size_(size), komi_(komi) {
  if (size < 2 || size > 19) throw std::invalid_argument("Board: size must be in [2, 19]");
  grid_.assign(static_cast<std::size_t>(num_points()), Stone::kEmpty);
  history_.insert(hash_);
}

std::vector<std::int64_t> Board::neighbors(std::int64_t p) const {
  const std::int64_t r = p / size_, c = p % size_;
  std::vector<std::int64_t> out;
  out.reserve(4);
  if (r > 0) out.push_back(p - size_);
  if (r < size_ - 1) out.push_back(p + size_);
  if (c > 0) out.push_back(p - 1);
  if (c < size_ - 1) out.push_back(p + 1);
  return out;
}

Board::GroupInfo Board::group_at(std::int64_t p) const {
  GroupInfo info;
  const Stone color = at(p);
  if (color == Stone::kEmpty) return info;
  std::vector<bool> visited(static_cast<std::size_t>(num_points()), false);
  std::vector<bool> lib_seen(static_cast<std::size_t>(num_points()), false);
  std::vector<std::int64_t> stack{p};
  visited[static_cast<std::size_t>(p)] = true;
  while (!stack.empty()) {
    const std::int64_t q = stack.back();
    stack.pop_back();
    info.stones.push_back(q);
    for (std::int64_t nb : neighbors(q)) {
      const Stone s = at(nb);
      if (s == color && !visited[static_cast<std::size_t>(nb)]) {
        visited[static_cast<std::size_t>(nb)] = true;
        stack.push_back(nb);
      } else if (s == Stone::kEmpty && !lib_seen[static_cast<std::size_t>(nb)]) {
        lib_seen[static_cast<std::size_t>(nb)] = true;
        ++info.liberties;
      }
    }
  }
  return info;
}

std::int64_t Board::liberties(std::int64_t p) const { return group_at(p).liberties; }

void Board::set_stone(std::int64_t p, Stone s) {
  const Stone old = grid_[static_cast<std::size_t>(p)];
  if (old != Stone::kEmpty)
    hash_ ^= zobrist_table()[static_cast<std::size_t>(p)][static_cast<std::size_t>(old) - 1];
  if (s != Stone::kEmpty)
    hash_ ^= zobrist_table()[static_cast<std::size_t>(p)][static_cast<std::size_t>(s) - 1];
  grid_[static_cast<std::size_t>(p)] = s;
}

void Board::remove_group(const std::vector<std::int64_t>& stones) {
  for (std::int64_t p : stones) set_stone(p, Stone::kEmpty);
}

std::optional<std::uint64_t> Board::hash_after(Move m) const {
  if (m.is_pass()) return hash_;
  // Simulate on a scratch copy of the grid (cheap at 9x9).
  Board scratch = *this;
  scratch.history_.clear();  // avoid superko recursion in the scratch
  const Stone me = scratch.to_play_;
  scratch.set_stone(m.point, me);
  const Stone opp = opponent(me);
  for (std::int64_t nb : scratch.neighbors(m.point)) {
    if (scratch.at(nb) == opp) {
      const GroupInfo g = scratch.group_at(nb);
      if (g.liberties == 0) scratch.remove_group(g.stones);
    }
  }
  if (scratch.group_at(m.point).liberties == 0) return std::nullopt;  // suicide
  return scratch.hash_;
}

bool Board::is_legal(Move m) const {
  if (game_over()) return false;
  if (m.is_pass()) return true;
  if (m.point < 0 || m.point >= num_points()) return false;
  if (at(m.point) != Stone::kEmpty) return false;
  const auto h = hash_after(m);
  if (!h) return false;                  // suicide
  return history_.count(*h) == 0;        // positional superko
}

std::vector<Move> Board::legal_moves() const {
  std::vector<Move> out;
  if (game_over()) return out;
  for (std::int64_t p = 0; p < num_points(); ++p) {
    const Move m = Move::at(p);
    if (is_legal(m)) out.push_back(m);
  }
  out.push_back(Move::pass());
  return out;
}

void Board::play(Move m) {
  if (!is_legal(m)) throw std::invalid_argument("Board::play: illegal move");
  if (m.is_pass()) {
    ++consecutive_passes_;
  } else {
    consecutive_passes_ = 0;
    const Stone me = to_play_;
    set_stone(m.point, me);
    const Stone opp = opponent(me);
    for (std::int64_t nb : neighbors(m.point)) {
      if (at(nb) == opp) {
        const GroupInfo g = group_at(nb);
        if (g.liberties == 0) remove_group(g.stones);
      }
    }
  }
  to_play_ = opponent(to_play_);
  ++move_count_;
  history_.insert(hash_);
}

float Board::tromp_taylor_score() const {
  // Area scoring: stones + empty regions bordered exclusively by one colour.
  float black = 0.0f, white = 0.0f;
  std::vector<bool> visited(static_cast<std::size_t>(num_points()), false);
  for (std::int64_t p = 0; p < num_points(); ++p) {
    const Stone s = at(p);
    if (s == Stone::kBlack) {
      black += 1.0f;
    } else if (s == Stone::kWhite) {
      white += 1.0f;
    } else if (!visited[static_cast<std::size_t>(p)]) {
      // Flood-fill the empty region; find which colours border it.
      std::vector<std::int64_t> region, stack{p};
      visited[static_cast<std::size_t>(p)] = true;
      bool sees_black = false, sees_white = false;
      while (!stack.empty()) {
        const std::int64_t q = stack.back();
        stack.pop_back();
        region.push_back(q);
        for (std::int64_t nb : neighbors(q)) {
          const Stone ns = at(nb);
          if (ns == Stone::kEmpty && !visited[static_cast<std::size_t>(nb)]) {
            visited[static_cast<std::size_t>(nb)] = true;
            stack.push_back(nb);
          } else if (ns == Stone::kBlack) {
            sees_black = true;
          } else if (ns == Stone::kWhite) {
            sees_white = true;
          }
        }
      }
      if (sees_black && !sees_white) black += static_cast<float>(region.size());
      if (sees_white && !sees_black) white += static_cast<float>(region.size());
    }
  }
  return black - white - komi_;
}

Stone Board::winner() const {
  const float s = tromp_taylor_score();
  if (s > 0.0f) return Stone::kBlack;
  if (s < 0.0f) return Stone::kWhite;
  return Stone::kEmpty;
}

std::string Board::to_string() const {
  std::ostringstream os;
  for (std::int64_t r = 0; r < size_; ++r) {
    for (std::int64_t c = 0; c < size_; ++c) {
      switch (at(r, c)) {
        case Stone::kEmpty: os << '.'; break;
        case Stone::kBlack: os << 'X'; break;
        case Stone::kWhite: os << 'O'; break;
      }
    }
    os << '\n';
  }
  os << (to_play_ == Stone::kBlack ? "black" : "white") << " to play\n";
  return os.str();
}

}  // namespace mlperf::go
