#pragma once

#include <cstdint>
#include <vector>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace mlperf::data {

/// A labeled image example. `image` is CHW float in [0, 1] after decode.
struct ImageExample {
  tensor::Tensor image;
  std::int64_t label = 0;
};

/// Raw (pre-reformat) image record: byte pixels, as a dataset on disk would
/// store them. The reformat stage (paper §3.2.1: untimed, one-time) converts
/// these to packed float records; per-example augmentation stays in the timed
/// training loop by construction.
struct RawImageRecord {
  std::vector<std::uint8_t> pixels;  // CHW
  std::int64_t channels = 0, height = 0, width = 0;
  std::int64_t label = 0;
};

/// Synthetic stand-in for ImageNet (see DESIGN.md substitution table).
///
/// Each class has a fixed procedurally-generated prototype (a mixture of
/// class-keyed sinusoid gratings and blobs); an example is its class
/// prototype plus per-example jitter, shift and noise. Difficulty is
/// controlled by `noise`: higher noise means more epochs to a given accuracy,
/// which is what lets the mini-workload reproduce the paper's convergence
/// phenomena (Figs 1-3) in seconds.
class SyntheticImageDataset {
 public:
  struct Config {
    std::int64_t num_classes = 10;
    std::int64_t channels = 3;
    std::int64_t height = 16;
    std::int64_t width = 16;
    std::int64_t train_size = 512;
    std::int64_t val_size = 256;
    float noise = 0.35f;          ///< pixel noise stddev
    std::uint64_t seed = 2020;    ///< dataset identity (not the run seed)
  };

  explicit SyntheticImageDataset(const Config& config);

  const Config& config() const { return config_; }
  std::int64_t train_size() const { return static_cast<std::int64_t>(train_.size()); }
  std::int64_t val_size() const { return static_cast<std::int64_t>(val_.size()); }

  const RawImageRecord& train_raw(std::int64_t i) const { return train_.at(static_cast<std::size_t>(i)); }
  const RawImageRecord& val_raw(std::int64_t i) const { return val_.at(static_cast<std::size_t>(i)); }

  /// Decode a raw record to float CHW in [0, 1].
  static ImageExample decode(const RawImageRecord& rec);

 private:
  RawImageRecord make_example(std::int64_t label, tensor::Rng& rng) const;

  Config config_;
  std::vector<tensor::Tensor> prototypes_;  // per-class CHW float
  std::vector<RawImageRecord> train_;
  std::vector<RawImageRecord> val_;
};

/// Packed float records produced by the one-time reformat stage (analogue of
/// building an LMDB/TFRecord database). Reformatting must happen before the
/// training timer starts; core::TrainingTimer enforces/logs this.
class ReformattedImageSet {
 public:
  ReformattedImageSet() = default;

  /// Reformat an entire split. Deliberately does decode + normalization only;
  /// no augmentation is allowed here (paper §3.2.1 forbids moving training-
  /// time processing into the reformat stage).
  static ReformattedImageSet from_raw(const std::vector<const RawImageRecord*>& records);

  std::int64_t size() const { return static_cast<std::int64_t>(examples_.size()); }
  const ImageExample& get(std::int64_t i) const { return examples_.at(static_cast<std::size_t>(i)); }

 private:
  std::vector<ImageExample> examples_;
};

/// Convenience: reformat both splits of a SyntheticImageDataset.
struct ReformattedSplits {
  ReformattedImageSet train;
  ReformattedImageSet val;
};
ReformattedSplits reformat(const SyntheticImageDataset& ds);

}  // namespace mlperf::data
