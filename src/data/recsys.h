#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "tensor/rng.h"

namespace mlperf::data {

/// A positive user-item interaction.
struct Interaction {
  std::int64_t user = 0;
  std::int64_t item = 0;
};

/// Synthetic implicit-feedback dataset standing in for MovieLens-20M.
///
/// Follows the fractal-expansion idea the paper cites as the v0.7 direction
/// (Belletti et al. 2019): a small latent-factor "seed" preference matrix is
/// expanded so item popularity is heavy-tailed (Zipf-like) and users have
/// correlated tastes — the properties that shape embedding-table access
/// patterns. Evaluation is standard NCF leave-one-out: the last interaction
/// of each user is held out and ranked against `num_eval_negatives` sampled
/// negatives; quality is hit-rate@K.
class ImplicitCfDataset {
 public:
  struct Config {
    std::int64_t num_users = 64;
    std::int64_t num_items = 128;
    std::int64_t interactions_per_user = 20;
    std::int64_t latent_dim = 6;
    std::int64_t num_eval_negatives = 50;
    /// Weight of the latent-factor term in the interaction logit; higher
    /// values make user taste more predictable (controls task difficulty).
    float signal_strength = 2.5f;
    /// Stddev of per-user deviation from their taste cluster.
    float user_noise = 0.1f;
    std::uint64_t seed = 2020;
  };

  explicit ImplicitCfDataset(const Config& config);

  const Config& config() const { return config_; }
  std::int64_t num_users() const { return config_.num_users; }
  std::int64_t num_items() const { return config_.num_items; }

  const std::vector<Interaction>& train_interactions() const { return train_; }
  /// Per-user held-out positive item.
  const std::vector<std::int64_t>& holdout() const { return holdout_; }
  /// Per-user eval candidate lists: holdout item + sampled negatives.
  const std::vector<std::vector<std::int64_t>>& eval_candidates() const { return eval_candidates_; }

  bool is_positive(std::int64_t user, std::int64_t item) const {
    return positives_[static_cast<std::size_t>(user)].count(item) > 0;
  }

  /// Sample a training negative item for `user` (not in their positives).
  std::int64_t sample_negative(std::int64_t user, tensor::Rng& rng) const;

 private:
  Config config_;
  std::vector<Interaction> train_;
  std::vector<std::int64_t> holdout_;
  std::vector<std::vector<std::int64_t>> eval_candidates_;
  std::vector<std::unordered_set<std::int64_t>> positives_;
};

}  // namespace mlperf::data
