#include "data/dataset.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace mlperf::data {

using tensor::Rng;
using tensor::Tensor;

SyntheticImageDataset::SyntheticImageDataset(const Config& config) : config_(config) {
  Rng proto_rng(config_.seed);
  prototypes_.reserve(static_cast<std::size_t>(config_.num_classes));
  for (std::int64_t k = 0; k < config_.num_classes; ++k) {
    Tensor proto({config_.channels, config_.height, config_.width});
    // Class-keyed gratings: orientation and frequency depend on the class and
    // a per-class random phase, plus 2 random Gaussian blobs.
    const float angle = static_cast<float>(k) * static_cast<float>(std::numbers::pi) /
                        static_cast<float>(config_.num_classes);
    const float freq = 1.5f + 0.7f * static_cast<float>(k % 4);
    const float phase = proto_rng.uniform(0.0f, 6.28f);
    const float cx[2] = {proto_rng.uniform(0.2f, 0.8f), proto_rng.uniform(0.2f, 0.8f)};
    const float cy[2] = {proto_rng.uniform(0.2f, 0.8f), proto_rng.uniform(0.2f, 0.8f)};
    for (std::int64_t c = 0; c < config_.channels; ++c) {
      const float chan_shift = 0.5f * static_cast<float>(c);
      for (std::int64_t i = 0; i < config_.height; ++i) {
        for (std::int64_t j = 0; j < config_.width; ++j) {
          const float y = static_cast<float>(i) / static_cast<float>(config_.height);
          const float x = static_cast<float>(j) / static_cast<float>(config_.width);
          const float u = x * std::cos(angle) + y * std::sin(angle);
          float v = 0.5f + 0.35f * std::sin(2.0f * static_cast<float>(std::numbers::pi) * freq * u +
                                            phase + chan_shift);
          for (int b = 0; b < 2; ++b) {
            const float dx = x - cx[b], dy = y - cy[b];
            v += 0.25f * std::exp(-(dx * dx + dy * dy) / 0.02f) * (b == (k % 2) ? 1.0f : -1.0f);
          }
          proto.at({c, i, j}) = std::clamp(v, 0.0f, 1.0f);
        }
      }
    }
    prototypes_.push_back(std::move(proto));
  }

  Rng data_rng(config_.seed ^ 0xD1CEBA5Eull);
  train_.reserve(static_cast<std::size_t>(config_.train_size));
  for (std::int64_t i = 0; i < config_.train_size; ++i)
    train_.push_back(make_example(i % config_.num_classes, data_rng));
  val_.reserve(static_cast<std::size_t>(config_.val_size));
  for (std::int64_t i = 0; i < config_.val_size; ++i)
    val_.push_back(make_example(i % config_.num_classes, data_rng));
}

RawImageRecord SyntheticImageDataset::make_example(std::int64_t label, Rng& rng) const {
  const Tensor& proto = prototypes_[static_cast<std::size_t>(label)];
  RawImageRecord rec;
  rec.channels = config_.channels;
  rec.height = config_.height;
  rec.width = config_.width;
  rec.label = label;
  rec.pixels.resize(static_cast<std::size_t>(proto.numel()));
  // Per-example random circular shift + brightness + pixel noise.
  const std::int64_t si = static_cast<std::int64_t>(rng.randint(static_cast<std::uint64_t>(config_.height)));
  const std::int64_t sj = static_cast<std::int64_t>(rng.randint(static_cast<std::uint64_t>(config_.width)));
  const float brightness = rng.uniform(-0.1f, 0.1f);
  for (std::int64_t c = 0; c < config_.channels; ++c)
    for (std::int64_t i = 0; i < config_.height; ++i)
      for (std::int64_t j = 0; j < config_.width; ++j) {
        const std::int64_t pi = (i + si) % config_.height;
        const std::int64_t pj = (j + sj) % config_.width;
        float v = proto.at({c, pi, pj}) + brightness +
                  static_cast<float>(rng.normal(0.0, config_.noise));
        v = std::clamp(v, 0.0f, 1.0f);
        rec.pixels[static_cast<std::size_t>((c * config_.height + i) * config_.width + j)] =
            static_cast<std::uint8_t>(std::lround(v * 255.0f));
      }
  return rec;
}

ImageExample SyntheticImageDataset::decode(const RawImageRecord& rec) {
  ImageExample ex;
  ex.label = rec.label;
  ex.image = Tensor({rec.channels, rec.height, rec.width});
  for (std::int64_t i = 0; i < ex.image.numel(); ++i)
    ex.image[i] = static_cast<float>(rec.pixels[static_cast<std::size_t>(i)]) / 255.0f;
  return ex;
}

ReformattedImageSet ReformattedImageSet::from_raw(
    const std::vector<const RawImageRecord*>& records) {
  ReformattedImageSet set;
  set.examples_.reserve(records.size());
  for (const auto* r : records) set.examples_.push_back(SyntheticImageDataset::decode(*r));
  return set;
}

ReformattedSplits reformat(const SyntheticImageDataset& ds) {
  std::vector<const RawImageRecord*> train, val;
  train.reserve(static_cast<std::size_t>(ds.train_size()));
  for (std::int64_t i = 0; i < ds.train_size(); ++i) train.push_back(&ds.train_raw(i));
  val.reserve(static_cast<std::size_t>(ds.val_size()));
  for (std::int64_t i = 0; i < ds.val_size(); ++i) val.push_back(&ds.val_raw(i));
  return {ReformattedImageSet::from_raw(train), ReformattedImageSet::from_raw(val)};
}

}  // namespace mlperf::data
