#include "data/augment.h"

#include <algorithm>
#include <stdexcept>

namespace mlperf::data {

using tensor::Rng;
using tensor::Tensor;

Tensor RandomCrop::apply(const Tensor& img, Rng& rng) const {
  if (img.ndim() != 3) throw std::invalid_argument("RandomCrop: expects CHW");
  const std::int64_t c = img.shape()[0], h = img.shape()[1], w = img.shape()[2];
  const std::int64_t ph = h + 2 * pad_, pw = w + 2 * pad_;
  const std::int64_t oi = static_cast<std::int64_t>(rng.randint(static_cast<std::uint64_t>(2 * pad_ + 1)));
  const std::int64_t oj = static_cast<std::int64_t>(rng.randint(static_cast<std::uint64_t>(2 * pad_ + 1)));
  Tensor out({c, h, w});
  for (std::int64_t ch = 0; ch < c; ++ch)
    for (std::int64_t i = 0; i < h; ++i)
      for (std::int64_t j = 0; j < w; ++j) {
        const std::int64_t si = i + oi - pad_;
        const std::int64_t sj = j + oj - pad_;
        out.at({ch, i, j}) =
            (si >= 0 && si < h && sj >= 0 && sj < w) ? img.at({ch, si, sj}) : 0.0f;
      }
  (void)ph;
  (void)pw;
  return out;
}

Tensor RandomHorizontalFlip::apply(const Tensor& img, Rng& rng) const {
  if (img.ndim() != 3) throw std::invalid_argument("RandomHorizontalFlip: expects CHW");
  if (rng.uniform() >= p_) return img;
  const std::int64_t c = img.shape()[0], h = img.shape()[1], w = img.shape()[2];
  Tensor out({c, h, w});
  for (std::int64_t ch = 0; ch < c; ++ch)
    for (std::int64_t i = 0; i < h; ++i)
      for (std::int64_t j = 0; j < w; ++j) out.at({ch, i, j}) = img.at({ch, i, w - 1 - j});
  return out;
}

Tensor ColorJitter::apply(const Tensor& img, Rng& rng) const {
  const float scale = 1.0f + rng.uniform(-strength_, strength_);
  const float shift = rng.uniform(-strength_ * 0.5f, strength_ * 0.5f);
  return img.map([scale, shift](float v) { return std::clamp(v * scale + shift, 0.0f, 1.0f); });
}

AugmentationPipeline AugmentationPipeline::reference_image_pipeline() {
  AugmentationPipeline p;
  p.add(std::make_unique<RandomCrop>(2))
      .add(std::make_unique<RandomHorizontalFlip>(0.5f))
      .add(std::make_unique<ColorJitter>(0.15f));
  return p;
}

}  // namespace mlperf::data
