#pragma once

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace mlperf::data {

/// Axis-aligned box in normalized [0,1] image coordinates.
struct Box {
  float x1 = 0, y1 = 0, x2 = 0, y2 = 0;

  float area() const { return std::max(0.0f, x2 - x1) * std::max(0.0f, y2 - y1); }
  float cx() const { return 0.5f * (x1 + x2); }
  float cy() const { return 0.5f * (y1 + y2); }
  float w() const { return x2 - x1; }
  float h() const { return y2 - y1; }
};

/// Intersection-over-union of two boxes.
float iou(const Box& a, const Box& b);

/// One ground-truth object: box, class, and a binary mask over the image grid
/// (for the Mask R-CNN workload's segmentation branch).
struct GtObject {
  Box box;
  std::int64_t cls = 0;              // in [0, num_classes)
  tensor::Tensor mask;               // [H, W] in {0,1}
};

struct DetectionExample {
  tensor::Tensor image;              // [C, H, W]
  std::vector<GtObject> objects;
};

/// Synthetic stand-in for COCO (see DESIGN.md): images contain 1..max_objects
/// solid geometric shapes; shape kind = class (0 square, 1 disc, 2 diamond).
/// Backgrounds have textured noise so detection is non-trivial. Boxes and
/// pixel-accurate masks are derived from the rendered geometry, so the COCO-
/// style AP evaluation pipeline is exercised for real.
class SyntheticDetectionDataset {
 public:
  struct Config {
    std::int64_t height = 24;
    std::int64_t width = 24;
    std::int64_t channels = 3;
    std::int64_t num_classes = 3;
    std::int64_t max_objects = 3;
    std::int64_t train_size = 128;
    std::int64_t val_size = 64;
    float noise = 0.15f;
    std::uint64_t seed = 2020;
  };

  explicit SyntheticDetectionDataset(const Config& config);

  const Config& config() const { return config_; }
  std::int64_t train_size() const { return static_cast<std::int64_t>(train_.size()); }
  std::int64_t val_size() const { return static_cast<std::int64_t>(val_.size()); }
  const DetectionExample& train(std::int64_t i) const { return train_.at(static_cast<std::size_t>(i)); }
  const DetectionExample& val(std::int64_t i) const { return val_.at(static_cast<std::size_t>(i)); }

 private:
  DetectionExample make_example(tensor::Rng& rng) const;

  Config config_;
  std::vector<DetectionExample> train_;
  std::vector<DetectionExample> val_;
};

}  // namespace mlperf::data
