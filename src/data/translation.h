#pragma once

#include <cstdint>
#include <vector>

#include "tensor/rng.h"

namespace mlperf::data {

/// Token ids. Reserved: 0 = PAD, 1 = BOS, 2 = EOS; "words" start at 3.
using TokenSeq = std::vector<std::int64_t>;

inline constexpr std::int64_t kPad = 0;
inline constexpr std::int64_t kBos = 1;
inline constexpr std::int64_t kEos = 2;
inline constexpr std::int64_t kFirstWord = 3;

struct SentencePair {
  TokenSeq source;  ///< no BOS/EOS
  TokenSeq target;  ///< no BOS/EOS; add via helpers at batch time
};

/// How the synthetic language pair reorders tokens after the vocabulary map.
enum class ReorderRule {
  kNone,         ///< pure token-wise mapping (easiest)
  kSwapAdjacent, ///< every adjacent pair swaps (fixed positional reordering)
  kConditional,  ///< a pair swaps iff its first source word id is even
};

/// Synthetic stand-in for WMT EN-DE (see DESIGN.md substitution table).
///
/// The "language pair" is a deterministic vocabulary bijection plus a local
/// reordering rule — a task a seq2seq model genuinely must *learn* (copying
/// alone scores poorly on BLEU), while remaining learnable at mini scale. The
/// default kSwapAdjacent rule gives reliable convergence in tens of seconds;
/// kConditional (reordering depends on token identity) is substantially
/// harder and is used by the difficulty ablation. The held-out set plays the
/// role of newstest2014.
class SyntheticTranslationDataset {
 public:
  struct Config {
    std::int64_t vocab = 32;        ///< word vocabulary (excludes specials)
    std::int64_t min_len = 4;
    std::int64_t max_len = 10;
    std::int64_t train_size = 384;
    std::int64_t val_size = 96;
    ReorderRule reorder = ReorderRule::kNone;
    std::uint64_t seed = 2020;
  };

  explicit SyntheticTranslationDataset(const Config& config);

  const Config& config() const { return config_; }
  /// Total vocab size including specials (= config.vocab + kFirstWord).
  std::int64_t vocab_size() const { return config_.vocab + kFirstWord; }
  std::int64_t train_size() const { return static_cast<std::int64_t>(train_.size()); }
  std::int64_t val_size() const { return static_cast<std::int64_t>(val_.size()); }
  const SentencePair& train(std::int64_t i) const { return train_.at(static_cast<std::size_t>(i)); }
  const SentencePair& val(std::int64_t i) const { return val_.at(static_cast<std::size_t>(i)); }

  /// The ground-truth transduction (for tests and for oracle BLEU).
  TokenSeq translate_reference(const TokenSeq& source) const;

 private:
  SentencePair make_pair(tensor::Rng& rng) const;

  Config config_;
  std::vector<std::int64_t> mapping_;  // bijection over word ids
  std::vector<SentencePair> train_;
  std::vector<SentencePair> val_;
};

/// Pad a batch of sequences to the max length with kPad; returns [B, T] ids.
std::vector<TokenSeq> pad_batch(const std::vector<TokenSeq>& seqs, std::int64_t* out_len);

}  // namespace mlperf::data
