#include "data/loader.h"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "parallel/parallel_for.h"

namespace mlperf::data {

using tensor::Tensor;

/// One double-buffer slot: the producer fills it on a pool thread (or inline
/// when no pool exists) and flips `ready`; the consumer blocks on `cv`.
struct ImageLoader::Inflight {
  std::mutex mu;
  std::condition_variable cv;
  bool ready = false;
  ImageBatch batch;
  std::exception_ptr error;
};

ImageLoader::ImageLoader(const ReformattedImageSet& set, std::int64_t batch_size,
                         const AugmentationPipeline* augment, tensor::Rng& rng, bool drop_last,
                         bool prefetch)
    : set_(&set), batch_size_(batch_size), augment_(augment), rng_(&rng),
      drop_last_(drop_last), prefetch_(prefetch) {
  if (batch_size <= 0) throw std::invalid_argument("ImageLoader: batch_size must be > 0");
  start_epoch();
}

ImageLoader::~ImageLoader() { wait_inflight(); }

void ImageLoader::start_epoch() {
  wait_inflight();  // a pending batch still reads order_; let it finish
  inflight_.reset();
  ++epochs_started_;
  order_ = rng_->permutation(static_cast<std::size_t>(set_->size()));
  cursor_ = 0;
  limit_ = set_->size();
  if (drop_last_) limit_ -= limit_ % batch_size_;
  if (prefetch_) schedule_next();
}

bool ImageLoader::has_next() const {
  if (prefetch_) return inflight_ != nullptr;
  return cursor_ < limit_;
}

bool ImageLoader::epoch_exhausted() const { return cursor_ >= limit_ && !has_next(); }

std::int64_t ImageLoader::batches_per_epoch() const {
  if (drop_last_) return set_->size() / batch_size_;
  return (set_->size() + batch_size_ - 1) / batch_size_;
}

ImageBatch ImageLoader::assemble(std::int64_t begin, std::int64_t end, tensor::Rng& rng) const {
  const std::int64_t n = end - begin;
  const ImageExample& first =
      set_->get(static_cast<std::int64_t>(order_[static_cast<std::size_t>(begin)]));
  const auto& ishape = first.image.shape();
  ImageBatch batch;
  // Every element is covered by the per-example copies below, so the batch
  // buffer can come from the pool without zero-fill. Producer-thread acquire /
  // consumer-thread release recycles through the pool's shared (not TLS) tier
  // because batch buffers exceed kSharedBucketFloats.
  batch.images = Tensor::uninitialized({n, ishape[0], ishape[1], ishape[2]});
  batch.labels.resize(static_cast<std::size_t>(n));
  const std::int64_t img_numel = first.image.numel();
  for (std::int64_t b = 0; b < n; ++b) {
    const ImageExample& ex =
        set_->get(static_cast<std::int64_t>(order_[static_cast<std::size_t>(begin + b)]));
    Tensor img = augment_ ? augment_->apply(ex.image, rng) : ex.image;
    if (img.numel() != img_numel) throw std::logic_error("ImageLoader: inconsistent image size");
    std::copy(img.vec().begin(), img.vec().end(), batch.images.vec().begin() + b * img_numel);
    batch.labels[static_cast<std::size_t>(b)] = ex.label;
  }
  return batch;
}

void ImageLoader::schedule_next() {
  inflight_.reset();
  if (cursor_ >= limit_) return;
  const std::int64_t begin = cursor_;
  const std::int64_t end = std::min(cursor_ + batch_size_, limit_);
  cursor_ = end;
  // The batch's augmentation stream is split off on this (consumer) thread,
  // in batch order, so the draws are a function of the seed alone — never of
  // how the producer task is scheduled.
  tensor::Rng batch_rng = augment_ ? rng_->split() : tensor::Rng(0);
  auto job = std::make_shared<Inflight>();
  inflight_ = job;
  auto produce = [this, job, begin, end, batch_rng]() mutable {
    try {
      job->batch = assemble(begin, end, batch_rng);
    } catch (...) {
      job->error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(job->mu);
      job->ready = true;
    }
    job->cv.notify_all();
  };
  parallel::ThreadPool* pool = parallel::global_pool();
  if (pool)
    pool->enqueue(std::move(produce));
  else
    produce();
}

void ImageLoader::wait_inflight() const {
  if (!inflight_) return;
  std::unique_lock<std::mutex> lock(inflight_->mu);
  inflight_->cv.wait(lock, [this] { return inflight_->ready; });
}

ImageBatch ImageLoader::next() {
  if (!has_next()) throw std::logic_error("ImageLoader: epoch exhausted");
  if (prefetch_) {
    wait_inflight();
    std::shared_ptr<Inflight> job = std::move(inflight_);
    schedule_next();  // overlap batch k+1 with the consumer's work on batch k
    if (job->error) std::rethrow_exception(job->error);
    return std::move(job->batch);
  }
  // Non-prefetch path: thread the run Rng through every example, exactly as
  // the original single-threaded loader did.
  const std::int64_t end = std::min(cursor_ + batch_size_, limit_);
  ImageBatch batch = assemble(cursor_, end, *rng_);
  cursor_ = end;
  return batch;
}

ImageBatch make_batch(const std::vector<const ImageExample*>& examples) {
  if (examples.empty()) throw std::invalid_argument("make_batch: empty");
  const auto& ishape = examples[0]->image.shape();
  const std::int64_t n = static_cast<std::int64_t>(examples.size());
  ImageBatch batch;
  // Fully overwritten by the copies below — pooled, no zero-fill.
  batch.images = Tensor::uninitialized({n, ishape[0], ishape[1], ishape[2]});
  batch.labels.resize(examples.size());
  const std::int64_t img_numel = examples[0]->image.numel();
  for (std::int64_t b = 0; b < n; ++b) {
    const auto* ex = examples[static_cast<std::size_t>(b)];
    std::copy(ex->image.vec().begin(), ex->image.vec().end(),
              batch.images.vec().begin() + b * img_numel);
    batch.labels[static_cast<std::size_t>(b)] = ex->label;
  }
  return batch;
}

}  // namespace mlperf::data
