#include "data/loader.h"

#include <algorithm>
#include <stdexcept>

namespace mlperf::data {

using tensor::Tensor;

ImageLoader::ImageLoader(const ReformattedImageSet& set, std::int64_t batch_size,
                         const AugmentationPipeline* augment, tensor::Rng& rng, bool drop_last)
    : set_(&set), batch_size_(batch_size), augment_(augment), rng_(&rng),
      drop_last_(drop_last) {
  if (batch_size <= 0) throw std::invalid_argument("ImageLoader: batch_size must be > 0");
  start_epoch();
}

void ImageLoader::start_epoch() {
  order_ = rng_->permutation(static_cast<std::size_t>(set_->size()));
  cursor_ = 0;
  limit_ = set_->size();
  if (drop_last_) limit_ -= limit_ % batch_size_;
}

std::int64_t ImageLoader::batches_per_epoch() const {
  if (drop_last_) return set_->size() / batch_size_;
  return (set_->size() + batch_size_ - 1) / batch_size_;
}

ImageBatch ImageLoader::next() {
  if (!has_next()) throw std::logic_error("ImageLoader: epoch exhausted");
  const std::int64_t end = std::min(cursor_ + batch_size_, limit_);
  const std::int64_t n = end - cursor_;
  const ImageExample& first = set_->get(static_cast<std::int64_t>(order_[static_cast<std::size_t>(cursor_)]));
  const auto& ishape = first.image.shape();
  ImageBatch batch;
  batch.images = Tensor({n, ishape[0], ishape[1], ishape[2]});
  batch.labels.resize(static_cast<std::size_t>(n));
  const std::int64_t img_numel = first.image.numel();
  for (std::int64_t b = 0; b < n; ++b) {
    const ImageExample& ex =
        set_->get(static_cast<std::int64_t>(order_[static_cast<std::size_t>(cursor_ + b)]));
    Tensor img = augment_ ? augment_->apply(ex.image, *rng_) : ex.image;
    if (img.numel() != img_numel) throw std::logic_error("ImageLoader: inconsistent image size");
    std::copy(img.vec().begin(), img.vec().end(), batch.images.vec().begin() + b * img_numel);
    batch.labels[static_cast<std::size_t>(b)] = ex.label;
  }
  cursor_ = end;
  return batch;
}

ImageBatch make_batch(const std::vector<const ImageExample*>& examples) {
  if (examples.empty()) throw std::invalid_argument("make_batch: empty");
  const auto& ishape = examples[0]->image.shape();
  const std::int64_t n = static_cast<std::int64_t>(examples.size());
  ImageBatch batch;
  batch.images = Tensor({n, ishape[0], ishape[1], ishape[2]});
  batch.labels.resize(examples.size());
  const std::int64_t img_numel = examples[0]->image.numel();
  for (std::int64_t b = 0; b < n; ++b) {
    const auto* ex = examples[static_cast<std::size_t>(b)];
    std::copy(ex->image.vec().begin(), ex->image.vec().end(),
              batch.images.vec().begin() + b * img_numel);
    batch.labels[static_cast<std::size_t>(b)] = ex->label;
  }
  return batch;
}

}  // namespace mlperf::data
