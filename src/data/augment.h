#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace mlperf::data {

/// One augmentation step over a CHW image. Implementations must be pure
/// functions of (input, rng) so a fixed seed reproduces the exact pipeline.
class Augmentation {
 public:
  virtual ~Augmentation() = default;
  virtual tensor::Tensor apply(const tensor::Tensor& img, tensor::Rng& rng) const = 0;
  virtual std::string name() const = 0;
};

/// Pad by `pad` (zeros) then take a random crop back to the original size —
/// the classic random-crop used by the ResNet reference.
class RandomCrop final : public Augmentation {
 public:
  explicit RandomCrop(std::int64_t pad) : pad_(pad) {}
  tensor::Tensor apply(const tensor::Tensor& img, tensor::Rng& rng) const override;
  std::string name() const override { return "random_crop"; }

 private:
  std::int64_t pad_;
};

/// Horizontal mirror with probability p.
class RandomHorizontalFlip final : public Augmentation {
 public:
  explicit RandomHorizontalFlip(float p = 0.5f) : p_(p) {}
  tensor::Tensor apply(const tensor::Tensor& img, tensor::Rng& rng) const override;
  std::string name() const override { return "horizontal_flip"; }

 private:
  float p_;
};

/// Multiplicative brightness/contrast jitter.
class ColorJitter final : public Augmentation {
 public:
  explicit ColorJitter(float strength = 0.2f) : strength_(strength) {}
  tensor::Tensor apply(const tensor::Tensor& img, tensor::Rng& rng) const override;
  std::string name() const override { return "color_jitter"; }

 private:
  float strength_;
};

/// An ordered augmentation pipeline. Order is part of the pipeline's identity
/// (the paper's §2.2.4 notes frameworks disagree on augmentation order, which
/// breaks workload equivalence), so `signature()` — used by the Closed-
/// division compliance check — encodes it.
class AugmentationPipeline {
 public:
  AugmentationPipeline() = default;

  AugmentationPipeline& add(std::unique_ptr<Augmentation> aug) {
    steps_.push_back(std::move(aug));
    return *this;
  }

  tensor::Tensor apply(const tensor::Tensor& img, tensor::Rng& rng) const {
    tensor::Tensor out = img;
    for (const auto& s : steps_) out = s->apply(out, rng);
    return out;
  }

  /// "random_crop|horizontal_flip|color_jitter" — order-sensitive.
  std::string signature() const {
    std::string sig;
    for (const auto& s : steps_) {
      if (!sig.empty()) sig += '|';
      sig += s->name();
    }
    return sig;
  }

  std::size_t size() const { return steps_.size(); }

  /// The reference pipeline for image classification (crop -> flip -> jitter).
  static AugmentationPipeline reference_image_pipeline();

 private:
  std::vector<std::unique_ptr<Augmentation>> steps_;
};

}  // namespace mlperf::data
