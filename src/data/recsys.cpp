#include "data/recsys.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/tensor.h"

namespace mlperf::data {

using tensor::Rng;

ImplicitCfDataset::ImplicitCfDataset(const Config& config) : config_(config) {
  if (config_.interactions_per_user < 2)
    throw std::invalid_argument("ImplicitCfDataset: need >= 2 interactions per user (1 held out)");
  if (config_.num_items - config_.interactions_per_user < config_.num_eval_negatives)
    throw std::invalid_argument(
        "ImplicitCfDataset: not enough non-positive items to sample num_eval_negatives "
        "distinct eval negatives per user");
  Rng rng(config_.seed ^ 0x5EC0F1A7ULL);

  // Latent factors: users drawn from a handful of taste clusters; item
  // popularity Zipf-like via a rank-dependent bias.
  const std::int64_t d = config_.latent_dim;
  const std::int64_t clusters = 4;
  std::vector<std::vector<float>> cluster_centers(
      static_cast<std::size_t>(clusters), std::vector<float>(static_cast<std::size_t>(d)));
  for (auto& c : cluster_centers)
    for (auto& v : c) v = static_cast<float>(rng.normal(0.0, 1.0));

  std::vector<std::vector<float>> user_f(static_cast<std::size_t>(config_.num_users));
  for (std::int64_t u = 0; u < config_.num_users; ++u) {
    const auto& center = cluster_centers[static_cast<std::size_t>(
        rng.randint(static_cast<std::uint64_t>(clusters)))];
    auto& f = user_f[static_cast<std::size_t>(u)];
    f.resize(static_cast<std::size_t>(d));
    for (std::int64_t j = 0; j < d; ++j)
      f[static_cast<std::size_t>(j)] =
          center[static_cast<std::size_t>(j)] +
          static_cast<float>(rng.normal(0.0, config_.user_noise));
  }
  std::vector<std::vector<float>> item_f(static_cast<std::size_t>(config_.num_items));
  std::vector<float> item_bias(static_cast<std::size_t>(config_.num_items));
  for (std::int64_t i = 0; i < config_.num_items; ++i) {
    auto& f = item_f[static_cast<std::size_t>(i)];
    f.resize(static_cast<std::size_t>(d));
    for (std::int64_t j = 0; j < d; ++j)
      f[static_cast<std::size_t>(j)] = static_cast<float>(rng.normal(0.0, 1.0));
    // Zipf-like popularity: early item ids are much more popular.
    item_bias[static_cast<std::size_t>(i)] =
        1.5f / std::sqrt(1.0f + static_cast<float>(i)) - 0.6f;
  }

  positives_.resize(static_cast<std::size_t>(config_.num_users));
  holdout_.resize(static_cast<std::size_t>(config_.num_users));
  auto affinity = [&](std::int64_t u, std::int64_t i) {
    float s = item_bias[static_cast<std::size_t>(i)];
    for (std::int64_t j = 0; j < d; ++j)
      s += user_f[static_cast<std::size_t>(u)][static_cast<std::size_t>(j)] *
           item_f[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] *
           config_.signal_strength;
    return s;
  };

  for (std::int64_t u = 0; u < config_.num_users; ++u) {
    auto& pos = positives_[static_cast<std::size_t>(u)];
    std::int64_t guard = 0;
    while (static_cast<std::int64_t>(pos.size()) < config_.interactions_per_user) {
      const std::int64_t i = static_cast<std::int64_t>(
          rng.randint(static_cast<std::uint64_t>(config_.num_items)));
      const float p = 1.0f / (1.0f + std::exp(-affinity(u, i)));
      if (rng.uniform() < p) pos.insert(i);
      if (++guard > 100000)
        throw std::logic_error("ImplicitCfDataset: failed to sample interactions");
    }
    // Hold out one positive (the "last" interaction), train on the rest.
    std::vector<std::int64_t> items(pos.begin(), pos.end());
    std::sort(items.begin(), items.end());
    const std::int64_t held =
        items[static_cast<std::size_t>(rng.randint(static_cast<std::uint64_t>(items.size())))];
    holdout_[static_cast<std::size_t>(u)] = held;
    for (std::int64_t item : items)
      if (item != held) train_.push_back({u, item});
  }

  // Fixed eval candidate lists (holdout + sampled negatives), per NCF protocol.
  eval_candidates_.resize(static_cast<std::size_t>(config_.num_users));
  for (std::int64_t u = 0; u < config_.num_users; ++u) {
    auto& cand = eval_candidates_[static_cast<std::size_t>(u)];
    cand.push_back(holdout_[static_cast<std::size_t>(u)]);
    while (static_cast<std::int64_t>(cand.size()) < config_.num_eval_negatives + 1) {
      const std::int64_t i = static_cast<std::int64_t>(
          rng.randint(static_cast<std::uint64_t>(config_.num_items)));
      if (!positives_[static_cast<std::size_t>(u)].count(i) &&
          std::find(cand.begin(), cand.end(), i) == cand.end())
        cand.push_back(i);
    }
  }
}

std::int64_t ImplicitCfDataset::sample_negative(std::int64_t user, Rng& rng) const {
  const auto& pos = positives_[static_cast<std::size_t>(user)];
  std::int64_t guard = 0;
  for (;;) {
    const std::int64_t i = static_cast<std::int64_t>(
        rng.randint(static_cast<std::uint64_t>(config_.num_items)));
    if (!pos.count(i)) return i;
    if (++guard > 100000) throw std::logic_error("sample_negative: item space exhausted");
  }
}

}  // namespace mlperf::data
