#include "data/translation.h"

#include <algorithm>
#include <stdexcept>

namespace mlperf::data {

using tensor::Rng;

SyntheticTranslationDataset::SyntheticTranslationDataset(const Config& config)
    : config_(config) {
  if (config_.min_len < 2 || config_.max_len < config_.min_len)
    throw std::invalid_argument("SyntheticTranslationDataset: bad length range");
  Rng map_rng(config_.seed ^ 0x7A6513A7ULL);
  mapping_.resize(static_cast<std::size_t>(config_.vocab));
  for (std::int64_t i = 0; i < config_.vocab; ++i) mapping_[static_cast<std::size_t>(i)] = i;
  map_rng.shuffle(mapping_);

  Rng rng(config_.seed ^ 0x77A15EEDULL);
  train_.reserve(static_cast<std::size_t>(config_.train_size));
  for (std::int64_t i = 0; i < config_.train_size; ++i) train_.push_back(make_pair(rng));
  val_.reserve(static_cast<std::size_t>(config_.val_size));
  for (std::int64_t i = 0; i < config_.val_size; ++i) val_.push_back(make_pair(rng));
}

TokenSeq SyntheticTranslationDataset::translate_reference(const TokenSeq& source) const {
  // 1) map each word through the bijection; 2) apply the reordering rule.
  TokenSeq out;
  out.reserve(source.size());
  for (std::int64_t tok : source) {
    const std::int64_t word = tok - kFirstWord;
    if (word < 0 || word >= config_.vocab)
      throw std::out_of_range("translate_reference: token out of range");
    out.push_back(mapping_[static_cast<std::size_t>(word)] + kFirstWord);
  }
  for (std::size_t i = 0; i + 1 < out.size(); i += 2) {
    switch (config_.reorder) {
      case ReorderRule::kNone:
        break;
      case ReorderRule::kSwapAdjacent:
        std::swap(out[i], out[i + 1]);
        break;
      case ReorderRule::kConditional:
        if ((source[i] - kFirstWord) % 2 == 0) std::swap(out[i], out[i + 1]);
        break;
    }
  }
  return out;
}

SentencePair SyntheticTranslationDataset::make_pair(Rng& rng) const {
  const std::int64_t len =
      config_.min_len + static_cast<std::int64_t>(rng.randint(
                            static_cast<std::uint64_t>(config_.max_len - config_.min_len + 1)));
  SentencePair p;
  p.source.reserve(static_cast<std::size_t>(len));
  for (std::int64_t i = 0; i < len; ++i)
    p.source.push_back(kFirstWord + static_cast<std::int64_t>(rng.randint(
                                        static_cast<std::uint64_t>(config_.vocab))));
  p.target = translate_reference(p.source);
  return p;
}

std::vector<TokenSeq> pad_batch(const std::vector<TokenSeq>& seqs, std::int64_t* out_len) {
  std::int64_t max_len = 0;
  for (const auto& s : seqs)
    max_len = std::max(max_len, static_cast<std::int64_t>(s.size()));
  std::vector<TokenSeq> out;
  out.reserve(seqs.size());
  for (const auto& s : seqs) {
    TokenSeq padded = s;
    padded.resize(static_cast<std::size_t>(max_len), kPad);
    out.push_back(std::move(padded));
  }
  if (out_len) *out_len = max_len;
  return out;
}

}  // namespace mlperf::data
