#include "data/detection.h"

#include <algorithm>
#include <cmath>

namespace mlperf::data {

using tensor::Rng;
using tensor::Tensor;

float iou(const Box& a, const Box& b) {
  const float ix1 = std::max(a.x1, b.x1);
  const float iy1 = std::max(a.y1, b.y1);
  const float ix2 = std::min(a.x2, b.x2);
  const float iy2 = std::min(a.y2, b.y2);
  const float inter = std::max(0.0f, ix2 - ix1) * std::max(0.0f, iy2 - iy1);
  const float uni = a.area() + b.area() - inter;
  return uni > 0.0f ? inter / uni : 0.0f;
}

SyntheticDetectionDataset::SyntheticDetectionDataset(const Config& config) : config_(config) {
  Rng rng(config_.seed ^ 0xC0C0AAULL);
  train_.reserve(static_cast<std::size_t>(config_.train_size));
  for (std::int64_t i = 0; i < config_.train_size; ++i) train_.push_back(make_example(rng));
  val_.reserve(static_cast<std::size_t>(config_.val_size));
  for (std::int64_t i = 0; i < config_.val_size; ++i) val_.push_back(make_example(rng));
}

DetectionExample SyntheticDetectionDataset::make_example(Rng& rng) const {
  const std::int64_t h = config_.height, w = config_.width, c = config_.channels;
  DetectionExample ex;
  ex.image = Tensor({c, h, w});
  // Textured background.
  for (std::int64_t i = 0; i < ex.image.numel(); ++i)
    ex.image[i] = std::clamp(0.4f + static_cast<float>(rng.normal(0.0, config_.noise)), 0.0f, 1.0f);

  const std::int64_t n_obj = 1 + static_cast<std::int64_t>(rng.randint(
                                  static_cast<std::uint64_t>(config_.max_objects)));
  for (std::int64_t o = 0; o < n_obj; ++o) {
    const std::int64_t cls =
        static_cast<std::int64_t>(rng.randint(static_cast<std::uint64_t>(config_.num_classes)));
    // Object size 1/5 .. 1/2 of the image; fully inside.
    const std::int64_t size = 4 + static_cast<std::int64_t>(rng.randint(
                                     static_cast<std::uint64_t>(std::max<std::int64_t>(h / 2 - 4, 1))));
    const std::int64_t ci = static_cast<std::int64_t>(rng.randint(
        static_cast<std::uint64_t>(std::max<std::int64_t>(h - size, 1))));
    const std::int64_t cj = static_cast<std::int64_t>(rng.randint(
        static_cast<std::uint64_t>(std::max<std::int64_t>(w - size, 1))));
    // Distinct colour per class, jittered.
    float color[3] = {0.1f, 0.1f, 0.1f};
    color[static_cast<std::size_t>(cls % 3)] = 0.9f;
    const float jitter = rng.uniform(-0.08f, 0.08f);

    GtObject gt;
    gt.cls = cls;
    gt.mask = Tensor({h, w});
    const float r = static_cast<float>(size) / 2.0f;
    const float mi = static_cast<float>(ci) + r;
    const float mj = static_cast<float>(cj) + r;
    for (std::int64_t i = ci; i < ci + size && i < h; ++i)
      for (std::int64_t j = cj; j < cj + size && j < w; ++j) {
        bool inside = false;
        const float di = static_cast<float>(i) + 0.5f - mi;
        const float dj = static_cast<float>(j) + 0.5f - mj;
        switch (cls % 3) {
          case 0: inside = true; break;                               // square
          case 1: inside = di * di + dj * dj <= r * r; break;         // disc
          case 2: inside = std::fabs(di) + std::fabs(dj) <= r; break; // diamond
        }
        if (!inside) continue;
        gt.mask.at({i, j}) = 1.0f;
        for (std::int64_t ch = 0; ch < c; ++ch)
          ex.image.at({ch, i, j}) =
              std::clamp(color[static_cast<std::size_t>(ch % 3)] + jitter, 0.0f, 1.0f);
      }
    gt.box = Box{static_cast<float>(cj) / static_cast<float>(w),
                 static_cast<float>(ci) / static_cast<float>(h),
                 static_cast<float>(cj + size) / static_cast<float>(w),
                 static_cast<float>(ci + size) / static_cast<float>(h)};
    ex.objects.push_back(std::move(gt));
  }
  return ex;
}

}  // namespace mlperf::data
