#pragma once

#include "data/augment.h"
#include "data/dataset.h"

namespace mlperf::data {

/// A minibatch of images: NCHW tensor plus labels.
struct ImageBatch {
  tensor::Tensor images;             // [N, C, H, W]
  std::vector<std::int64_t> labels;  // size N
};

/// Epoch-based minibatch loader over a reformatted image set.
///
/// Each epoch draws a fresh shuffle from the run's Rng (the paper §2.2.3
/// lists "random data traversal" as a variance source — fixing the seed fixes
/// the traversal). Augmentation runs per example at load time, i.e. inside
/// the timed portion of training (paper §3.2.1).
class ImageLoader {
 public:
  ImageLoader(const ReformattedImageSet& set, std::int64_t batch_size,
              const AugmentationPipeline* augment, tensor::Rng& rng, bool drop_last = false);

  /// Start a new epoch (reshuffles).
  void start_epoch();

  /// True if another batch is available this epoch.
  bool has_next() const { return cursor_ < limit_; }

  /// Next minibatch; the last one may be smaller unless drop_last.
  ImageBatch next();

  std::int64_t batches_per_epoch() const;

 private:
  const ReformattedImageSet* set_;
  std::int64_t batch_size_;
  const AugmentationPipeline* augment_;  // nullptr = no augmentation (eval)
  tensor::Rng* rng_;
  bool drop_last_;
  std::vector<std::size_t> order_;
  std::int64_t cursor_ = 0;
  std::int64_t limit_ = 0;
};

/// Assemble a batch tensor from (already augmented) examples.
ImageBatch make_batch(const std::vector<const ImageExample*>& examples);

}  // namespace mlperf::data
