#pragma once

#include <memory>

#include "data/augment.h"
#include "data/dataset.h"
#include "parallel/thread_pool.h"

namespace mlperf::data {

/// A minibatch of images: NCHW tensor plus labels.
struct ImageBatch {
  tensor::Tensor images;             // [N, C, H, W]
  std::vector<std::int64_t> labels;  // size N
};

/// Epoch-based minibatch loader over a reformatted image set.
///
/// Each epoch draws a fresh shuffle from the run's Rng (the paper §2.2.3
/// lists "random data traversal" as a variance source — fixing the seed fixes
/// the traversal). Augmentation runs per example at load time, i.e. inside
/// the timed portion of training (paper §3.2.1).
///
/// With `prefetch` enabled the loader double-buffers: batch k+1 is augmented
/// and assembled on the global parallel::ThreadPool while batch k trains.
/// The shuffle order is unchanged, and each batch's augmentation draws come
/// from a child Rng split off the run Rng on the consumer thread, in batch
/// order — so a fixed seed yields the same batches at any thread count (and
/// with no pool at all), just not the same draws as the non-prefetch path,
/// which threads one Rng through every example.
class ImageLoader {
 public:
  ImageLoader(const ReformattedImageSet& set, std::int64_t batch_size,
              const AugmentationPipeline* augment, tensor::Rng& rng, bool drop_last = false,
              bool prefetch = false);

  /// Waits for any in-flight prefetch before tearing down.
  ~ImageLoader();

  ImageLoader(const ImageLoader&) = delete;
  ImageLoader& operator=(const ImageLoader&) = delete;

  /// Start a new epoch (reshuffles; discards any in-flight prefetched batch).
  void start_epoch();

  /// True if another batch is available this epoch.
  bool has_next() const;

  /// Next minibatch; the last one may be smaller unless drop_last.
  ImageBatch next();

  std::int64_t batches_per_epoch() const;

  bool prefetch_enabled() const { return prefetch_; }

  /// ---- checkpoint support -----------------------------------------------
  /// Block until any in-flight prefetched batch has been fully assembled
  /// (the batch stays pending for the next next()). A checkpoint must drain
  /// the loader before snapshotting so no producer task is still running.
  void drain() const { wait_inflight(); }
  /// True when every batch of the current epoch has been consumed — the only
  /// position at which the traversal state is checkpointable: between
  /// epochs the entire traversal is a pure function of the run Rng, so a
  /// restored Rng replays the next epoch's shuffle and augmentation draws
  /// exactly. (Mid-epoch, a prefetching loader has already consumed the rng
  /// split for the batch in flight, so a mid-epoch snapshot could not resume
  /// bitwise-identically.)
  bool epoch_exhausted() const;
  /// Number of start_epoch() calls so far (construction counts as the
  /// first). Checkpoints record it so a restored run can audit that it
  /// resumes at the same traversal position.
  std::int64_t epochs_started() const { return epochs_started_; }
  std::int64_t cursor() const { return cursor_; }
  std::int64_t epoch_limit() const { return limit_; }

 private:
  struct Inflight;

  /// Kick off assembly of the next batch (prefetch mode). Advances cursor_.
  void schedule_next();
  void wait_inflight() const;
  /// Build the batch for shuffle positions [begin, end); `rng` drives the
  /// augmentation draws (ignored without an augmentation pipeline). Reads
  /// only epoch state that is frozen while a batch is in flight, so it is
  /// safe to run off-thread with a private rng.
  ImageBatch assemble(std::int64_t begin, std::int64_t end, tensor::Rng& rng) const;

  const ReformattedImageSet* set_;
  std::int64_t batch_size_;
  const AugmentationPipeline* augment_;  // nullptr = no augmentation (eval)
  tensor::Rng* rng_;
  bool drop_last_;
  bool prefetch_;
  std::vector<std::size_t> order_;
  std::int64_t cursor_ = 0;
  std::int64_t limit_ = 0;
  std::int64_t epochs_started_ = 0;
  std::shared_ptr<Inflight> inflight_;  // non-null = one batch pending/ready
};

/// Assemble a batch tensor from (already augmented) examples.
ImageBatch make_batch(const std::vector<const ImageExample*>& examples);

}  // namespace mlperf::data
