#include "nn/functional.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

#include "core/op_profile.h"
#include "nn/module.h"
#include "parallel/parallel_for.h"
#include "tensor/gemm.h"
#include "tensor/scratch.h"

namespace mlperf::nn {

using autograd::Variable;
using tensor::Shape;
using tensor::Tensor;

namespace init {

Tensor kaiming_normal(Shape shape, std::int64_t fan_in, tensor::Rng& rng) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return Tensor::randn(std::move(shape), rng, 0.0f, stddev);
}

Tensor xavier_uniform(Shape shape, std::int64_t fan_in, std::int64_t fan_out, tensor::Rng& rng) {
  const float a = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::rand(std::move(shape), rng, -a, a);
}

}  // namespace init

namespace {

struct ConvDims {
  std::int64_t n, c, h, w, o, kh, kw, oh, ow;
};

ConvDims conv_dims(const Tensor& input, const Tensor& weight, std::int64_t stride,
                   std::int64_t padding) {
  if (input.ndim() != 4 || weight.ndim() != 4)
    throw std::invalid_argument("conv2d: input and weight must be rank 4");
  ConvDims d{};
  d.n = input.shape()[0];
  d.c = input.shape()[1];
  d.h = input.shape()[2];
  d.w = input.shape()[3];
  d.o = weight.shape()[0];
  d.kh = weight.shape()[2];
  d.kw = weight.shape()[3];
  if (weight.shape()[1] != d.c) throw std::invalid_argument("conv2d: channel mismatch");
  d.oh = (d.h + 2 * padding - d.kh) / stride + 1;
  d.ow = (d.w + 2 * padding - d.kw) / stride + 1;
  if (d.oh <= 0 || d.ow <= 0) throw std::invalid_argument("conv2d: output would be empty");
  return d;
}

// cols: [C*KH*KW, OH*OW] for one sample.
void im2col(const float* src, const ConvDims& d, std::int64_t stride, std::int64_t padding,
            float* cols) {
  const std::int64_t patch = d.kh * d.kw;
  for (std::int64_t c = 0; c < d.c; ++c) {
    for (std::int64_t p = 0; p < patch; ++p) {
      const std::int64_t ki = p / d.kw, kj = p % d.kw;
      float* row = cols + (c * patch + p) * (d.oh * d.ow);
      for (std::int64_t oi = 0; oi < d.oh; ++oi) {
        const std::int64_t ii = oi * stride - padding + ki;
        for (std::int64_t oj = 0; oj < d.ow; ++oj) {
          const std::int64_t jj = oj * stride - padding + kj;
          row[oi * d.ow + oj] = (ii >= 0 && ii < d.h && jj >= 0 && jj < d.w)
                                    ? src[(c * d.h + ii) * d.w + jj]
                                    : 0.0f;
        }
      }
    }
  }
}

void col2im_accumulate(const float* cols, const ConvDims& d, std::int64_t stride,
                       std::int64_t padding, float* dst) {
  const std::int64_t patch = d.kh * d.kw;
  for (std::int64_t c = 0; c < d.c; ++c) {
    for (std::int64_t p = 0; p < patch; ++p) {
      const std::int64_t ki = p / d.kw, kj = p % d.kw;
      const float* row = cols + (c * patch + p) * (d.oh * d.ow);
      for (std::int64_t oi = 0; oi < d.oh; ++oi) {
        const std::int64_t ii = oi * stride - padding + ki;
        if (ii < 0 || ii >= d.h) continue;
        for (std::int64_t oj = 0; oj < d.ow; ++oj) {
          const std::int64_t jj = oj * stride - padding + kj;
          if (jj < 0 || jj >= d.w) continue;
          dst[(c * d.h + ii) * d.w + jj] += row[oi * d.ow + oj];
        }
      }
    }
  }
}

// ---- step-scoped im2col pack cache -----------------------------------------

std::atomic<std::int64_t> g_im2col_calls{0};
std::atomic<bool> g_pack_cache_enabled{true};
std::atomic<std::int64_t> g_pack_cache_cap{std::int64_t{256} << 20};
std::atomic<std::int64_t> g_pack_cache_live{0};

// One forward's im2col patch slabs, [N, col_rows*col_cols]. The backward
// closure holds the only owning reference, so Variable::backward()'s graph
// teardown (or plain graph destruction) is what releases the buffer back to
// the TensorPool — the cache is scoped to the step by construction, no
// explicit invalidation step exists or is needed.
struct PackCache {
  tensor::Tensor cols;
  std::int64_t bytes = 0;
  ~PackCache() { g_pack_cache_live.fetch_sub(bytes, std::memory_order_relaxed); }
};

}  // namespace

void set_conv_pack_cache(bool enabled, std::int64_t cap_bytes) {
  g_pack_cache_enabled.store(enabled, std::memory_order_relaxed);
  g_pack_cache_cap.store(cap_bytes, std::memory_order_relaxed);
}

bool conv_pack_cache_enabled() { return g_pack_cache_enabled.load(std::memory_order_relaxed); }

std::int64_t conv_pack_cache_cap_bytes() {
  return g_pack_cache_cap.load(std::memory_order_relaxed);
}

std::int64_t conv_pack_cache_live_bytes() {
  return g_pack_cache_live.load(std::memory_order_relaxed);
}

std::int64_t im2col_calls() { return g_im2col_calls.load(std::memory_order_relaxed); }

Variable conv2d(const Variable& input, const Variable& weight, const Variable& bias,
                std::int64_t stride, std::int64_t padding) {
  const ConvDims d = conv_dims(input.value(), weight.value(), stride, padding);
  const bool has_bias = bias.numel() > 0;
  if (has_bias && bias.numel() != d.o) throw std::invalid_argument("conv2d: bias size mismatch");

  const std::int64_t col_rows = d.c * d.kh * d.kw;
  const std::int64_t col_cols = d.oh * d.ow;
  Tensor out({d.n, d.o, d.oh, d.ow});

  // When backward will need dW, keep this forward's patch slabs alive so the
  // dW pass reads them instead of re-running im2col per sample. An op whose
  // slab would push the global live total past the cap just runs uncached.
  std::shared_ptr<PackCache> cache;
  if (weight.requires_grad() && g_pack_cache_enabled.load(std::memory_order_relaxed)) {
    const std::int64_t bytes =
        d.n * col_rows * col_cols * static_cast<std::int64_t>(sizeof(float));
    if (g_pack_cache_live.load(std::memory_order_relaxed) + bytes <=
        g_pack_cache_cap.load(std::memory_order_relaxed)) {
      cache = std::make_shared<PackCache>();
      // Every slab is fully written by im2col below before the op returns.
      cache->cols = Tensor::uninitialized({d.n, col_rows * col_cols});
      cache->bytes = bytes;
      g_pack_cache_live.fetch_add(bytes, std::memory_order_relaxed);
    }
  }

  // Split over samples: each sample's output slab is written by exactly one
  // task with a kernel whose per-element accumulation order is fixed, so
  // results are bitwise identical at any thread count. The GEMM pack panels
  // (and, uncached, the im2col column buffer) live in the task's scratch
  // arena and are reused across samples and steps.
  g_im2col_calls.fetch_add(1, std::memory_order_relaxed);
  {
    core::OpTimer op_timer(core::ProfiledOp::kConvForward);
    parallel::parallel_for(
        parallel::grain_for(d.o * col_rows * col_cols), d.n,
        [&](std::int64_t s_begin, std::int64_t s_end) {
          tensor::ScratchArena::Frame frame(tensor::ScratchArena::tls());
          float* scratch_cols = cache ? nullptr : frame.alloc(col_rows * col_cols);
          float* bp = frame.alloc(tensor::gemm_packed_b_size(col_rows, col_cols));
          for (std::int64_t s = s_begin; s < s_end; ++s) {
            float* cols =
                cache ? cache->cols.data() + s * col_rows * col_cols : scratch_cols;
            {
              core::OpTimer t(core::ProfiledOp::kIm2col);
              im2col(input.value().data() + s * d.c * d.h * d.w, d, stride, padding, cols);
            }
            tensor::gemm_pack_b(tensor::Trans::N, cols, col_cols, col_rows, col_cols, bp);
            tensor::gemm_packed(tensor::Trans::N, weight.value().data(), col_rows, bp, d.o,
                                col_cols, col_rows, out.data() + s * d.o * col_cols, col_cols);
            if (has_bias) {
              for (std::int64_t o = 0; o < d.o; ++o) {
                const float b = bias.value()[o];
                float* dst = out.data() + (s * d.o + o) * col_cols;
                for (std::int64_t i = 0; i < col_cols; ++i) dst[i] += b;
              }
            }
          }
        });
  }

  auto in_node = input.node();
  auto w_node = weight.node();
  auto b_node = bias.node();
  std::vector<Variable> parents = {input, weight};
  if (has_bias) parents.push_back(bias);
  return Variable::from_op(
      std::move(out), std::move(parents),
      [in_node, w_node, b_node, d, stride, padding, has_bias, cache](const Tensor& g) {
        const std::int64_t col_rows = d.c * d.kh * d.kw;
        const std::int64_t col_cols = d.oh * d.ow;
        const bool need_w = w_node->requires_grad;
        const bool need_x = in_node->requires_grad;
        Tensor dW({d.o, d.c, d.kh, d.kw});
        Tensor dX(in_node->value.shape());
        const std::int64_t wnumel = dW.numel();
        // dW accumulates across samples, so each sample gets a private
        // partial (computed identically at any thread count) and the
        // partials are summed in ascending sample order below — the exact
        // float-add sequence of the old sequential loop. The partials block
        // lives in the calling thread's arena: fully overwritten per sample,
        // read only after the parallel_for joins.
        tensor::ScratchArena::Frame caller_frame(tensor::ScratchArena::tls());
        float* dw_partials = need_w ? caller_frame.alloc(d.n * wnumel) : nullptr;
        const bool repack = need_w && !cache;
        if (repack) g_im2col_calls.fetch_add(1, std::memory_order_relaxed);
        parallel::parallel_for(
            parallel::grain_for(d.o * col_rows * col_cols), d.n,
            [&](std::int64_t s_begin, std::int64_t s_end) {
              tensor::ScratchArena::Frame frame(tensor::ScratchArena::tls());
              float* scratch_cols = repack ? frame.alloc(col_rows * col_cols) : nullptr;
              float* dcols = need_x ? frame.alloc(col_rows * col_cols) : nullptr;
              for (std::int64_t s = s_begin; s < s_end; ++s) {
                const float* gs = g.data() + s * d.o * col_cols;
                if (need_w) {
                  const float* cols;
                  if (cache) {
                    cols = cache->cols.data() + s * col_rows * col_cols;
                  } else {
                    core::OpTimer t(core::ProfiledOp::kIm2col);
                    im2col(in_node->value.data() + s * d.c * d.h * d.w, d, stride, padding,
                           scratch_cols);
                    cols = scratch_cols;
                  }
                  // dW_s[o, col_rows] = g_s[o, col_cols] * cols^T[col_cols, col_rows]
                  // through the packed double-accumulator kernel. gemm_f64acc
                  // keeps the float product / double ascending-k fold of the
                  // naive dot-product loop this replaces, so the weight
                  // gradient is bitwise unchanged (tests/test_gemm.cpp pins
                  // the kernel, tests/test_parallel.cpp the conv trajectory).
                  core::OpTimer t(core::ProfiledOp::kConvDw);
                  tensor::gemm_f64acc(tensor::Trans::N, tensor::Trans::T, d.o, col_rows,
                                      col_cols, gs, col_cols, cols, col_cols,
                                      dw_partials + s * wnumel, col_rows);
                }
                if (need_x) {
                  // dcols = W^T g_s via the transposed-A GEMM variant: the pack
                  // step reads W [O, col_rows] column-wise, so no transposed
                  // copy of the weights is materialized.
                  std::fill(dcols, dcols + col_rows * col_cols, 0.0f);
                  {
                    core::OpTimer t(core::ProfiledOp::kConvDx);
                    tensor::gemm_accumulate(tensor::Trans::T, tensor::Trans::N, col_rows,
                                            col_cols, d.o, w_node->value.data(), col_rows, gs,
                                            col_cols, dcols, col_cols);
                  }
                  core::OpTimer t(core::ProfiledOp::kCol2im);
                  col2im_accumulate(dcols, d, stride, padding,
                                    dX.data() + s * d.c * d.h * d.w);
                }
              }
            });
        if (need_w) {
          for (std::int64_t s = 0; s < d.n; ++s) {
            const float* dws = dw_partials + s * wnumel;
            float* dst = dW.data();
            for (std::int64_t i = 0; i < wnumel; ++i) dst[i] += dws[i];
          }
          w_node->accumulate_grad(dW);
        }
        if (need_x) in_node->accumulate_grad(dX);
        if (has_bias && b_node->requires_grad) {
          Tensor db({d.o});
          core::OpTimer op_timer(core::ProfiledOp::kConvDb);
          // Channel-parallel: each task owns a disjoint range of db entries.
          // Per channel the per-sample double sums fold in ascending s then
          // ascending q — the per-element float-add sequence of the old
          // sequential s-outer loop, so the bias gradient is bitwise
          // unchanged at any thread count.
          float* dbp = db.data();
          parallel::parallel_for(
              parallel::grain_for(d.n * col_cols), d.o,
              [&](std::int64_t o_begin, std::int64_t o_end) {
                for (std::int64_t o = o_begin; o < o_end; ++o)
                  for (std::int64_t s = 0; s < d.n; ++s) {
                    const float* grow = g.data() + (s * d.o + o) * col_cols;
                    double acc = 0.0;
                    for (std::int64_t q = 0; q < col_cols; ++q) acc += grow[q];
                    dbp[o] += static_cast<float>(acc);
                  }
              });
          b_node->accumulate_grad(db);
        }
      });
}

Variable max_pool2d(const Variable& input, std::int64_t kernel, std::int64_t stride) {
  const Tensor& x = input.value();
  if (x.ndim() != 4) throw std::invalid_argument("max_pool2d: input must be rank 4");
  const std::int64_t n = x.shape()[0], c = x.shape()[1], h = x.shape()[2], w = x.shape()[3];
  const std::int64_t oh = (h - kernel) / stride + 1;
  const std::int64_t ow = (w - kernel) / stride + 1;
  if (oh <= 0 || ow <= 0) throw std::invalid_argument("max_pool2d: output would be empty");
  Tensor out({n, c, oh, ow});
  auto argmax = std::make_shared<std::vector<std::int64_t>>(
      static_cast<std::size_t>(n * c * oh * ow));
  // Split over (sample, channel) planes: writes to out/argmax are disjoint.
  parallel::parallel_for(
      parallel::grain_for(oh * ow * kernel * kernel), n * c,
      [&](std::int64_t s_begin, std::int64_t s_end) {
        for (std::int64_t s = s_begin; s < s_end; ++s) {
          const float* plane = x.data() + s * h * w;
          for (std::int64_t oi = 0; oi < oh; ++oi)
            for (std::int64_t oj = 0; oj < ow; ++oj) {
              float best = -std::numeric_limits<float>::infinity();
              std::int64_t best_idx = 0;
              for (std::int64_t ki = 0; ki < kernel; ++ki)
                for (std::int64_t kj = 0; kj < kernel; ++kj) {
                  const std::int64_t ii = oi * stride + ki, jj = oj * stride + kj;
                  const float v = plane[ii * w + jj];
                  if (v > best) {
                    best = v;
                    best_idx = ii * w + jj;
                  }
                }
              const std::int64_t oidx = (s * oh + oi) * ow + oj;
              out[oidx] = best;
              (*argmax)[static_cast<std::size_t>(oidx)] = s * h * w + best_idx;
            }
        }
      });
  auto in_node = input.node();
  const std::int64_t planes = n * c, plane_out = oh * ow;
  return Variable::from_op(
      std::move(out), {input}, [in_node, argmax, planes, plane_out](const Tensor& g) {
        Tensor dx(in_node->value.shape());
        // A plane's argmax indices all land in that plane of dx, so the
        // scatter-add is race-free when split over planes.
        parallel::parallel_for(
            parallel::grain_for(plane_out), planes, [&](std::int64_t s_begin, std::int64_t s_end) {
              for (std::int64_t i = s_begin * plane_out; i < s_end * plane_out; ++i)
                dx[(*argmax)[static_cast<std::size_t>(i)]] += g[i];
            });
        in_node->accumulate_grad(dx);
      });
}

Variable avg_pool2d(const Variable& input, std::int64_t kernel, std::int64_t stride) {
  const Tensor& x = input.value();
  if (x.ndim() != 4) throw std::invalid_argument("avg_pool2d: input must be rank 4");
  const std::int64_t n = x.shape()[0], c = x.shape()[1], h = x.shape()[2], w = x.shape()[3];
  const std::int64_t oh = (h - kernel) / stride + 1;
  const std::int64_t ow = (w - kernel) / stride + 1;
  if (oh <= 0 || ow <= 0) throw std::invalid_argument("avg_pool2d: output would be empty");
  const float inv = 1.0f / static_cast<float>(kernel * kernel);
  Tensor out({n, c, oh, ow});
  parallel::parallel_for(
      parallel::grain_for(oh * ow * kernel * kernel), n * c,
      [&](std::int64_t s_begin, std::int64_t s_end) {
        for (std::int64_t s = s_begin; s < s_end; ++s) {
          const float* plane = x.data() + s * h * w;
          for (std::int64_t oi = 0; oi < oh; ++oi)
            for (std::int64_t oj = 0; oj < ow; ++oj) {
              double acc = 0.0;
              for (std::int64_t ki = 0; ki < kernel; ++ki)
                for (std::int64_t kj = 0; kj < kernel; ++kj)
                  acc += plane[(oi * stride + ki) * w + (oj * stride + kj)];
              out[(s * oh + oi) * ow + oj] = static_cast<float>(acc) * inv;
            }
        }
      });
  auto in_node = input.node();
  return Variable::from_op(
      std::move(out), {input}, [in_node, kernel, stride, inv, h, w, oh, ow](const Tensor& g) {
        Tensor dx(in_node->value.shape());
        const std::int64_t planes = dx.numel() / (h * w);
        parallel::parallel_for(
            parallel::grain_for(oh * ow * kernel * kernel), planes,
            [&](std::int64_t s_begin, std::int64_t s_end) {
              for (std::int64_t s = s_begin; s < s_end; ++s) {
                float* dplane = dx.data() + s * h * w;
                for (std::int64_t oi = 0; oi < oh; ++oi)
                  for (std::int64_t oj = 0; oj < ow; ++oj) {
                    const float gv = g[(s * oh + oi) * ow + oj] * inv;
                    for (std::int64_t ki = 0; ki < kernel; ++ki)
                      for (std::int64_t kj = 0; kj < kernel; ++kj)
                        dplane[(oi * stride + ki) * w + (oj * stride + kj)] += gv;
                  }
              }
            });
        in_node->accumulate_grad(dx);
      });
}

Variable global_avg_pool(const Variable& input) {
  const Tensor& x = input.value();
  if (x.ndim() != 4) throw std::invalid_argument("global_avg_pool: input must be rank 4");
  const std::int64_t n = x.shape()[0], c = x.shape()[1], hw = x.shape()[2] * x.shape()[3];
  const float inv = 1.0f / static_cast<float>(hw);
  Tensor out({n, c});
  parallel::parallel_for(
      parallel::grain_for(hw), n * c, [&](std::int64_t s_begin, std::int64_t s_end) {
        for (std::int64_t s = s_begin; s < s_end; ++s) {
          const float* plane = x.data() + s * hw;
          double acc = 0.0;
          for (std::int64_t i = 0; i < hw; ++i) acc += plane[i];
          out[s] = static_cast<float>(acc) * inv;
        }
      });
  auto in_node = input.node();
  return Variable::from_op(std::move(out), {input}, [in_node, hw, inv](const Tensor& g) {
    Tensor dx(in_node->value.shape());
    parallel::parallel_for(
        parallel::grain_for(hw), g.numel(), [&](std::int64_t s_begin, std::int64_t s_end) {
          for (std::int64_t s = s_begin; s < s_end; ++s) {
            const float gv = g[s] * inv;
            float* plane = dx.data() + s * hw;
            for (std::int64_t i = 0; i < hw; ++i) plane[i] += gv;
          }
        });
    in_node->accumulate_grad(dx);
  });
}

Variable dropout(const Variable& input, float p, bool training, tensor::Rng& rng) {
  if (!training || p <= 0.0f) return input;
  if (p >= 1.0f) throw std::invalid_argument("dropout: p must be < 1");
  const float scale = 1.0f / (1.0f - p);
  auto mask = std::make_shared<Tensor>(input.shape());
  for (std::int64_t i = 0; i < mask->numel(); ++i)
    (*mask)[i] = rng.uniform() < p ? 0.0f : scale;
  Tensor out = input.value().mul(*mask);
  auto in_node = input.node();
  return Variable::from_op(std::move(out), {input}, [in_node, mask](const Tensor& g) {
    in_node->accumulate_grad(g.mul(*mask));
  });
}

Variable upsample2x(const Variable& input) {
  const Tensor& x = input.value();
  if (x.ndim() != 4) throw std::invalid_argument("upsample2x: input must be rank 4");
  const std::int64_t n = x.shape()[0], c = x.shape()[1], h = x.shape()[2], w = x.shape()[3];
  Tensor out({n, c, h * 2, w * 2});
  for (std::int64_t s = 0; s < n * c; ++s) {
    const float* src = x.data() + s * h * w;
    float* dst = out.data() + s * 4 * h * w;
    for (std::int64_t i = 0; i < h; ++i)
      for (std::int64_t j = 0; j < w; ++j) {
        const float v = src[i * w + j];
        dst[(2 * i) * 2 * w + 2 * j] = v;
        dst[(2 * i) * 2 * w + 2 * j + 1] = v;
        dst[(2 * i + 1) * 2 * w + 2 * j] = v;
        dst[(2 * i + 1) * 2 * w + 2 * j + 1] = v;
      }
  }
  auto in_node = input.node();
  return Variable::from_op(std::move(out), {input}, [in_node, h, w](const Tensor& g) {
    Tensor dx(in_node->value.shape());
    const std::int64_t planes = dx.numel() / (h * w);
    for (std::int64_t s = 0; s < planes; ++s) {
      const float* gs = g.data() + s * 4 * h * w;
      float* ds = dx.data() + s * h * w;
      for (std::int64_t i = 0; i < h; ++i)
        for (std::int64_t j = 0; j < w; ++j)
          ds[i * w + j] = gs[(2 * i) * 2 * w + 2 * j] + gs[(2 * i) * 2 * w + 2 * j + 1] +
                          gs[(2 * i + 1) * 2 * w + 2 * j] + gs[(2 * i + 1) * 2 * w + 2 * j + 1];
    }
    in_node->accumulate_grad(dx);
  });
}

Variable fused_scaled_softmax(const Variable& scores, float scale, const Tensor& mask) {
  const Tensor& z = scores.value();
  if (z.ndim() < 1) throw std::invalid_argument("fused_scaled_softmax: rank 0");
  const std::int64_t last = z.shape().back();
  const std::int64_t rows = z.numel() / std::max<std::int64_t>(last, 1);
  const bool has_mask = mask.numel() > 0;
  std::int64_t mask_rows = 0;
  if (has_mask) {
    if (mask.ndim() < 1 || mask.shape().back() != last || rows % (mask.numel() / last) != 0)
      throw std::invalid_argument("fused_scaled_softmax: mask rows must tile score rows");
    mask_rows = mask.numel() / last;
  }
  Tensor y = Tensor::uninitialized(z.shape());  // every row fully written below
  {
    core::OpTimer op_timer(core::ProfiledOp::kSoftmaxFused);
    const float* src = z.data();
    const float* mp = has_mask ? mask.data() : nullptr;
    float* dst = y.data();
    parallel::parallel_for(
        parallel::grain_for(4 * last), rows, [&](std::int64_t begin, std::int64_t end) {
          for (std::int64_t r = begin; r < end; ++r) {
            const float* zr = src + r * last;
            const float* mr = mp ? mp + (r % mask_rows) * last : nullptr;
            float* dr = dst + r * last;
            // Pass 1: scale+mask folded into the max scan; the shifted row is
            // staged in dr so pass 2 reads floats identical to the unfused
            // mul_scalar -> add(mask) -> softmax_last chain.
            float mx = -std::numeric_limits<float>::infinity();
            for (std::int64_t j = 0; j < last; ++j) {
              float v = zr[j] * scale;
              if (mr) v += mr[j];
              dr[j] = v;
              if (v > mx) mx = v;
            }
            // Pass 2: exp fused with the double-precision denominator.
            double denom = 0.0;
            for (std::int64_t j = 0; j < last; ++j) {
              const float e = std::exp(dr[j] - mx);
              dr[j] = e;
              denom += e;
            }
            const float inv = static_cast<float>(1.0 / denom);
            for (std::int64_t j = 0; j < last; ++j) dr[j] *= inv;
          }
        });
  }
  auto zn = scores.node();
  return Variable::from_op(y, {scores}, [zn, y, scale](const Tensor& g) {
    const std::int64_t last = y.shape().back();
    const std::int64_t rows = y.numel() / std::max<std::int64_t>(last, 1);
    Tensor dx = Tensor::uninitialized(y.shape());  // every row written below
    core::OpTimer op_timer(core::ProfiledOp::kSoftmaxFusedBwd);
    parallel::parallel_for(
        parallel::grain_for(4 * last), rows, [&](std::int64_t begin, std::int64_t end) {
          for (std::int64_t r = begin; r < end; ++r) {
            const float* yr = y.data() + r * last;
            const float* gr = g.data() + r * last;
            float* dr = dx.data() + r * last;
            double dot = 0.0;
            for (std::int64_t j = 0; j < last; ++j) dot += static_cast<double>(yr[j]) * gr[j];
            const float dotf = static_cast<float>(dot);
            // Softmax Jacobian product, then the mul_scalar backward's scale
            // factor — the same two float roundings the unfused chain makes.
            for (std::int64_t j = 0; j < last; ++j) dr[j] = yr[j] * (gr[j] - dotf) * scale;
          }
        });
    zn->accumulate_grad(dx);
  });
}

Variable cross_entropy(const Variable& logits, const std::vector<std::int64_t>& targets) {
  std::vector<float> weights(targets.size(), 1.0f);
  return weighted_cross_entropy(logits, targets, weights);
}

Variable weighted_cross_entropy(const Variable& logits, const std::vector<std::int64_t>& targets,
                                const std::vector<float>& weights) {
  const Tensor& z = logits.value();
  if (z.ndim() != 2) throw std::invalid_argument("cross_entropy: logits must be [N, C]");
  const std::int64_t n = z.shape()[0], c = z.shape()[1];
  if (static_cast<std::int64_t>(targets.size()) != n ||
      static_cast<std::int64_t>(weights.size()) != n)
    throw std::invalid_argument("cross_entropy: targets/weights size mismatch");
  Tensor logp = z.log_softmax_last();
  double wsum = 0.0;
  for (float w : weights) wsum += w;
  if (wsum <= 0.0) wsum = 1.0;
  double loss = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t t = targets[i];
    if (t < 0 || t >= c) throw std::out_of_range("cross_entropy: target out of range");
    loss -= static_cast<double>(weights[static_cast<std::size_t>(i)]) * logp[i * c + t];
  }
  Tensor out = Tensor::scalar(static_cast<float>(loss / wsum));
  auto zn = logits.node();
  const float inv_wsum = static_cast<float>(1.0 / wsum);
  return Variable::from_op(std::move(out), {logits},
                           [zn, targets, weights, logp, n, c, inv_wsum](const Tensor& g) {
                             // d/dz = w/wsum * (softmax(z) - onehot(t)) * g.
                             // Row-parallel with disjoint writes; zero-weight
                             // rows keep dz's zero fill, so the split does not
                             // change a single bit.
                             Tensor dz({n, c});
                             const float gv = g[0];
                             parallel::parallel_for(
                                 parallel::grain_for(2 * c), n,
                                 [&](std::int64_t begin, std::int64_t end) {
                                   for (std::int64_t i = begin; i < end; ++i) {
                                     const float wi = weights[static_cast<std::size_t>(i)];
                                     if (wi == 0.0f) continue;
                                     const float f = gv * wi * inv_wsum;
                                     const float* lr = logp.data() + i * c;
                                     float* dr = dz.data() + i * c;
                                     for (std::int64_t j = 0; j < c; ++j)
                                       dr[j] = f * std::exp(lr[j]);
                                     dr[targets[static_cast<std::size_t>(i)]] -= f;
                                   }
                                 });
                             zn->accumulate_grad(dz);
                           });
}

Variable smoothed_cross_entropy(const Variable& logits,
                                const std::vector<std::int64_t>& targets, float smoothing) {
  if (smoothing < 0.0f || smoothing >= 1.0f)
    throw std::invalid_argument("smoothed_cross_entropy: smoothing must be in [0, 1)");
  const Tensor& z = logits.value();
  if (z.ndim() != 2) throw std::invalid_argument("smoothed_cross_entropy: logits must be [N, C]");
  const std::int64_t n = z.shape()[0], c = z.shape()[1];
  if (static_cast<std::int64_t>(targets.size()) != n)
    throw std::invalid_argument("smoothed_cross_entropy: targets size mismatch");
  Tensor logp = z.log_softmax_last();
  const float on_target = 1.0f - smoothing;
  const float uniform = smoothing / static_cast<float>(c);
  double loss = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t t = targets[static_cast<std::size_t>(i)];
    if (t < 0 || t >= c) throw std::out_of_range("smoothed_cross_entropy: target out of range");
    loss -= static_cast<double>(on_target) * logp[i * c + t];
    for (std::int64_t j = 0; j < c; ++j)
      loss -= static_cast<double>(uniform) * logp[i * c + j];
  }
  Tensor out = Tensor::scalar(static_cast<float>(loss / static_cast<double>(n)));
  auto zn = logits.node();
  return Variable::from_op(
      std::move(out), {logits}, [zn, targets, logp, n, c, on_target, uniform](const Tensor& g) {
        // d/dz = (softmax(z) - q) / n, with q the smoothed target distribution.
        // Row-parallel, disjoint writes, every element written: bitwise the
        // old sequential loop at any thread count.
        Tensor dz = Tensor::uninitialized({n, c});
        const float f = g[0] / static_cast<float>(n);
        parallel::parallel_for(
            parallel::grain_for(2 * c), n, [&](std::int64_t begin, std::int64_t end) {
              for (std::int64_t i = begin; i < end; ++i) {
                const float* lr = logp.data() + i * c;
                float* dr = dz.data() + i * c;
                for (std::int64_t j = 0; j < c; ++j) dr[j] = f * (std::exp(lr[j]) - uniform);
                dr[targets[static_cast<std::size_t>(i)]] -= f * on_target;
              }
            });
        zn->accumulate_grad(dz);
      });
}

Variable bce_with_logits(const Variable& logits, const std::vector<float>& targets) {
  const Tensor& z = logits.value();
  const std::int64_t n = z.numel();
  if (static_cast<std::int64_t>(targets.size()) != n)
    throw std::invalid_argument("bce_with_logits: size mismatch");
  // loss_i = max(z,0) - z*t + log(1 + exp(-|z|))  (numerically stable)
  double loss = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const float zi = z[i], ti = targets[static_cast<std::size_t>(i)];
    loss += std::max(zi, 0.0f) - zi * ti + std::log1p(std::exp(-std::fabs(zi)));
  }
  Tensor out = Tensor::scalar(static_cast<float>(loss / static_cast<double>(n)));
  auto zn = logits.node();
  return Variable::from_op(std::move(out), {logits}, [zn, targets, n](const Tensor& g) {
    Tensor dz(zn->value.shape());
    const float f = g[0] / static_cast<float>(n);
    for (std::int64_t i = 0; i < n; ++i) {
      const float s = 1.0f / (1.0f + std::exp(-zn->value[i]));
      dz[i] = f * (s - targets[static_cast<std::size_t>(i)]);
    }
    zn->accumulate_grad(dz);
  });
}

Variable smooth_l1(const Variable& pred, const Tensor& target,
                   const std::vector<float>& row_weights) {
  const Tensor& p = pred.value();
  if (!p.same_shape(target)) throw std::invalid_argument("smooth_l1: shape mismatch");
  if (p.ndim() < 1 || static_cast<std::int64_t>(row_weights.size()) != p.shape()[0])
    throw std::invalid_argument("smooth_l1: row_weights size mismatch");
  const std::int64_t rows = p.shape()[0];
  const std::int64_t cols = p.numel() / std::max<std::int64_t>(rows, 1);
  double wsum = 0.0;
  for (float w : row_weights) wsum += w;
  if (wsum <= 0.0) wsum = 1.0;
  double loss = 0.0;
  for (std::int64_t r = 0; r < rows; ++r) {
    const float w = row_weights[static_cast<std::size_t>(r)];
    if (w == 0.0f) continue;
    for (std::int64_t q = 0; q < cols; ++q) {
      const float d = p[r * cols + q] - target[r * cols + q];
      const float a = std::fabs(d);
      loss += static_cast<double>(w) * (a < 1.0f ? 0.5f * d * d : a - 0.5f);
    }
  }
  Tensor out = Tensor::scalar(static_cast<float>(loss / wsum));
  auto pn = pred.node();
  const float inv_wsum = static_cast<float>(1.0 / wsum);
  return Variable::from_op(
      std::move(out), {pred}, [pn, target, row_weights, rows, cols, inv_wsum](const Tensor& g) {
        Tensor dp(pn->value.shape());
        const float gv = g[0];
        for (std::int64_t r = 0; r < rows; ++r) {
          const float w = row_weights[static_cast<std::size_t>(r)];
          if (w == 0.0f) continue;
          for (std::int64_t q = 0; q < cols; ++q) {
            const float d = pn->value[r * cols + q] - target[r * cols + q];
            const float grad = std::fabs(d) < 1.0f ? d : (d > 0.0f ? 1.0f : -1.0f);
            dp[r * cols + q] = gv * w * inv_wsum * grad;
          }
        }
        pn->accumulate_grad(dp);
      });
}

Variable mse(const Variable& pred, const Tensor& target) {
  const Tensor& p = pred.value();
  if (!p.same_shape(target)) throw std::invalid_argument("mse: shape mismatch");
  const std::int64_t n = p.numel();
  double loss = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(p[i]) - target[i];
    loss += d * d;
  }
  Tensor out = Tensor::scalar(static_cast<float>(loss / static_cast<double>(n)));
  auto pn = pred.node();
  return Variable::from_op(std::move(out), {pred}, [pn, target, n](const Tensor& g) {
    Tensor dp(pn->value.shape());
    const float f = 2.0f * g[0] / static_cast<float>(n);
    for (std::int64_t i = 0; i < n; ++i) dp[i] = f * (pn->value[i] - target[i]);
    pn->accumulate_grad(dp);
  });
}

}  // namespace mlperf::nn
