#pragma once

#include <optional>

#include "nn/functional.h"
#include "nn/module.h"

namespace mlperf::nn {

/// Fully-connected layer: y = x W^T + b, x is [N, in], W is [out, in].
class Linear : public Module {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, tensor::Rng& rng,
         bool bias = true);

  autograd::Variable forward(const autograd::Variable& x) const;
  /// relu(forward(x)) with the bias-add and the clamp fused into one pass
  /// (autograd::add_relu) — bitwise identical to the unfused chain.
  autograd::Variable forward_relu(const autograd::Variable& x) const;

  autograd::Variable weight;  ///< [out, in]
  autograd::Variable bias;    ///< [out] or empty
};

/// NCHW 2-D convolution layer (bias optional; ResNet uses bias-free convs
/// followed by BatchNorm, per the reference definition).
class Conv2d : public Module {
 public:
  Conv2d(std::int64_t in_ch, std::int64_t out_ch, std::int64_t kernel, std::int64_t stride,
         std::int64_t padding, tensor::Rng& rng, bool bias = false);

  autograd::Variable forward(const autograd::Variable& x) const;

  autograd::Variable weight;  ///< [out, in, k, k]
  autograd::Variable bias;    ///< [out] or empty
  std::int64_t stride;
  std::int64_t padding;
};

/// Batch normalization over NCHW (statistics over N, H, W per channel).
/// Training mode uses batch statistics and updates running estimates with the
/// given momentum (the "moving average decay" hyperparameter the paper calls
/// out in §2.1); eval mode uses the running estimates.
class BatchNorm2d : public Module {
 public:
  explicit BatchNorm2d(std::int64_t channels, float eps = 1e-5f, float momentum = 0.9f);

  autograd::Variable forward(const autograd::Variable& x);

  autograd::Variable gamma;  ///< [C]
  autograd::Variable beta;   ///< [C]
  tensor::Tensor running_mean;  ///< [C]
  tensor::Tensor running_var;   ///< [C]
  float eps;
  float momentum;
};

/// Layer normalization over the last dimension.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(std::int64_t dim, float eps = 1e-5f);

  autograd::Variable forward(const autograd::Variable& x) const;

  autograd::Variable gamma;  ///< [dim]
  autograd::Variable beta;   ///< [dim]
  float eps;
};

/// Token embedding table.
class Embedding : public Module {
 public:
  Embedding(std::int64_t vocab, std::int64_t dim, tensor::Rng& rng);

  /// indices (any length n) -> [n, dim].
  autograd::Variable forward(const std::vector<std::int64_t>& indices) const;

  autograd::Variable table;  ///< [vocab, dim]
};

/// Single LSTM cell; gates use separate per-gate weights for clarity.
class LSTMCell : public Module {
 public:
  LSTMCell(std::int64_t input_dim, std::int64_t hidden_dim, tensor::Rng& rng);

  struct State {
    autograd::Variable h;  ///< [N, H]
    autograd::Variable c;  ///< [N, H]
  };

  /// x: [N, input_dim]; returns next state.
  State forward(const autograd::Variable& x, const State& prev) const;

  State zero_state(std::int64_t batch) const;

  std::int64_t hidden_dim;
  // Gate weights: i (input), f (forget), g (candidate), o (output).
  autograd::Variable wxi, whi, bi;
  autograd::Variable wxf, whf, bf;
  autograd::Variable wxg, whg, bg;
  autograd::Variable wxo, who, bo;
};

/// Multi-layer unidirectional LSTM over a sequence.
class LSTM : public Module {
 public:
  LSTM(std::int64_t input_dim, std::int64_t hidden_dim, std::int64_t layers, tensor::Rng& rng);

  /// xs: per-timestep inputs [N, input_dim]. Returns per-timestep top-layer
  /// hidden states and the final states of every layer.
  struct Output {
    std::vector<autograd::Variable> hiddens;          // T x [N, H]
    std::vector<LSTMCell::State> final_states;        // per layer
  };
  Output forward(const std::vector<autograd::Variable>& xs) const;
  Output forward(const std::vector<autograd::Variable>& xs,
                 const std::vector<LSTMCell::State>& initial) const;

  std::vector<LSTMCell::State> zero_states(std::int64_t batch) const;

  std::vector<std::unique_ptr<LSTMCell>> cells;
};

/// Multi-head scaled-dot-product attention (the Transformer primitive).
class MultiHeadAttention : public Module {
 public:
  MultiHeadAttention(std::int64_t model_dim, std::int64_t heads, tensor::Rng& rng);

  /// q/k/v: [B, Tq, D], [B, Tk, D], [B, Tk, D]. If `causal`, position i may
  /// only attend to keys <= i (requires Tq == Tk).
  autograd::Variable forward(const autograd::Variable& q, const autograd::Variable& k,
                             const autograd::Variable& v, bool causal = false) const;

  std::int64_t model_dim;
  std::int64_t heads;
  Linear wq, wk, wv, wo;
};

}  // namespace mlperf::nn
