#pragma once

#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"
#include "tensor/rng.h"

namespace mlperf::nn {

/// Base class for trainable layers and models.
///
/// A module owns its parameters (autograd::Variables with requires_grad) and
/// may register child modules (non-owning pointers to members of the derived
/// class). `parameters()` walks the tree, which is what optimizers consume.
class Module {
 public:
  virtual ~Module() = default;
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All parameters of this module and its children (depth-first).
  std::vector<autograd::Variable> parameters() const {
    std::vector<autograd::Variable> out;
    collect(out);
    return out;
  }

  /// Named parameters, with child-path prefixes ("block1.conv.weight").
  std::vector<std::pair<std::string, autograd::Variable>> named_parameters() const {
    std::vector<std::pair<std::string, autograd::Variable>> out;
    collect_named("", out);
    return out;
  }

  /// Named non-parameter state tensors ("buffers": batch-norm running
  /// statistics and the like), with the same child-path prefixes. Buffers are
  /// not touched by optimizers but are part of the model's training state —
  /// a checkpoint that skipped them would not resume bitwise-identically.
  std::vector<std::pair<std::string, tensor::Tensor*>> named_buffers() const {
    std::vector<std::pair<std::string, tensor::Tensor*>> out;
    collect_buffers("", out);
    return out;
  }

  /// Total scalar parameter count.
  std::int64_t num_parameters() const {
    std::int64_t n = 0;
    for (const auto& p : parameters()) n += p.numel();
    return n;
  }

  void zero_grad() {
    for (auto& p : parameters()) p.zero_grad();
  }

  /// Train/eval mode (affects dropout, batchnorm). Propagates to children.
  void set_training(bool training) {
    training_ = training;
    for (auto* c : children_) c->set_training(training);
  }
  bool training() const { return training_; }

 protected:
  autograd::Variable register_parameter(std::string name, tensor::Tensor init) {
    autograd::Variable v(std::move(init), /*requires_grad=*/true);
    params_.emplace_back(std::move(name), v);
    return v;
  }

  void register_module(std::string name, Module& child) {
    children_.push_back(&child);
    child_names_.push_back(std::move(name));
  }

  /// Register a member tensor as a named buffer. The tensor must outlive the
  /// module (it is a member of the derived class, like child modules).
  void register_buffer(std::string name, tensor::Tensor& buffer) {
    buffers_.emplace_back(std::move(name), &buffer);
  }

 private:
  void collect(std::vector<autograd::Variable>& out) const {
    for (const auto& [name, v] : params_) out.push_back(v);
    for (const auto* c : children_) c->collect(out);
  }
  void collect_named(const std::string& prefix,
                     std::vector<std::pair<std::string, autograd::Variable>>& out) const {
    for (const auto& [name, v] : params_) out.emplace_back(prefix + name, v);
    for (std::size_t i = 0; i < children_.size(); ++i)
      children_[i]->collect_named(prefix + child_names_[i] + ".", out);
  }
  void collect_buffers(const std::string& prefix,
                       std::vector<std::pair<std::string, tensor::Tensor*>>& out) const {
    for (const auto& [name, t] : buffers_) out.emplace_back(prefix + name, t);
    for (std::size_t i = 0; i < children_.size(); ++i)
      children_[i]->collect_buffers(prefix + child_names_[i] + ".", out);
  }

  std::vector<std::pair<std::string, autograd::Variable>> params_;
  std::vector<std::pair<std::string, tensor::Tensor*>> buffers_;  // non-owning members
  std::vector<Module*> children_;            // non-owning: children are members
  std::vector<std::string> child_names_;
  bool training_ = true;
};

/// Weight-initialization helpers (paper §3.4: references pin parameter
/// initialization; we standardize on these so all models are reproducible).
namespace init {

/// Kaiming/He normal for ReLU nets: N(0, sqrt(2 / fan_in)).
tensor::Tensor kaiming_normal(tensor::Shape shape, std::int64_t fan_in, tensor::Rng& rng);

/// Xavier/Glorot uniform: U(-a, a), a = sqrt(6 / (fan_in + fan_out)).
tensor::Tensor xavier_uniform(tensor::Shape shape, std::int64_t fan_in, std::int64_t fan_out,
                              tensor::Rng& rng);

}  // namespace init

}  // namespace mlperf::nn
