#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "core/fileio.h"

namespace mlperf::nn {

namespace {

constexpr std::uint32_t kMagic = 0x4D4C5057;  // "MLPW"

void write_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::istream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("load_weights: truncated file");
  return v;
}

void write_string(std::ostream& out, const std::string& s) {
  write_u64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& in) {
  const std::uint64_t n = read_u64(in);
  if (n > (1u << 20)) throw std::runtime_error("load_weights: implausible name length");
  std::string s(n, '\0');
  in.read(s.data(), static_cast<std::streamsize>(n));
  if (!in) throw std::runtime_error("load_weights: truncated file");
  return s;
}

}  // namespace

void save_weights(const Module& module, const std::string& path) {
  // Serialize to memory first, then write atomically (tmp + rename): a crash
  // mid-save can no longer leave a truncated weights file under `path` that
  // a later load_weights would trip over.
  std::ostringstream out(std::ios::binary);
  std::uint32_t magic = kMagic;
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  const auto named = module.named_parameters();
  write_u64(out, named.size());
  for (const auto& [name, param] : named) {
    write_string(out, name);
    const auto& shape = param.shape();
    write_u64(out, shape.size());
    for (auto d : shape) write_u64(out, static_cast<std::uint64_t>(d));
    out.write(reinterpret_cast<const char*>(param.value().data()),
              static_cast<std::streamsize>(param.numel() * sizeof(float)));
  }
  if (!out) throw std::runtime_error("save_weights: serialization failed for " + path);
  const std::string bytes = out.str();
  core::atomic_write_file(path, bytes.data(), bytes.size());
}

void load_weights(Module& module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_weights: cannot open " + path);
  std::uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in || magic != kMagic) throw std::runtime_error("load_weights: bad magic in " + path);

  std::map<std::string, autograd::Variable> params;
  for (auto& [name, param] : module.named_parameters()) params.emplace(name, param);

  const std::uint64_t count = read_u64(in);
  if (count != params.size())
    throw std::runtime_error("load_weights: parameter count mismatch (file " +
                             std::to_string(count) + ", module " +
                             std::to_string(params.size()) + ")");
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string name = read_string(in);
    const auto it = params.find(name);
    if (it == params.end())
      throw std::runtime_error("load_weights: unknown parameter '" + name + "'");
    const std::uint64_t rank = read_u64(in);
    tensor::Shape shape(rank);
    for (auto& d : shape) d = static_cast<std::int64_t>(read_u64(in));
    if (shape != it->second.shape())
      throw std::runtime_error("load_weights: shape mismatch for '" + name + "'");
    tensor::Tensor& value = it->second.mutable_value();
    in.read(reinterpret_cast<char*>(value.data()),
            static_cast<std::streamsize>(value.numel() * sizeof(float)));
    if (!in) throw std::runtime_error("load_weights: truncated data for '" + name + "'");
  }
}

}  // namespace mlperf::nn
