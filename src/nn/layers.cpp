#include "nn/layers.h"

#include <cmath>
#include <stdexcept>

namespace mlperf::nn {

using autograd::Variable;
using tensor::Shape;
using tensor::Tensor;

// ---- Linear -----------------------------------------------------------------

Linear::Linear(std::int64_t in_features, std::int64_t out_features, tensor::Rng& rng,
               bool with_bias) {
  weight = register_parameter(
      "weight", init::kaiming_normal({out_features, in_features}, in_features, rng));
  if (with_bias) bias = register_parameter("bias", Tensor({out_features}));
}

Variable Linear::forward(const Variable& x) const {
  // y = x W^T, with W kept [out, in]: the transposed-B GEMM variant absorbs
  // the transpose in its pack step instead of materializing W^T per step.
  Variable y = autograd::matmul(x, weight, tensor::Trans::N, tensor::Trans::T);
  if (bias.numel() > 0) y = autograd::add(y, bias);
  return y;
}

Variable Linear::forward_relu(const Variable& x) const {
  Variable y = autograd::matmul(x, weight, tensor::Trans::N, tensor::Trans::T);
  return bias.numel() > 0 ? autograd::add_relu(y, bias) : autograd::relu(y);
}

// ---- Conv2d -----------------------------------------------------------------

Conv2d::Conv2d(std::int64_t in_ch, std::int64_t out_ch, std::int64_t kernel,
               std::int64_t stride_, std::int64_t padding_, tensor::Rng& rng, bool with_bias)
    : stride(stride_), padding(padding_) {
  const std::int64_t fan_in = in_ch * kernel * kernel;
  weight = register_parameter("weight",
                              init::kaiming_normal({out_ch, in_ch, kernel, kernel}, fan_in, rng));
  if (with_bias) bias = register_parameter("bias", Tensor({out_ch}));
}

Variable Conv2d::forward(const Variable& x) const { return conv2d(x, weight, bias, stride, padding); }

// ---- BatchNorm2d ------------------------------------------------------------

BatchNorm2d::BatchNorm2d(std::int64_t channels, float eps_, float momentum_)
    : running_mean({channels}), running_var(Shape{channels}, 1.0f), eps(eps_),
      momentum(momentum_) {
  gamma = register_parameter("gamma", Tensor({channels}, 1.0f));
  beta = register_parameter("beta", Tensor({channels}));
  register_buffer("running_mean", running_mean);
  register_buffer("running_var", running_var);
}

Variable BatchNorm2d::forward(const Variable& x) {
  const Tensor& xv = x.value();
  if (xv.ndim() != 4) throw std::invalid_argument("BatchNorm2d: input must be NCHW");
  const std::int64_t n = xv.shape()[0], c = xv.shape()[1], hw = xv.shape()[2] * xv.shape()[3];
  const std::int64_t m = n * hw;  // samples per channel

  Tensor mean({c}), var({c});
  if (training()) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      double s = 0.0;
      for (std::int64_t b = 0; b < n; ++b) {
        const float* p = xv.data() + (b * c + ch) * hw;
        for (std::int64_t i = 0; i < hw; ++i) s += p[i];
      }
      mean[ch] = static_cast<float>(s / static_cast<double>(m));
      double v = 0.0;
      for (std::int64_t b = 0; b < n; ++b) {
        const float* p = xv.data() + (b * c + ch) * hw;
        for (std::int64_t i = 0; i < hw; ++i) {
          const double d = p[i] - mean[ch];
          v += d * d;
        }
      }
      var[ch] = static_cast<float>(v / static_cast<double>(m));
    }
    for (std::int64_t ch = 0; ch < c; ++ch) {
      running_mean[ch] = momentum * running_mean[ch] + (1.0f - momentum) * mean[ch];
      running_var[ch] = momentum * running_var[ch] + (1.0f - momentum) * var[ch];
    }
  } else {
    mean = running_mean;
    var = running_var;
  }

  Tensor inv_std({c});
  for (std::int64_t ch = 0; ch < c; ++ch)
    inv_std[ch] = 1.0f / std::sqrt(var[ch] + eps);

  // xhat cached for backward.
  auto xhat = std::make_shared<Tensor>(xv.shape());
  Tensor out(xv.shape());
  for (std::int64_t b = 0; b < n; ++b)
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float mu = mean[ch], is = inv_std[ch];
      const float ga = gamma.value()[ch], be = beta.value()[ch];
      const float* src = xv.data() + (b * c + ch) * hw;
      float* xh = xhat->data() + (b * c + ch) * hw;
      float* dst = out.data() + (b * c + ch) * hw;
      for (std::int64_t i = 0; i < hw; ++i) {
        xh[i] = (src[i] - mu) * is;
        dst[i] = ga * xh[i] + be;
      }
    }

  auto xn = x.node();
  auto gn = gamma.node();
  auto bn = beta.node();
  const bool train_mode = training();
  return Variable::from_op(
      std::move(out), {x, gamma, beta},
      [xn, gn, bn, xhat, inv_std, n, c, hw, m, train_mode](const Tensor& g) {
        Tensor dgamma({c}), dbeta({c});
        for (std::int64_t b = 0; b < n; ++b)
          for (std::int64_t ch = 0; ch < c; ++ch) {
            const float* gp = g.data() + (b * c + ch) * hw;
            const float* xh = xhat->data() + (b * c + ch) * hw;
            double dg = 0.0, db = 0.0;
            for (std::int64_t i = 0; i < hw; ++i) {
              dg += static_cast<double>(gp[i]) * xh[i];
              db += gp[i];
            }
            dgamma[ch] += static_cast<float>(dg);
            dbeta[ch] += static_cast<float>(db);
          }
        if (gn->requires_grad) gn->accumulate_grad(dgamma);
        if (bn->requires_grad) bn->accumulate_grad(dbeta);
        if (!xn->requires_grad) return;
        Tensor dx(xn->value.shape());
        const float inv_m = 1.0f / static_cast<float>(m);
        for (std::int64_t ch = 0; ch < c; ++ch) {
          const float ga = gn->value[ch], is = inv_std[ch];
          const float sum_dxhat = dbeta[ch] * ga;           // sum of g*gamma
          const float sum_dxhat_xhat = dgamma[ch] * ga;     // sum of g*gamma*xhat
          for (std::int64_t b = 0; b < n; ++b) {
            const float* gp = g.data() + (b * c + ch) * hw;
            const float* xh = xhat->data() + (b * c + ch) * hw;
            float* dp = dx.data() + (b * c + ch) * hw;
            for (std::int64_t i = 0; i < hw; ++i) {
              const float dxhat = gp[i] * ga;
              if (train_mode) {
                dp[i] = is * (dxhat - inv_m * sum_dxhat - xh[i] * inv_m * sum_dxhat_xhat);
              } else {
                dp[i] = is * dxhat;  // running stats are constants in eval mode
              }
            }
          }
        }
        xn->accumulate_grad(dx);
      });
}

// ---- LayerNorm ----------------------------------------------------------------

LayerNorm::LayerNorm(std::int64_t dim, float eps_) : eps(eps_) {
  gamma = register_parameter("gamma", Tensor({dim}, 1.0f));
  beta = register_parameter("beta", Tensor({dim}));
}

Variable LayerNorm::forward(const Variable& x) const {
  const Tensor& xv = x.value();
  const std::int64_t d = xv.shape().back();
  if (gamma.numel() != d) throw std::invalid_argument("LayerNorm: dim mismatch");
  const std::int64_t rows = xv.numel() / d;

  auto xhat = std::make_shared<Tensor>(xv.shape());
  auto inv_std = std::make_shared<std::vector<float>>(static_cast<std::size_t>(rows));
  Tensor out(xv.shape());
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* src = xv.data() + r * d;
    double s = 0.0;
    for (std::int64_t i = 0; i < d; ++i) s += src[i];
    const float mu = static_cast<float>(s / static_cast<double>(d));
    double v = 0.0;
    for (std::int64_t i = 0; i < d; ++i) {
      const double diff = src[i] - mu;
      v += diff * diff;
    }
    const float is = 1.0f / std::sqrt(static_cast<float>(v / static_cast<double>(d)) + eps);
    (*inv_std)[static_cast<std::size_t>(r)] = is;
    float* xh = xhat->data() + r * d;
    float* dst = out.data() + r * d;
    for (std::int64_t i = 0; i < d; ++i) {
      xh[i] = (src[i] - mu) * is;
      dst[i] = gamma.value()[i] * xh[i] + beta.value()[i];
    }
  }

  auto xn = x.node();
  auto gn = gamma.node();
  auto bn = beta.node();
  return Variable::from_op(
      std::move(out), {x, gamma, beta}, [xn, gn, bn, xhat, inv_std, rows, d](const Tensor& g) {
        Tensor dgamma({d}), dbeta({d});
        for (std::int64_t r = 0; r < rows; ++r) {
          const float* gp = g.data() + r * d;
          const float* xh = xhat->data() + r * d;
          for (std::int64_t i = 0; i < d; ++i) {
            dgamma[i] += gp[i] * xh[i];
            dbeta[i] += gp[i];
          }
        }
        if (gn->requires_grad) gn->accumulate_grad(dgamma);
        if (bn->requires_grad) bn->accumulate_grad(dbeta);
        if (!xn->requires_grad) return;
        Tensor dx(xn->value.shape());
        const float inv_d = 1.0f / static_cast<float>(d);
        for (std::int64_t r = 0; r < rows; ++r) {
          const float* gp = g.data() + r * d;
          const float* xh = xhat->data() + r * d;
          float* dp = dx.data() + r * d;
          const float is = (*inv_std)[static_cast<std::size_t>(r)];
          double s1 = 0.0, s2 = 0.0;
          for (std::int64_t i = 0; i < d; ++i) {
            const float dxhat = gp[i] * gn->value[i];
            s1 += dxhat;
            s2 += static_cast<double>(dxhat) * xh[i];
          }
          for (std::int64_t i = 0; i < d; ++i) {
            const float dxhat = gp[i] * gn->value[i];
            dp[i] = is * (dxhat - inv_d * static_cast<float>(s1) -
                          xh[i] * inv_d * static_cast<float>(s2));
          }
        }
        xn->accumulate_grad(dx);
      });
}

// ---- Embedding ----------------------------------------------------------------

Embedding::Embedding(std::int64_t vocab, std::int64_t dim, tensor::Rng& rng) {
  table = register_parameter("table",
                             Tensor::randn({vocab, dim}, rng, 0.0f,
                                           1.0f / std::sqrt(static_cast<float>(dim))));
}

Variable Embedding::forward(const std::vector<std::int64_t>& indices) const {
  return autograd::embedding(table, indices);
}

// ---- LSTMCell -------------------------------------------------------------------

namespace {
Tensor lstm_weight(std::int64_t rows, std::int64_t cols, tensor::Rng& rng) {
  return init::xavier_uniform({rows, cols}, rows, cols, rng);
}
}  // namespace

LSTMCell::LSTMCell(std::int64_t input_dim, std::int64_t hidden_dim_, tensor::Rng& rng)
    : hidden_dim(hidden_dim_) {
  wxi = register_parameter("wxi", lstm_weight(input_dim, hidden_dim, rng));
  whi = register_parameter("whi", lstm_weight(hidden_dim, hidden_dim, rng));
  bi = register_parameter("bi", Tensor({hidden_dim}));
  wxf = register_parameter("wxf", lstm_weight(input_dim, hidden_dim, rng));
  whf = register_parameter("whf", lstm_weight(hidden_dim, hidden_dim, rng));
  bf = register_parameter("bf", Tensor({hidden_dim}, 1.0f));  // forget-gate bias 1
  wxg = register_parameter("wxg", lstm_weight(input_dim, hidden_dim, rng));
  whg = register_parameter("whg", lstm_weight(hidden_dim, hidden_dim, rng));
  bg = register_parameter("bg", Tensor({hidden_dim}));
  wxo = register_parameter("wxo", lstm_weight(input_dim, hidden_dim, rng));
  who = register_parameter("who", lstm_weight(hidden_dim, hidden_dim, rng));
  bo = register_parameter("bo", Tensor({hidden_dim}));
}

LSTMCell::State LSTMCell::forward(const Variable& x, const State& prev) const {
  using namespace autograd;
  auto gate = [&](const Variable& wx, const Variable& wh, const Variable& b) {
    return add(add(matmul(x, wx), matmul(prev.h, wh)), b);
  };
  Variable i = sigmoid(gate(wxi, whi, bi));
  Variable f = sigmoid(gate(wxf, whf, bf));
  Variable g = tanh_op(gate(wxg, whg, bg));
  Variable o = sigmoid(gate(wxo, who, bo));
  Variable c_next = add(mul(f, prev.c), mul(i, g));
  Variable h_next = mul(o, tanh_op(c_next));
  return {h_next, c_next};
}

LSTMCell::State LSTMCell::zero_state(std::int64_t batch) const {
  return {Variable(Tensor({batch, hidden_dim})), Variable(Tensor({batch, hidden_dim}))};
}

// ---- LSTM -----------------------------------------------------------------------

LSTM::LSTM(std::int64_t input_dim, std::int64_t hidden_dim, std::int64_t layers,
           tensor::Rng& rng) {
  for (std::int64_t l = 0; l < layers; ++l) {
    cells.push_back(std::make_unique<LSTMCell>(l == 0 ? input_dim : hidden_dim, hidden_dim, rng));
    register_module("layer" + std::to_string(l), *cells.back());
  }
}

std::vector<LSTMCell::State> LSTM::zero_states(std::int64_t batch) const {
  std::vector<LSTMCell::State> s;
  s.reserve(cells.size());
  for (const auto& c : cells) s.push_back(c->zero_state(batch));
  return s;
}

LSTM::Output LSTM::forward(const std::vector<Variable>& xs) const {
  if (xs.empty()) throw std::invalid_argument("LSTM: empty sequence");
  return forward(xs, zero_states(xs[0].shape()[0]));
}

LSTM::Output LSTM::forward(const std::vector<Variable>& xs,
                           const std::vector<LSTMCell::State>& initial) const {
  if (initial.size() != cells.size()) throw std::invalid_argument("LSTM: state count mismatch");
  Output out;
  std::vector<LSTMCell::State> states = initial;
  out.hiddens.reserve(xs.size());
  for (const auto& x : xs) {
    Variable inp = x;
    for (std::size_t l = 0; l < cells.size(); ++l) {
      states[l] = cells[l]->forward(inp, states[l]);
      inp = states[l].h;
    }
    out.hiddens.push_back(inp);
  }
  out.final_states = std::move(states);
  return out;
}

// ---- MultiHeadAttention ------------------------------------------------------------

MultiHeadAttention::MultiHeadAttention(std::int64_t model_dim_, std::int64_t heads_,
                                       tensor::Rng& rng)
    : model_dim(model_dim_), heads(heads_), wq(model_dim_, model_dim_, rng),
      wk(model_dim_, model_dim_, rng), wv(model_dim_, model_dim_, rng),
      wo(model_dim_, model_dim_, rng) {
  if (model_dim % heads != 0)
    throw std::invalid_argument("MultiHeadAttention: model_dim must divide by heads");
  register_module("wq", wq);
  register_module("wk", wk);
  register_module("wv", wv);
  register_module("wo", wo);
}

Variable MultiHeadAttention::forward(const Variable& q_in, const Variable& k_in,
                                     const Variable& v_in, bool causal) const {
  using namespace autograd;
  const std::int64_t b = q_in.shape()[0];
  const std::int64_t tq = q_in.shape()[1];
  const std::int64_t tk = k_in.shape()[1];
  const std::int64_t dh = model_dim / heads;

  auto project = [&](const Linear& w, const Variable& x, std::int64_t t) {
    Variable flat = reshape(x, {b * t, model_dim});
    Variable proj = w.forward(flat);
    // [B, T, H, Dh] -> [B, H, T, Dh] -> [B*H, T, Dh]
    Variable shaped = reshape(proj, {b, t, heads, dh});
    return reshape(permute(shaped, {0, 2, 1, 3}), {b * heads, t, dh});
  };

  Variable q = project(wq, q_in, tq);
  Variable k = project(wk, k_in, tk);
  Variable v = project(wv, v_in, tk);

  Variable scores = bmm(q, k, tensor::Trans::N, tensor::Trans::T);
  // One fused node for scale -> causal mask -> softmax (bitwise the old
  // mul_scalar/add/softmax_last chain — see fused_scaled_softmax).
  Tensor mask;
  if (causal) {
    if (tq != tk) throw std::invalid_argument("causal attention requires Tq == Tk");
    mask = Tensor::uninitialized({tq, tk});
    for (std::int64_t i = 0; i < tq; ++i)
      for (std::int64_t j = 0; j < tk; ++j)
        mask[i * tk + j] = j > i ? -1e9f : 0.0f;
  }
  Variable attn = fused_scaled_softmax(scores, 1.0f / std::sqrt(static_cast<float>(dh)), mask);
  Variable ctx = bmm(attn, v);  // [B*H, Tq, Dh]
  // back to [B, Tq, D]
  Variable merged = reshape(permute(reshape(ctx, {b, heads, tq, dh}), {0, 2, 1, 3}),
                            {b * tq, model_dim});
  return reshape(wo.forward(merged), {b, tq, model_dim});
}

}  // namespace mlperf::nn
