#pragma once

#include "autograd/variable.h"

namespace mlperf::nn {

/// Differentiable NCHW 2-D convolution via im2col + GEMM.
/// input: [N, C, H, W]; weight: [O, C, KH, KW]; bias: [O] (may be empty
/// Variable with numel 0 to skip). Output: [N, O, OH, OW].
autograd::Variable conv2d(const autograd::Variable& input, const autograd::Variable& weight,
                          const autograd::Variable& bias, std::int64_t stride,
                          std::int64_t padding);

/// Max pooling, NCHW. kernel k, stride s, zero "padding" excluded from max.
autograd::Variable max_pool2d(const autograd::Variable& input, std::int64_t kernel,
                              std::int64_t stride);

/// Average pooling, NCHW.
autograd::Variable avg_pool2d(const autograd::Variable& input, std::int64_t kernel,
                              std::int64_t stride);

/// Global average pool: [N, C, H, W] -> [N, C].
autograd::Variable global_avg_pool(const autograd::Variable& input);

/// Dropout: in training, zeroes entries with probability p and scales
/// survivors by 1/(1-p) (inverted dropout). Identity when !training.
autograd::Variable dropout(const autograd::Variable& input, float p, bool training,
                           tensor::Rng& rng);

/// Nearest-neighbour 2x upsample, NCHW (used by detection FPN-style heads).
autograd::Variable upsample2x(const autograd::Variable& input);

/// Fused scale -> additive-mask -> softmax over the last dim: one graph node
/// replacing the mul_scalar / add(mask) / softmax_last chain in attention.
/// `mask` broadcasts over leading dims (its rows tile the score rows, NumPy
/// right-aligned); pass an empty Tensor for no mask. Forward is two data
/// passes plus the normalize sweep (scale+mask folded into the max scan, exp
/// fused with the double-precision denominator); backward fuses the softmax
/// Jacobian product with the scale factor. Both are refchecked BITWISE (0 ULP)
/// against the unfused chain at 1/2/4/8 threads in tests/test_nn.cpp.
autograd::Variable fused_scaled_softmax(const autograd::Variable& scores, float scale,
                                        const tensor::Tensor& mask);

// ---- conv pack cache & diagnostics -----------------------------------------

/// Step-scoped im2col pack cache knob. When enabled (the default), conv2d's
/// forward keeps its per-sample im2col patch slabs alive in a pooled Tensor
/// owned by the backward closure — Variable::backward()'s graph teardown (or
/// graph destruction) releases it at the end of the step — so the dW pass
/// skips the per-sample re-pack. A conv op whose slab would push the global
/// live total past `cap_bytes` simply falls back to the re-pack path.
void set_conv_pack_cache(bool enabled, std::int64_t cap_bytes = std::int64_t{256} << 20);
bool conv_pack_cache_enabled();
std::int64_t conv_pack_cache_cap_bytes();
/// Bytes of cached patch slabs currently live (forwards whose backward has not
/// yet run/torn down). Returns to 0 once all conv graphs of a step are freed.
std::int64_t conv_pack_cache_live_bytes();
/// Diagnostic counter: cumulative batched im2col sweeps (one per conv2d
/// forward, plus one per dW backward that had to re-pack because the cache
/// was off or over cap). With the cache on, a train step costs exactly one
/// sweep per conv layer; uncached, two. Pinned in tests/test_autograd.cpp.
std::int64_t im2col_calls();

// ---- losses ----------------------------------------------------------------

/// Softmax cross-entropy from logits [N, C] and integer targets (size N).
/// Returns mean loss (scalar Variable).
autograd::Variable cross_entropy(const autograd::Variable& logits,
                                 const std::vector<std::int64_t>& targets);

/// As above with per-example weights (used by detection hard-negative mining;
/// weight 0 removes an example from the loss). Mean over sum of weights.
autograd::Variable weighted_cross_entropy(const autograd::Variable& logits,
                                          const std::vector<std::int64_t>& targets,
                                          const std::vector<float>& weights);

/// Label-smoothed cross-entropy (Transformer reference training): the target
/// distribution is (1 - eps) on the true class plus eps/C uniform mass.
/// smoothing = 0 reduces exactly to cross_entropy.
autograd::Variable smoothed_cross_entropy(const autograd::Variable& logits,
                                          const std::vector<std::int64_t>& targets,
                                          float smoothing);

/// Binary cross-entropy from logits [N] (or [N,1]) and float targets in {0,1}.
autograd::Variable bce_with_logits(const autograd::Variable& logits,
                                   const std::vector<float>& targets);

/// Smooth-L1 (Huber, beta=1) between pred and target (same shape), mean over
/// elements with nonzero weight rows; weights has one entry per row of pred.
autograd::Variable smooth_l1(const autograd::Variable& pred, const tensor::Tensor& target,
                             const std::vector<float>& row_weights);

/// Mean squared error against a constant target of the same shape.
autograd::Variable mse(const autograd::Variable& pred, const tensor::Tensor& target);

}  // namespace mlperf::nn
