#pragma once

#include <string>

#include "nn/module.h"

namespace mlperf::nn {

/// Binary weight checkpointing.
///
/// Submissions must be reproducible from artifacts (§4.1); checkpoints let a
/// trained reference model (e.g. a MiniGo teacher) be saved once and reused.
/// Format: magic, parameter count, then per parameter the registry name, the
/// shape, and raw float32 data. Loading matches strictly by name AND shape —
/// a mismatch means the architecture changed, which is an error, not
/// something to paper over.
void save_weights(const Module& module, const std::string& path);

/// Load weights saved by save_weights into an identically-structured module.
/// Throws std::runtime_error on I/O failure, unknown/missing parameters, or
/// shape mismatches.
void load_weights(Module& module, const std::string& path);

}  // namespace mlperf::nn
