#include "sysim/data_parallel.h"

#include <algorithm>
#include <stdexcept>

namespace mlperf::sysim {

using tensor::Tensor;

Tensor GradientAllReduce::reduce(const std::vector<const Tensor*>& worker_grads) const {
  if (worker_grads.empty()) throw std::invalid_argument("GradientAllReduce: no workers");
  const std::size_t n = worker_grads.size();
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  if (order_ == ReductionOrder::kPermuted) rng_->shuffle(order);

  Tensor out(worker_grads[0]->shape());
  for (std::size_t w : order) {
    const Tensor& g = *worker_grads[w];
    if (!g.same_shape(out)) throw std::invalid_argument("GradientAllReduce: shape mismatch");
    float* dst = out.data();
    const float* src = g.data();
    const std::int64_t numel = out.numel();
    for (std::int64_t i = 0; i < numel; ++i) dst[i] += src[i];
  }
  const float inv = 1.0f / static_cast<float>(n);
  for (std::int64_t i = 0; i < out.numel(); ++i) out[i] *= inv;
  return out;
}

double DataParallelStep::gradient_bytes(const std::vector<autograd::Variable>& params) {
  double bytes = 0.0;
  for (const auto& p : params) bytes += static_cast<double>(p.numel()) * sizeof(float);
  return bytes;
}

double DataParallelStep::step(std::int64_t global_batch, const ShardGradFn& shard_fn,
                              const std::vector<autograd::Variable>& params,
                              core::ManualClock* clock) const {
  const std::int64_t workers = config_.num_workers;
  if (workers <= 0) throw std::invalid_argument("DataParallelStep: need >= 1 worker");
  if (global_batch < workers)
    throw std::invalid_argument("DataParallelStep: global batch smaller than worker count");

  // 1) Per-worker gradient computation over contiguous shards.
  std::vector<std::vector<Tensor>> worker_grads;
  worker_grads.reserve(static_cast<std::size_t>(workers));
  std::int64_t largest_shard = 0;
  for (std::int64_t w = 0; w < workers; ++w) {
    const std::int64_t begin = w * global_batch / workers;
    const std::int64_t end = (w + 1) * global_batch / workers;
    largest_shard = std::max(largest_shard, end - begin);
    worker_grads.push_back(shard_fn(begin, end));
    if (worker_grads.back().size() != params.size())
      throw std::invalid_argument("DataParallelStep: shard_fn returned wrong tensor count");
  }

  // 2) All-reduce each parameter's gradients; the per-example sums become a
  //    per-example mean over the GLOBAL batch:
  //    mean = sum_w shard_sum_w / B = (1/W) sum_w (shard_sum_w * W / B).
  GradientAllReduce reducer(config_.reduction_order, *rng_);
  const float shard_to_mean =
      static_cast<float>(workers) / static_cast<float>(global_batch);
  for (std::size_t p = 0; p < params.size(); ++p) {
    std::vector<const Tensor*> grads;
    grads.reserve(static_cast<std::size_t>(workers));
    for (std::int64_t w = 0; w < workers; ++w)
      grads.push_back(&worker_grads[static_cast<std::size_t>(w)][p]);
    Tensor averaged = reducer.reduce(grads);
    for (std::int64_t i = 0; i < averaged.numel(); ++i) averaged[i] *= shard_to_mean;
    autograd::Variable param = params[p];  // cheap shared handle
    param.zero_grad();
    param.node()->accumulate_grad(averaged);
  }

  // 3) Virtual clock: synchronous step time = slowest worker compute +
  //    unhidden all-reduce.
  double step_seconds = 0.0;
  if (config_.chip && config_.stack && config_.interconnect &&
      config_.flops_per_sample > 0.0) {
    const double compute = std::max(
        config_.flops_per_sample * static_cast<double>(largest_shard) /
            (config_.chip->tflops * 1e12 * config_.stack->compute_efficiency),
        config_.chip->step_floor_s);
    Interconnect net = *config_.interconnect;
    if (config_.stack->hierarchical_allreduce) net.topology = Interconnect::Topology::kTree;
    const double comm = net.allreduce_seconds(gradient_bytes(params), workers) *
                        (1.0 - config_.stack->comm_overlap);
    step_seconds = compute + comm;
    if (clock) clock->advance_ms(step_seconds * 1e3);
  }
  return step_seconds;
}

}  // namespace mlperf::sysim
