#include "sysim/cluster.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mlperf::sysim {

double Interconnect::allreduce_seconds(double bytes, std::int64_t n) const {
  if (n <= 1) return 0.0;
  const double nd = static_cast<double>(n);
  const double lat = latency_us * 1e-6;
  const double bw = bandwidth_gbps * 1e9;
  switch (topology) {
    case Topology::kRing:
      // Ring all-reduce: 2(n-1) steps, 2(n-1)/n of the data over each link.
      return 2.0 * (nd - 1.0) * lat + 2.0 * (nd - 1.0) / nd * bytes / bw;
    case Topology::kTree:
      // Pipelined tree/hierarchical all-reduce: O(log n) latency hops but
      // near-ring bandwidth cost.
      return 2.0 * std::log2(nd) * lat + 2.0 * bytes / bw;
  }
  throw std::logic_error("unknown topology");
}

double WorkloadProfile::epochs_at_batch(double global_batch) const {
  return base_epochs * (1.0 + std::pow(global_batch / b_star, gamma));
}

SimResult simulate(const WorkloadProfile& w, const ClusterConfig& c, bool apply_target_raise) {
  SimResult r;
  r.global_batch = static_cast<double>(c.num_chips) * static_cast<double>(c.per_chip_batch);
  const double ceiling = w.max_batch * c.stack.batch_ceiling_multiplier;
  r.converges = r.global_batch <= ceiling;
  r.epochs = w.epochs_at_batch(r.global_batch);
  if (apply_target_raise) r.epochs *= w.target_raise_epoch_factor;
  r.steps_per_epoch = std::ceil(w.dataset_samples / r.global_batch);
  const double compute =
      std::max(w.flops_per_sample * static_cast<double>(c.per_chip_batch) /
                   (c.chip.tflops * 1e12 * c.stack.compute_efficiency),
               c.chip.step_floor_s);
  Interconnect net = c.net;
  if (c.stack.hierarchical_allreduce) net.topology = Interconnect::Topology::kTree;
  const double comm =
      net.allreduce_seconds(w.model_bytes, c.num_chips) * (1.0 - c.stack.comm_overlap);
  r.step_seconds = compute + comm;
  r.time_to_train_s = r.epochs * r.steps_per_epoch * r.step_seconds;
  return r;
}

SimResult best_batch(const WorkloadProfile& w, ClusterConfig c, bool apply_target_raise) {
  SimResult best;
  best.time_to_train_s = 1e300;
  best.converges = false;
  const double mem_bytes = c.chip.mem_gb * 1e9;
  for (std::int64_t b = 1; b <= 4096; b *= 2) {
    if (static_cast<double>(b) * w.bytes_per_sample > 0.8 * mem_bytes) break;
    c.per_chip_batch = b;
    const SimResult r = simulate(w, c, apply_target_raise);
    if (r.converges && r.time_to_train_s < best.time_to_train_s) best = r;
  }
  if (!best.converges)
    throw std::invalid_argument("best_batch: no convergent batch for " + w.name);
  return best;
}

ScaleResult fastest_scale(const WorkloadProfile& w, ClusterConfig base, std::int64_t max_chips,
                          bool apply_target_raise) {
  ScaleResult best;
  best.result.time_to_train_s = 1e300;
  for (std::int64_t n = 1; n <= max_chips; n *= 2) {
    base.num_chips = n;
    SimResult r;
    try {
      r = best_batch(w, base, apply_target_raise);
    } catch (const std::invalid_argument&) {
      continue;  // no convergent batch at this scale
    }
    if (r.time_to_train_s < best.result.time_to_train_s) {
      best.chips = n;
      best.result = r;
    }
  }
  if (best.chips == 0) throw std::logic_error("fastest_scale: nothing converges");
  return best;
}

// ---- calibrated profiles ----------------------------------------------------
// Compute/communication constants use public model characteristics (params,
// training FLOPs, dataset sizes). Convergence constants (b_star, gamma) for
// ResNet are fit to the paper's own §2.2.2 data points — 64 epochs at 4K
// batch, ~83 epochs at 16K (a 30% computation increase) — giving
// b_star ~ 34K, gamma ~ 1.27; other workloads use the same functional form
// with ceilings reflecting published large-batch limits.

ChipProfile accelerator_2019() { return {"accel-2019", 100.0, 16.0}; }

Interconnect cluster_interconnect() {
  return {"hybrid-mesh", 5.0, 60.0, Interconnect::Topology::kRing};
}

SoftwareStack stack_v05() { return {"v0.5", 0.40, 0.30, false, 1.0, false}; }

SoftwareStack stack_v06() {
  // Six months of stack work (§5): better kernels/graph compilation, more
  // aggressive compute/communication overlap, hierarchical all-reduce, LARS
  // permitted, and large-batch training advances raising batch ceilings.
  return {"v0.6", 0.52, 0.60, true, 2.0, true};
}

std::vector<WorkloadProfile> comparable_workloads() {
  std::vector<WorkloadProfile> w;
  // name, flops/sample, grad bytes, dataset, base_epochs, b_star, gamma,
  // max_batch, bytes/sample, target_raise_factor
  w.push_back({"image_classification", 12e9, 102e6, 1.281e6, 60.0, 34000.0, 1.27,
               8192.0, 6e5, 1.12});   // 74.9% -> 75.9% target raise
  w.push_back({"object_detection_light", 90e9, 80e6, 1.18e5, 50.0, 2500.0, 1.4,
               1024.0, 4e6, 1.08});   // SSD; 21.2 -> 23.0 mAP
  w.push_back({"object_detection_heavy", 300e9, 180e6, 1.18e5, 13.0, 400.0, 1.5,
               128.0, 2e7, 1.0});     // Mask R-CNN (unchanged targets)
  w.push_back({"translation_recurrent", 20e9, 260e6, 4.5e6, 5.0, 2000.0, 1.3,
               1024.0, 2e6, 1.10});   // GNMT; 21.8 -> 24.0 BLEU
  w.push_back({"translation_nonrecurrent", 30e9, 850e6, 4.5e6, 8.0, 3000.0, 1.2,
               2048.0, 3e6, 1.0});    // Transformer (unchanged target)
  return w;
}

WorkloadProfile apply_round(const WorkloadProfile& w, const SoftwareStack& stack) {
  WorkloadProfile out = w;
  if (stack.lars_available && w.name == "image_classification") {
    // LARS (You et al. 2017) specifically unlocked 32K+ ResNet batches.
    out.max_batch *= 8.0;
  }
  return out;
}

}  // namespace mlperf::sysim
