#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mlperf::sysim {

/// Analytical data-parallel cluster simulator.
///
/// The paper's §5 results (Figs 4 and 5) come from real submissions on
/// systems up to thousands of chips. We cannot run those; per the DESIGN.md
/// substitution rule we model them analytically with the standard
/// data-parallel performance equation:
///
///   TTT = epochs(B) * ceil(D / B) * (t_compute(b) + t_allreduce * (1 - overlap))
///
/// where B = n * b is the global batch, epochs(B) captures large-batch epoch
/// inflation (the §2.2.2 phenomenon — e.g. ResNet: 64 epochs at 4K batch but
/// 80+ at 16K), and the all-reduce term uses a ring/tree model. Software
/// rounds (v0.5 vs v0.6) differ in compute efficiency, communication overlap,
/// and whether LARS lifts the convergent-batch ceiling — together these
/// reproduce the paper's "1.3x faster at 16 chips, 5.5x more chips" shape.

/// Interconnect: all-reduce cost model.
struct Interconnect {
  enum class Topology { kRing, kTree };
  std::string name;
  double latency_us = 5.0;        ///< per-hop software+wire latency
  double bandwidth_gbps = 100.0;  ///< per-link bandwidth (GB/s)
  Topology topology = Topology::kRing;

  /// Seconds to all-reduce `bytes` across n participants.
  double allreduce_seconds(double bytes, std::int64_t n) const;
};

/// A chip (accelerator) compute profile.
struct ChipProfile {
  std::string name;
  double tflops = 100.0;      ///< sustained peak, used with stack efficiency
  double mem_gb = 16.0;       ///< bounds per-chip batch
  /// Per-step time floor (kernel launch / framework overhead): shrinking the
  /// per-chip batch below the point where compute hits this floor buys
  /// nothing — the reason real submissions run per-chip batches of 16-64
  /// rather than 1, and what bounds useful scale-out together with epoch
  /// inflation.
  double step_floor_s = 2e-3;
};

/// A software-stack round profile: where the paper says "much of the
/// performance and scaling improvements were incorporated into the underlying
/// software infrastructure".
struct SoftwareStack {
  std::string version;
  double compute_efficiency = 0.45;  ///< fraction of chip peak achieved
  double comm_overlap = 0.3;         ///< fraction of all-reduce hidden
  bool lars_available = false;       ///< v0.6 rule change (ResNet)
  double batch_ceiling_multiplier = 1.0;  ///< generic large-batch training advances
  /// v0.6 stacks shipped hierarchical/tree all-reduce, turning the ring's
  /// O(n) latency term into O(log n) — the software scaling work §5 credits.
  bool hierarchical_allreduce = false;
};

/// A workload for the simulator: compute/communication volume plus the
/// convergence model  epochs(B) = base_epochs * (1 + (B / b_star)^gamma),
/// and a hard ceiling on convergent global batch.
struct WorkloadProfile {
  std::string name;
  double flops_per_sample = 1e9;   ///< fwd+bwd training FLOPs per sample
  double model_bytes = 1e8;        ///< gradient bytes all-reduced per step
  double dataset_samples = 1e6;    ///< samples per epoch
  double base_epochs = 60.0;
  double b_star = 30000.0;
  double gamma = 1.3;
  double max_batch = 65536.0;      ///< beyond this, training stops converging
  double bytes_per_sample = 6e5;   ///< activation memory pressure per sample
  /// Epoch multiplier applied when the round raises the quality target
  /// (e.g. ResNet 74.9% -> 75.9% costs extra epochs).
  double target_raise_epoch_factor = 1.0;

  double epochs_at_batch(double global_batch) const;
};

/// One simulated system configuration.
struct ClusterConfig {
  ChipProfile chip;
  std::int64_t num_chips = 16;
  Interconnect net;
  SoftwareStack stack;
  std::int64_t per_chip_batch = 64;
};

struct SimResult {
  double global_batch = 0.0;
  double epochs = 0.0;
  double step_seconds = 0.0;
  double steps_per_epoch = 0.0;
  double time_to_train_s = 0.0;
  bool converges = true;  ///< false if global batch exceeds the ceiling
};

/// Simulate time-to-train for a fixed configuration.
SimResult simulate(const WorkloadProfile& w, const ClusterConfig& c,
                   bool apply_target_raise = false);

/// Sweep per-chip batch (powers of two within memory) for the fastest
/// convergent result at a fixed chip count.
SimResult best_batch(const WorkloadProfile& w, ClusterConfig c,
                     bool apply_target_raise = false);

/// Sweep chip count (powers of two up to max_chips) for the overall-fastest
/// convergent result; Figure 5's "chips used by the best entry".
struct ScaleResult {
  std::int64_t chips = 0;
  SimResult result;
};
ScaleResult fastest_scale(const WorkloadProfile& w, ClusterConfig base,
                          std::int64_t max_chips, bool apply_target_raise = false);

// ---- calibrated profiles (constants documented in cluster.cpp) -------------
ChipProfile accelerator_2019();
Interconnect cluster_interconnect();
SoftwareStack stack_v05();
SoftwareStack stack_v06();
/// The five §5-comparable workloads (ResNet, SSD, Mask R-CNN, GNMT,
/// Transformer) with convergence parameters.
std::vector<WorkloadProfile> comparable_workloads();
/// Apply the round's rule/target changes to a workload (LARS ceiling for
/// ResNet, raised-target epoch factors), returning the adjusted profile.
WorkloadProfile apply_round(const WorkloadProfile& w, const SoftwareStack& stack);

}  // namespace mlperf::sysim
