#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "autograd/variable.h"
#include "core/timer.h"
#include "sysim/cluster.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace mlperf::sysim {

/// How the all-reduce combines per-worker gradient contributions.
///
/// Floating-point addition is not associative, so the reduction ORDER changes
/// the result in the last bits — one of the §2.2.3 run-to-run variance
/// sources ("non-commutativity of floating point additions", and asynchronous
/// updates "leading to different gradient accumulation orders"). kFixed uses
/// worker order every step; kPermuted draws a fresh order per step from the
/// provided Rng, emulating timing-dependent arrival order.
enum class ReductionOrder { kFixed, kPermuted };

/// Gradient all-reduce over real per-worker gradient tensors.
///
/// Functionally: out = sum_w grads[w] / num_workers, accumulated in the
/// selected order in float32 (so the order leaves a numerical fingerprint).
/// The companion cost model (Interconnect::allreduce_seconds) prices the
/// operation for the virtual clock.
class GradientAllReduce {
 public:
  GradientAllReduce(ReductionOrder order, tensor::Rng& rng) : order_(order), rng_(&rng) {}

  /// Average gradients across workers, in-place into grads[0]'s shape.
  /// All workers' tensors must share one shape.
  tensor::Tensor reduce(const std::vector<const tensor::Tensor*>& worker_grads) const;

 private:
  ReductionOrder order_;
  tensor::Rng* rng_;
};

/// A real synchronous data-parallel training step over an arbitrary model.
///
/// The trainer does not know the model's internals; the caller supplies a
/// `ShardGradFn` that, given a shard of the global batch (by index range),
/// computes that shard's gradients for every parameter (summed over shard
/// examples, NOT averaged — the trainer does the global averaging, exactly
/// like per-replica loss-sum + all-reduce-mean in real frameworks).
///
/// After the reduce, the averaged gradients are installed on the parameters
/// and the caller runs its optimizer step. A virtual clock is advanced by the
/// modeled step time: max over workers of compute time plus the all-reduce
/// cost (synchronous SGD — stragglers gate the step).
class DataParallelStep {
 public:
  struct Config {
    std::int64_t num_workers = 4;
    ReductionOrder reduction_order = ReductionOrder::kFixed;
    /// Cost model for the virtual clock (optional; nullptrs skip timing).
    const Interconnect* interconnect = nullptr;
    const ChipProfile* chip = nullptr;
    const SoftwareStack* stack = nullptr;
    double flops_per_sample = 0.0;
  };

  /// Computes gradients for global-batch indices [begin, end) and returns
  /// one gradient tensor per parameter (same order as `params`).
  using ShardGradFn =
      std::function<std::vector<tensor::Tensor>(std::int64_t begin, std::int64_t end)>;

  DataParallelStep(Config config, tensor::Rng& rng) : config_(config), rng_(&rng) {}

  /// Run one synchronous step over a global batch of `global_batch` examples:
  /// shards it contiguously across workers, reduces, installs averaged
  /// gradients into `params`' grad slots, and advances `clock` (if provided)
  /// by the modeled wall time. Returns the modeled step seconds.
  double step(std::int64_t global_batch, const ShardGradFn& shard_fn,
              const std::vector<autograd::Variable>& params,
              core::ManualClock* clock = nullptr) const;

  /// Total gradient bytes for the cost model.
  static double gradient_bytes(const std::vector<autograd::Variable>& params);

 private:
  Config config_;
  tensor::Rng* rng_;
};

}  // namespace mlperf::sysim
