#pragma once

#include <cstdint>
#include <string>

#include "tensor/tensor.h"

namespace mlperf::numerics {

/// Software-emulated numeric formats.
///
/// The paper's Figure 1 (after Zhu et al. 2016) shows AlexNet/ImageNet
/// validation-error curves under different weight representations: curves
/// only separate after tens of epochs and some formats never reach the fp32
/// error floor. We reproduce that study by emulating reduced precision in
/// software: values are stored and computed in float32, but quantized through
/// the target format at configurable points in the training loop.
enum class Format {
  kFP32,      ///< IEEE binary32 (identity; the baseline).
  kFP16,      ///< IEEE binary16, round-to-nearest-even.
  kBF16,      ///< bfloat16 (8-bit exponent, 7-bit mantissa), round-to-nearest-even.
  kFP8E4M3,   ///< 8-bit float, 4-bit exponent (bias 7), 3-bit mantissa.
  kTernary,   ///< Trained-ternary-style {-s, 0, +s} with per-tensor scale.
};

std::string to_string(Format f);

/// Round a single value through the format (identity for kFP32/kTernary —
/// ternary is inherently a per-tensor operation, see quantize_tensor).
float quantize_value(float v, Format f);

/// Quantize a whole tensor through the format. For kTernary this implements
/// a TWN-style rule: delta = 0.7 * mean|w|; w -> sign(w) * E[|w| : |w|>delta]
/// for |w| > delta, else 0.
tensor::Tensor quantize_tensor(const tensor::Tensor& t, Format f);

/// Where quantization is applied during training. Weight-only matches the
/// Figure-1 study ("different weight representations"); master weights stay
/// fp32 and a quantized copy is used for forward/backward, which is how
/// mixed-precision training is actually deployed (Micikevicius et al. 2018).
struct QuantizationPolicy {
  Format weight_format = Format::kFP32;
  Format gradient_format = Format::kFP32;
  /// Loss-scaling factor for small-magnitude gradients (1.0 = off).
  float loss_scale = 1.0f;
};

// Low-level converters, exposed for tests.
std::uint16_t float_to_half_bits(float v);
float half_bits_to_float(std::uint16_t h);
std::uint16_t float_to_bf16_bits(float v);
float bf16_bits_to_float(std::uint16_t b);
std::uint8_t float_to_fp8_e4m3_bits(float v);
float fp8_e4m3_bits_to_float(std::uint8_t b);

}  // namespace mlperf::numerics
