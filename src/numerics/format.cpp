#include "numerics/format.h"

#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

namespace mlperf::numerics {

std::string to_string(Format f) {
  switch (f) {
    case Format::kFP32: return "fp32";
    case Format::kFP16: return "fp16";
    case Format::kBF16: return "bf16";
    case Format::kFP8E4M3: return "fp8_e4m3";
    case Format::kTernary: return "ternary";
  }
  throw std::logic_error("unknown Format");
}

std::uint16_t float_to_half_bits(float v) {
  const std::uint32_t x = std::bit_cast<std::uint32_t>(v);
  const std::uint32_t sign = (x >> 16) & 0x8000u;
  const std::int32_t exp = static_cast<std::int32_t>((x >> 23) & 0xFF) - 127 + 15;
  std::uint32_t mant = x & 0x7FFFFFu;
  if (((x >> 23) & 0xFF) == 0xFF) {  // inf / nan
    return static_cast<std::uint16_t>(sign | 0x7C00u | (mant ? 0x200u : 0u));
  }
  if (exp >= 0x1F) {  // overflow -> inf
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }
  if (exp <= 0) {  // subnormal or zero
    if (exp < -10) return static_cast<std::uint16_t>(sign);
    mant |= 0x800000u;  // implicit leading 1
    const int shift = 14 - exp;
    std::uint32_t half_mant = mant >> shift;
    // round to nearest even
    const std::uint32_t rem = mant & ((1u << shift) - 1);
    const std::uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half_mant & 1u))) ++half_mant;
    return static_cast<std::uint16_t>(sign | half_mant);
  }
  // normal: round mantissa from 23 to 10 bits, nearest-even
  std::uint32_t half = sign | (static_cast<std::uint32_t>(exp) << 10) | (mant >> 13);
  const std::uint32_t rem = mant & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u && (half & 1u))) ++half;  // may carry into exp: fine
  return static_cast<std::uint16_t>(half);
}

float half_bits_to_float(std::uint16_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1Fu;
  std::uint32_t mant = h & 0x3FFu;
  std::uint32_t out;
  if (exp == 0) {
    if (mant == 0) {
      out = sign;
    } else {  // subnormal: normalize
      int e = -1;
      do {
        ++e;
        mant <<= 1;
      } while (!(mant & 0x400u));
      mant &= 0x3FFu;
      out = sign | (static_cast<std::uint32_t>(127 - 15 - e) << 23) | (mant << 13);
    }
  } else if (exp == 0x1F) {
    out = sign | 0x7F800000u | (mant << 13);
  } else {
    out = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  return std::bit_cast<float>(out);
}

std::uint16_t float_to_bf16_bits(float v) {
  std::uint32_t x = std::bit_cast<std::uint32_t>(v);
  if (((x >> 23) & 0xFF) == 0xFF) return static_cast<std::uint16_t>(x >> 16);  // inf/nan
  // round-to-nearest-even on the low 16 bits
  const std::uint32_t rounding = 0x7FFFu + ((x >> 16) & 1u);
  x += rounding;
  return static_cast<std::uint16_t>(x >> 16);
}

float bf16_bits_to_float(std::uint16_t b) {
  return std::bit_cast<float>(static_cast<std::uint32_t>(b) << 16);
}

std::uint8_t float_to_fp8_e4m3_bits(float v) {
  // E4M3 (OCP variant): bias 7, max normal 448, no inf; we saturate.
  if (std::isnan(v)) return 0x7Fu;
  const std::uint32_t x = std::bit_cast<std::uint32_t>(v);
  const std::uint8_t sign = static_cast<std::uint8_t>((x >> 24) & 0x80u);
  float a = std::fabs(v);
  if (a >= 448.0f) return static_cast<std::uint8_t>(sign | 0x7Eu);  // saturate to 448
  if (a == 0.0f) return sign;
  int e;
  float m = std::frexp(a, &e);  // a = m * 2^e, m in [0.5, 1)
  // Convert to 1.mmm * 2^(e-1) representation.
  int exp = e - 1;
  float frac = m * 2.0f;  // in [1, 2)
  if (exp < -6) {  // subnormal range: quantize with fixed step 2^-9
    const float step = std::ldexp(1.0f, -9);
    float q = std::nearbyint(a / step);
    if (q == 0.0f) return sign;
    if (q > 7.0f) {  // rounds into normal range
      q = 8.0f;
    }
    const std::uint8_t mant = static_cast<std::uint8_t>(q == 8.0f ? 0 : static_cast<int>(q));
    const std::uint8_t ebits = q == 8.0f ? 1 : 0;
    return static_cast<std::uint8_t>(sign | (ebits << 3) | mant);
  }
  // normal: round mantissa to 3 bits
  float mq = std::nearbyint((frac - 1.0f) * 8.0f);
  if (mq == 8.0f) {
    mq = 0.0f;
    ++exp;
    if (exp > 8) return static_cast<std::uint8_t>(sign | 0x7Eu);
  }
  const std::uint8_t ebits = static_cast<std::uint8_t>(exp + 7);
  return static_cast<std::uint8_t>(sign | (ebits << 3) | static_cast<std::uint8_t>(mq));
}

float fp8_e4m3_bits_to_float(std::uint8_t b) {
  const float sign = (b & 0x80u) ? -1.0f : 1.0f;
  const int ebits = (b >> 3) & 0xF;
  const int mant = b & 0x7;
  if (ebits == 0xF && mant == 0x7) return std::numeric_limits<float>::quiet_NaN();
  if (ebits == 0) return sign * static_cast<float>(mant) * std::ldexp(1.0f, -9);
  return sign * (1.0f + static_cast<float>(mant) / 8.0f) * std::ldexp(1.0f, ebits - 7);
}

float quantize_value(float v, Format f) {
  switch (f) {
    case Format::kFP32: return v;
    case Format::kFP16: return half_bits_to_float(float_to_half_bits(v));
    case Format::kBF16: return bf16_bits_to_float(float_to_bf16_bits(v));
    case Format::kFP8E4M3: return fp8_e4m3_bits_to_float(float_to_fp8_e4m3_bits(v));
    case Format::kTernary: return v;  // per-tensor; handled in quantize_tensor
  }
  throw std::logic_error("unknown Format");
}

tensor::Tensor quantize_tensor(const tensor::Tensor& t, Format f) {
  if (f == Format::kFP32) return t;
  if (f == Format::kTernary) {
    double sum_abs = 0.0;
    for (float v : t.vec()) sum_abs += std::fabs(v);
    const float mean_abs =
        t.numel() > 0 ? static_cast<float>(sum_abs / static_cast<double>(t.numel())) : 0.0f;
    const float delta = 0.7f * mean_abs;
    double scale_sum = 0.0;
    std::int64_t scale_n = 0;
    for (float v : t.vec()) {
      if (std::fabs(v) > delta) {
        scale_sum += std::fabs(v);
        ++scale_n;
      }
    }
    const float scale =
        scale_n > 0 ? static_cast<float>(scale_sum / static_cast<double>(scale_n)) : 0.0f;
    return t.map([delta, scale](float v) {
      if (v > delta) return scale;
      if (v < -delta) return -scale;
      return 0.0f;
    });
  }
  return t.map([f](float v) { return quantize_value(v, f); });
}

}  // namespace mlperf::numerics
