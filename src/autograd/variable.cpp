#include "autograd/variable.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "parallel/parallel_for.h"
#include "tensor/pool.h"

namespace mlperf::autograd {

using tensor::Shape;
using tensor::Tensor;

namespace detail {

void Node::accumulate_grad(const Tensor& g) {
  if (!grad_initialized && g.shape() == value.shape()) {
    // First touch: write g straight into a pooled buffer instead of
    // zero-filling and adding. `0.0f + src` is the exact float-add the old
    // zero+accumulate path performed (it normalizes -0.0 to +0.0, a raw
    // copy would not), so the bits are unchanged.
    grad = Tensor::uninitialized(value.shape());
    float* dst = grad.data();
    const float* src = g.data();
    const std::int64_t n = grad.numel();
    for (std::int64_t i = 0; i < n; ++i) dst[i] = 0.0f + src[i];
    grad_initialized = true;
    return;
  }
  if (!grad_initialized) {
    grad = Tensor(value.shape());
    grad_initialized = true;
  }
  if (g.shape() == grad.shape()) {
    float* dst = grad.data();
    const float* src = g.data();
    const std::int64_t n = grad.numel();
    for (std::int64_t i = 0; i < n; ++i) dst[i] += src[i];
  } else {
    // In-place accumulate of the reduced gradient: the same float adds
    // grad.add(r) would perform, minus its output allocation.
    const Tensor r = g.reduce_to(grad.shape());
    float* dst = grad.data();
    const float* src = r.data();
    const std::int64_t n = grad.numel();
    for (std::int64_t i = 0; i < n; ++i) dst[i] += src[i];
  }
}

}  // namespace detail

Variable Variable::from_op(Tensor value, std::vector<Variable> parents, BackwardFn backward_fn) {
  Variable out(std::move(value));
  bool rg = false;
  out.node_->parents.reserve(parents.size());
  for (const auto& p : parents) {
    rg = rg || p.requires_grad();
    out.node_->parents.push_back(p.node());
  }
  out.node_->requires_grad = rg;
  if (rg) out.node_->backward_fn = std::move(backward_fn);
  return out;
}

const Tensor& Variable::grad() const {
  if (!node_->grad_initialized) {
    node_->grad = Tensor(node_->value.shape());
    node_->grad_initialized = true;
  }
  return node_->grad;
}

void Variable::zero_grad() {
  if (node_->grad_initialized && node_->grad.same_shape(node_->value)) {
    // Refill in place: same zero bits, no buffer churn.
    std::fill(node_->grad.data(), node_->grad.data() + node_->grad.numel(), 0.0f);
    return;
  }
  node_->grad = Tensor(node_->value.shape());
  node_->grad_initialized = true;
}

void Variable::backward() const {
  if (numel() != 1)
    throw std::invalid_argument("backward(): output is not scalar; supply a seed gradient");
  backward(Tensor(shape(), 1.0f));
}

void Variable::backward(const Tensor& seed) const {
  if (seed.shape() != shape())
    throw std::invalid_argument("backward(): seed shape does not match output shape");
  // Topological order via iterative post-order DFS over parents.
  std::vector<detail::Node*> order;
  std::unordered_set<detail::Node*> visited;
  std::vector<std::pair<detail::Node*, std::size_t>> stack;
  stack.emplace_back(node_.get(), 0);
  visited.insert(node_.get());
  while (!stack.empty()) {
    auto& [n, next] = stack.back();
    if (next < n->parents.size()) {
      detail::Node* p = n->parents[next++].get();
      if (p->requires_grad && !visited.count(p)) {
        visited.insert(p);
        stack.emplace_back(p, 0);
      }
    } else {
      order.push_back(n);
      stack.pop_back();
    }
  }
  node_->accumulate_grad(seed);
  // Reverse topological order: node appears after all its parents in `order`.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    detail::Node* n = *it;
    if (n->backward_fn && n->grad_initialized) n->backward_fn(n->grad);
  }
  // The step's graph is spent: sever it now so interior buffers return to
  // the TensorPool at backward completion instead of at the last Variable
  // handle's death. Interior nodes drop their gradient, their backward
  // closure (releasing captured activations), and their parent links —
  // which cascade-destroys nodes no caller holds, returning their values
  // too. Leaves keep their gradient for the optimizer, and any node the
  // caller still holds keeps its value. Walking `order` forward (parents
  // before children) keeps every raw pointer alive until its own entry:
  // clearing n's parent links can only destroy nodes appearing earlier, or
  // non-requires-grad ancestors that were never in `order` (a node with a
  // requires-grad parent would itself require grad).
  for (detail::Node* n : order) {
    if (n->parents.empty()) continue;  // leaf: the optimizer reads its grad
    n->grad = Tensor();
    n->grad_initialized = false;
    n->backward_fn = nullptr;
    n->parents.clear();
  }
}

namespace {
std::atomic<std::int64_t> g_last_epoch_hits{0};
std::atomic<std::int64_t> g_last_epoch_misses{0};
}  // namespace

GraphEpoch::GraphEpoch() {
  const tensor::TensorPool::Stats s = tensor::TensorPool::instance().stats();
  hits0_ = s.hits;
  misses0_ = s.misses;
}

GraphEpoch::~GraphEpoch() {
  const tensor::TensorPool::Stats s = tensor::TensorPool::instance().stats();
  g_last_epoch_hits.store(s.hits - hits0_, std::memory_order_relaxed);
  g_last_epoch_misses.store(s.misses - misses0_, std::memory_order_relaxed);
}

std::int64_t GraphEpoch::last_pool_misses() {
  return g_last_epoch_misses.load(std::memory_order_relaxed);
}

std::int64_t GraphEpoch::last_pool_hits() {
  return g_last_epoch_hits.load(std::memory_order_relaxed);
}

// ---- op helpers ------------------------------------------------------------

namespace {

Variable broadcast_binary(const Variable& a, const Variable& b,
                          const std::function<float(float, float)>& f,
                          // dL/da given (out_grad, a_val, b_val) elementwise factor
                          const std::function<Tensor(const Tensor&, const Variable&,
                                                     const Variable&)>& grad_a,
                          const std::function<Tensor(const Tensor&, const Variable&,
                                                     const Variable&)>& grad_b) {
  Tensor out = a.value().binary(b.value(), f);
  auto an = a.node();
  auto bn = b.node();
  return Variable::from_op(std::move(out), {a, b},
                           [an, bn, a, b, grad_a, grad_b](const Tensor& g) {
                             if (an->requires_grad) an->accumulate_grad(grad_a(g, a, b));
                             if (bn->requires_grad) bn->accumulate_grad(grad_b(g, a, b));
                           });
}

}  // namespace

Variable add(const Variable& a, const Variable& b) {
  return broadcast_binary(
      a, b, std::plus<float>{},
      [](const Tensor& g, const Variable&, const Variable&) { return g; },
      [](const Tensor& g, const Variable&, const Variable&) { return g; });
}

Variable sub(const Variable& a, const Variable& b) {
  return broadcast_binary(
      a, b, std::minus<float>{},
      [](const Tensor& g, const Variable&, const Variable&) { return g; },
      [](const Tensor& g, const Variable&, const Variable&) { return g.neg(); });
}

Variable mul(const Variable& a, const Variable& b) {
  return broadcast_binary(
      a, b, std::multiplies<float>{},
      [](const Tensor& g, const Variable&, const Variable& bb) { return g.mul(bb.value()); },
      [](const Tensor& g, const Variable& aa, const Variable&) { return g.mul(aa.value()); });
}

Variable div(const Variable& a, const Variable& b) {
  return broadcast_binary(
      a, b, std::divides<float>{},
      [](const Tensor& g, const Variable&, const Variable& bb) { return g.div(bb.value()); },
      [](const Tensor& g, const Variable& aa, const Variable& bb) {
        // d/db (a/b) = -a / b^2
        return g.mul(aa.value()).div(bb.value().mul(bb.value())).neg();
      });
}

Variable neg(const Variable& a) {
  auto an = a.node();
  return Variable::from_op(a.value().neg(), {a},
                           [an](const Tensor& g) { an->accumulate_grad(g.neg()); });
}

Variable add_scalar(const Variable& a, float s) {
  auto an = a.node();
  return Variable::from_op(a.value().add_scalar(s), {a},
                           [an](const Tensor& g) { an->accumulate_grad(g); });
}

Variable mul_scalar(const Variable& a, float s) {
  auto an = a.node();
  return Variable::from_op(a.value().mul_scalar(s), {a}, [an, s](const Tensor& g) {
    an->accumulate_grad(g.mul_scalar(s));
  });
}

namespace {
tensor::Trans flip(tensor::Trans t) {
  return t == tensor::Trans::N ? tensor::Trans::T : tensor::Trans::N;
}
}  // namespace

// For y = op_ta(A) op_tb(B): d(opA) = g opB^T and d(opB) = opA^T g; undoing
// the ops on the stored operands gives the four transpose-free cases below.
// No operand is ever copy-transposed — the GEMM pack step absorbs the flags.
Variable matmul(const Variable& a, const Variable& b, tensor::Trans ta, tensor::Trans tb) {
  Tensor out = a.value().matmul(b.value(), ta, tb);
  auto an = a.node();
  auto bn = b.node();
  return Variable::from_op(std::move(out), {a, b}, [an, bn, ta, tb](const Tensor& g) {
    if (an->requires_grad)
      an->accumulate_grad(ta == tensor::Trans::N
                              ? g.matmul(bn->value, tensor::Trans::N, flip(tb))
                              : bn->value.matmul(g, tb, tensor::Trans::T));
    if (bn->requires_grad)
      bn->accumulate_grad(tb == tensor::Trans::N
                              ? an->value.matmul(g, flip(ta), tensor::Trans::N)
                              : g.matmul(an->value, tensor::Trans::T, ta));
  });
}

Variable bmm(const Variable& a, const Variable& b, tensor::Trans ta, tensor::Trans tb) {
  Tensor out = a.value().bmm(b.value(), ta, tb);
  auto an = a.node();
  auto bn = b.node();
  return Variable::from_op(std::move(out), {a, b}, [an, bn, ta, tb](const Tensor& g) {
    if (an->requires_grad)
      an->accumulate_grad(ta == tensor::Trans::N
                              ? g.bmm(bn->value, tensor::Trans::N, flip(tb))
                              : bn->value.bmm(g, tb, tensor::Trans::T));
    if (bn->requires_grad)
      bn->accumulate_grad(tb == tensor::Trans::N
                              ? an->value.bmm(g, flip(ta), tensor::Trans::N)
                              : g.bmm(an->value, tensor::Trans::T, ta));
  });
}

Variable relu(const Variable& a) {
  auto an = a.node();
  return Variable::from_op(a.value().relu(), {a}, [an](const Tensor& g) {
    Tensor masked = g.binary(an->value, [](float gv, float x) { return x > 0.0f ? gv : 0.0f; });
    an->accumulate_grad(masked);
  });
}

Variable add_relu(const Variable& a, const Variable& b) {
  // Forward is the add and the clamp fused into one binary pass: per element
  // the same float add then the same compare/select the relu(add(a, b))
  // chain performs, so the output bits are identical.
  Tensor y = a.value().binary(b.value(), [](float x, float bv) {
    const float s = x + bv;
    return s > 0.0f ? s : 0.0f;
  });
  auto an = a.node();
  auto bn = b.node();
  return Variable::from_op(y, {a, b}, [an, bn, y](const Tensor& g) {
    // y > 0 iff the pre-activation sum > 0 (y equals the sum where positive,
    // 0 elsewhere; NaN compares false in both), so masking on the output is
    // the unfused relu-backward mask — and the one masked tensor feeds both
    // parents exactly as the unfused add node would pass it through.
    Tensor masked = g.binary(y, [](float gv, float yv) { return yv > 0.0f ? gv : 0.0f; });
    if (an->requires_grad) an->accumulate_grad(masked);
    if (bn->requires_grad) bn->accumulate_grad(masked);
  });
}

Variable tanh_op(const Variable& a) {
  Tensor y = a.value().tanh();
  auto an = a.node();
  return Variable::from_op(y, {a}, [an, y](const Tensor& g) {
    an->accumulate_grad(g.binary(y, [](float gv, float yv) { return gv * (1.0f - yv * yv); }));
  });
}

Variable sigmoid(const Variable& a) {
  Tensor y = a.value().sigmoid();
  auto an = a.node();
  return Variable::from_op(y, {a}, [an, y](const Tensor& g) {
    an->accumulate_grad(g.binary(y, [](float gv, float yv) { return gv * yv * (1.0f - yv); }));
  });
}

Variable exp_op(const Variable& a) {
  Tensor y = a.value().exp();
  auto an = a.node();
  return Variable::from_op(y, {a},
                           [an, y](const Tensor& g) { an->accumulate_grad(g.mul(y)); });
}

Variable log_op(const Variable& a) {
  auto an = a.node();
  return Variable::from_op(a.value().log(), {a},
                           [an](const Tensor& g) { an->accumulate_grad(g.div(an->value)); });
}

Variable sqrt_op(const Variable& a) {
  Tensor y = a.value().sqrt();
  auto an = a.node();
  return Variable::from_op(y, {a}, [an, y](const Tensor& g) {
    an->accumulate_grad(
        g.binary(y, [](float gv, float yv) { return yv > 0.0f ? gv / (2.0f * yv) : 0.0f; }));
  });
}

Variable reshape(const Variable& a, Shape shape) {
  Tensor out = a.value().reshape(std::move(shape));
  auto an = a.node();
  return Variable::from_op(std::move(out), {a}, [an](const Tensor& g) {
    an->accumulate_grad(g.reshape(an->value.shape()));
  });
}

Variable permute(const Variable& a, const std::vector<std::int64_t>& dims) {
  Tensor out = a.value().permute(dims);
  std::vector<std::int64_t> inverse(dims.size());
  for (std::size_t i = 0; i < dims.size(); ++i)
    inverse[static_cast<std::size_t>(dims[i])] = static_cast<std::int64_t>(i);
  auto an = a.node();
  return Variable::from_op(std::move(out), {a}, [an, inverse](const Tensor& g) {
    an->accumulate_grad(g.permute(inverse));
  });
}

Variable slice0(const Variable& a, std::int64_t begin, std::int64_t end) {
  Tensor out = a.value().slice0(begin, end);
  auto an = a.node();
  return Variable::from_op(std::move(out), {a}, [an, begin](const Tensor& g) {
    Tensor full(an->value.shape());
    const std::int64_t row = full.numel() / std::max<std::int64_t>(full.shape()[0], 1);
    std::copy(g.vec().begin(), g.vec().end(), full.vec().begin() + begin * row);
    an->accumulate_grad(full);
  });
}

Variable cat0(const std::vector<Variable>& parts) {
  std::vector<Tensor> vals;
  vals.reserve(parts.size());
  for (const auto& p : parts) vals.push_back(p.value());
  Tensor out = Tensor::cat0(vals);
  std::vector<std::shared_ptr<detail::Node>> nodes;
  nodes.reserve(parts.size());
  for (const auto& p : parts) nodes.push_back(p.node());
  return Variable::from_op(std::move(out), parts, [nodes](const Tensor& g) {
    std::int64_t begin = 0;
    for (const auto& n : nodes) {
      const std::int64_t rows = n->value.shape()[0];
      if (n->requires_grad) n->accumulate_grad(g.slice0(begin, begin + rows));
      begin += rows;
    }
  });
}

Variable sum_all(const Variable& a) {
  Tensor out = Tensor::scalar(a.value().sum());
  auto an = a.node();
  return Variable::from_op(std::move(out), {a}, [an](const Tensor& g) {
    an->accumulate_grad(Tensor(an->value.shape(), g[0]));
  });
}

Variable mean_all(const Variable& a) {
  const float inv = 1.0f / static_cast<float>(a.numel());
  Tensor out = Tensor::scalar(a.value().mean());
  auto an = a.node();
  return Variable::from_op(std::move(out), {a}, [an, inv](const Tensor& g) {
    an->accumulate_grad(Tensor(an->value.shape(), g[0] * inv));
  });
}

Variable sum_axis(const Variable& a, std::int64_t axis, bool keepdim) {
  Tensor out = a.value().sum_axis(axis, keepdim);
  auto an = a.node();
  std::int64_t ax = axis < 0 ? axis + a.value().ndim() : axis;
  return Variable::from_op(std::move(out), {a}, [an, ax](const Tensor& g) {
    // Re-expand g along the reduced axis by broadcasting a keepdim view.
    Shape kshape = an->value.shape();
    kshape[static_cast<std::size_t>(ax)] = 1;
    Tensor gk = g.reshape(kshape);
    an->accumulate_grad(Tensor(an->value.shape()).add(gk));
  });
}

Variable mean_axis(const Variable& a, std::int64_t axis, bool keepdim) {
  std::int64_t ax = axis < 0 ? axis + a.value().ndim() : axis;
  const float inv = 1.0f / static_cast<float>(a.value().size(ax));
  return mul_scalar(sum_axis(a, axis, keepdim), inv);
}

Variable softmax_last(const Variable& a) {
  Tensor y = a.value().softmax_last();
  auto an = a.node();
  return Variable::from_op(y, {a}, [an, y](const Tensor& g) {
    // dL/dx = y * (g - sum(g*y, last))
    const std::int64_t last = y.shape().back();
    const std::int64_t rows = y.numel() / last;
    Tensor dx = Tensor::uninitialized(y.shape());  // every row written below
    // Row-parallel with disjoint writes — bitwise the sequential loop.
    parallel::parallel_for(
        parallel::grain_for(4 * last), rows, [&](std::int64_t begin, std::int64_t end) {
          for (std::int64_t r = begin; r < end; ++r) {
            const float* yr = y.data() + r * last;
            const float* gr = g.data() + r * last;
            float* dr = dx.data() + r * last;
            double dot = 0.0;
            for (std::int64_t j = 0; j < last; ++j) dot += static_cast<double>(yr[j]) * gr[j];
            for (std::int64_t j = 0; j < last; ++j)
              dr[j] = yr[j] * (gr[j] - static_cast<float>(dot));
          }
        });
    an->accumulate_grad(dx);
  });
}

Variable log_softmax_last(const Variable& a) {
  Tensor y = a.value().log_softmax_last();
  auto an = a.node();
  return Variable::from_op(y, {a}, [an, y](const Tensor& g) {
    // dL/dx = g - softmax(x) * sum(g, last)
    const std::int64_t last = y.shape().back();
    const std::int64_t rows = y.numel() / last;
    Tensor dx = Tensor::uninitialized(y.shape());  // every row written below
    // Row-parallel with disjoint writes — bitwise the sequential loop.
    parallel::parallel_for(
        parallel::grain_for(4 * last), rows, [&](std::int64_t begin, std::int64_t end) {
          for (std::int64_t r = begin; r < end; ++r) {
            const float* yr = y.data() + r * last;
            const float* gr = g.data() + r * last;
            float* dr = dx.data() + r * last;
            double gsum = 0.0;
            for (std::int64_t j = 0; j < last; ++j) gsum += gr[j];
            for (std::int64_t j = 0; j < last; ++j)
              dr[j] = gr[j] - std::exp(yr[j]) * static_cast<float>(gsum);
          }
        });
    an->accumulate_grad(dx);
  });
}

Variable embedding(const Variable& table, const std::vector<std::int64_t>& indices) {
  const Tensor& tv = table.value();
  if (tv.ndim() != 2) throw std::invalid_argument("embedding(): table must be rank 2");
  const std::int64_t vocab = tv.shape()[0];
  const std::int64_t dim = tv.shape()[1];
  // Fully covered by the row copies below (indices are validated first).
  Tensor out = Tensor::uninitialized({static_cast<std::int64_t>(indices.size()), dim});
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::int64_t row = indices[i];
    if (row < 0 || row >= vocab) throw std::out_of_range("embedding(): index out of range");
    std::copy(tv.data() + row * dim, tv.data() + (row + 1) * dim,
              out.data() + static_cast<std::int64_t>(i) * dim);
  }
  auto tn = table.node();
  return Variable::from_op(std::move(out), {table}, [tn, indices, dim](const Tensor& g) {
    Tensor dt(tn->value.shape());
    for (std::size_t i = 0; i < indices.size(); ++i) {
      const std::int64_t row = indices[i];
      const float* src = g.data() + static_cast<std::int64_t>(i) * dim;
      float* dst = dt.data() + row * dim;
      for (std::int64_t d = 0; d < dim; ++d) dst[d] += src[d];
    }
    tn->accumulate_grad(dt);
  });
}

Variable detach(const Variable& a) { return Variable(a.value(), false); }

}  // namespace mlperf::autograd
