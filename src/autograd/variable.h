#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace mlperf::autograd {

class Variable;

/// Backward closure: receives the gradient flowing into this node's output
/// and must accumulate gradients into its parents (captured by the closure).
using BackwardFn = std::function<void(const tensor::Tensor& out_grad)>;

namespace detail {
struct Node {
  tensor::Tensor value;
  tensor::Tensor grad;          // lazily sized on first accumulation
  bool requires_grad = false;
  bool grad_initialized = false;
  std::vector<std::shared_ptr<Node>> parents;
  BackwardFn backward_fn;       // empty for leaves

  void accumulate_grad(const tensor::Tensor& g);
};
}  // namespace detail

/// A node in the autograd tape: a tensor value plus (optionally) a gradient
/// and the closure that propagates it. Variables are cheap shared handles —
/// copying a Variable aliases the same node, which is what layer parameter
/// registries rely on.
class Variable {
 public:
  Variable() : node_(std::make_shared<detail::Node>()) {}

  explicit Variable(tensor::Tensor value, bool requires_grad = false)
      : node_(std::make_shared<detail::Node>()) {
    node_->value = std::move(value);
    node_->requires_grad = requires_grad;
  }

  /// Build a non-leaf from an op: `value` is the op output; `backward_fn`
  /// accumulates into the parents. The node requires grad iff any parent
  /// does. This is the extension point `nn` uses for conv/pool/etc.
  static Variable from_op(tensor::Tensor value, std::vector<Variable> parents,
                          BackwardFn backward_fn);

  const tensor::Tensor& value() const { return node_->value; }
  tensor::Tensor& mutable_value() { return node_->value; }

  /// Gradient; zero tensor of the value's shape if nothing accumulated yet.
  const tensor::Tensor& grad() const;
  bool requires_grad() const { return node_->requires_grad; }
  void set_requires_grad(bool rg) { node_->requires_grad = rg; }
  void zero_grad();

  const tensor::Shape& shape() const { return node_->value.shape(); }
  std::int64_t numel() const { return node_->value.numel(); }

  /// Reverse-mode sweep. For scalar outputs seeds with 1.0; otherwise a seed
  /// gradient of the output's shape must be supplied.
  void backward() const;
  void backward(const tensor::Tensor& seed) const;

  /// Identity check (same underlying node).
  bool is(const Variable& other) const { return node_ == other.node_; }

  std::shared_ptr<detail::Node> node() const { return node_; }

 private:
  std::shared_ptr<detail::Node> node_;
};

/// Step-scoped accounting marker, the graph-side analogue of
/// `tensor::ScratchArena::Frame`: open one around a training step
/// (forward + backward + update). On close it records the TensorPool
/// hit/miss deltas observed during the step, which the steady-state
/// zero-allocation pin tests and the harness's pool-stats run event read.
/// The recycling itself is unconditional: `Variable::backward()` severs the
/// spent graph as its final act, returning interior value/grad buffers and
/// backward-closure captures to the pool whether or not an epoch is open.
class GraphEpoch {
 public:
  GraphEpoch();
  ~GraphEpoch();
  GraphEpoch(const GraphEpoch&) = delete;
  GraphEpoch& operator=(const GraphEpoch&) = delete;

  /// Pool misses/hits observed during the most recently closed epoch
  /// (process-wide; steady-state misses must be zero once the pool is warm).
  static std::int64_t last_pool_misses();
  static std::int64_t last_pool_hits();

 private:
  std::int64_t hits0_;
  std::int64_t misses0_;
};

// ---- differentiable primitives -------------------------------------------
// All binary ops broadcast like tensor::Tensor::binary and reduce gradients
// back to each parent's shape.
Variable add(const Variable& a, const Variable& b);
Variable sub(const Variable& a, const Variable& b);
Variable mul(const Variable& a, const Variable& b);
Variable div(const Variable& a, const Variable& b);
Variable neg(const Variable& a);
Variable add_scalar(const Variable& a, float s);
Variable mul_scalar(const Variable& a, float s);
/// Matrix product op(a) x op(b) with either operand consumed transposed in
/// place (no materialized transpose, forward or backward: gradients are
/// formed with the complementary transposed GEMM variants).
Variable matmul(const Variable& a, const Variable& b, tensor::Trans ta = tensor::Trans::N,
                tensor::Trans tb = tensor::Trans::N);
/// Batched matrix product with per-batch transposed operands (see matmul).
Variable bmm(const Variable& a, const Variable& b, tensor::Trans ta = tensor::Trans::N,
             tensor::Trans tb = tensor::Trans::N);
Variable relu(const Variable& a);
/// Fused relu(a + b) (broadcast like add): one pass forward, and backward
/// computes the shared masked gradient once for both parents. Bitwise
/// identical to relu(add(a, b)) — same adds, and masking on the output
/// equals masking on the pre-activation sum — with one fewer graph node and
/// intermediate buffer. Covers the two hottest chains: residual-add+ReLU
/// (ResNet blocks) and bias+ReLU (Linear::forward_relu).
Variable add_relu(const Variable& a, const Variable& b);
Variable tanh_op(const Variable& a);
Variable sigmoid(const Variable& a);
Variable exp_op(const Variable& a);
Variable log_op(const Variable& a);
Variable sqrt_op(const Variable& a);
Variable reshape(const Variable& a, tensor::Shape shape);
Variable permute(const Variable& a, const std::vector<std::int64_t>& dims);
Variable slice0(const Variable& a, std::int64_t begin, std::int64_t end);
Variable cat0(const std::vector<Variable>& parts);
Variable sum_all(const Variable& a);
Variable mean_all(const Variable& a);
Variable sum_axis(const Variable& a, std::int64_t axis, bool keepdim = false);
Variable mean_axis(const Variable& a, std::int64_t axis, bool keepdim = false);
Variable softmax_last(const Variable& a);
Variable log_softmax_last(const Variable& a);
/// Row lookup: table is [V, D]; indices selects rows -> [n, D].
Variable embedding(const Variable& table, const std::vector<std::int64_t>& indices);
/// Stop-gradient: value flows, gradient does not.
Variable detach(const Variable& a);

}  // namespace mlperf::autograd
