#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/aggregate.h"
#include "core/quality.h"

namespace mlperf::core {

/// The seven v0.5 workloads (Table 1).
enum class BenchmarkId {
  kImageClassification,  // ResNet-50 v1.5 / ImageNet
  kObjectDetectionLight, // SSD-ResNet34 / COCO
  kObjectDetectionHeavy, // Mask R-CNN / COCO
  kTranslationRecurrent, // GNMT / WMT16
  kTranslationNonRecurrent, // Transformer / WMT17
  kRecommendation,       // NCF / MovieLens-20M
  kReinforcementLearning // MiniGo / 9x9 Go
};

std::string to_string(BenchmarkId id);

/// Application area, used for run-count policy (vision = 5 runs) and for
/// the suite-coverage reporting.
enum class Area { kVision, kLanguage, kCommerce, kResearch };

/// One row of Table 1, extended with (a) the run-aggregation policy the
/// paper assigns to it and (b) the scaled quality target used by our
/// mini-workload reproduction (the paper targets are metadata for reporting;
/// see DESIGN.md's substitution table).
struct BenchmarkSpec {
  BenchmarkId id;
  std::string name;          ///< e.g. "image_classification"
  std::string dataset;       ///< paper dataset name
  std::string model;         ///< paper model name
  Area area;
  QualityMetric paper_quality;   ///< Table-1 threshold (metadata)
  QualityMetric mini_quality;    ///< threshold our mini workload trains to
  AggregationPolicy aggregation; ///< 5 runs vision / 10 runs other
  /// Secondary paper threshold (Mask R-CNN has box AND mask AP).
  std::optional<QualityMetric> paper_quality_secondary;
};

/// A benchmark-suite round: versioned spec list plus round-level rule flags.
struct SuiteVersion {
  std::string version;           ///< "v0.5" / "v0.6"
  std::vector<BenchmarkSpec> benchmarks;
  bool lars_allowed = false;     ///< v0.6 allowed LARS for large-batch ResNet
};

/// Table 1 exactly: the v0.5 suite.
SuiteVersion suite_v05();

/// The v0.6 revision (§6): raised ResNet/GNMT/MiniGo targets, LARS allowed,
/// GNMT architecture improved, MiniGo reference moved to C++.
SuiteVersion suite_v06();

/// Find a spec by id; throws if the suite lacks it.
const BenchmarkSpec& find_spec(const SuiteVersion& suite, BenchmarkId id);

}  // namespace mlperf::core
