#include "core/scale.h"

#include <stdexcept>

namespace mlperf::core {

double CloudScaleModel::scale(const SystemDescription& sys) const {
  if (sys.num_nodes <= 0) throw std::invalid_argument("CloudScaleModel: bad node count");
  double accel_weight = 8.0;
  for (const auto& w : accelerator_weights)
    if (w.model == sys.accelerator_model) accel_weight = w.weight;
  return per_processor * static_cast<double>(sys.total_processors()) +
         per_gb_memory * sys.host_memory_gb * static_cast<double>(sys.num_nodes) +
         accel_weight * static_cast<double>(sys.total_accelerators());
}

}  // namespace mlperf::core
