#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mlperf::core {

/// System description, the §4.1 submission requirement: hardware (nodes,
/// processors, accelerators, storage, interconnect) and software stack.
struct SystemDescription {
  std::string system_name;
  std::int64_t num_nodes = 1;
  std::string processor_model;
  std::int64_t processors_per_node = 1;
  std::string accelerator_model;   ///< "" if none
  std::int64_t accelerators_per_node = 0;
  double host_memory_gb = 0.0;
  double storage_per_node_tb = 0.0;
  std::string interconnect;        ///< e.g. "eth-100g", "nvlink+ib"
  std::string os;
  std::vector<std::string> libraries;

  std::int64_t total_accelerators() const { return num_nodes * accelerators_per_node; }
  std::int64_t total_processors() const { return num_nodes * processors_per_node; }
  /// "Chips" as Figures 4/5 count them: accelerators if present, else CPUs.
  std::int64_t total_chips() const {
    return accelerators_per_node > 0 ? total_accelerators() : total_processors();
  }
};

/// Per-accelerator relative weight used by the cloud scale metric.
struct AcceleratorWeight {
  std::string model;
  double weight = 1.0;
};

/// Cloud scale metric (§4.2.3): derived from (1) host processors, (2) host
/// memory, (3) number and type of accelerators; the paper verified it
/// correlates with cost across three major clouds. Weights here are the
/// knobs; the defaults make one mid-range accelerator ~ 8 host cores.
struct CloudScaleModel {
  double per_processor = 1.0;
  double per_gb_memory = 0.05;
  std::vector<AcceleratorWeight> accelerator_weights;  ///< default weight 8.0

  double scale(const SystemDescription& sys) const;
};

}  // namespace mlperf::core
