#include "core/mlog.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace mlperf::core {

double LogEvent::as_number() const {
  if (const double* d = std::get_if<double>(&value)) return *d;
  throw std::logic_error("LogEvent '" + key + "': value is not a number");
}

const std::string& LogEvent::as_string() const {
  if (const std::string* s = std::get_if<std::string>(&value)) return *s;
  throw std::logic_error("LogEvent '" + key + "': value is not a string");
}

bool LogEvent::as_bool() const {
  if (const bool* b = std::get_if<bool>(&value)) return *b;
  throw std::logic_error("LogEvent '" + key + "': value is not a bool");
}

void MlLog::log(double time_ms, std::string key, LogValue value,
                std::map<std::string, std::string> meta) {
  events_.push_back(LogEvent{time_ms, std::move(key), std::move(value), std::move(meta)});
}

const LogEvent* MlLog::find(const std::string& key) const {
  for (const auto& e : events_)
    if (e.key == key) return &e;
  return nullptr;
}

std::vector<const LogEvent*> MlLog::find_all(const std::string& key) const {
  std::vector<const LogEvent*> out;
  for (const auto& e : events_)
    if (e.key == key) out.push_back(&e);
  return out;
}

const LogEvent* MlLog::find_last(const std::string& key) const {
  const LogEvent* last = nullptr;
  for (const auto& e : events_)
    if (e.key == key) last = &e;
  return last;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string MlLog::serialize() const {
  std::ostringstream os;
  for (const auto& e : events_) {
    os << "{\"time_ms\": " << e.time_ms << ", \"key\": \"" << json_escape(e.key)
       << "\", \"value\": ";
    if (const double* d = std::get_if<double>(&e.value)) {
      os << *d;
    } else if (const bool* b = std::get_if<bool>(&e.value)) {
      os << (*b ? "true" : "false");
    } else {
      os << '"' << json_escape(std::get<std::string>(e.value)) << '"';
    }
    if (!e.meta.empty()) {
      os << ", \"meta\": {";
      bool first = true;
      for (const auto& [k, v] : e.meta) {
        if (!first) os << ", ";
        first = false;
        os << '"' << json_escape(k) << "\": \"" << json_escape(v) << '"';
      }
      os << '}';
    }
    os << "}\n";
  }
  return os.str();
}

namespace {

/// Minimal parser for the serializer's own output (one flat object per line).
class LineParser {
 public:
  explicit LineParser(const std::string& line) : s_(line) {}

  LogEvent parse() {
    LogEvent e;
    expect('{');
    bool first = true;
    while (true) {
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        break;
      }
      if (!first) expect(',');
      first = false;
      const std::string field = parse_string();
      expect(':');
      if (field == "time_ms") {
        e.time_ms = parse_number();
      } else if (field == "key") {
        e.key = parse_string();
      } else if (field == "value") {
        skip_ws();
        const char c = peek();
        if (c == '"') {
          e.value = parse_string();
        } else if (c == 't' || c == 'f') {
          e.value = parse_bool();
        } else {
          e.value = parse_number();
        }
      } else if (field == "meta") {
        expect('{');
        bool mfirst = true;
        while (true) {
          skip_ws();
          if (peek() == '}') {
            ++pos_;
            break;
          }
          if (!mfirst) expect(',');
          mfirst = false;
          const std::string k = parse_string();
          expect(':');
          e.meta[k] = parse_string();
        }
      } else {
        throw std::invalid_argument("MlLog::parse: unknown field '" + field + "'");
      }
    }
    return e;
  }

 private:
  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) throw std::invalid_argument("MlLog::parse: unexpected end of line");
    return s_[pos_];
  }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }
  void expect(char c) {
    if (peek() != c)
      throw std::invalid_argument(std::string("MlLog::parse: expected '") + c + "'");
    ++pos_;
  }
  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\' && pos_ + 1 < s_.size()) {
        ++pos_;
        switch (s_[pos_]) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          default: out += s_[pos_];
        }
      } else {
        out += s_[pos_];
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) throw std::invalid_argument("MlLog::parse: unterminated string");
    ++pos_;  // closing quote
    return out;
  }
  double parse_number() {
    skip_ws();
    std::size_t end = pos_;
    while (end < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[end])) || s_[end] == '-' ||
            s_[end] == '+' || s_[end] == '.' || s_[end] == 'e' || s_[end] == 'E'))
      ++end;
    const double v = std::stod(s_.substr(pos_, end - pos_));
    pos_ = end;
    return v;
  }
  bool parse_bool() {
    skip_ws();
    if (s_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return false;
    }
    throw std::invalid_argument("MlLog::parse: bad bool");
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

void MlLog::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("MlLog::write_file: cannot open " + path);
  out << serialize();
  if (!out) throw std::runtime_error("MlLog::write_file: write failed for " + path);
}

MlLog MlLog::read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("MlLog::read_file: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

MlLog MlLog::parse(const std::string& json_lines) {
  MlLog log;
  std::istringstream is(json_lines);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    LineParser p(line);
    log.events_.push_back(p.parse());
  }
  return log;
}

}  // namespace mlperf::core
