#pragma once

#include <string>

namespace mlperf::core {

/// A quality metric with a target threshold (Table 1's right column). All
/// current suite metrics are higher-is-better; the flag exists because
/// time-to-train generalizes to loss-style metrics too (§3.2).
struct QualityMetric {
  std::string name;          ///< e.g. "top1_accuracy", "bleu", "hr_at_10"
  double target = 0.0;
  bool higher_is_better = true;

  bool reached(double value) const {
    return higher_is_better ? value >= target : value <= target;
  }
};

}  // namespace mlperf::core
