#include "core/benchmark_spec.h"

#include <stdexcept>

namespace mlperf::core {

std::string to_string(BenchmarkId id) {
  switch (id) {
    case BenchmarkId::kImageClassification: return "image_classification";
    case BenchmarkId::kObjectDetectionLight: return "object_detection_light";
    case BenchmarkId::kObjectDetectionHeavy: return "object_detection_heavy";
    case BenchmarkId::kTranslationRecurrent: return "translation_recurrent";
    case BenchmarkId::kTranslationNonRecurrent: return "translation_nonrecurrent";
    case BenchmarkId::kRecommendation: return "recommendation";
    case BenchmarkId::kReinforcementLearning: return "reinforcement_learning";
  }
  throw std::logic_error("unknown BenchmarkId");
}

SuiteVersion suite_v05() {
  SuiteVersion s;
  s.version = "v0.5";
  s.lars_allowed = false;
  s.benchmarks = {
      // Table 1, row by row. paper_quality = the published threshold;
      // mini_quality = what our scaled synthetic workload trains to (see
      // DESIGN.md substitutions; calibrated so a run finishes in seconds).
      {BenchmarkId::kImageClassification, "image_classification", "ImageNet",
       "ResNet-50 v1.5", Area::kVision,
       {"top1_accuracy", 0.749, true}, {"top1_accuracy", 0.80, true},
       AggregationPolicy::vision(), std::nullopt},
      {BenchmarkId::kObjectDetectionLight, "object_detection_light", "COCO 2017",
       "SSD-ResNet-34", Area::kVision,
       {"map", 0.212, true}, {"map", 0.40, true},
       AggregationPolicy::vision(), std::nullopt},
      {BenchmarkId::kObjectDetectionHeavy, "object_detection_heavy", "COCO 2017",
       "Mask R-CNN", Area::kVision,
       {"box_min_ap", 0.377, true}, {"box_min_ap", 0.40, true},
       AggregationPolicy::vision(),
       QualityMetric{"mask_min_ap", 0.339, true}},
      {BenchmarkId::kTranslationRecurrent, "translation_recurrent", "WMT16 EN-DE",
       "GNMT", Area::kLanguage,
       {"bleu", 21.8, true}, {"bleu", 30.0, true},
       AggregationPolicy::other(), std::nullopt},
      {BenchmarkId::kTranslationNonRecurrent, "translation_nonrecurrent", "WMT17 EN-DE",
       "Transformer", Area::kLanguage,
       {"bleu", 25.0, true}, {"bleu", 30.0, true},
       AggregationPolicy::other(), std::nullopt},
      {BenchmarkId::kRecommendation, "recommendation", "MovieLens-20M",
       "NCF", Area::kCommerce,
       {"hr_at_10", 0.635, true}, {"hr_at_10", 0.52, true},
       AggregationPolicy::other(), std::nullopt},
      {BenchmarkId::kReinforcementLearning, "reinforcement_learning", "Go (9x9 board)",
       "MiniGo", Area::kResearch,
       {"pro_move_prediction", 0.40, true}, {"move_prediction", 0.30, true},
       AggregationPolicy::other(), std::nullopt},
  };
  return s;
}

SuiteVersion suite_v06() {
  // §6: v0.6 raised targets after allowing LARS (ResNet), improving the GNMT
  // architecture, and porting the MiniGo reference to C++. NCF was dropped
  // from the round pending the synthetic-dataset update (§3.1.5), which is
  // why §5 compares "the five benchmarks that were unmodified or modified in
  // limited ways".
  SuiteVersion s = suite_v05();
  s.version = "v0.6";
  s.lars_allowed = true;
  std::vector<BenchmarkSpec> kept;
  for (auto& b : s.benchmarks) {
    switch (b.id) {
      case BenchmarkId::kImageClassification:
        b.paper_quality.target = 0.759;  // 74.9% -> 75.9%
        b.mini_quality.target = 0.82;
        kept.push_back(b);
        break;
      case BenchmarkId::kObjectDetectionLight:
        b.paper_quality.target = 0.230;  // 21.2 -> 23.0 mAP
        b.mini_quality.target = 0.45;
        kept.push_back(b);
        break;
      case BenchmarkId::kTranslationRecurrent:
        b.paper_quality.target = 24.0;  // GNMT model improved, target raised
        b.mini_quality.target = 32.0;
        kept.push_back(b);
        break;
      case BenchmarkId::kReinforcementLearning:
        b.paper_quality.target = 0.45;  // C++ reference, raised target
        b.mini_quality.target = 0.33;
        kept.push_back(b);
        break;
      case BenchmarkId::kRecommendation:
        break;  // dropped in v0.6
      default:
        kept.push_back(b);
        break;
    }
  }
  s.benchmarks = std::move(kept);
  return s;
}

const BenchmarkSpec& find_spec(const SuiteVersion& suite, BenchmarkId id) {
  for (const auto& b : suite.benchmarks)
    if (b.id == id) return b;
  throw std::out_of_range("find_spec: benchmark not in suite " + suite.version);
}

}  // namespace mlperf::core
