#include "core/division.h"

#include <sstream>
#include <stdexcept>

namespace mlperf::core {

std::string to_string(Division d) {
  switch (d) {
    case Division::kClosed: return "closed";
    case Division::kOpen: return "open";
  }
  throw std::logic_error("unknown Division");
}

std::string to_string(const HpValue& v) {
  std::ostringstream os;
  if (const double* d = std::get_if<double>(&v)) {
    os << *d;
  } else if (const std::int64_t* i = std::get_if<std::int64_t>(&v)) {
    os << *i;
  } else {
    os << std::get<std::string>(v);
  }
  return os.str();
}

ClosedDivisionRules closed_rules(const SuiteVersion& suite, BenchmarkId id) {
  const BenchmarkSpec& spec = find_spec(suite, id);  // validates membership
  ClosedDivisionRules r;
  // Common to every benchmark: batch size plus the schedule knobs required to
  // re-converge at that batch (linear scaling + warmup, per Goyal et al.).
  // Momentum is on the common list because every SGD reference logs it and
  // submissions may need to re-tune it together with the batch-scaled lr.
  r.modifiable_hyperparameters = {"global_batch_size", "learning_rate", "warmup_steps",
                                  "lr_decay_steps", "seed", "momentum"};
  r.reference_model_signature = spec.model;
  switch (id) {
    case BenchmarkId::kImageClassification:
      r.reference_optimizer = "sgd_momentum";
      r.allowed_optimizers = {"sgd_momentum"};
      if (suite.lars_allowed) {
        // v0.6 rule change (§5): LARS permitted for large-batch ResNet, with
        // its own trust coefficient exposed.
        r.allowed_optimizers.insert("lars");
        r.modifiable_hyperparameters.insert("lars_eta");
      }
      r.reference_augmentation_signature = "random_crop|horizontal_flip|color_jitter";
      break;
    case BenchmarkId::kObjectDetectionLight:
    case BenchmarkId::kObjectDetectionHeavy:
      r.reference_optimizer = "sgd_momentum";
      r.allowed_optimizers = {"sgd_momentum"};
      r.reference_augmentation_signature = "horizontal_flip";
      break;
    case BenchmarkId::kTranslationRecurrent:
      r.reference_optimizer = "adam";
      r.allowed_optimizers = {"adam", "sgd_momentum"};
      r.modifiable_hyperparameters.insert("grad_clip_norm");
      r.reference_augmentation_signature = "";
      break;
    case BenchmarkId::kTranslationNonRecurrent:
      r.reference_optimizer = "adam";
      r.allowed_optimizers = {"adam"};
      r.modifiable_hyperparameters.insert("label_smoothing");
      r.reference_augmentation_signature = "";
      break;
    case BenchmarkId::kRecommendation:
      r.reference_optimizer = "adam";
      r.allowed_optimizers = {"adam"};
      r.modifiable_hyperparameters.insert("negatives_per_positive");
      r.reference_augmentation_signature = "";
      break;
    case BenchmarkId::kReinforcementLearning:
      r.reference_optimizer = "sgd_momentum";
      r.allowed_optimizers = {"sgd_momentum"};
      r.modifiable_hyperparameters.insert("selfplay_games_per_epoch");
      r.modifiable_hyperparameters.insert("mcts_simulations");
      r.reference_augmentation_signature = "";
      break;
  }
  return r;
}

}  // namespace mlperf::core
