#include "core/submission.h"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace mlperf::core {

ResultsReport score_submission(const Submission& sub, const SuiteVersion& suite,
                               const CloudScaleModel& scale_model) {
  ResultsReport report;
  report.organization = sub.organization;
  report.system_name = sub.system.system_name;
  report.division = sub.division;
  report.category = sub.category;
  report.system_type = sub.system_type;

  for (const auto& entry : sub.entries) {
    const BenchmarkSpec& spec = find_spec(suite, entry.benchmark);
    if (static_cast<std::int64_t>(entry.runs.size()) < spec.aggregation.required_runs)
      throw std::invalid_argument("score_submission: " + spec.name + " has " +
                                  std::to_string(entry.runs.size()) + " runs, needs " +
                                  std::to_string(spec.aggregation.required_runs));
    std::vector<double> times;
    times.reserve(entry.runs.size());
    for (const auto& run : entry.runs) {
      if (!run.quality_reached)
        throw std::invalid_argument("score_submission: " + spec.name +
                                    " contains a run that missed the quality target");
      times.push_back(run.time_to_train_ms);
    }
    ScoredEntry scored;
    scored.benchmark = entry.benchmark;
    scored.result = aggregate_runs(times, spec.aggregation);
    scored.chips = sub.system.total_chips();
    scored.cloud_scale =
        sub.system_type == SystemType::kCloud ? scale_model.scale(sub.system) : 0.0;
    report.entries.push_back(scored);
  }
  return report;
}

std::string format_report(const ResultsReport& report) {
  std::ostringstream os;
  os << "submitter: " << report.organization << "  system: " << report.system_name
     << "  division: " << to_string(report.division)
     << "  category: " << to_string(report.category)
     << "  type: " << to_string(report.system_type) << "\n";
  os << std::left << std::setw(28) << "benchmark" << std::right << std::setw(14)
     << "score (ms)" << std::setw(12) << "runs used" << std::setw(8) << "chips";
  os << std::setw(14) << "cloud scale" << "\n";
  for (const auto& e : report.entries) {
    os << std::left << std::setw(28) << to_string(e.benchmark) << std::right << std::fixed
       << std::setprecision(2) << std::setw(14) << e.result.score_ms << std::setw(12)
       << e.result.runs_used << std::setw(8) << e.chips;
    if (e.cloud_scale > 0.0) {
      os << std::setw(14) << e.cloud_scale;
    } else {
      os << std::setw(14) << "-";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace mlperf::core
