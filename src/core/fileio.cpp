#include "core/fileio.h"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define MLPERF_HAVE_FSYNC 1
#endif

namespace mlperf::core {

namespace {

#ifdef MLPERF_HAVE_FSYNC
// Durability barrier: the temp file's bytes must reach stable storage before
// the rename does, or a power loss can persist the rename ahead of the data
// and leave a truncated file at the final path.
void fsync_path(const std::string& path, bool directory) {
  const int flags = directory ? (O_RDONLY | O_DIRECTORY) : O_RDONLY;
  const int fd = ::open(path.c_str(), flags);
  if (fd < 0) {
    if (directory) return;  // best-effort: some filesystems refuse dir opens
    throw std::runtime_error("atomic_write_file: cannot reopen " + path + " for fsync");
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0 && !directory)
    throw std::runtime_error("atomic_write_file: fsync failed for " + path);
}

std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}
#endif

}  // namespace

void atomic_write_file(const std::string& path, const void* data, std::size_t size) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("atomic_write_file: cannot open " + tmp);
    out.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      throw std::runtime_error("atomic_write_file: write failed for " + tmp);
    }
  }
#ifdef MLPERF_HAVE_FSYNC
  try {
    fsync_path(tmp, /*directory=*/false);
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }
#endif
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("atomic_write_file: rename to " + path + " failed");
  }
#ifdef MLPERF_HAVE_FSYNC
  // Make the rename itself durable (best-effort: by this point the data is
  // safe and the swap atomic; an unsynced directory can only lose the whole
  // rename, which degenerates to "crash before save", never a torn file).
  fsync_path(parent_dir(path), /*directory=*/true);
#endif
}

std::vector<std::uint8_t> read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("read_file_bytes: cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  if (size > 0) in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) throw std::runtime_error("read_file_bytes: read failed for " + path);
  return bytes;
}

}  // namespace mlperf::core
