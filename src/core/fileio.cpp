#include "core/fileio.h"

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace mlperf::core {

void atomic_write_file(const std::string& path, const void* data, std::size_t size) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("atomic_write_file: cannot open " + tmp);
    out.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      throw std::runtime_error("atomic_write_file: write failed for " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("atomic_write_file: rename to " + path + " failed");
  }
}

std::vector<std::uint8_t> read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("read_file_bytes: cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  if (size > 0) in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) throw std::runtime_error("read_file_bytes: read failed for " + path);
  return bytes;
}

}  // namespace mlperf::core
