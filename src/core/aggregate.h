#pragma once

#include <cstdint>
#include <vector>

namespace mlperf::core {

/// Run-aggregation rules (§3.2.2): vision benchmarks submit 5 runs, all other
/// benchmarks 10; the fastest and slowest are dropped and the arithmetic mean
/// of the rest is the reported score ("olympic mean").
struct AggregationPolicy {
  std::int64_t required_runs = 5;
  std::int64_t drop_fastest = 1;
  std::int64_t drop_slowest = 1;

  static AggregationPolicy vision() { return {5, 1, 1}; }
  static AggregationPolicy other() { return {10, 1, 1}; }
};

/// Olympic mean of run times: drop the given number of extremes, average the
/// rest. Throws if too few runs remain.
double olympic_mean(std::vector<double> run_times_ms, const AggregationPolicy& policy);

/// Plain mean/stddev helpers for the variance studies.
double mean(const std::vector<double>& xs);
double stddev(const std::vector<double>& xs);

/// Fraction of entries within +-`tolerance` (relative) of the median; the
/// paper chose run counts so that 90% of same-system entries fall within 5%
/// (vision) or 10% (other). bench/ablation_aggregation reproduces this.
double fraction_within(const std::vector<double>& xs, double tolerance);

/// Result of aggregating one benchmark's runs.
struct AggregatedResult {
  double score_ms = 0.0;        ///< the olympic mean
  double raw_mean_ms = 0.0;
  double raw_stddev_ms = 0.0;
  std::int64_t runs_used = 0;   ///< after drops
};

AggregatedResult aggregate_runs(const std::vector<double>& run_times_ms,
                                const AggregationPolicy& policy);

}  // namespace mlperf::core
