#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace mlperf::core {

/// Value carried by a log event.
using LogValue = std::variant<double, std::string, bool>;

/// One structured log event (a JSON line in the serialized form). Mirrors the
/// real mlperf_log: a timestamp, a key, a value, and string metadata.
struct LogEvent {
  double time_ms = 0.0;  ///< run-relative milliseconds (from the run's Clock)
  std::string key;
  LogValue value;
  std::map<std::string, std::string> meta;

  double as_number() const;
  const std::string& as_string() const;
  bool as_bool() const;
};

/// Canonical event keys (subset of the real mlperf_log key space, §4.1: logs
/// carry timestamps for workload stages, periodic quality, and HP choices).
namespace keys {
inline constexpr const char* kSubmissionBenchmark = "submission_benchmark";
inline constexpr const char* kSubmissionOrg = "submission_org";
inline constexpr const char* kSubmissionDivision = "submission_division";
inline constexpr const char* kSubmissionCategory = "submission_status";
inline constexpr const char* kReformatStart = "data_reformat_start";
inline constexpr const char* kReformatStop = "data_reformat_stop";
inline constexpr const char* kInitStart = "init_start";
inline constexpr const char* kInitStop = "init_stop";
inline constexpr const char* kModelCreationStart = "model_creation_start";
inline constexpr const char* kModelCreationStop = "model_creation_stop";
inline constexpr const char* kRunStart = "run_start";
inline constexpr const char* kRunStop = "run_stop";
inline constexpr const char* kEpochStart = "epoch_start";
inline constexpr const char* kEpochStop = "epoch_stop";
inline constexpr const char* kEvalStart = "eval_start";
inline constexpr const char* kEvalAccuracy = "eval_accuracy";
inline constexpr const char* kQualityTarget = "quality_target";
inline constexpr const char* kQualityReached = "quality_reached";
inline constexpr const char* kGlobalBatchSize = "global_batch_size";
inline constexpr const char* kHyperparameter = "hyperparameter";
inline constexpr const char* kDataTouch = "data_touch";
inline constexpr const char* kSeed = "seed";
inline constexpr const char* kAugmentationSignature = "augmentation_signature";
inline constexpr const char* kModelSignature = "model_signature";
inline constexpr const char* kOptimizerName = "optimizer_name";
// Checkpoint/restore (both fall inside the timed run window, so under the
// §3.2.1 rules the write and restore costs are charged to the result; the
// events make the charge auditable from the log alone).
inline constexpr const char* kCheckpointSaved = "checkpoint_saved";
inline constexpr const char* kCheckpointRestored = "checkpoint_restored";
// Tensor-pool health at run_stop: value is the steady-state miss count (pool
// misses after the first full epoch+eval iteration, which warms every
// recurring buffer shape); meta carries cumulative hits/misses/bytes. Zero
// steady-state misses is the "no allocations in the hot loop" invariant the
// CI smoke leg enforces.
inline constexpr const char* kTensorPoolStats = "tensor_pool_stats";
// Per-op cumulative time profile at run_stop (RunOptions::op_profile): one
// event per instrumented op, value = total nanoseconds summed across worker
// threads (CPU-time-style attribution), meta carries the op name and call
// count. Makes hot-path claims (e.g. "the ResNet step is dW-bounded") in
// EXPERIMENTS.md reproducible from a run log.
inline constexpr const char* kOpProfile = "op_profile";
}  // namespace keys

/// Append-only structured log for one training session. Serializes to JSON
/// lines and parses its own output (the compliance checker in core/review
/// consumes parsed logs, exactly as the real results process consumes
/// submitted log files).
class MlLog {
 public:
  void log(double time_ms, std::string key, LogValue value,
           std::map<std::string, std::string> meta = {});

  const std::vector<LogEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  /// First event with the key, if any.
  const LogEvent* find(const std::string& key) const;
  /// All events with the key, in order.
  std::vector<const LogEvent*> find_all(const std::string& key) const;
  /// Last event with the key, if any.
  const LogEvent* find_last(const std::string& key) const;

  std::string serialize() const;
  static MlLog parse(const std::string& json_lines);

  /// Write/read the serialized log as a file — submissions ship their
  /// training-session logs as artifacts (§4.1). Throws on I/O failure.
  void write_file(const std::string& path) const;
  static MlLog read_file(const std::string& path);

 private:
  std::vector<LogEvent> events_;
};

/// Escape a string for inclusion in a JSON string literal.
std::string json_escape(const std::string& s);

}  // namespace mlperf::core
