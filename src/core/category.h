#pragma once

#include <cstdint>
#include <string>

namespace mlperf::core {

/// System categories (§4.2.2): shipping product vs proof-of-concept.
enum class Category { kAvailable, kPreview, kResearch };
/// System types (§4.2): where the system runs.
enum class SystemType { kOnPremise, kCloud };

std::string to_string(Category c);
std::string to_string(SystemType t);

/// Availability rules for the Available category (§4.2.2): hardware must be
/// rentable or purchasable, and software must be versioned and supported.
struct AvailabilityEvidence {
  bool hardware_rentable_or_purchasable = false;
  bool software_versioned = false;
  bool software_supported = false;

  bool meets_available_criteria() const {
    return hardware_rentable_or_purchasable && software_versioned && software_supported;
  }
};

/// Preview deadline (§4.2.2): components must meet Available criteria within
/// the later of 60 days from submission or the next submission cycle.
struct PreviewDeadline {
  std::int64_t submission_day = 0;       ///< days since an epoch
  std::int64_t next_cycle_day = 0;

  std::int64_t deadline_day() const {
    const std::int64_t sixty = submission_day + 60;
    return sixty > next_cycle_day ? sixty : next_cycle_day;
  }
  bool is_met(std::int64_t available_day) const { return available_day <= deadline_day(); }
};

}  // namespace mlperf::core
