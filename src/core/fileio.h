#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mlperf::core {

/// Crash-safe whole-file write: the bytes are written to `path + ".tmp"`,
/// flushed, and renamed over `path`. POSIX rename within a directory is
/// atomic, so a reader (or a process that crashes mid-write) only ever sees
/// the old complete file or the new complete file — never a truncated one.
/// Throws std::runtime_error on any I/O failure (the temp file is removed).
void atomic_write_file(const std::string& path, const void* data, std::size_t size);

/// Read an entire file into memory. Throws std::runtime_error on failure.
std::vector<std::uint8_t> read_file_bytes(const std::string& path);

}  // namespace mlperf::core
