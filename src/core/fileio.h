#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mlperf::core {

/// Crash-safe whole-file write: the bytes are written to `path + ".tmp"`,
/// fsynced, and renamed over `path` (then the directory is fsynced so the
/// rename itself is durable). POSIX rename within a directory is atomic, so
/// a reader (or a process that crashes mid-write) only ever sees the old
/// complete file or the new complete file — never a truncated one; the
/// fsync-before-rename ordering extends that guarantee to power loss, where
/// an unsynced rename could otherwise be persisted ahead of the data.
/// Throws std::runtime_error on any I/O failure (the temp file is removed).
void atomic_write_file(const std::string& path, const void* data, std::size_t size);

/// Read an entire file into memory. Throws std::runtime_error on failure.
std::vector<std::uint8_t> read_file_bytes(const std::string& path);

}  // namespace mlperf::core
