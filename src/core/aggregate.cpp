#include "core/aggregate.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mlperf::core {

double olympic_mean(std::vector<double> run_times_ms, const AggregationPolicy& policy) {
  const std::int64_t n = static_cast<std::int64_t>(run_times_ms.size());
  if (n < policy.required_runs)
    throw std::invalid_argument("olympic_mean: fewer runs than the policy requires");
  const std::int64_t drops = policy.drop_fastest + policy.drop_slowest;
  if (n - drops < 1) throw std::invalid_argument("olympic_mean: drops leave no runs");
  std::sort(run_times_ms.begin(), run_times_ms.end());
  double sum = 0.0;
  for (std::int64_t i = policy.drop_fastest; i < n - policy.drop_slowest; ++i)
    sum += run_times_ms[static_cast<std::size_t>(i)];
  return sum / static_cast<double>(n - drops);
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) throw std::invalid_argument("mean: empty");
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double fraction_within(const std::vector<double>& xs, double tolerance) {
  if (xs.empty()) throw std::invalid_argument("fraction_within: empty");
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted[sorted.size() / 2];
  if (median == 0.0) throw std::invalid_argument("fraction_within: zero median");
  std::size_t within = 0;
  for (double x : xs)
    if (std::fabs(x - median) / std::fabs(median) <= tolerance) ++within;
  return static_cast<double>(within) / static_cast<double>(xs.size());
}

AggregatedResult aggregate_runs(const std::vector<double>& run_times_ms,
                                const AggregationPolicy& policy) {
  AggregatedResult r;
  r.score_ms = olympic_mean(run_times_ms, policy);
  r.raw_mean_ms = mean(run_times_ms);
  r.raw_stddev_ms = stddev(run_times_ms);
  r.runs_used = static_cast<std::int64_t>(run_times_ms.size()) - policy.drop_fastest -
                policy.drop_slowest;
  return r;
}

}  // namespace mlperf::core
