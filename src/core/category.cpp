#include "core/category.h"

#include <stdexcept>

namespace mlperf::core {

std::string to_string(Category c) {
  switch (c) {
    case Category::kAvailable: return "available";
    case Category::kPreview: return "preview";
    case Category::kResearch: return "research";
  }
  throw std::logic_error("unknown Category");
}

std::string to_string(SystemType t) {
  switch (t) {
    case SystemType::kOnPremise: return "on_premise";
    case SystemType::kCloud: return "cloud";
  }
  throw std::logic_error("unknown SystemType");
}

}  // namespace mlperf::core
