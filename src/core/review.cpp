#include "core/review.h"

#include <set>
#include <sstream>

namespace mlperf::core {

std::vector<const ComplianceIssue*> ComplianceReport::errors() const {
  std::vector<const ComplianceIssue*> out;
  for (const auto& i : issues)
    if (i.severity == ComplianceIssue::Severity::kError) out.push_back(&i);
  return out;
}

std::string ComplianceReport::to_string() const {
  std::ostringstream os;
  for (const auto& i : issues)
    os << (i.severity == ComplianceIssue::Severity::kError ? "ERROR " : "WARN  ") << i.code
       << ": " << i.message << "\n";
  if (issues.empty()) os << "compliant\n";
  return os.str();
}

namespace {

void add(ComplianceReport& r, ComplianceIssue::Severity sev, std::string code,
         std::string message) {
  r.issues.push_back({sev, std::move(code), std::move(message)});
}

void check_log(ComplianceReport& report, const MlLog& log, const BenchmarkSpec& spec,
               double cap_ms, std::size_t run_idx) {
  const std::string tag = spec.name + " run " + std::to_string(run_idx);
  const auto starts = log.find_all(keys::kRunStart);
  const auto stops = log.find_all(keys::kRunStop);
  if (starts.size() != 1) {
    add(report, ComplianceIssue::Severity::kError, "run_start_count",
        tag + ": expected exactly one run_start, found " + std::to_string(starts.size()));
    return;
  }
  if (stops.size() != 1) {
    add(report, ComplianceIssue::Severity::kError, "run_stop_count",
        tag + ": expected exactly one run_stop, found " + std::to_string(stops.size()));
    return;
  }
  const double t_start = starts[0]->time_ms;
  const double t_stop = stops[0]->time_ms;
  if (t_stop < t_start)
    add(report, ComplianceIssue::Severity::kError, "run_order",
        tag + ": run_stop precedes run_start");

  // Untimed regions must close before run_start.
  const char* region_keys[] = {keys::kInitStart, keys::kInitStop, keys::kReformatStart,
                               keys::kReformatStop, keys::kModelCreationStart,
                               keys::kModelCreationStop};
  for (const char* key : region_keys)
    for (const auto* e : log.find_all(key))
      if (e->time_ms > t_start)
        add(report, ComplianceIssue::Severity::kError, "untimed_region_after_start",
            tag + ": " + key + " occurs after run_start");

  // Data touches: only inside a reformat region or after run_start.
  std::vector<std::pair<double, double>> reformat_spans;
  {
    const auto rs = log.find_all(keys::kReformatStart);
    const auto re = log.find_all(keys::kReformatStop);
    for (std::size_t i = 0; i < rs.size() && i < re.size(); ++i)
      reformat_spans.emplace_back(rs[i]->time_ms, re[i]->time_ms);
  }
  for (const auto* e : log.find_all(keys::kDataTouch)) {
    if (e->time_ms >= t_start) continue;
    bool in_reformat = false;
    for (const auto& [a, b] : reformat_spans)
      if (e->time_ms >= a && e->time_ms <= b) in_reformat = true;
    if (!in_reformat)
      add(report, ComplianceIssue::Severity::kError, "data_touched_untimed",
          tag + ": training/validation data touched before run_start outside a reformat region");
  }

  // Model-creation cap.
  {
    const auto ms = log.find_all(keys::kModelCreationStart);
    const auto me = log.find_all(keys::kModelCreationStop);
    double total = 0.0;
    for (std::size_t i = 0; i < ms.size() && i < me.size(); ++i)
      total += me[i]->time_ms - ms[i]->time_ms;
    if (total > cap_ms)
      add(report, ComplianceIssue::Severity::kWarning, "model_creation_over_cap",
          tag + ": model creation " + std::to_string(total) + " ms exceeds the " +
              std::to_string(cap_ms) + " ms exclusion cap; excess is charged to the score");
  }

  // Quality.
  const auto evals = log.find_all(keys::kEvalAccuracy);
  if (evals.empty()) {
    add(report, ComplianceIssue::Severity::kError, "no_eval",
        tag + ": no eval_accuracy events");
  } else {
    const double final_q = evals.back()->as_number();
    if (!spec.mini_quality.reached(final_q))
      add(report, ComplianceIssue::Severity::kError, "quality_missed",
          tag + ": final quality " + std::to_string(final_q) + " below target " +
              std::to_string(spec.mini_quality.target));
  }
  if (!log.find(keys::kGlobalBatchSize))
    add(report, ComplianceIssue::Severity::kWarning, "no_batch_size",
        tag + ": global_batch_size not logged");
}

}  // namespace

ComplianceReport review_entry(const BenchmarkEntry& entry, const SuiteVersion& suite,
                              Division division, double model_creation_cap_ms) {
  ComplianceReport report;
  const BenchmarkSpec& spec = find_spec(suite, entry.benchmark);

  if (static_cast<std::int64_t>(entry.runs.size()) < spec.aggregation.required_runs)
    add(report, ComplianceIssue::Severity::kError, "too_few_runs",
        spec.name + ": " + std::to_string(entry.runs.size()) + " runs, policy requires " +
            std::to_string(spec.aggregation.required_runs));

  for (std::size_t i = 0; i < entry.runs.size(); ++i)
    check_log(report, entry.runs[i].log, spec, model_creation_cap_ms, i);

  // Runs must be identical except for the seed (§2.2.3 protocol).
  std::set<double> seeds;
  for (std::size_t i = 0; i < entry.runs.size(); ++i) {
    const auto* seed = entry.runs[i].log.find(keys::kSeed);
    if (!seed) {
      add(report, ComplianceIssue::Severity::kError, "no_seed",
          spec.name + " run " + std::to_string(i) + ": seed not logged");
      continue;
    }
    if (!seeds.insert(seed->as_number()).second)
      add(report, ComplianceIssue::Severity::kError, "duplicate_seed",
          spec.name + ": two runs share seed " + std::to_string(seed->as_number()));
  }

  if (division == Division::kClosed) {
    const ClosedDivisionRules rules = closed_rules(suite, entry.benchmark);
    for (const auto& [name, value] : entry.hyperparameters)
      if (!rules.hyperparameter_allowed(name))
        add(report, ComplianceIssue::Severity::kError, "hyperparameter_not_allowed",
            spec.name + ": '" + name + "' is not modifiable in the Closed division");
    if (!rules.optimizer_allowed(entry.optimizer_name))
      add(report, ComplianceIssue::Severity::kError, "optimizer_not_allowed",
          spec.name + ": optimizer '" + entry.optimizer_name +
              "' is not allowed in the Closed division this round");
    if (entry.model_signature != rules.reference_model_signature)
      add(report, ComplianceIssue::Severity::kError, "model_not_equivalent",
          spec.name + ": model signature '" + entry.model_signature +
              "' differs from reference '" + rules.reference_model_signature + "'");
    if (entry.augmentation_signature != rules.reference_augmentation_signature)
      add(report, ComplianceIssue::Severity::kError, "augmentation_not_equivalent",
          spec.name + ": augmentation '" + entry.augmentation_signature +
              "' differs from reference '" + rules.reference_augmentation_signature +
              "' (order matters, §2.2.4)");
  }
  return report;
}

ComplianceReport review_submission(const Submission& sub, const SuiteVersion& suite,
                                   double model_creation_cap_ms) {
  ComplianceReport report;
  for (const auto& entry : sub.entries) {
    ComplianceReport r = review_entry(entry, suite, sub.division, model_creation_cap_ms);
    report.issues.insert(report.issues.end(), r.issues.begin(), r.issues.end());
  }
  return report;
}

std::int64_t borrow_hyperparameters(BenchmarkEntry& target, const BenchmarkEntry& source,
                                    const ClosedDivisionRules& rules) {
  std::int64_t borrowed = 0;
  for (const auto& [name, value] : source.hyperparameters) {
    if (!rules.hyperparameter_allowed(name)) continue;
    if (target.hyperparameters.count(name)) continue;
    target.hyperparameters[name] = value;
    ++borrowed;
  }
  return borrowed;
}

}  // namespace mlperf::core
