#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <vector>

namespace mlperf::core {

/// The instrumented hot-path operations. Fixed slots (not a string map) so a
/// profiled region costs two atomic adds and two clock reads — cheap enough
/// to leave compiled into the per-sample conv loops and enable per run.
enum class ProfiledOp : int {
  kIm2col = 0,      ///< patch gather, forward or backward re-pack
  kCol2im,          ///< dX scatter-accumulate back to image layout
  kConvForward,     ///< whole conv2d forward op (pack + GEMM + bias)
  kConvDw,          ///< weight-gradient f64acc GEMM (pack + micro-kernel)
  kConvDx,          ///< input-gradient GEMM
  kConvDb,          ///< bias-gradient channel reduction
  kSoftmaxFused,    ///< fused scale+mask+softmax forward
  kSoftmaxFusedBwd, ///< fused softmax backward
  kCount,
};

/// Process-wide cumulative per-op time profile, the observability half of the
/// conv dW work: `RunOptions::op_profile` resets and enables it for a run and
/// the harness emits one `op_profile` mlog event per op at run end, so the
/// "train step is dW-bounded" attribution in EXPERIMENTS.md is reproducible
/// from any run log. Counters are atomics because profiled regions execute
/// inside parallel_for workers (per-sample im2col/dW); totals are therefore
/// cumulative across threads — CPU-time-style attribution, not wall time.
/// Disabled (the default) the timer guard reads one relaxed atomic and skips
/// the clock entirely.
class OpProfile {
 public:
  struct Entry {
    const char* name;
    std::int64_t calls;
    std::int64_t total_ns;
  };

  static void set_enabled(bool on);
  static bool enabled();
  /// Zero every slot (call while no profiled op is in flight).
  static void reset();
  static void add(ProfiledOp op, std::int64_t ns);
  /// All slots with at least one call, in enum order.
  static std::vector<Entry> snapshot();
};

/// RAII region timer: charges the enclosed scope to one ProfiledOp slot.
/// No-op (no clock read) while profiling is disabled.
class OpTimer {
 public:
  explicit OpTimer(ProfiledOp op) : op_(op), armed_(OpProfile::enabled()) {
    if (armed_) start_ = std::chrono::steady_clock::now();
  }
  ~OpTimer() {
    if (armed_)
      OpProfile::add(op_, std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - start_)
                              .count());
  }
  OpTimer(const OpTimer&) = delete;
  OpTimer& operator=(const OpTimer&) = delete;

 private:
  ProfiledOp op_;
  bool armed_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mlperf::core
