#include "core/op_profile.h"

#include <atomic>

namespace mlperf::core {

namespace {

constexpr int kSlots = static_cast<int>(ProfiledOp::kCount);

constexpr const char* kOpNames[kSlots] = {
    "im2col",      "col2im",  "conv_forward",  "conv_dw",
    "conv_dx",     "conv_db", "softmax_fused", "softmax_fused_bwd",
};

struct Slot {
  std::atomic<std::int64_t> calls{0};
  std::atomic<std::int64_t> ns{0};
};

std::atomic<bool> g_enabled{false};
std::array<Slot, kSlots>& slots() {
  static std::array<Slot, kSlots> s;
  return s;
}

}  // namespace

void OpProfile::set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

bool OpProfile::enabled() { return g_enabled.load(std::memory_order_relaxed); }

void OpProfile::reset() {
  for (Slot& s : slots()) {
    s.calls.store(0, std::memory_order_relaxed);
    s.ns.store(0, std::memory_order_relaxed);
  }
}

void OpProfile::add(ProfiledOp op, std::int64_t ns) {
  Slot& s = slots()[static_cast<std::size_t>(op)];
  s.calls.fetch_add(1, std::memory_order_relaxed);
  s.ns.fetch_add(ns, std::memory_order_relaxed);
}

std::vector<OpProfile::Entry> OpProfile::snapshot() {
  std::vector<Entry> out;
  for (int i = 0; i < kSlots; ++i) {
    const Slot& s = slots()[static_cast<std::size_t>(i)];
    const std::int64_t calls = s.calls.load(std::memory_order_relaxed);
    if (calls == 0) continue;
    out.push_back({kOpNames[i], calls, s.ns.load(std::memory_order_relaxed)});
  }
  return out;
}

}  // namespace mlperf::core
