#pragma once

#include <chrono>
#include <memory>
#include <stdexcept>

#include "core/mlog.h"

namespace mlperf::core {

/// Time source abstraction so the timing rules are unit-testable (ManualClock)
/// and the cluster simulator can drive virtual time (sysim).
class Clock {
 public:
  virtual ~Clock() = default;
  /// Monotonic milliseconds since an arbitrary epoch.
  virtual double now_ms() const = 0;
};

class SteadyClock final : public Clock {
 public:
  double now_ms() const override {
    const auto d = std::chrono::steady_clock::now().time_since_epoch();
    return std::chrono::duration<double, std::milli>(d).count();
  }
};

class ManualClock final : public Clock {
 public:
  double now_ms() const override { return t_; }
  void advance_ms(double dt) { t_ += dt; }
  void set_ms(double t) { t_ = t; }

 private:
  double t_ = 0.0;
};

/// Implements the paper's timing rules (§3.2.1):
///
///  * Timing begins when training/validation data is first touched
///    (`start_run`) and stops when the quality target is reached (`stop_run`).
///  * System initialization is excluded: an `init` region may only occur
///    before `start_run`.
///  * Model creation/compilation is excluded up to a cap (the paper's 20
///    minutes, configurable here since our workloads are scaled); any excess
///    beyond the cap is charged to the timed result.
///  * Data reformatting is excluded but must be one-time and pre-run: a
///    `reformat` region may only occur before `start_run`. (The rule that
///    training-time augmentation must NOT be moved into reformat is enforced
///    structurally by data::ReformattedImageSet and checked by core/review.)
///
/// All region transitions are logged to the MlLog so the compliance checker
/// can re-derive and audit them from the serialized log alone.
class TrainingTimer {
 public:
  /// `model_creation_cap_ms`: analogue of the 20-minute exclusion cap.
  TrainingTimer(const Clock& clock, MlLog& log, double model_creation_cap_ms);

  /// RAII region guard.
  class Region {
   public:
    Region(TrainingTimer& t, const char* start_key, const char* stop_key);
    ~Region();
    Region(const Region&) = delete;
    Region& operator=(const Region&) = delete;

   private:
    TrainingTimer& timer_;
    const char* stop_key_;
  };

  Region untimed_init_region() { return Region(*this, keys::kInitStart, keys::kInitStop); }
  Region reformat_region() { return Region(*this, keys::kReformatStart, keys::kReformatStop); }
  Region model_creation_region() {
    return Region(*this, keys::kModelCreationStart, keys::kModelCreationStop);
  }

  /// Begin the timed run. Must be called exactly once, after any untimed
  /// regions have closed.
  void start_run();

  /// End the timed run (quality reached — caller logs the final accuracy).
  void stop_run();

  bool run_started() const { return run_start_ms_ >= 0.0; }
  bool run_stopped() const { return run_stop_ms_ >= 0.0; }

  /// Official result: run_stop - run_start + max(0, model_creation - cap),
  /// plus any prior timed milliseconds carried from a checkpointed session.
  double time_to_train_ms() const;

  /// What the result would be WITHOUT the exclusions (for the timing-rules
  /// ablation): total wall time from the first region/open to run_stop, plus
  /// any carried prior unexcluded time.
  double unexcluded_time_ms() const;

  /// Resume accounting (checkpoint/restore, §3.2.1 applied across restarts):
  /// a restored session carries the timed and unexcluded milliseconds the
  /// preempted session(s) had accumulated when the checkpoint was written.
  /// Must be called before stop_run (the harness calls it right after
  /// start_run, so the restore cost itself lands inside the timed window).
  void carry_prior(double prior_timed_ms, double prior_unexcluded_ms);
  double prior_timed_ms() const { return prior_timed_ms_; }

  /// Timed milliseconds accumulated so far in an OPEN run (now - run_start,
  /// plus carried prior time and any model-creation excess beyond the cap).
  /// This is what a checkpoint records so a restored session can continue the
  /// time-to-train accounting.
  double timed_so_far_ms() const;
  /// Same, without the exclusions (now - first event + carried prior).
  double unexcluded_so_far_ms() const;

  double now_ms() const { return clock_->now_ms(); }
  MlLog& log() { return *log_; }

 private:
  void region_start(const char* key);
  void region_stop(const char* key);

  const Clock* clock_;
  MlLog* log_;
  double model_creation_cap_ms_;
  double first_event_ms_ = -1.0;
  double run_start_ms_ = -1.0;
  double run_stop_ms_ = -1.0;
  double model_creation_total_ms_ = 0.0;
  double prior_timed_ms_ = 0.0;
  double prior_unexcluded_ms_ = 0.0;
  double region_open_ms_ = -1.0;
  const char* open_key_ = nullptr;
};

}  // namespace mlperf::core
