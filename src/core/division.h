#pragma once

#include <map>
#include <set>
#include <string>
#include <variant>

#include "core/benchmark_spec.h"

namespace mlperf::core {

/// Submission divisions (§4.2.1). Closed requires workload equivalence to the
/// reference and restricts hyperparameters; Open allows different models,
/// optimizers and augmentations (same dataset and quality metric).
enum class Division { kClosed, kOpen };

std::string to_string(Division d);

/// A named hyperparameter setting.
using HpValue = std::variant<double, std::int64_t, std::string>;
using HyperparameterSet = std::map<std::string, HpValue>;

std::string to_string(const HpValue& v);

/// The Closed-division rulebook for one benchmark: which hyperparameters may
/// be modified (§3.4 — the whitelist exists so "result differences are due to
/// system characteristics"), plus the reference signatures a submission must
/// match (model, optimizer, augmentation pipeline order).
struct ClosedDivisionRules {
  std::set<std::string> modifiable_hyperparameters;
  std::string reference_model_signature;
  std::string reference_optimizer;          ///< "" = any listed alternative
  std::set<std::string> allowed_optimizers; ///< e.g. v0.6 adds "lars" for ResNet
  std::string reference_augmentation_signature;

  bool hyperparameter_allowed(const std::string& name) const {
    return modifiable_hyperparameters.count(name) > 0;
  }
  bool optimizer_allowed(const std::string& name) const {
    return allowed_optimizers.count(name) > 0;
  }
};

/// Rulebook per benchmark for a suite round. Minibatch size is always
/// modifiable ("submissions must be able to adjust the minibatch size in
/// order to showcase maximum system efficiency", §3.4), and the LR-schedule
/// knobs needed to re-converge at the chosen batch come with it.
ClosedDivisionRules closed_rules(const SuiteVersion& suite, BenchmarkId id);

}  // namespace mlperf::core
