#pragma once

#include <string>
#include <vector>

#include "core/submission.h"

namespace mlperf::core {

/// A finding from peer review (§4.1). Errors block publication; warnings are
/// surfaced to the submitter (resubmission after addressing issues is part
/// of the process).
struct ComplianceIssue {
  enum class Severity { kError, kWarning };
  Severity severity = Severity::kError;
  std::string code;     ///< stable identifier, e.g. "missing_run_stop"
  std::string message;
};

struct ComplianceReport {
  std::vector<ComplianceIssue> issues;

  bool compliant() const {
    for (const auto& i : issues)
      if (i.severity == ComplianceIssue::Severity::kError) return false;
    return true;
  }
  std::vector<const ComplianceIssue*> errors() const;
  std::string to_string() const;
};

/// The peer-review compliance checker. Works purely from the submission's
/// serialized artifacts (logs, declared HPs/signatures) — the same position a
/// human reviewer is in. Checks:
///   * run counts match the benchmark's aggregation policy;
///   * every log has run_start before run_stop, and untimed regions (init,
///     model creation, reformat) close before run_start (§3.2.1);
///   * training/validation data is only touched after timing starts, or
///     inside a reformat region (§3.2.1's "timing begins when any training or
///     validation data is touched");
///   * model-creation time within the exclusion cap (warning if exceeded —
///     the excess is charged to the score, discouraging expensive
///     compilation, §3.2.1);
///   * quality: eval_accuracy events present, final value meets the target;
///   * runs differ only in seed: identical logged HPs, distinct seeds
///     (§2.2.3 / Fig. 2 protocol);
///   * Closed division: hyperparameters within the whitelist, optimizer
///     allowed, model and augmentation signatures equal to the reference
///     (§4.2.1 equivalence).
ComplianceReport review_entry(const BenchmarkEntry& entry, const SuiteVersion& suite,
                              Division division, double model_creation_cap_ms);

/// Review every entry of a submission.
ComplianceReport review_submission(const Submission& sub, const SuiteVersion& suite,
                                   double model_creation_cap_ms);

/// Hyperparameter borrowing during the review period (§4.1): copy the
/// source's whitelisted hyperparameters that the target has not set itself,
/// so systems can be compared "under as similar conditions as possible".
/// Returns the number of borrowed values.
std::int64_t borrow_hyperparameters(BenchmarkEntry& target, const BenchmarkEntry& source,
                                    const ClosedDivisionRules& rules);

}  // namespace mlperf::core
