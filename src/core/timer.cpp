#include "core/timer.h"

#include <algorithm>
#include <cstring>

namespace mlperf::core {

TrainingTimer::TrainingTimer(const Clock& clock, MlLog& log, double model_creation_cap_ms)
    : clock_(&clock), log_(&log), model_creation_cap_ms_(model_creation_cap_ms) {}

TrainingTimer::Region::Region(TrainingTimer& t, const char* start_key, const char* stop_key)
    : timer_(t), stop_key_(stop_key) {
  timer_.region_start(start_key);
}

TrainingTimer::Region::~Region() { timer_.region_stop(stop_key_); }

void TrainingTimer::region_start(const char* key) {
  if (run_started())
    throw std::logic_error("TrainingTimer: untimed regions must precede start_run");
  if (open_key_ != nullptr) throw std::logic_error("TrainingTimer: regions cannot nest");
  const double t = clock_->now_ms();
  if (first_event_ms_ < 0.0) first_event_ms_ = t;
  region_open_ms_ = t;
  open_key_ = key;
  log_->log(t, key, true);
}

void TrainingTimer::region_stop(const char* key) {
  const double t = clock_->now_ms();
  if (std::strcmp(key, keys::kModelCreationStop) == 0)
    model_creation_total_ms_ += t - region_open_ms_;
  region_open_ms_ = -1.0;
  open_key_ = nullptr;
  log_->log(t, key, true);
}

void TrainingTimer::start_run() {
  if (run_started()) throw std::logic_error("TrainingTimer: start_run called twice");
  if (open_key_ != nullptr)
    throw std::logic_error("TrainingTimer: close untimed regions before start_run");
  run_start_ms_ = clock_->now_ms();
  if (first_event_ms_ < 0.0) first_event_ms_ = run_start_ms_;
  log_->log(run_start_ms_, keys::kRunStart, true);
}

void TrainingTimer::stop_run() {
  if (!run_started()) throw std::logic_error("TrainingTimer: stop_run before start_run");
  if (run_stopped()) throw std::logic_error("TrainingTimer: stop_run called twice");
  run_stop_ms_ = clock_->now_ms();
  log_->log(run_stop_ms_, keys::kRunStop, true);
}

void TrainingTimer::carry_prior(double prior_timed_ms, double prior_unexcluded_ms) {
  if (run_stopped()) throw std::logic_error("TrainingTimer: carry_prior after stop_run");
  if (prior_timed_ms < 0.0 || prior_unexcluded_ms < 0.0)
    throw std::invalid_argument("TrainingTimer: prior times must be >= 0");
  prior_timed_ms_ = prior_timed_ms;
  prior_unexcluded_ms_ = prior_unexcluded_ms;
}

double TrainingTimer::time_to_train_ms() const {
  if (!run_stopped()) throw std::logic_error("TrainingTimer: run not complete");
  const double excess =
      std::max(0.0, model_creation_total_ms_ - model_creation_cap_ms_);
  return prior_timed_ms_ + (run_stop_ms_ - run_start_ms_) + excess;
}

double TrainingTimer::unexcluded_time_ms() const {
  if (!run_stopped()) throw std::logic_error("TrainingTimer: run not complete");
  return prior_unexcluded_ms_ + (run_stop_ms_ - first_event_ms_);
}

double TrainingTimer::timed_so_far_ms() const {
  if (!run_started()) throw std::logic_error("TrainingTimer: run not started");
  const double excess =
      std::max(0.0, model_creation_total_ms_ - model_creation_cap_ms_);
  return prior_timed_ms_ + (clock_->now_ms() - run_start_ms_) + excess;
}

double TrainingTimer::unexcluded_so_far_ms() const {
  if (!run_started()) throw std::logic_error("TrainingTimer: run not started");
  return prior_unexcluded_ms_ + (clock_->now_ms() - first_event_ms_);
}

}  // namespace mlperf::core
