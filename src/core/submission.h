#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/aggregate.h"
#include "core/benchmark_spec.h"
#include "core/category.h"
#include "core/division.h"
#include "core/mlog.h"
#include "core/scale.h"

namespace mlperf::core {

/// One training run's artifacts: the structured log plus its parsed-out
/// headline numbers.
struct RunResult {
  MlLog log;
  double time_to_train_ms = 0.0;
  double final_quality = 0.0;
  bool quality_reached = false;
};

/// All runs of one benchmark within a submission.
struct BenchmarkEntry {
  BenchmarkId benchmark;
  HyperparameterSet hyperparameters;
  std::string optimizer_name;
  std::string model_signature;
  std::string augmentation_signature;
  std::vector<RunResult> runs;
};

/// A full submission (§4.1): system description, labels (§4.2), and per-
/// benchmark entries with the session logs. Code availability is modeled by
/// the `code_url` field (submissions are open-sourced at publication).
struct Submission {
  std::string organization;
  SystemDescription system;
  Division division = Division::kClosed;
  Category category = Category::kAvailable;
  SystemType system_type = SystemType::kOnPremise;
  std::string code_url;
  std::vector<BenchmarkEntry> entries;
};

/// A scored benchmark entry in the results report.
struct ScoredEntry {
  BenchmarkId benchmark;
  AggregatedResult result;
  std::int64_t chips = 0;
  double cloud_scale = 0.0;   ///< 0 when not a cloud submission
};

/// The published results for one submission. Deliberately has NO summary
/// score across benchmarks (§4.2.4 explains why: no universal weighting, and
/// submissions may legitimately omit benchmarks).
struct ResultsReport {
  std::string organization;
  std::string system_name;
  Division division;
  Category category;
  SystemType system_type;
  std::vector<ScoredEntry> entries;
};

/// Score a submission: per benchmark, verify every run reached quality, apply
/// the suite's aggregation policy (drop best/worst, olympic mean). Throws if
/// an entry has too few runs or a run missed quality — those are submission
/// errors that review should have caught.
ResultsReport score_submission(const Submission& sub, const SuiteVersion& suite,
                               const CloudScaleModel& scale_model);

/// Render the report as a fixed-width table (one row per benchmark).
std::string format_report(const ResultsReport& report);

}  // namespace mlperf::core
