#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mlperf::parallel {

/// Fixed-size pool of worker threads draining a FIFO task queue.
///
/// Deliberately work-stealing-free: tasks run in submission order on whichever
/// worker picks them up, and all determinism guarantees in this module come
/// from *what* each task computes (static chunking, ordered combines), never
/// from scheduling. Tasks must not throw — callers that need error propagation
/// (parallel_for, the prefetching loader) catch inside the task and surface
/// the exception on the consuming thread.
class ThreadPool {
 public:
  /// Spawns `num_workers` threads (0 is allowed: enqueue then runs inline).
  explicit ThreadPool(std::int64_t num_workers);

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::int64_t num_workers() const { return static_cast<std::int64_t>(workers_.size()); }

  /// Enqueue a task. With zero workers the task runs inline on the caller.
  void enqueue(std::function<void()> task);

  /// True when called from inside one of this module's pool worker threads.
  /// parallel_for uses it to run nested parallelism inline instead of
  /// deadlocking on its own pool.
  static bool on_worker_thread();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace mlperf::parallel
