#include "parallel/parallel_for.h"

#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>

namespace mlperf::parallel {

namespace {

std::mutex g_config_mu;
std::int64_t g_num_threads = 1;
std::unique_ptr<ThreadPool> g_pool;

}  // namespace

void set_num_threads(std::int64_t n) {
  if (n < 1) throw std::invalid_argument("set_num_threads: n must be >= 1");
  std::lock_guard<std::mutex> lock(g_config_mu);
  if (n == g_num_threads) return;
  g_pool.reset();  // joins the old workers (queue is drained first)
  g_num_threads = n;
  if (n > 1) g_pool = std::make_unique<ThreadPool>(n);
}

std::int64_t num_threads() {
  std::lock_guard<std::mutex> lock(g_config_mu);
  return g_num_threads;
}

ThreadPool* global_pool() {
  std::lock_guard<std::mutex> lock(g_config_mu);
  return g_pool.get();
}

void parallel_for(std::int64_t grain, std::int64_t range,
                  const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (range <= 0) return;
  const std::int64_t g = grain < 1 ? 1 : grain;
  const std::int64_t n_chunks = (range + g - 1) / g;
  ThreadPool* pool = global_pool();
  const std::int64_t parts =
      pool ? std::min<std::int64_t>(n_chunks, pool->num_workers()) : 1;
  if (parts <= 1 || ThreadPool::on_worker_thread()) {
    fn(0, range);
    return;
  }

  struct Join {
    std::mutex mu;
    std::condition_variable cv;
    std::int64_t remaining;
    std::vector<std::exception_ptr> errors;
  };
  Join join;
  join.remaining = parts;
  join.errors.resize(static_cast<std::size_t>(parts));

  // Static contiguous partition: part p owns chunks [p*q + min(p,r), ...),
  // i.e. the same grain-aligned interval every run.
  const std::int64_t q = n_chunks / parts;
  const std::int64_t r = n_chunks % parts;
  for (std::int64_t p = 0; p < parts; ++p) {
    const std::int64_t c_begin = p * q + std::min(p, r);
    const std::int64_t c_end = c_begin + q + (p < r ? 1 : 0);
    const std::int64_t lo = c_begin * g;
    const std::int64_t hi = std::min(c_end * g, range);
    pool->enqueue([&join, &fn, p, lo, hi] {
      try {
        fn(lo, hi);
      } catch (...) {
        join.errors[static_cast<std::size_t>(p)] = std::current_exception();
      }
      // Notify under the lock: the instant the caller's wait predicate can
      // see remaining == 0, `join` may be destroyed, so the worker must not
      // touch it after releasing mu.
      std::lock_guard<std::mutex> lock(join.mu);
      --join.remaining;
      if (join.remaining == 0) join.cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(join.mu);
  join.cv.wait(lock, [&join] { return join.remaining == 0; });
  for (const auto& e : join.errors)
    if (e) std::rethrow_exception(e);
}

std::int64_t grain_for(std::int64_t work_per_item) {
  constexpr std::int64_t kTargetOpsPerChunk = std::int64_t{1} << 15;
  if (work_per_item < 1) work_per_item = 1;
  const std::int64_t grain = kTargetOpsPerChunk / work_per_item;
  return grain < 1 ? 1 : grain;
}

}  // namespace mlperf::parallel
