#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "parallel/thread_pool.h"

namespace mlperf::parallel {

/// Intra-op parallelism knob. `n` counts worker threads doing tensor work;
/// 1 (the default) means everything runs inline on the calling thread,
/// exactly as the pre-parallelism code did. Call from the main thread while
/// no parallel work is in flight (e.g. before harness::run_to_target) — the
/// global pool is torn down and rebuilt here, which is not safe mid-op.
void set_num_threads(std::int64_t n);
std::int64_t num_threads();

/// The process-wide pool backing parallel_for and the prefetching data
/// loader. nullptr while num_threads() <= 1.
ThreadPool* global_pool();

/// Invoke fn(begin, end) on disjoint contiguous subranges covering
/// [0, range), in parallel on the global pool.
///
/// Subrange boundaries always fall on multiples of `grain`, and the static
/// contiguous partition is fixed before any task runs — there is no work
/// stealing and no dynamic re-splitting. Ops whose elements are computed
/// independently (disjoint writes, per-element accumulation order unchanged)
/// are therefore bitwise identical at any thread count, including the
/// inline single-threaded path. Exceptions thrown by fn are rethrown on the
/// calling thread (first failing subrange wins). Runs inline when the pool
/// is absent, when only one subrange exists, or when already on a pool
/// worker (nested parallelism).
void parallel_for(std::int64_t grain, std::int64_t range,
                  const std::function<void(std::int64_t, std::int64_t)>& fn);

/// Deterministic ordered reduction over [0, range).
///
/// The range is cut into ceil(range/grain) chunks whose boundaries depend
/// only on (grain, range) — never on the thread count — and the per-chunk
/// results are combined in ascending chunk order on the calling thread. A
/// non-associative combine (float/double accumulation) therefore yields the
/// same bits at every thread count; it differs from an unchunked sequential
/// fold only when range > grain, so pick `grain` at least as large as the
/// sizes that must match a legacy sequential path exactly.
template <typename T, typename ChunkFn, typename CombineFn>
T parallel_reduce(std::int64_t grain, std::int64_t range, T identity, const ChunkFn& chunk,
                  const CombineFn& combine) {
  if (range <= 0) return identity;
  const std::int64_t g = grain < 1 ? 1 : grain;
  if (range <= g) return combine(identity, chunk(std::int64_t{0}, range));
  const std::int64_t n_chunks = (range + g - 1) / g;
  std::vector<T> partials(static_cast<std::size_t>(n_chunks), identity);
  parallel_for(1, n_chunks, [&](std::int64_t c_begin, std::int64_t c_end) {
    for (std::int64_t c = c_begin; c < c_end; ++c) {
      const std::int64_t lo = c * g;
      const std::int64_t hi = std::min(lo + g, range);
      partials[static_cast<std::size_t>(c)] = chunk(lo, hi);
    }
  });
  T acc = identity;
  for (const T& p : partials) acc = combine(acc, p);
  return acc;
}

/// Grain size targeting ~32k scalar ops per subrange, given the work one
/// item costs. Keeps tiny tensors on the inline path (zero dispatch
/// overhead) while splitting big ones finely enough to load every worker.
std::int64_t grain_for(std::int64_t work_per_item);

}  // namespace mlperf::parallel
