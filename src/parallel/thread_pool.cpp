#include "parallel/thread_pool.h"

#include <stdexcept>

namespace mlperf::parallel {

namespace {
thread_local bool t_on_worker = false;
}  // namespace

ThreadPool::ThreadPool(std::int64_t num_workers) {
  if (num_workers < 0) throw std::invalid_argument("ThreadPool: num_workers must be >= 0");
  workers_.reserve(static_cast<std::size_t>(num_workers));
  for (std::int64_t i = 0; i < num_workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) throw std::logic_error("ThreadPool: enqueue after shutdown");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::on_worker_thread() { return t_on_worker; }

void ThreadPool::worker_loop() {
  t_on_worker = true;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // only reachable when stop_: drain-then-exit
    auto task = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    task();
    lock.lock();
  }
}

}  // namespace mlperf::parallel
