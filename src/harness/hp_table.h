#pragma once

#include "core/benchmark_spec.h"
#include "core/division.h"
#include "numerics/format.h"

namespace mlperf::harness {

/// Paper §6 future-work item, implemented: "Producing a table that maps
/// system scale and precision to recommended hyperparameters for each
/// benchmark."
///
/// The recommendations encode the rules the paper describes:
///  * global batch scales with chip count (one shard per chip at the
///    benchmark's reference per-chip batch);
///  * learning rate follows the linear-scaling rule relative to the reference
///    batch (Goyal et al. 2017), with warmup lengthening as the scale-up
///    factor grows;
///  * large ResNet batches (>= the LARS threshold) switch the recommended
///    optimizer to LARS where the round's rules allow it (v0.6);
///  * reduced-precision training (fp16/fp8) adds a loss-scale
///    recommendation (Micikevicius et al. 2018); bf16/fp32 need none.
struct HpRecommendation {
  core::HyperparameterSet hyperparameters;
  std::string optimizer;      ///< "sgd_momentum", "adam", or "lars"
  float loss_scale = 1.0f;    ///< 1.0 = off
};

HpRecommendation recommend_hyperparameters(const core::SuiteVersion& suite,
                                           core::BenchmarkId id, std::int64_t chips,
                                           numerics::Format precision);

/// Render the full table (all benchmarks x given scales) as fixed-width text.
std::string format_hp_table(const core::SuiteVersion& suite,
                            const std::vector<std::int64_t>& chip_counts,
                            numerics::Format precision);

}  // namespace mlperf::harness
