#include "harness/run.h"

#include <csignal>

#include "checkpoint/format.h"
#include "checkpoint/state.h"
#include "core/op_profile.h"
#include "nn/functional.h"
#include "parallel/parallel_for.h"
#include "tensor/pool.h"
#include "tensor/rng.h"

namespace mlperf::harness {

RunOutcome run_to_target(models::Workload& workload, const core::QualityMetric& target,
                         const RunOptions& options, const core::Clock& clock) {
  const bool checkpointing = options.checkpoint_every_n_epochs > 0;
  if (checkpointing && options.checkpoint_path.empty())
    throw std::invalid_argument(
        "run_to_target: checkpoint_every_n_epochs set but checkpoint_path is empty");
  if ((checkpointing || !options.resume_from.empty()) && !workload.supports_checkpoint())
    throw std::logic_error("run_to_target: workload '" + workload.name() +
                           "' does not support checkpointing");

  parallel::set_num_threads(options.num_threads);
  nn::set_conv_pack_cache(options.conv_pack_cache, options.conv_pack_cache_cap_bytes);
  if (options.op_profile) core::OpProfile::reset();
  core::OpProfile::set_enabled(options.op_profile);
  RunOutcome outcome;
  core::TrainingTimer timer(clock, outcome.log, options.model_creation_cap_ms);
  core::MlLog& log = outcome.log;

  log.log(clock.now_ms(), core::keys::kSubmissionBenchmark, workload.name());
  log.log(clock.now_ms(), core::keys::kSeed, static_cast<double>(options.seed));
  log.log(clock.now_ms(), core::keys::kQualityTarget, target.target,
          {{"metric", target.name}});
  log.log(clock.now_ms(), core::keys::kModelSignature, workload.model_signature());
  log.log(clock.now_ms(), core::keys::kOptimizerName, workload.optimizer_name());
  log.log(clock.now_ms(), core::keys::kAugmentationSignature,
          workload.augmentation_signature());
  for (const auto& [name, value] : workload.hyperparameters())
    log.log(clock.now_ms(), core::keys::kHyperparameter, value, {{"name", name}});
  log.log(clock.now_ms(), core::keys::kGlobalBatchSize,
          static_cast<double>(workload.global_batch_size()));

  // Untimed one-time data reformatting (§3.2.1). The reformat region is the
  // only place data may be touched before run_start.
  {
    auto region = timer.reformat_region();
    log.log(clock.now_ms(), core::keys::kDataTouch, std::string("reformat"),
            {{"split", "train+val"}});
    workload.prepare_data();
  }
  // Untimed (capped) model creation / compilation.
  {
    auto region = timer.model_creation_region();
    workload.build_model(options.seed);
  }

  timer.start_run();

  // Restore INSIDE the timed window: §3.2.1 charges the restart cost to the
  // result, same as the checkpoint writes that made it possible.
  std::int64_t first_epoch = 0;
  std::string last_checkpoint = options.resume_from;
  if (!options.resume_from.empty()) {
    const double restore_t0 = clock.now_ms();
    checkpoint::CheckpointReader ckpt =
        checkpoint::CheckpointReader::read_file(options.resume_from);
    checkpoint::ByteReader meta = ckpt.section("meta");
    const std::string benchmark = meta.get_string();
    if (benchmark != workload.name())
      throw checkpoint::CheckpointError("resume: checkpoint is for benchmark '" + benchmark +
                                        "', not '" + workload.name() + "'");
    const std::string signature = meta.get_string();
    if (signature != workload.model_signature())
      throw checkpoint::CheckpointError("resume: checkpoint model signature '" + signature +
                                        "' does not match '" + workload.model_signature() +
                                        "'");
    const std::uint64_t ckpt_seed = meta.get_u64();
    if (ckpt_seed != options.seed)
      throw checkpoint::CheckpointError(
          "resume: checkpoint seed " + std::to_string(ckpt_seed) +
          " does not match requested seed " + std::to_string(options.seed));
    first_epoch = meta.get_i64();
    outcome.final_quality = meta.get_f64();
    checkpoint::ByteReader curve = ckpt.section("curve");
    const std::uint64_t n_points = curve.get_u64();
    // Each point is i64 + f64 + f64 = 24 bytes; a corrupt count must fail as
    // a clean CheckpointError, not a length_error/bad_alloc from reserve.
    if (n_points > curve.remaining() / 24)
      throw checkpoint::CheckpointError(
          "resume: curve section claims " + std::to_string(n_points) + " points but only " +
          std::to_string(curve.remaining()) + " payload bytes remain");
    outcome.curve.reserve(static_cast<std::size_t>(n_points));
    for (std::uint64_t i = 0; i < n_points; ++i) {
      EpochPoint p;
      p.epoch = curve.get_i64();
      p.quality = curve.get_f64();
      p.elapsed_ms = curve.get_f64();
      outcome.curve.push_back(p);
    }
    checkpoint::ByteReader tsec = ckpt.section("timer");
    const double prior_timed = tsec.get_f64();
    const double prior_unexcluded = tsec.get_f64();
    timer.carry_prior(prior_timed, prior_unexcluded);
    workload.restore_state(ckpt);
    outcome.epochs = first_epoch;
    outcome.resumed_from_epoch = first_epoch;
    log.log(clock.now_ms(), core::keys::kCheckpointRestored,
            static_cast<double>(first_epoch),
            {{"path", options.resume_from},
             {"restore_ms", std::to_string(clock.now_ms() - restore_t0)},
             {"prior_timed_ms", std::to_string(prior_timed)}});
  }

  // Snapshot the complete training state: the harness-owned sections (run
  // identity, curve, timer accounting, this session's log so far) plus the
  // workload-owned ones (model/optimizer/rng/...). Epoch-boundary only.
  auto save_checkpoint = [&](std::int64_t epochs_done) {
    const double save_t0 = clock.now_ms();
    checkpoint::CheckpointWriter w;
    checkpoint::ByteWriter& meta = w.section("meta");
    meta.put_string(workload.name());
    meta.put_string(workload.model_signature());
    meta.put_u64(options.seed);
    meta.put_i64(epochs_done);
    meta.put_f64(outcome.final_quality);
    checkpoint::ByteWriter& curve = w.section("curve");
    curve.put_u64(outcome.curve.size());
    for (const EpochPoint& p : outcome.curve) {
      curve.put_i64(p.epoch);
      curve.put_f64(p.quality);
      curve.put_f64(p.elapsed_ms);
    }
    checkpoint::ByteWriter& tsec = w.section("timer");
    tsec.put_f64(timer.timed_so_far_ms());
    tsec.put_f64(timer.unexcluded_so_far_ms());
    w.section("log").put_string(log.serialize());
    workload.save_state(w);
    w.write_file(options.checkpoint_path);
    ++outcome.checkpoints_written;
    log.log(clock.now_ms(), core::keys::kCheckpointSaved, static_cast<double>(epochs_done),
            {{"path", options.checkpoint_path},
             {"bytes", std::to_string(w.byte_size())},
             {"write_ms", std::to_string(clock.now_ms() - save_t0)}});
    last_checkpoint = options.checkpoint_path;
  };

  // Probabilistic faults draw from their own stream, mixed with the resume
  // point so each restarted session rolls fresh (rather than replaying the
  // exact failure schedule that just killed it).
  tensor::Rng fault_rng(options.fault.seed ^
                        (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(first_epoch + 1)));

  const double run_start_ms = log.find(core::keys::kRunStart)->time_ms;
  // Tensor-pool warm-up boundary: the first full iteration (train + eval +
  // possible checkpoint) touches every recurring buffer shape, so its misses
  // are expected. A miss AFTER this snapshot means a fresh allocation crept
  // into the steady-state loop; -1 until the first iteration completes.
  std::int64_t pool_warm_misses = -1;
  for (std::int64_t epoch = first_epoch; epoch < options.max_epochs; ++epoch) {
    log.log(clock.now_ms(), core::keys::kEpochStart, static_cast<double>(epoch));
    log.log(clock.now_ms(), core::keys::kDataTouch, std::string("train"),
            {{"split", "train"}});
    workload.train_epoch();
    log.log(clock.now_ms(), core::keys::kEpochStop, static_cast<double>(epoch));
    outcome.epochs = epoch + 1;

    const bool do_eval =
        (epoch + 1) % options.eval_interval == 0 || epoch + 1 == options.max_epochs;
    if (do_eval) {
      log.log(clock.now_ms(), core::keys::kEvalStart, static_cast<double>(epoch));
      log.log(clock.now_ms(), core::keys::kDataTouch, std::string("eval"),
              {{"split", "val"}});
      const double quality = workload.evaluate();
      log.log(clock.now_ms(), core::keys::kEvalAccuracy, quality,
              {{"epoch", std::to_string(epoch)}});
      outcome.final_quality = quality;
      // Elapsed timed ms so far (run still open): carried prior + now - run_start.
      const double elapsed = timer.prior_timed_ms() + clock.now_ms() - run_start_ms;
      outcome.curve.push_back({epoch + 1, quality, elapsed});
      if (target.reached(quality)) {
        outcome.quality_reached = true;
        break;
      }
    }

    if (checkpointing && (epoch + 1) % options.checkpoint_every_n_epochs == 0)
      save_checkpoint(epoch + 1);

    if (pool_warm_misses < 0)
      pool_warm_misses = tensor::TensorPool::instance().stats().misses;

    if (options.fault.enabled()) {
      bool fire = options.fault.kill_after_epoch >= 0 &&
                  epoch + 1 == options.fault.kill_after_epoch;
      if (!fire && options.fault.per_epoch_fail_prob > 0.0)
        fire = fault_rng.uniform() < options.fault.per_epoch_fail_prob;
      if (fire) {
        if (options.fault.action == FaultPlan::Action::kSigkill) {
          std::raise(SIGKILL);  // real process death for the CI crash-resume leg
        }
        throw Preempted(epoch + 1, last_checkpoint);
      }
    }
  }
  timer.stop_run();
  const tensor::TensorPool::Stats pool_stats = tensor::TensorPool::instance().stats();
  if (pool_warm_misses >= 0)
    outcome.pool_steady_misses = pool_stats.misses - pool_warm_misses;
  log.log(clock.now_ms(), core::keys::kTensorPoolStats,
          static_cast<double>(outcome.pool_steady_misses),
          {{"hits", std::to_string(pool_stats.hits)},
           {"misses", std::to_string(pool_stats.misses)},
           {"bytes_cached", std::to_string(pool_stats.bytes_cached)}});
  if (options.op_profile) {
    for (const core::OpProfile::Entry& e : core::OpProfile::snapshot())
      log.log(clock.now_ms(), core::keys::kOpProfile, static_cast<double>(e.total_ns),
              {{"op", e.name}, {"calls", std::to_string(e.calls)}});
    core::OpProfile::set_enabled(false);
  }
  log.log(clock.now_ms(), core::keys::kQualityReached, outcome.quality_reached);
  outcome.time_to_train_ms = timer.time_to_train_ms();
  outcome.unexcluded_time_ms = timer.unexcluded_time_ms();
  return outcome;
}

RunOutcome run_to_target(models::Workload& workload, const core::QualityMetric& target,
                         const RunOptions& options) {
  core::SteadyClock clock;
  return run_to_target(workload, target, options, clock);
}

core::RunResult to_run_result(const RunOutcome& outcome) {
  core::RunResult r;
  r.log = outcome.log;
  r.time_to_train_ms = outcome.time_to_train_ms;
  r.final_quality = outcome.final_quality;
  r.quality_reached = outcome.quality_reached;
  return r;
}

std::uint64_t outcome_fingerprint(const RunOutcome& outcome) {
  std::uint64_t h = checkpoint::kFnvOffset;
  h = checkpoint::fnv1a(&outcome.epochs, sizeof outcome.epochs, h);
  const std::uint8_t reached = outcome.quality_reached ? 1 : 0;
  h = checkpoint::fnv1a(&reached, sizeof reached, h);
  const std::uint64_t n = outcome.curve.size();
  h = checkpoint::fnv1a(&n, sizeof n, h);
  for (const EpochPoint& p : outcome.curve) {
    h = checkpoint::fnv1a(&p.epoch, sizeof p.epoch, h);
    h = checkpoint::fnv1a(&p.quality, sizeof p.quality, h);  // exact bit pattern
    // elapsed_ms deliberately excluded: wall time is carried, not replayed.
  }
  return h;
}

}  // namespace mlperf::harness
