#include "harness/run.h"

#include "parallel/parallel_for.h"

namespace mlperf::harness {

RunOutcome run_to_target(models::Workload& workload, const core::QualityMetric& target,
                         const RunOptions& options, const core::Clock& clock) {
  parallel::set_num_threads(options.num_threads);
  RunOutcome outcome;
  core::TrainingTimer timer(clock, outcome.log, options.model_creation_cap_ms);
  core::MlLog& log = outcome.log;

  log.log(clock.now_ms(), core::keys::kSubmissionBenchmark, workload.name());
  log.log(clock.now_ms(), core::keys::kSeed, static_cast<double>(options.seed));
  log.log(clock.now_ms(), core::keys::kQualityTarget, target.target,
          {{"metric", target.name}});
  log.log(clock.now_ms(), core::keys::kModelSignature, workload.model_signature());
  log.log(clock.now_ms(), core::keys::kOptimizerName, workload.optimizer_name());
  log.log(clock.now_ms(), core::keys::kAugmentationSignature,
          workload.augmentation_signature());
  for (const auto& [name, value] : workload.hyperparameters())
    log.log(clock.now_ms(), core::keys::kHyperparameter, value, {{"name", name}});
  log.log(clock.now_ms(), core::keys::kGlobalBatchSize,
          static_cast<double>(workload.global_batch_size()));

  // Untimed one-time data reformatting (§3.2.1). The reformat region is the
  // only place data may be touched before run_start.
  {
    auto region = timer.reformat_region();
    log.log(clock.now_ms(), core::keys::kDataTouch, std::string("reformat"),
            {{"split", "train+val"}});
    workload.prepare_data();
  }
  // Untimed (capped) model creation / compilation.
  {
    auto region = timer.model_creation_region();
    workload.build_model(options.seed);
  }

  timer.start_run();
  for (std::int64_t epoch = 0; epoch < options.max_epochs; ++epoch) {
    log.log(clock.now_ms(), core::keys::kEpochStart, static_cast<double>(epoch));
    log.log(clock.now_ms(), core::keys::kDataTouch, std::string("train"),
            {{"split", "train"}});
    workload.train_epoch();
    log.log(clock.now_ms(), core::keys::kEpochStop, static_cast<double>(epoch));
    outcome.epochs = epoch + 1;

    if ((epoch + 1) % options.eval_interval != 0 && epoch + 1 != options.max_epochs)
      continue;
    log.log(clock.now_ms(), core::keys::kEvalStart, static_cast<double>(epoch));
    log.log(clock.now_ms(), core::keys::kDataTouch, std::string("eval"), {{"split", "val"}});
    const double quality = workload.evaluate();
    log.log(clock.now_ms(), core::keys::kEvalAccuracy, quality,
            {{"epoch", std::to_string(epoch)}});
    outcome.final_quality = quality;
    // Elapsed timed ms so far (run still open): now - run_start.
    const double elapsed = clock.now_ms() - outcome.log.find(core::keys::kRunStart)->time_ms;
    outcome.curve.push_back({epoch + 1, quality, elapsed});
    if (target.reached(quality)) {
      outcome.quality_reached = true;
      break;
    }
  }
  timer.stop_run();
  log.log(clock.now_ms(), core::keys::kQualityReached, outcome.quality_reached);
  outcome.time_to_train_ms = timer.time_to_train_ms();
  outcome.unexcluded_time_ms = timer.unexcluded_time_ms();
  return outcome;
}

RunOutcome run_to_target(models::Workload& workload, const core::QualityMetric& target,
                         const RunOptions& options) {
  core::SteadyClock clock;
  return run_to_target(workload, target, options, clock);
}

core::RunResult to_run_result(const RunOutcome& outcome) {
  core::RunResult r;
  r.log = outcome.log;
  r.time_to_train_ms = outcome.time_to_train_ms;
  r.final_quality = outcome.final_quality;
  r.quality_reached = outcome.quality_reached;
  return r;
}

}  // namespace mlperf::harness
