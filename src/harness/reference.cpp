#include "harness/reference.h"

#include <stdexcept>

#include "models/gnmt.h"
#include "models/maskrcnn.h"
#include "models/minigo.h"
#include "models/ncf.h"
#include "models/resnet.h"
#include "models/ssd.h"
#include "models/transformer.h"

namespace mlperf::harness {

using core::BenchmarkId;

std::unique_ptr<models::Workload> make_reference_workload(BenchmarkId id, WorkloadScale scale) {
  const bool smoke = scale == WorkloadScale::kSmoke;
  switch (id) {
    case BenchmarkId::kImageClassification: {
      models::ResNetWorkload::Config c;
      if (smoke) {
        c.dataset.height = 8;
        c.dataset.width = 8;
        c.dataset.num_classes = 4;
        c.dataset.train_size = 128;
        c.dataset.val_size = 64;
        c.dataset.noise = 0.25f;
        c.model.num_classes = 4;
        c.model.stage_channels = {6, 8};
      }
      return std::make_unique<models::ResNetWorkload>(c);
    }
    case BenchmarkId::kObjectDetectionLight: {
      models::SsdWorkload::Config c;
      if (smoke) {
        c.dataset.train_size = 48;
        c.dataset.val_size = 24;
      }
      return std::make_unique<models::SsdWorkload>(c);
    }
    case BenchmarkId::kObjectDetectionHeavy: {
      models::MaskRcnnWorkload::Config c;
      if (smoke) {
        c.dataset.train_size = 32;
        c.dataset.val_size = 16;
      }
      return std::make_unique<models::MaskRcnnWorkload>(c);
    }
    case BenchmarkId::kTranslationRecurrent: {
      models::GnmtWorkload::Config c;
      if (smoke) {
        c.dataset.vocab = 12;
        c.dataset.min_len = 3;
        c.dataset.max_len = 6;
        c.dataset.train_size = 96;
        c.dataset.val_size = 32;
      }
      return std::make_unique<models::GnmtWorkload>(c);
    }
    case BenchmarkId::kTranslationNonRecurrent: {
      models::TransformerWorkload::Config c;
      if (smoke) {
        c.dataset.vocab = 12;
        c.dataset.min_len = 3;
        c.dataset.max_len = 6;
        c.dataset.train_size = 96;
        c.dataset.val_size = 32;
      }
      return std::make_unique<models::TransformerWorkload>(c);
    }
    case BenchmarkId::kRecommendation: {
      models::NcfWorkload::Config c;
      if (smoke) {
        c.dataset.num_users = 32;
        c.dataset.num_items = 64;
        c.dataset.interactions_per_user = 12;
        c.dataset.num_eval_negatives = 30;
      }
      return std::make_unique<models::NcfWorkload>(c);
    }
    case BenchmarkId::kReinforcementLearning: {
      models::MiniGoWorkload::Config c;
      if (smoke) {
        c.mcts.simulations = 8;
        c.selfplay_games_per_epoch = 1;
        c.max_game_moves = 20;
        c.train_batches_per_epoch = 8;
        c.reference_games = 2;
        c.reference_teacher_sims = 16;
        c.reference_moves_per_game = 10;
      }
      return std::make_unique<models::MiniGoWorkload>(c);
    }
  }
  throw std::logic_error("make_reference_workload: unknown benchmark");
}

core::QualityMetric scaled_target(const core::BenchmarkSpec& spec, WorkloadScale scale) {
  core::QualityMetric q = spec.mini_quality;
  if (scale == WorkloadScale::kSmoke) {
    // Smoke workloads are easier but train for far fewer steps; targets are
    // chosen so a CI-speed run still exercises "train to quality".
    switch (spec.id) {
      case BenchmarkId::kImageClassification: q.target = 0.60; break;
      case BenchmarkId::kObjectDetectionLight: q.target = 0.25; break;
      case BenchmarkId::kObjectDetectionHeavy: q.target = 0.25; break;
      case BenchmarkId::kTranslationRecurrent: q.target = 15.0; break;
      case BenchmarkId::kTranslationNonRecurrent: q.target = 15.0; break;
      case BenchmarkId::kRecommendation: q.target = 0.50; break;
      case BenchmarkId::kReinforcementLearning: q.target = 0.15; break;
    }
  }
  return q;
}

}  // namespace mlperf::harness
