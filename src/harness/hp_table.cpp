#include "harness/hp_table.h"

#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace mlperf::harness {

using core::BenchmarkId;

namespace {

struct ReferencePoint {
  std::int64_t per_chip_batch;  ///< reference per-chip batch
  std::int64_t base_batch;      ///< batch the base_lr was tuned at
  double base_lr;
  std::string optimizer;
  std::int64_t base_warmup_steps;
  std::int64_t lars_threshold_batch;  ///< 0 = LARS never applies
};

ReferencePoint reference_point(BenchmarkId id) {
  switch (id) {
    case BenchmarkId::kImageClassification:
      return {64, 256, 0.1, "sgd_momentum", 250, 8192};
    case BenchmarkId::kObjectDetectionLight:
      return {16, 32, 1e-3, "sgd_momentum", 300, 0};
    case BenchmarkId::kObjectDetectionHeavy:
      return {2, 16, 2e-2, "sgd_momentum", 500, 0};
    case BenchmarkId::kTranslationRecurrent:
      return {64, 128, 1e-3, "adam", 200, 0};
    case BenchmarkId::kTranslationNonRecurrent:
      return {128, 256, 2e-3, "adam", 4000, 0};
    case BenchmarkId::kRecommendation:
      return {1024, 1024, 1e-3, "adam", 0, 0};
    case BenchmarkId::kReinforcementLearning:
      return {16, 16, 1e-2, "sgd_momentum", 0, 0};
  }
  throw std::logic_error("reference_point: unknown benchmark");
}

}  // namespace

HpRecommendation recommend_hyperparameters(const core::SuiteVersion& suite, BenchmarkId id,
                                           std::int64_t chips, numerics::Format precision) {
  if (chips <= 0) throw std::invalid_argument("recommend_hyperparameters: chips must be > 0");
  (void)core::find_spec(suite, id);  // validates suite membership
  const ReferencePoint ref = reference_point(id);

  HpRecommendation rec;
  const std::int64_t global_batch = chips * ref.per_chip_batch;
  const double scale_up =
      static_cast<double>(global_batch) / static_cast<double>(ref.base_batch);

  rec.hyperparameters["global_batch_size"] = global_batch;
  // Linear scaling rule; Adam benchmarks scale sublinearly (sqrt), the common
  // practice for adaptive optimizers.
  const bool adaptive = ref.optimizer == "adam";
  const double lr =
      ref.base_lr * (adaptive ? std::sqrt(std::max(scale_up, 1.0)) : std::max(scale_up, 1.0));
  rec.hyperparameters["learning_rate"] = lr;
  // Warmup grows with the scale-up factor (larger peaks need longer ramps).
  const std::int64_t warmup =
      ref.base_warmup_steps +
      static_cast<std::int64_t>(100.0 * std::log2(std::max(scale_up, 1.0)));
  rec.hyperparameters["warmup_steps"] = warmup;

  rec.optimizer = ref.optimizer;
  if (ref.lars_threshold_batch > 0 && global_batch >= ref.lars_threshold_batch &&
      suite.lars_allowed) {
    rec.optimizer = "lars";
    rec.hyperparameters["lars_eta"] = 1e-3;
  }

  switch (precision) {
    case numerics::Format::kFP16:
      rec.loss_scale = 1024.0f;  // static loss scaling for the narrow exponent
      break;
    case numerics::Format::kFP8E4M3:
      rec.loss_scale = 4096.0f;
      break;
    default:
      rec.loss_scale = 1.0f;  // fp32/bf16/ternary: full exponent range
      break;
  }
  return rec;
}

std::string format_hp_table(const core::SuiteVersion& suite,
                            const std::vector<std::int64_t>& chip_counts,
                            numerics::Format precision) {
  std::ostringstream os;
  os << "recommended hyperparameters (" << suite.version << ", "
     << numerics::to_string(precision) << ")\n";
  os << std::left << std::setw(28) << "benchmark" << std::right << std::setw(8) << "chips"
     << std::setw(14) << "global batch" << std::setw(12) << "lr" << std::setw(10) << "warmup"
     << std::setw(14) << "optimizer" << std::setw(12) << "loss scale" << "\n";
  for (const auto& spec : suite.benchmarks) {
    for (std::int64_t chips : chip_counts) {
      const HpRecommendation rec =
          recommend_hyperparameters(suite, spec.id, chips, precision);
      os << std::left << std::setw(28) << spec.name << std::right << std::setw(8) << chips
         << std::setw(14)
         << core::to_string(rec.hyperparameters.at("global_batch_size")) << std::setw(12)
         << core::to_string(rec.hyperparameters.at("learning_rate")) << std::setw(10)
         << core::to_string(rec.hyperparameters.at("warmup_steps")) << std::setw(14)
         << rec.optimizer << std::setw(12) << rec.loss_scale << "\n";
    }
  }
  return os.str();
}

}  // namespace mlperf::harness
