#pragma once

#include <memory>

#include "core/benchmark_spec.h"
#include "models/workload.h"

namespace mlperf::harness {

/// Workload size presets. kReference is the calibrated mini workload that the
/// Table-1 suite bench runs to its mini quality target; kSmoke is an even
/// smaller variant for unit/integration tests (converges in ~a second, to a
/// lower target — use core::BenchmarkSpec::mini_quality only with kReference).
enum class WorkloadScale { kReference, kSmoke };

/// The reference-implementation registry (paper §3.4): one canonical
/// workload per Table-1 benchmark.
std::unique_ptr<models::Workload> make_reference_workload(core::BenchmarkId id,
                                                          WorkloadScale scale);

/// A quality target appropriate for the scale: the suite's mini target at
/// kReference; a reduced smoke target at kSmoke.
core::QualityMetric scaled_target(const core::BenchmarkSpec& spec, WorkloadScale scale);

}  // namespace mlperf::harness
