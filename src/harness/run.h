#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/aggregate.h"
#include "core/quality.h"
#include "core/submission.h"
#include "core/timer.h"
#include "models/workload.h"

namespace mlperf::harness {

/// One (epoch, quality, elapsed-time) sample from a training session; the
/// series regenerates Figure 3's accuracy-vs-epoch curves.
struct EpochPoint {
  std::int64_t epoch = 0;
  double quality = 0.0;
  double elapsed_ms = 0.0;  ///< timed milliseconds since run_start
};

/// Fault-injection plan for the preemption/restart studies: either a
/// deterministic one-shot kill after a given completed-epoch count, or an
/// iid per-epoch failure with its own seeded rng stream (so fault timing is
/// reproducible but independent of the training rng). Faults fire AFTER the
/// epoch's checkpoint (if any) is written — modeling a node lost between
/// useful work, the common preemption case.
struct FaultPlan {
  enum class Action {
    kThrow,    ///< throw Preempted (in-process tests; run_with_restarts catches it)
    kSigkill,  ///< raise(SIGKILL) — the CI crash-resume leg's real process death
  };
  /// Fire once when this many epochs have completed (1-based); -1 = never.
  std::int64_t kill_after_epoch = -1;
  /// Independent chance of failure after each epoch; 0 = never.
  double per_epoch_fail_prob = 0.0;
  std::uint64_t seed = 0;  ///< seeds the probabilistic-fault rng stream
  Action action = Action::kThrow;
  bool enabled() const { return kill_after_epoch >= 0 || per_epoch_fail_prob > 0.0; }
};

/// Thrown by run_to_target when a FaultPlan preempts the session.
/// `checkpoint_path` is the most recent checkpoint available to resume from
/// (empty if none was ever written — restart cold in that case).
class Preempted : public std::runtime_error {
 public:
  Preempted(std::int64_t epochs, std::string ckpt)
      : std::runtime_error("run preempted after epoch " + std::to_string(epochs)),
        epochs_completed(epochs),
        checkpoint_path(std::move(ckpt)) {}

  std::int64_t epochs_completed;
  std::string checkpoint_path;
};

/// Options controlling one timed training session.
struct RunOptions {
  std::uint64_t seed = 1;
  std::int64_t max_epochs = 64;          ///< safety bound; quality should hit first
  double model_creation_cap_ms = 20.0 * 60.0 * 1000.0;  ///< paper: 20 min
  /// Evaluate every N epochs (quality is "evaluated at prescribed
  /// intervals", §4.1). 1 = every epoch.
  std::int64_t eval_interval = 1;
  /// Intra-op worker threads for the tensor kernels and the prefetching
  /// loader (parallel::set_num_threads). 1 = the exact single-threaded
  /// pre-parallelism execution. A system knob, not a hyperparameter: the
  /// kernels partition work so the trained model is bitwise independent of
  /// this value (paper §2.2.3 treats nondeterminism as a variance source).
  std::int64_t num_threads = 1;
  /// Write a full-state checkpoint to `checkpoint_path` after every N
  /// completed epochs (0 = never). Checkpoint writes happen inside the timed
  /// run window, so per §3.2.1 their cost is charged to the result (logged
  /// as `checkpoint_saved` events for auditability).
  std::int64_t checkpoint_every_n_epochs = 0;
  std::string checkpoint_path;
  /// Resume a preempted session from this checkpoint file. The restore cost
  /// also lands inside the timed window (`checkpoint_restored` event), and
  /// the prior sessions' timed milliseconds are carried forward, so the
  /// reported time-to-train spans the whole preempt/restart history.
  std::string resume_from;
  FaultPlan fault;
  /// Step-scoped im2col pack cache (nn::set_conv_pack_cache): conv2d forward
  /// keeps its patch slabs alive for the dW backward instead of re-running
  /// im2col. Purely a memory/speed knob — gradients are bitwise identical
  /// either way — capped at `conv_pack_cache_cap_bytes` of live slabs.
  bool conv_pack_cache = true;
  std::int64_t conv_pack_cache_cap_bytes = std::int64_t{256} << 20;
  /// Reset and enable the per-op time profile (core::OpProfile) for this run
  /// and emit one `op_profile` mlog event per instrumented op at run_stop.
  bool op_profile = false;
};

/// The outcome of one training session.
struct RunOutcome {
  bool quality_reached = false;
  double final_quality = 0.0;
  std::int64_t epochs = 0;
  double time_to_train_ms = 0.0;    ///< per the timing rules
  double unexcluded_time_ms = 0.0;  ///< without the §3.2.1 exclusions
  std::vector<EpochPoint> curve;
  /// Log of the FINAL session only. Prior preempted sessions' logs are
  /// preserved verbatim inside the checkpoint's "log" section (a restarted
  /// submission ships one log artifact per session).
  core::MlLog log;
  std::int64_t restarts = 0;             ///< filled by run_with_restarts
  std::int64_t resumed_from_epoch = -1;  ///< -1 when not resumed
  std::int64_t checkpoints_written = 0;
  /// Tensor-pool misses AFTER the first full train+eval iteration (the
  /// warm-up that populates the pool with every recurring buffer shape).
  /// Zero in steady state; 0 as well when the run lasted a single epoch
  /// (nothing past warm-up to measure).
  std::int64_t pool_steady_misses = 0;
};

/// Run one workload to the quality target under the paper's timing rules:
/// reformat (untimed) -> model creation (untimed, capped) -> run_start ->
/// [restore?] -> [train_epoch, evaluate, checkpoint?, fault?]* -> run_stop on
/// quality. Everything is logged. Throws checkpoint::CheckpointError if
/// `resume_from` names a corrupt, version-mismatched, or wrong-run checkpoint
/// (never silently ignores it), and Preempted when the FaultPlan fires.
RunOutcome run_to_target(models::Workload& workload, const core::QualityMetric& target,
                         const RunOptions& options, const core::Clock& clock);

/// Convenience: wall-clock run.
RunOutcome run_to_target(models::Workload& workload, const core::QualityMetric& target,
                         const RunOptions& options);

/// Convert a RunOutcome to the submission artifact.
core::RunResult to_run_result(const RunOutcome& outcome);

/// Trajectory fingerprint for the resume-identity tests: FNV-1a over epoch
/// count, quality-reached, and the curve's (epoch, quality-bit-pattern)
/// sequence. Deliberately EXCLUDES the elapsed-ms fields — wall time is
/// accounted (carried across restarts), not replayed, so it is the one part
/// of an outcome a bitwise-identical resume legitimately changes.
std::uint64_t outcome_fingerprint(const RunOutcome& outcome);

/// Run the full §3.2.2 protocol for a workload factory: `n_runs` sessions
/// differing only by seed; returns per-run outcomes (aggregate with
/// core::aggregate_runs).
template <typename MakeWorkload>
std::vector<RunOutcome> run_protocol(MakeWorkload&& make_workload,
                                     const core::QualityMetric& target,
                                     const RunOptions& base_options, std::int64_t n_runs) {
  std::vector<RunOutcome> outcomes;
  outcomes.reserve(static_cast<std::size_t>(n_runs));
  for (std::int64_t r = 0; r < n_runs; ++r) {
    auto workload = make_workload();
    RunOptions opts = base_options;
    opts.seed = base_options.seed + static_cast<std::uint64_t>(r) * 7919;
    outcomes.push_back(run_to_target(*workload, target, opts));
  }
  return outcomes;
}

/// Preempt/restart driver: run to target, and on each Preempted fault build a
/// fresh workload and resume from the checkpoint the fault left behind (cold
/// restart if none exists yet). A one-shot kill_after_epoch is disarmed once
/// it has fired so the resumed session does not re-trip it. The factory must
/// return something dereferenceable to a models::Workload (unique_ptr or raw
/// pointer — the latter lets callers keep the final session's workload alive
/// for weight fingerprinting).
template <typename MakeWorkload>
RunOutcome run_with_restarts(MakeWorkload&& make_workload, const core::QualityMetric& target,
                             RunOptions options, const core::Clock& clock,
                             std::int64_t max_restarts = 16) {
  std::int64_t restarts = 0;
  for (;;) {
    auto workload = make_workload();
    try {
      RunOutcome outcome = run_to_target(*workload, target, options, clock);
      outcome.restarts = restarts;
      return outcome;
    } catch (const Preempted& p) {
      if (++restarts > max_restarts)
        throw std::runtime_error("run_with_restarts: exceeded max_restarts (" +
                                 std::to_string(max_restarts) + ")");
      options.resume_from = p.checkpoint_path;  // empty -> cold restart
      if (options.fault.kill_after_epoch >= 0 &&
          p.epochs_completed >= options.fault.kill_after_epoch)
        options.fault.kill_after_epoch = -1;  // the one-shot kill has fired
    }
  }
}

}  // namespace mlperf::harness
