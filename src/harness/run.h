#pragma once

#include <cstdint>
#include <vector>

#include "core/aggregate.h"
#include "core/quality.h"
#include "core/submission.h"
#include "core/timer.h"
#include "models/workload.h"

namespace mlperf::harness {

/// One (epoch, quality, elapsed-time) sample from a training session; the
/// series regenerates Figure 3's accuracy-vs-epoch curves.
struct EpochPoint {
  std::int64_t epoch = 0;
  double quality = 0.0;
  double elapsed_ms = 0.0;  ///< timed milliseconds since run_start
};

/// Options controlling one timed training session.
struct RunOptions {
  std::uint64_t seed = 1;
  std::int64_t max_epochs = 64;          ///< safety bound; quality should hit first
  double model_creation_cap_ms = 20.0 * 60.0 * 1000.0;  ///< paper: 20 min
  /// Evaluate every N epochs (quality is "evaluated at prescribed
  /// intervals", §4.1). 1 = every epoch.
  std::int64_t eval_interval = 1;
  /// Intra-op worker threads for the tensor kernels and the prefetching
  /// loader (parallel::set_num_threads). 1 = the exact single-threaded
  /// pre-parallelism execution. A system knob, not a hyperparameter: the
  /// kernels partition work so the trained model is bitwise independent of
  /// this value (paper §2.2.3 treats nondeterminism as a variance source).
  std::int64_t num_threads = 1;
};

/// The outcome of one training session.
struct RunOutcome {
  bool quality_reached = false;
  double final_quality = 0.0;
  std::int64_t epochs = 0;
  double time_to_train_ms = 0.0;    ///< per the timing rules
  double unexcluded_time_ms = 0.0;  ///< without the §3.2.1 exclusions
  std::vector<EpochPoint> curve;
  core::MlLog log;
};

/// Run one workload to the quality target under the paper's timing rules:
/// reformat (untimed) -> model creation (untimed, capped) -> run_start ->
/// [train_epoch, evaluate]* -> run_stop on quality. Everything is logged.
RunOutcome run_to_target(models::Workload& workload, const core::QualityMetric& target,
                         const RunOptions& options, const core::Clock& clock);

/// Convenience: wall-clock run.
RunOutcome run_to_target(models::Workload& workload, const core::QualityMetric& target,
                         const RunOptions& options);

/// Convert a RunOutcome to the submission artifact.
core::RunResult to_run_result(const RunOutcome& outcome);

/// Run the full §3.2.2 protocol for a workload factory: `n_runs` sessions
/// differing only by seed; returns per-run outcomes (aggregate with
/// core::aggregate_runs).
template <typename MakeWorkload>
std::vector<RunOutcome> run_protocol(MakeWorkload&& make_workload,
                                     const core::QualityMetric& target,
                                     const RunOptions& base_options, std::int64_t n_runs) {
  std::vector<RunOutcome> outcomes;
  outcomes.reserve(static_cast<std::size_t>(n_runs));
  for (std::int64_t r = 0; r < n_runs; ++r) {
    auto workload = make_workload();
    RunOptions opts = base_options;
    opts.seed = base_options.seed + static_cast<std::uint64_t>(r) * 7919;
    outcomes.push_back(run_to_target(*workload, target, opts));
  }
  return outcomes;
}

}  // namespace mlperf::harness
