#include "autograd/variable.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>

#include "checkpoint/state.h"
#include "nn/functional.h"
#include "parallel/parallel_for.h"

namespace mlperf::autograd {
namespace {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

/// Central-difference gradient check: builds a scalar loss L(x) = sum(f(x) *
/// fixed random weights) and compares autograd's dL/dx to finite differences.
void gradcheck(const std::function<Variable(const Variable&)>& f, Tensor x0,
               double tol = 2e-2, float eps = 1e-3f) {
  Variable x(x0, /*requires_grad=*/true);
  Variable y = f(x);
  Rng wrng(99);
  Tensor w = Tensor::rand(y.value().shape(), wrng, 0.5f, 1.5f);
  Variable loss = sum_all(mul(y, Variable(w)));
  loss.backward();
  const Tensor& analytic = x.grad();

  for (std::int64_t i = 0; i < x0.numel(); ++i) {
    Tensor xp = x0, xm = x0;
    xp[i] += eps;
    xm[i] -= eps;
    const float lp = mul(f(Variable(xp)), Variable(w)).value().sum();
    const float lm = mul(f(Variable(xm)), Variable(w)).value().sum();
    const double numeric = (static_cast<double>(lp) - lm) / (2.0 * eps);
    EXPECT_NEAR(analytic[i], numeric, tol * std::max(1.0, std::fabs(numeric)))
        << "component " << i;
  }
}

TEST(AutogradCore, LeafHasNoBackwardAndZeroGrad) {
  Variable v(Tensor({2, 2}, 1.0f), true);
  EXPECT_TRUE(v.requires_grad());
  EXPECT_EQ(v.grad().sum(), 0.0f);
}

TEST(AutogradCore, BackwardRequiresScalarOrSeed) {
  Variable v(Tensor({2, 2}, 1.0f), true);
  Variable y = mul_scalar(v, 2.0f);
  EXPECT_THROW(y.backward(), std::invalid_argument);
  y.backward(Tensor({2, 2}, 1.0f));
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(v.grad()[i], 2.0f);
}

TEST(AutogradCore, GradAccumulatesAcrossBackwardCalls) {
  Variable v(Tensor({1}, 3.0f), true);
  Variable y1 = mul_scalar(v, 2.0f);
  y1.backward();
  Variable y2 = mul_scalar(v, 5.0f);
  y2.backward();
  EXPECT_FLOAT_EQ(v.grad()[0], 7.0f);
  v.zero_grad();
  EXPECT_FLOAT_EQ(v.grad()[0], 0.0f);
}

TEST(AutogradCore, DiamondGraphGradientIsCorrect) {
  // y = x*x + x*x (two paths through the same node).
  Variable x(Tensor({1}, 3.0f), true);
  Variable sq = mul(x, x);
  Variable y = add(sq, sq);
  y.backward(Tensor({1}, 1.0f));
  EXPECT_FLOAT_EQ(x.grad()[0], 12.0f);  // d(2x^2)/dx = 4x
}

TEST(AutogradCore, DetachBlocksGradient) {
  Variable x(Tensor({1}, 2.0f), true);
  Variable y = mul(detach(x), x);  // d/dx = detach(x) only
  y.backward(Tensor({1}, 1.0f));
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0f);
}

TEST(AutogradCore, NoGradThroughNonRequiringLeaf) {
  Variable a(Tensor({2}, 1.0f), true);
  Variable b(Tensor({2}, 5.0f), false);
  Variable y = sum_all(mul(a, b));
  y.backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 5.0f);
  EXPECT_FLOAT_EQ(b.grad().sum(), 0.0f);
}

TEST(AutogradGradcheck, Add) {
  Rng rng(1);
  Tensor b = Tensor::randn({3, 4}, rng);
  gradcheck([&](const Variable& x) { return add(x, Variable(b)); },
            Tensor::randn({3, 4}, rng));
}

TEST(AutogradGradcheck, BroadcastAddReducesGrad) {
  Rng rng(2);
  Tensor big = Tensor::randn({4, 3}, rng);
  gradcheck([&](const Variable& x) { return add(Variable(big), x); }, Tensor::randn({3}, rng));
}

TEST(AutogradGradcheck, MulAndDiv) {
  Rng rng(3);
  Tensor b = Tensor::rand({2, 5}, rng, 0.5f, 2.0f);
  gradcheck([&](const Variable& x) { return mul(x, Variable(b)); }, Tensor::randn({2, 5}, rng));
  gradcheck([&](const Variable& x) { return div(x, Variable(b)); }, Tensor::randn({2, 5}, rng));
  Tensor num = Tensor::rand({2, 5}, rng, 0.5f, 2.0f);
  gradcheck([&](const Variable& x) { return div(Variable(num), x); },
            Tensor::rand({2, 5}, rng, 0.5f, 2.0f));
}

TEST(AutogradGradcheck, MatmulBothSides) {
  Rng rng(4);
  Tensor b = Tensor::randn({4, 3}, rng);
  gradcheck([&](const Variable& x) { return matmul(x, Variable(b)); },
            Tensor::randn({2, 4}, rng));
  Tensor a = Tensor::randn({2, 4}, rng);
  gradcheck([&](const Variable& x) { return matmul(Variable(a), x); },
            Tensor::randn({4, 3}, rng));
}

TEST(AutogradGradcheck, Bmm) {
  Rng rng(5);
  Tensor b = Tensor::randn({2, 3, 2}, rng);
  gradcheck([&](const Variable& x) { return bmm(x, Variable(b)); },
            Tensor::randn({2, 2, 3}, rng));
}

TEST(AutogradGradcheck, UnaryOps) {
  Rng rng(6);
  gradcheck([](const Variable& x) { return tanh_op(x); }, Tensor::randn({8}, rng));
  gradcheck([](const Variable& x) { return sigmoid(x); }, Tensor::randn({8}, rng));
  gradcheck([](const Variable& x) { return exp_op(x); }, Tensor::randn({8}, rng, 0.0f, 0.5f));
  gradcheck([](const Variable& x) { return log_op(x); }, Tensor::rand({8}, rng, 0.5f, 2.0f));
  gradcheck([](const Variable& x) { return sqrt_op(x); }, Tensor::rand({8}, rng, 0.5f, 2.0f));
  gradcheck([](const Variable& x) { return neg(x); }, Tensor::randn({8}, rng));
}

TEST(AutogradGradcheck, ReluAwayFromKink) {
  Rng rng(7);
  Tensor x = Tensor::randn({16}, rng);
  for (std::int64_t i = 0; i < x.numel(); ++i)
    if (std::fabs(x[i]) < 0.05f) x[i] = 0.2f;  // keep FD away from the kink
  gradcheck([](const Variable& v) { return relu(v); }, x);
}

TEST(AutogradGradcheck, ReshapePermute) {
  Rng rng(8);
  gradcheck([](const Variable& x) { return reshape(x, {6, 2}); }, Tensor::randn({3, 4}, rng));
  gradcheck([](const Variable& x) { return permute(x, {1, 0}); }, Tensor::randn({3, 4}, rng));
  gradcheck([](const Variable& x) { return permute(x, {2, 0, 1}); },
            Tensor::randn({2, 3, 4}, rng));
}

TEST(AutogradGradcheck, SliceAndCat) {
  Rng rng(9);
  gradcheck([](const Variable& x) { return slice0(x, 1, 3); }, Tensor::randn({4, 2}, rng));
  gradcheck([](const Variable& x) { return cat0({slice0(x, 2, 4), slice0(x, 0, 2)}); },
            Tensor::randn({4, 2}, rng));
}

TEST(AutogradGradcheck, Reductions) {
  Rng rng(10);
  gradcheck([](const Variable& x) { return sum_all(x); }, Tensor::randn({3, 3}, rng));
  gradcheck([](const Variable& x) { return mean_all(x); }, Tensor::randn({3, 3}, rng));
  gradcheck([](const Variable& x) { return sum_axis(x, 0); }, Tensor::randn({3, 4}, rng));
  gradcheck([](const Variable& x) { return sum_axis(x, 1, true); }, Tensor::randn({3, 4}, rng));
  gradcheck([](const Variable& x) { return mean_axis(x, -1); }, Tensor::randn({3, 4}, rng));
}

TEST(AutogradGradcheck, SoftmaxFamilies) {
  Rng rng(11);
  gradcheck([](const Variable& x) { return softmax_last(x); }, Tensor::randn({3, 5}, rng),
            /*tol=*/3e-2);
  gradcheck([](const Variable& x) { return log_softmax_last(x); }, Tensor::randn({3, 5}, rng),
            /*tol=*/3e-2);
}

TEST(AutogradGradcheck, Embedding) {
  Rng rng(12);
  const std::vector<std::int64_t> idx = {0, 2, 2, 1};
  gradcheck([&](const Variable& t) { return embedding(t, idx); }, Tensor::randn({3, 4}, rng));
}

TEST(AutogradEmbedding, RepeatedIndicesAccumulate) {
  Variable table(Tensor({2, 2}, {1, 2, 3, 4}), true);
  Variable out = embedding(table, {1, 1, 1});
  sum_all(out).backward();
  EXPECT_FLOAT_EQ(table.grad().at({1, 0}), 3.0f);
  EXPECT_FLOAT_EQ(table.grad().at({0, 0}), 0.0f);
}

TEST(AutogradEmbedding, OutOfRangeThrows) {
  Variable table(Tensor({2, 2}), true);
  EXPECT_THROW(embedding(table, {2}), std::out_of_range);
}

TEST(AutogradChain, TwoLayerMlpGradcheck) {
  Rng rng(13);
  Tensor w1 = Tensor::randn({4, 5}, rng, 0.0f, 0.5f);
  Tensor w2 = Tensor::randn({5, 2}, rng, 0.0f, 0.5f);
  gradcheck(
      [&](const Variable& x) {
        Variable h = tanh_op(matmul(x, Variable(w1)));
        return matmul(h, Variable(w2));
      },
      Tensor::randn({3, 4}, rng));
}

TEST(AutogradChain, WeightGradientThroughDeepChain) {
  Rng rng(14);
  Tensor x = Tensor::randn({3, 4}, rng);
  gradcheck(
      [&](const Variable& w) {
        Variable h = sigmoid(matmul(Variable(x), w));
        Variable h2 = mul(h, h);
        return sum_axis(h2, 0);
      },
      Tensor::randn({4, 3}, rng, 0.0f, 0.5f));
}

// ---- fused add_relu --------------------------------------------------------

void expect_same_bits(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.numel(), b.numel());
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<std::size_t>(a.numel()) * sizeof(float)),
            0);
}

TEST(AddRelu, BitwiseIdenticalToUnfusedChain) {
  Rng rng(31);
  const Tensor xa = Tensor::randn({6, 9}, rng);
  const Tensor xb = Tensor::randn({6, 9}, rng);

  Variable a1(xa, true), b1(xb, true);
  Variable fused = add_relu(a1, b1);
  Variable loss1 = sum_all(mul(fused, fused));
  loss1.backward();

  Variable a2(xa, true), b2(xb, true);
  Variable unfused = relu(add(a2, b2));
  Variable loss2 = sum_all(mul(unfused, unfused));
  loss2.backward();

  expect_same_bits(fused.value(), unfused.value());
  expect_same_bits(a1.grad(), a2.grad());
  expect_same_bits(b1.grad(), b2.grad());
}

TEST(AddRelu, BroadcastBiasMatchesUnfusedBitwise) {
  // The Linear::forward_relu shape: [N, F] activations + [F] bias. The fused
  // backward hands ONE masked tensor to both parents; reduce_to inside
  // accumulate_grad must shrink it to the bias exactly as the unfused chain.
  Rng rng(37);
  const Tensor xa = Tensor::randn({5, 4}, rng);
  const Tensor xb = Tensor::randn({4}, rng);

  Variable a1(xa, true), b1(xb, true);
  Variable fused = add_relu(a1, b1);
  fused.backward(Tensor(fused.shape(), 1.0f));

  Variable a2(xa, true), b2(xb, true);
  Variable unfused = relu(add(a2, b2));
  unfused.backward(Tensor(unfused.shape(), 1.0f));

  expect_same_bits(fused.value(), unfused.value());
  expect_same_bits(a1.grad(), a2.grad());
  expect_same_bits(b1.grad(), b2.grad());
}

TEST(AddRelu, GradcheckAwayFromKink) {
  Rng rng(41);
  const Tensor other = Tensor::randn({3, 5}, rng, 2.0f, 0.25f);  // keep s > 0
  gradcheck([&](const Variable& v) { return add_relu(v, Variable(other)); },
            Tensor::rand({3, 5}, rng, 0.5f, 1.5f));
}


// ---- step-scoped im2col pack cache -----------------------------------------

std::uint64_t fnv_tensor(const Tensor& t, std::uint64_t h) {
  return checkpoint::fnv1a(t.data(), static_cast<std::size_t>(t.numel()) * sizeof(float), h);
}

// Three conv train steps with a manual SGD update; fingerprints every weight
// and gradient after each step so a single bit of divergence anywhere in the
// trajectory changes the hash.
std::uint64_t conv_train_fingerprint(bool cache_on, int threads) {
  nn::set_conv_pack_cache(cache_on);
  parallel::set_num_threads(threads);
  Rng rng(77);
  Tensor w1t = Tensor::randn({4, 3, 3, 3}, rng);
  Tensor w2t = Tensor::randn({5, 4, 3, 3}, rng);
  Tensor b2t = Tensor::randn({5}, rng);
  const Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  std::uint64_t h = checkpoint::kFnvOffset;
  for (int step = 0; step < 3; ++step) {
    Variable w1(w1t, true), w2(w2t, true), b2(b2t, true);
    Variable y = nn::conv2d(Variable(x), w1, Variable(), 1, 1);
    y = nn::conv2d(relu(y), w2, b2, 1, 1);
    sum_all(mul(y, y)).backward();
    auto sgd = [](Tensor& wt, const Tensor& gt) {
      for (std::int64_t i = 0; i < wt.numel(); ++i) wt[i] -= 1e-4f * gt[i];
    };
    sgd(w1t, w1.grad());
    sgd(w2t, w2.grad());
    sgd(b2t, b2.grad());
    const Tensor* parts[] = {&w1.grad(), &w2.grad(), &b2.grad(), &w1t, &w2t, &b2t};
    for (const Tensor* t : parts) h = fnv_tensor(*t, h);
  }
  parallel::set_num_threads(1);
  nn::set_conv_pack_cache(true);
  return h;
}

TEST(ConvPackCache, OneIm2colSweepPerConvLayerPerStep) {
  Rng rng(55);
  const Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  const Tensor w1t = Tensor::randn({4, 3, 3, 3}, rng);
  const Tensor w2t = Tensor::randn({5, 4, 3, 3}, rng);
  auto step = [&] {
    Variable w1(w1t, true), w2(w2t, true);
    Variable y = nn::conv2d(Variable(x), w1, Variable(), 1, 1);
    y = nn::conv2d(y, w2, Variable(), 1, 1);
    sum_all(mul(y, y)).backward();
    // backward()'s graph teardown destroyed the closures and with them the
    // cached slabs: nothing outlives the step.
    EXPECT_EQ(0, nn::conv_pack_cache_live_bytes());
  };
  nn::set_conv_pack_cache(true);
  std::int64_t before = nn::im2col_calls();
  step();
  EXPECT_EQ(2, nn::im2col_calls() - before) << "cached: one sweep per conv layer";

  nn::set_conv_pack_cache(false);
  before = nn::im2col_calls();
  step();
  EXPECT_EQ(4, nn::im2col_calls() - before) << "uncached: forward + dW re-pack per layer";

  // A cap too small for any slab degrades to the re-pack path, not an error.
  nn::set_conv_pack_cache(true, /*cap_bytes=*/16);
  before = nn::im2col_calls();
  step();
  EXPECT_EQ(4, nn::im2col_calls() - before) << "over-cap: behaves as uncached";

  nn::set_conv_pack_cache(true);
}

TEST(ConvPackCache, CachedAndUncachedTrainingBitwiseIdentical) {
  const std::uint64_t want = conv_train_fingerprint(/*cache_on=*/false, /*threads=*/1);
  for (int threads : {1, 2, 4, 8}) {
    EXPECT_EQ(want, conv_train_fingerprint(false, threads)) << "uncached, t=" << threads;
    EXPECT_EQ(want, conv_train_fingerprint(true, threads)) << "cached, t=" << threads;
  }
}

}  // namespace
}  // namespace mlperf::autograd
