#include "sysim/data_parallel.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/functional.h"
#include "nn/layers.h"
#include "optim/optimizer.h"

namespace mlperf::sysim {
namespace {

using autograd::Variable;
using tensor::Rng;
using tensor::Tensor;

TEST(GradientAllReduce, AveragesAcrossWorkers) {
  Rng rng(1);
  Tensor a({4}, {1, 2, 3, 4});
  Tensor b({4}, {3, 2, 1, 0});
  GradientAllReduce reducer(ReductionOrder::kFixed, rng);
  Tensor out = reducer.reduce({&a, &b});
  EXPECT_FLOAT_EQ(out[0], 2.0f);
  EXPECT_FLOAT_EQ(out[3], 2.0f);
}

TEST(GradientAllReduce, ShapeMismatchThrows) {
  Rng rng(2);
  Tensor a({4});
  Tensor b({3});
  GradientAllReduce reducer(ReductionOrder::kFixed, rng);
  EXPECT_THROW(reducer.reduce({&a, &b}), std::invalid_argument);
  EXPECT_THROW(reducer.reduce({}), std::invalid_argument);
}

TEST(GradientAllReduce, FixedOrderIsDeterministic) {
  Rng rng(3);
  Rng data_rng(4);
  Tensor a = Tensor::randn({64}, data_rng, 0.0f, 1e4f);
  Tensor b = Tensor::randn({64}, data_rng, 0.0f, 1e-4f);
  Tensor c = Tensor::randn({64}, data_rng);
  GradientAllReduce reducer(ReductionOrder::kFixed, rng);
  Tensor r1 = reducer.reduce({&a, &b, &c});
  Tensor r2 = reducer.reduce({&a, &b, &c});
  for (std::int64_t i = 0; i < 64; ++i) EXPECT_EQ(r1[i], r2[i]);
}

TEST(GradientAllReduce, PermutedOrderLeavesFloatFingerprint) {
  // §2.2.3: floating-point addition is non-associative, so different
  // accumulation orders give (slightly) different sums. Use values of wildly
  // different magnitude to make the effect visible deterministically.
  Rng rng(5);
  Rng data_rng(6);
  Tensor a = Tensor::randn({256}, data_rng, 0.0f, 1e6f);
  Tensor b = Tensor::randn({256}, data_rng, 0.0f, 1e-6f);
  Tensor c = Tensor::randn({256}, data_rng, 0.0f, 1.0f);
  Tensor d = Tensor::randn({256}, data_rng, 0.0f, 1e3f);
  GradientAllReduce reducer(ReductionOrder::kPermuted, rng);
  bool any_difference = false;
  Tensor first = reducer.reduce({&a, &b, &c, &d});
  for (int trial = 0; trial < 16 && !any_difference; ++trial) {
    Tensor again = reducer.reduce({&a, &b, &c, &d});
    for (std::int64_t i = 0; i < first.numel(); ++i)
      if (again[i] != first[i]) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

/// Shared fixture: a tiny linear-softmax classifier with a fixed batch, so
/// data-parallel and single-worker gradients can be compared exactly.
struct ToyProblem {
  Rng rng{7};
  nn::Linear layer{6, 3, rng};
  Tensor inputs = Tensor::randn({12, 6}, rng);
  std::vector<std::int64_t> labels = {0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2};

  /// Sum-of-losses gradient over batch rows [begin, end).
  std::vector<Tensor> shard_grads(std::int64_t begin, std::int64_t end) {
    layer.zero_grad();
    Tensor shard_in = inputs.slice0(begin, end);
    std::vector<std::int64_t> shard_labels(labels.begin() + begin, labels.begin() + end);
    Variable loss = nn::cross_entropy(layer.forward(Variable(shard_in)), shard_labels);
    // cross_entropy returns the shard MEAN; scale to a per-shard SUM.
    autograd::mul_scalar(loss, static_cast<float>(end - begin)).backward();
    return {layer.weight.grad(), layer.bias.grad()};
  }
};

TEST(DataParallelStep, MatchesSingleWorkerGradients) {
  ToyProblem problem;
  // Reference: single-worker mean gradient over the full batch.
  problem.layer.zero_grad();
  Variable ref_loss =
      nn::cross_entropy(problem.layer.forward(Variable(problem.inputs)), problem.labels);
  ref_loss.backward();
  Tensor ref_w = problem.layer.weight.grad();
  Tensor ref_b = problem.layer.bias.grad();

  for (std::int64_t workers : {1, 2, 3, 4}) {
    Rng rng(8);
    DataParallelStep::Config cfg;
    cfg.num_workers = workers;
    DataParallelStep dp(cfg, rng);
    std::vector<Variable> params = {problem.layer.weight, problem.layer.bias};
    dp.step(12, [&](std::int64_t b, std::int64_t e) { return problem.shard_grads(b, e); },
            params);
    for (std::int64_t i = 0; i < ref_w.numel(); ++i)
      EXPECT_NEAR(problem.layer.weight.grad()[i], ref_w[i], 1e-5f)
          << "workers=" << workers << " i=" << i;
    for (std::int64_t i = 0; i < ref_b.numel(); ++i)
      EXPECT_NEAR(problem.layer.bias.grad()[i], ref_b[i], 1e-5f);
  }
}

TEST(DataParallelStep, UnevenShardsStillAverageCorrectly) {
  ToyProblem problem;
  problem.layer.zero_grad();
  Variable ref_loss =
      nn::cross_entropy(problem.layer.forward(Variable(problem.inputs)), problem.labels);
  ref_loss.backward();
  Tensor ref_w = problem.layer.weight.grad();

  Rng rng(9);
  DataParallelStep::Config cfg;
  cfg.num_workers = 5;  // 12 examples over 5 workers: shards of 2-3
  DataParallelStep dp(cfg, rng);
  std::vector<Variable> params = {problem.layer.weight, problem.layer.bias};
  dp.step(12, [&](std::int64_t b, std::int64_t e) { return problem.shard_grads(b, e); },
          params);
  for (std::int64_t i = 0; i < ref_w.numel(); ++i)
    EXPECT_NEAR(problem.layer.weight.grad()[i], ref_w[i], 1e-5f);
}

TEST(DataParallelStep, RejectsBadConfigs) {
  ToyProblem problem;
  Rng rng(10);
  DataParallelStep::Config cfg;
  cfg.num_workers = 16;
  DataParallelStep dp(cfg, rng);
  std::vector<Variable> params = {problem.layer.weight};
  EXPECT_THROW(
      dp.step(4, [&](std::int64_t, std::int64_t) { return std::vector<Tensor>{}; }, params),
      std::invalid_argument);
}

TEST(DataParallelStep, VirtualClockAdvancesBySyncStepTime) {
  ToyProblem problem;
  Rng rng(11);
  const ChipProfile chip = accelerator_2019();
  const Interconnect net = cluster_interconnect();
  const SoftwareStack stack = stack_v05();
  DataParallelStep::Config cfg;
  cfg.num_workers = 4;
  cfg.chip = &chip;
  cfg.interconnect = &net;
  cfg.stack = &stack;
  cfg.flops_per_sample = 1e9;
  DataParallelStep dp(cfg, rng);
  std::vector<Variable> params = {problem.layer.weight, problem.layer.bias};
  core::ManualClock clock;
  const double step_s =
      dp.step(12, [&](std::int64_t b, std::int64_t e) { return problem.shard_grads(b, e); },
              params, &clock);
  EXPECT_GT(step_s, 0.0);
  EXPECT_NEAR(clock.now_ms(), step_s * 1e3, 1e-9);
  // Straggler rule: the largest shard (3 of 12) gates compute, and the chip
  // step floor applies.
  const double compute = std::max(1e9 * 3 / (chip.tflops * 1e12 * stack.compute_efficiency),
                                  chip.step_floor_s);
  EXPECT_GE(step_s, compute);
}

TEST(DataParallelStep, TrainsToSameQualityAsSerial) {
  // End-to-end: optimizing with data-parallel gradient steps converges to
  // the same loss as the serial run (same seeds, fixed reduction order).
  auto train = [](std::int64_t workers) {
    Rng init_rng(12);
    nn::Linear layer(4, 2, init_rng);
    Rng data_rng(13);
    Tensor inputs = Tensor::randn({16, 4}, data_rng);
    std::vector<std::int64_t> labels;
    for (std::int64_t i = 0; i < 16; ++i)
      labels.push_back(inputs[i * 4] > 0.0f ? 1 : 0);  // linearly separable
    std::vector<Variable> params = layer.parameters();
    optim::SgdMomentum opt(params, 0.9f);
    Rng step_rng(14);
    DataParallelStep::Config cfg;
    cfg.num_workers = workers;
    DataParallelStep dp(cfg, step_rng);
    for (int it = 0; it < 60; ++it) {
      dp.step(16,
              [&](std::int64_t b, std::int64_t e) {
                layer.zero_grad();
                std::vector<std::int64_t> shard_labels(labels.begin() + b, labels.begin() + e);
                Variable loss = nn::cross_entropy(
                    layer.forward(Variable(inputs.slice0(b, e))), shard_labels);
                autograd::mul_scalar(loss, static_cast<float>(e - b)).backward();
                return std::vector<Tensor>{layer.weight.grad(), layer.bias.grad()};
              },
              params);
      opt.step(0.2f);
    }
    Variable logits = layer.forward(Variable(inputs));
    const auto preds = logits.value().argmax_last();
    std::size_t hits = 0;
    for (std::size_t i = 0; i < preds.size(); ++i)
      if (preds[i] == labels[i]) ++hits;
    return static_cast<double>(hits) / 16.0;
  };
  const double serial = train(1);
  const double parallel = train(4);
  EXPECT_GT(serial, 0.9);
  EXPECT_NEAR(parallel, serial, 0.15);
}

TEST(DataParallelStep, GradientBytesCountsAllParams) {
  Rng rng(15);
  nn::Linear layer(10, 5, rng);
  EXPECT_DOUBLE_EQ(DataParallelStep::gradient_bytes(layer.parameters()),
                   (10 * 5 + 5) * sizeof(float));
}

// Scaling property: modeled synchronous step time is monotone in worker
// count for fixed per-worker shard (communication only grows).
class StepTimeScaling : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(StepTimeScaling, CommunicationGrowsWithWorkers) {
  const std::int64_t workers = GetParam();
  ToyProblem problem;
  Rng rng(16);
  const ChipProfile chip = accelerator_2019();
  const Interconnect net = cluster_interconnect();
  const SoftwareStack stack = stack_v05();
  auto step_time = [&](std::int64_t w) {
    DataParallelStep::Config cfg;
    cfg.num_workers = w;
    cfg.chip = &chip;
    cfg.interconnect = &net;
    cfg.stack = &stack;
    cfg.flops_per_sample = 1e6;  // negligible compute: isolate communication
    DataParallelStep dp(cfg, rng);
    std::vector<Variable> params = {problem.layer.weight, problem.layer.bias};
    return dp.step(12, [&](std::int64_t b, std::int64_t e) { return problem.shard_grads(b, e); },
                   params);
  };
  if (workers > 1) {
    EXPECT_GT(step_time(workers), step_time(workers / 2));
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, StepTimeScaling, ::testing::Values(2, 4));

}  // namespace
}  // namespace mlperf::sysim
