#include "checkpoint/format.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sys/stat.h>

#include "checkpoint/state.h"
#include "core/fileio.h"
#include "harness/reference.h"
#include "harness/run.h"
#include "models/ncf.h"
#include "models/resnet.h"
#include "nn/layers.h"
#include "nn/serialize.h"
#include "optim/optimizer.h"

namespace mlperf::checkpoint {
namespace {

using core::BenchmarkId;
using harness::RunOptions;
using harness::RunOutcome;
using harness::WorkloadScale;

std::string tmp_path(const std::string& name) { return ::testing::TempDir() + name; }

std::vector<std::uint8_t> slurp(const std::string& path) {
  return core::read_file_bytes(path);
}

void spit(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

bool file_exists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

// ---------------------------------------------------------------------------
// Container format
// ---------------------------------------------------------------------------

TEST(Format, SectionRoundTrip) {
  CheckpointWriter w;
  ByteWriter& a = w.section("alpha");
  a.put_u64(42);
  a.put_string("hello");
  a.put_f64(2.5);
  a.put_bool(true);
  ByteWriter& b = w.section("beta");
  b.put_i64(-7);
  // Re-requesting a section appends to it rather than clobbering it.
  w.section("alpha").put_u32(9);

  CheckpointReader r = CheckpointReader::parse(w.serialize(), "mem");
  EXPECT_EQ(r.version(), kFormatVersion);
  ASSERT_TRUE(r.has_section("alpha"));
  ASSERT_TRUE(r.has_section("beta"));
  EXPECT_FALSE(r.has_section("gamma"));
  ByteReader ra = r.section("alpha");
  EXPECT_EQ(ra.get_u64(), 42u);
  EXPECT_EQ(ra.get_string(), "hello");
  EXPECT_DOUBLE_EQ(ra.get_f64(), 2.5);
  EXPECT_TRUE(ra.get_bool());
  EXPECT_EQ(ra.get_u32(), 9u);
  EXPECT_TRUE(ra.done());
  ByteReader rb = r.section("beta");
  EXPECT_EQ(rb.get_i64(), -7);
}

TEST(Format, TensorRoundTrip) {
  tensor::Tensor t({2, 3}, 0.0f);
  for (std::int64_t i = 0; i < t.numel(); ++i) t.data()[i] = static_cast<float>(i) * 1.5f;
  CheckpointWriter w;
  w.section("t").put_tensor(t);
  CheckpointReader r = CheckpointReader::parse(w.serialize(), "mem");
  ByteReader rt = r.section("t");
  tensor::Tensor u = rt.get_tensor();
  ASSERT_EQ(u.shape(), t.shape());
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(u.data()[i], t.data()[i]);
}

TEST(Format, RejectsBadMagic) {
  CheckpointWriter w;
  w.section("s").put_u32(1);
  std::vector<std::uint8_t> bytes = w.serialize();
  bytes[0] ^= 0xFF;
  EXPECT_THROW(CheckpointReader::parse(std::move(bytes), "mem"), CheckpointError);
}

TEST(Format, RejectsVersionMismatch) {
  CheckpointWriter w;
  w.section("s").put_u32(1);
  std::vector<std::uint8_t> bytes = w.serialize();
  bytes[4] += 1;  // format version lives right after the magic
  try {
    CheckpointReader::parse(std::move(bytes), "mem");
    FAIL() << "version mismatch was silently accepted";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos) << e.what();
  }
}

TEST(Format, RejectsCorruptPayload) {
  CheckpointWriter w;
  for (int i = 0; i < 64; ++i) w.section("s").put_u64(static_cast<std::uint64_t>(i));
  std::vector<std::uint8_t> bytes = w.serialize();
  bytes.back() ^= 0x01;  // inside the payload of the last section
  try {
    CheckpointReader::parse(std::move(bytes), "mem");
    FAIL() << "CRC corruption was silently accepted";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos) << e.what();
  }
}

TEST(Format, RejectsTruncationAndTrailingGarbage) {
  CheckpointWriter w;
  w.section("s").put_u64(7);
  const std::vector<std::uint8_t> bytes = w.serialize();
  for (std::size_t cut : {bytes.size() - 1, bytes.size() / 2, std::size_t{6}}) {
    std::vector<std::uint8_t> trunc(bytes.begin(), bytes.begin() + static_cast<long>(cut));
    EXPECT_THROW(CheckpointReader::parse(std::move(trunc), "mem"), CheckpointError)
        << "accepted a file truncated to " << cut << " bytes";
  }
  std::vector<std::uint8_t> padded = bytes;
  padded.push_back(0);
  EXPECT_THROW(CheckpointReader::parse(std::move(padded), "mem"), CheckpointError);
}

TEST(Format, ByteReaderRejectsOverread) {
  CheckpointWriter w;
  w.section("s").put_u32(1);
  CheckpointReader r = CheckpointReader::parse(w.serialize(), "mem");
  ByteReader rs = r.section("s");
  rs.get_u32();
  EXPECT_THROW(rs.get_u64(), CheckpointError);
}

TEST(Format, Crc32cKnownAnswer) {
  // RFC 3720 test vector: CRC32C of 32 zero bytes.
  const std::uint8_t zeros[32] = {};
  EXPECT_EQ(crc32c(zeros, sizeof zeros), 0x8A9136AAu);
  const char* s = "123456789";
  EXPECT_EQ(crc32c(s, 9), 0xE3069283u);
}

TEST(Format, AtomicWriteLeavesNoTempFile) {
  const std::string path = tmp_path("atomic.ckpt");
  CheckpointWriter w;
  w.section("s").put_u64(1);
  w.write_file(path);
  EXPECT_TRUE(file_exists(path));
  EXPECT_FALSE(file_exists(path + ".tmp"));
  // Overwrite in place: still parses afterwards.
  w.section("s").put_u64(2);
  w.write_file(path);
  CheckpointReader r = CheckpointReader::read_file(path);
  ByteReader rs = r.section("s");
  EXPECT_EQ(rs.get_u64(), 1u);
  EXPECT_EQ(rs.get_u64(), 2u);
}

TEST(Format, InspectReportsCorruptionWithoutThrowing) {
  const std::string path = tmp_path("inspect.ckpt");
  CheckpointWriter w;
  for (int i = 0; i < 16; ++i) w.section("payload").put_u64(static_cast<std::uint64_t>(i));
  w.section("other").put_u32(5);
  w.write_file(path);

  InspectReport ok = inspect_file(path);
  EXPECT_TRUE(ok.magic_ok);
  EXPECT_TRUE(ok.version_ok);
  ASSERT_EQ(ok.sections.size(), 2u);
  for (const auto& s : ok.sections) EXPECT_TRUE(s.crc_ok());

  std::vector<std::uint8_t> bytes = slurp(path);
  bytes[bytes.size() / 2] ^= 0xFF;
  spit(path, bytes);
  InspectReport bad = inspect_file(path);
  bool any_bad = false;
  for (const auto& s : bad.sections) any_bad = any_bad || !s.crc_ok();
  EXPECT_TRUE(any_bad) << "inspect missed the corrupted section";
}

// ---------------------------------------------------------------------------
// State serialization building blocks
// ---------------------------------------------------------------------------

/// Small module with both parameters and a buffer-carrying layer, so the
/// round-trip covers the named_buffers path (batch-norm running stats).
struct TinyNet : nn::Module {
  explicit TinyNet(tensor::Rng& rng) : lin(4, 3, rng), bn(3) {
    register_module("lin", lin);
    register_module("bn", bn);
  }
  nn::Linear lin;
  nn::BatchNorm2d bn;
};

TEST(State, ModuleRoundTripIncludesBuffers) {
  tensor::Rng rng_a(1), rng_b(2);
  TinyNet a(rng_a), b(rng_b);
  // Give a's buffers distinctive values (as if BN had accumulated stats).
  for (auto& [name, buf] : a.named_buffers())
    for (std::int64_t i = 0; i < buf->numel(); ++i)
      buf->data()[i] = static_cast<float>(name.size() + static_cast<std::size_t>(i)) * 0.25f;
  ASSERT_FALSE(a.named_buffers().empty());
  ASSERT_NE(hash_module(a), hash_module(b));

  CheckpointWriter w;
  write_module(w.section("model"), a);
  CheckpointReader r = CheckpointReader::parse(w.serialize(), "mem");
  ByteReader in = r.section("model");
  read_module(in, b);
  EXPECT_EQ(hash_module(a), hash_module(b));
}

TEST(State, ReadModuleRejectsArchitectureDrift) {
  tensor::Rng rng(1);
  TinyNet a(rng);
  struct OtherNet : nn::Module {
    explicit OtherNet(tensor::Rng& r) : lin(5, 3, r) { register_module("lin", lin); }
    nn::Linear lin;
  } b(rng);
  CheckpointWriter w;
  write_module(w.section("model"), a);
  CheckpointReader r = CheckpointReader::parse(w.serialize(), "mem");
  ByteReader in = r.section("model");
  EXPECT_THROW(read_module(in, b), CheckpointError);
}

TEST(State, OptimizerStateDictNamesAndShapesArePinned) {
  auto make_params = [] {
    return std::vector<autograd::Variable>{
        autograd::Variable(tensor::Tensor({2, 3}, 1.0f), true),
        autograd::Variable(tensor::Tensor({4}, 2.0f), true)};
  };
  {
    optim::SgdMomentum sgd(make_params());
    optim::OptimizerStateDict d = sgd.state_dict();
    EXPECT_EQ(d.kind, "sgd_momentum");
    ASSERT_EQ(d.tensors.size(), 2u);
    EXPECT_EQ(d.tensors[0].first, "velocity.0");
    EXPECT_EQ(d.tensors[1].first, "velocity.1");
    EXPECT_EQ(d.tensors[0].second->shape(), (tensor::Shape{2, 3}));
    EXPECT_EQ(d.tensors[1].second->shape(), (tensor::Shape{4}));
    EXPECT_TRUE(d.scalars.empty());
  }
  {
    optim::Adam adam(make_params());
    optim::OptimizerStateDict d = adam.state_dict();
    EXPECT_EQ(d.kind, "adam");
    ASSERT_EQ(d.tensors.size(), 4u);
    EXPECT_EQ(d.tensors[0].first, "m.0");
    EXPECT_EQ(d.tensors[1].first, "m.1");
    EXPECT_EQ(d.tensors[2].first, "v.0");
    EXPECT_EQ(d.tensors[3].first, "v.1");
    ASSERT_EQ(d.scalars.size(), 1u);
    EXPECT_EQ(d.scalars[0].first, "step");
  }
  {
    optim::Lars lars(make_params());
    optim::OptimizerStateDict d = lars.state_dict();
    EXPECT_EQ(d.kind, "lars");
    ASSERT_EQ(d.tensors.size(), 2u);
    EXPECT_EQ(d.tensors[0].first, "velocity.0");
    EXPECT_TRUE(d.scalars.empty());
  }
}

TEST(State, OptimizerRoundTripRestoresSlotsAndStep) {
  auto make_params = [] {
    return std::vector<autograd::Variable>{
        autograd::Variable(tensor::Tensor({3}, 1.0f), true)};
  };
  auto step_once = [](optim::Optimizer& opt) {
    for (auto p : opt.params()) {
      p.zero_grad();
      for (std::int64_t i = 0; i < p.node()->grad.numel(); ++i) p.node()->grad[i] = 0.5f;
    }
    opt.step(0.1f);
  };
  optim::Adam a(make_params()), b(make_params());
  step_once(a);
  step_once(a);
  CheckpointWriter w;
  write_optimizer(w.section("optimizer"), a);
  CheckpointReader r = CheckpointReader::parse(w.serialize(), "mem");
  ByteReader in = r.section("optimizer");
  read_optimizer(in, b);
  optim::OptimizerStateDict da = a.state_dict(), db = b.state_dict();
  EXPECT_EQ(*da.scalars[0].second, *db.scalars[0].second);
  for (std::size_t i = 0; i < da.tensors.size(); ++i)
    for (std::int64_t j = 0; j < da.tensors[i].second->numel(); ++j)
      EXPECT_EQ(da.tensors[i].second->data()[j], db.tensors[i].second->data()[j]);
}

TEST(State, ReadOptimizerRejectsKindMismatch) {
  auto make_params = [] {
    return std::vector<autograd::Variable>{
        autograd::Variable(tensor::Tensor({3}, 1.0f), true)};
  };
  optim::SgdMomentum sgd(make_params());
  optim::Adam adam(make_params());
  CheckpointWriter w;
  write_optimizer(w.section("optimizer"), sgd);
  CheckpointReader r = CheckpointReader::parse(w.serialize(), "mem");
  ByteReader in = r.section("optimizer");
  EXPECT_THROW(read_optimizer(in, adam), CheckpointError);
}

TEST(State, RngRoundTripIncludesBoxMullerCache) {
  tensor::Rng a(77);
  (void)a.normal();  // leaves the second Box-Muller value cached
  CheckpointWriter w;
  write_rng(w.section("rng"), a);
  const std::vector<double> expect = {a.normal(), a.normal(), a.uniform(),
                                      static_cast<double>(a.next_u64() % 1000)};
  CheckpointReader r = CheckpointReader::parse(w.serialize(), "mem");
  tensor::Rng b(0);
  ByteReader in = r.section("rng");
  read_rng(in, b);
  EXPECT_EQ(b.normal(), expect[0]);
  EXPECT_EQ(b.normal(), expect[1]);
  EXPECT_EQ(b.uniform(), expect[2]);
  EXPECT_EQ(static_cast<double>(b.next_u64() % 1000), expect[3]);
}

// ---------------------------------------------------------------------------
// Timer carry (§3.2.1 across restarts)
// ---------------------------------------------------------------------------

TEST(TimerCarry, PriorTimedMsExtendsTimeToTrain) {
  core::ManualClock clock;
  core::MlLog log;
  core::TrainingTimer timer(clock, log, 1000.0);
  timer.start_run();
  timer.carry_prior(5000.0, 6000.0);
  clock.advance_ms(100.0);
  EXPECT_DOUBLE_EQ(timer.timed_so_far_ms(), 5100.0);
  timer.stop_run();
  EXPECT_DOUBLE_EQ(timer.time_to_train_ms(), 5100.0);
  EXPECT_DOUBLE_EQ(timer.unexcluded_time_ms(), 6100.0);
}

TEST(TimerCarry, RejectsNegativeAndPostStop) {
  core::ManualClock clock;
  core::MlLog log;
  core::TrainingTimer timer(clock, log, 1000.0);
  EXPECT_THROW(timer.carry_prior(-1.0, 0.0), std::invalid_argument);
  timer.start_run();
  timer.stop_run();
  EXPECT_THROW(timer.carry_prior(1.0, 1.0), std::logic_error);
}

// ---------------------------------------------------------------------------
// nn::save_weights atomicity (satellite)
// ---------------------------------------------------------------------------

TEST(SaveWeights, AtomicAndRejectsTruncation) {
  tensor::Rng rng(3);
  TinyNet net(rng);
  const std::string path = tmp_path("weights.mlpw");
  nn::save_weights(net, path);
  EXPECT_TRUE(file_exists(path));
  EXPECT_FALSE(file_exists(path + ".tmp"));
  tensor::Rng rng2(4);
  TinyNet other(rng2);
  nn::load_weights(other, path);

  std::vector<std::uint8_t> bytes = slurp(path);
  bytes.resize(bytes.size() - 8);
  spit(path, bytes);
  EXPECT_THROW(nn::load_weights(other, path), std::runtime_error);
}

// ---------------------------------------------------------------------------
// End-to-end preempt -> restart -> converge (the tentpole acceptance)
// ---------------------------------------------------------------------------

struct ResumeCase {
  BenchmarkId id;
  std::int64_t threads;
};

std::uint64_t final_weights_hash(models::Workload& w, BenchmarkId id) {
  if (id == BenchmarkId::kRecommendation)
    return hash_module(*dynamic_cast<models::NcfWorkload&>(w).model());
  return hash_module(*dynamic_cast<models::ResNetWorkload&>(w).model());
}

class ResumeBitwise : public ::testing::TestWithParam<ResumeCase> {};

TEST_P(ResumeBitwise, KillAtEpochKResumesIdentically) {
  const ResumeCase c = GetParam();
  const core::SuiteVersion suite = core::suite_v05();
  const core::BenchmarkSpec& spec = core::find_spec(suite, c.id);
  const core::QualityMetric target = harness::scaled_target(spec, WorkloadScale::kSmoke);
  core::SteadyClock clock;

  RunOptions opts;
  opts.seed = 21;
  opts.max_epochs = 40;
  opts.num_threads = c.threads;

  auto baseline_w = harness::make_reference_workload(c.id, WorkloadScale::kSmoke);
  const RunOutcome baseline = harness::run_to_target(*baseline_w, target, opts, clock);
  ASSERT_TRUE(baseline.quality_reached);
  ASSERT_GE(baseline.epochs, 2) << "smoke run too short to preempt meaningfully";
  const std::uint64_t baseline_hash = final_weights_hash(*baseline_w, c.id);

  RunOptions faulted = opts;
  faulted.checkpoint_every_n_epochs = 1;
  faulted.checkpoint_path =
      tmp_path("resume_" + spec.name + "_t" + std::to_string(c.threads) + ".ckpt");
  // Preempt strictly before the converging epoch so the fault actually fires.
  faulted.fault.kill_after_epoch = std::max<std::int64_t>(1, baseline.epochs / 2);
  std::unique_ptr<models::Workload> current;
  const RunOutcome resumed = harness::run_with_restarts(
      [&] {
        current = harness::make_reference_workload(c.id, WorkloadScale::kSmoke);
        return current.get();
      },
      target, faulted, clock);

  EXPECT_EQ(resumed.restarts, 1);
  EXPECT_EQ(resumed.resumed_from_epoch, faulted.fault.kill_after_epoch);
  EXPECT_TRUE(resumed.quality_reached);
  EXPECT_EQ(resumed.epochs, baseline.epochs);
  EXPECT_EQ(harness::outcome_fingerprint(resumed), harness::outcome_fingerprint(baseline));
  EXPECT_EQ(final_weights_hash(*current, c.id), baseline_hash)
      << "resumed final weights differ bitwise from the uninterrupted run";
  // The restored session logged the restore inside the timed window.
  EXPECT_NE(resumed.log.find(core::keys::kCheckpointRestored), nullptr);
}

INSTANTIATE_TEST_SUITE_P(
    ThreadCounts, ResumeBitwise,
    ::testing::Values(ResumeCase{BenchmarkId::kRecommendation, 1},
                      ResumeCase{BenchmarkId::kRecommendation, 2},
                      ResumeCase{BenchmarkId::kRecommendation, 4},
                      ResumeCase{BenchmarkId::kRecommendation, 8},
                      ResumeCase{BenchmarkId::kImageClassification, 1},
                      ResumeCase{BenchmarkId::kImageClassification, 4}),
    [](const ::testing::TestParamInfo<ResumeCase>& info) {
      return (info.param.id == BenchmarkId::kRecommendation ? std::string("ncf")
                                                            : std::string("resnet")) +
             "_t" + std::to_string(info.param.threads);
    });

TEST(Resume, ResumingTheSameCheckpointTwiceIsIdempotent) {
  const core::SuiteVersion suite = core::suite_v05();
  const core::BenchmarkSpec& spec = core::find_spec(suite, BenchmarkId::kRecommendation);
  const core::QualityMetric target = harness::scaled_target(spec, WorkloadScale::kSmoke);
  core::SteadyClock clock;

  RunOptions opts;
  opts.seed = 5;
  opts.max_epochs = 40;
  opts.checkpoint_every_n_epochs = 1;
  opts.checkpoint_path = tmp_path("idempotent.ckpt");
  opts.fault.kill_after_epoch = 1;

  auto w0 = harness::make_reference_workload(BenchmarkId::kRecommendation,
                                             WorkloadScale::kSmoke);
  EXPECT_THROW(harness::run_to_target(*w0, target, opts, clock), harness::Preempted);

  // Two independent resumes from the SAME file must agree bitwise.
  RunOptions resume = opts;
  resume.fault = harness::FaultPlan{};
  resume.resume_from = opts.checkpoint_path;
  resume.checkpoint_path = tmp_path("idempotent_resume.ckpt");  // don't clobber source
  std::uint64_t hashes[2], prints[2];
  for (int i = 0; i < 2; ++i) {
    auto w = harness::make_reference_workload(BenchmarkId::kRecommendation,
                                              WorkloadScale::kSmoke);
    const RunOutcome out = harness::run_to_target(*w, target, resume, clock);
    ASSERT_TRUE(out.quality_reached);
    hashes[i] = final_weights_hash(*w, BenchmarkId::kRecommendation);
    prints[i] = harness::outcome_fingerprint(out);
  }
  EXPECT_EQ(hashes[0], hashes[1]);
  EXPECT_EQ(prints[0], prints[1]);
}

TEST(Resume, ProbabilisticFaultsStillConvergeIdentically) {
  const core::SuiteVersion suite = core::suite_v05();
  const core::BenchmarkSpec& spec = core::find_spec(suite, BenchmarkId::kRecommendation);
  const core::QualityMetric target = harness::scaled_target(spec, WorkloadScale::kSmoke);
  core::SteadyClock clock;

  RunOptions opts;
  opts.seed = 9;
  opts.max_epochs = 40;
  auto baseline_w =
      harness::make_reference_workload(BenchmarkId::kRecommendation, WorkloadScale::kSmoke);
  const RunOutcome baseline = harness::run_to_target(*baseline_w, target, opts, clock);
  ASSERT_TRUE(baseline.quality_reached);

  RunOptions faulted = opts;
  faulted.checkpoint_every_n_epochs = 1;
  faulted.checkpoint_path = tmp_path("probabilistic.ckpt");
  faulted.fault.per_epoch_fail_prob = 0.5;
  faulted.fault.seed = 1234;
  std::unique_ptr<models::Workload> current;
  const RunOutcome resumed = harness::run_with_restarts(
      [&] {
        current = harness::make_reference_workload(BenchmarkId::kRecommendation,
                                                   WorkloadScale::kSmoke);
        return current.get();
      },
      target, faulted, clock, /*max_restarts=*/64);
  EXPECT_TRUE(resumed.quality_reached);
  EXPECT_EQ(harness::outcome_fingerprint(resumed), harness::outcome_fingerprint(baseline));
  EXPECT_EQ(final_weights_hash(*current, BenchmarkId::kRecommendation),
            final_weights_hash(*baseline_w, BenchmarkId::kRecommendation));
}

// Regression: a second-generation ResNet checkpoint (save -> restore -> train
// -> save -> restore) used to record the rebuilt loader's session-local epoch
// count against the cumulative trained-epoch count and reject its own file on
// the second restore. Multi-restart runs must survive any number of
// preemptions.
TEST(Resume, ResnetSurvivesMultipleRestarts) {
  const core::SuiteVersion suite = core::suite_v05();
  const core::BenchmarkSpec& spec =
      core::find_spec(suite, BenchmarkId::kImageClassification);
  const core::QualityMetric target = harness::scaled_target(spec, WorkloadScale::kSmoke);
  core::SteadyClock clock;

  RunOptions opts;
  opts.seed = 21;
  opts.max_epochs = 40;
  auto baseline_w = harness::make_reference_workload(BenchmarkId::kImageClassification,
                                                     WorkloadScale::kSmoke);
  const RunOutcome baseline = harness::run_to_target(*baseline_w, target, opts, clock);
  ASSERT_TRUE(baseline.quality_reached);
  ASSERT_GE(baseline.epochs, 3) << "smoke run too short for a double preemption";

  RunOptions faulted = opts;
  faulted.checkpoint_every_n_epochs = 1;
  faulted.checkpoint_path = tmp_path("resnet_multi_restart.ckpt");
  faulted.fault.per_epoch_fail_prob = 0.9;  // high enough to preempt every session
  faulted.fault.seed = 77;
  std::unique_ptr<models::Workload> current;
  const RunOutcome resumed = harness::run_with_restarts(
      [&] {
        current = harness::make_reference_workload(BenchmarkId::kImageClassification,
                                                   WorkloadScale::kSmoke);
        return current.get();
      },
      target, faulted, clock, /*max_restarts=*/64);

  ASSERT_GE(resumed.restarts, 2)
      << "fault plan only preempted once; raise per_epoch_fail_prob or change seed";
  EXPECT_TRUE(resumed.quality_reached);
  EXPECT_EQ(resumed.epochs, baseline.epochs);
  EXPECT_EQ(harness::outcome_fingerprint(resumed), harness::outcome_fingerprint(baseline));
  EXPECT_EQ(final_weights_hash(*current, BenchmarkId::kImageClassification),
            final_weights_hash(*baseline_w, BenchmarkId::kImageClassification))
      << "multi-restart final weights differ bitwise from the uninterrupted run";
}

// ---------------------------------------------------------------------------
// Loud rejection of unusable checkpoints (never silently loaded)
// ---------------------------------------------------------------------------

class ResumeRejection : public ::testing::Test {
 protected:
  void SetUp() override {
    const core::SuiteVersion suite = core::suite_v05();
    const core::BenchmarkSpec& spec =
        core::find_spec(suite, BenchmarkId::kRecommendation);
    target_ = harness::scaled_target(spec, WorkloadScale::kSmoke);
    target_.target = 1.1;  // unreachable: the fault must fire, not convergence
    opts_.seed = 11;
    opts_.max_epochs = 5;
    opts_.checkpoint_every_n_epochs = 1;
    // Unique per test: ctest runs these fixtures in parallel processes, and
    // two of them corrupt the file in place.
    opts_.checkpoint_path =
        tmp_path(std::string("rejection_") +
                 ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".ckpt");
    opts_.fault.kill_after_epoch = 1;
    auto w = harness::make_reference_workload(BenchmarkId::kRecommendation,
                                              WorkloadScale::kSmoke);
    core::SteadyClock clock;
    EXPECT_THROW(harness::run_to_target(*w, target_, opts_, clock), harness::Preempted);
    opts_.fault = harness::FaultPlan{};
    opts_.resume_from = opts_.checkpoint_path;
  }

  RunOutcome resume_into_ncf() {
    auto w = harness::make_reference_workload(BenchmarkId::kRecommendation,
                                              WorkloadScale::kSmoke);
    core::SteadyClock clock;
    return harness::run_to_target(*w, target_, opts_, clock);
  }

  core::QualityMetric target_{"hit_rate", 0.5, true};
  RunOptions opts_;
};

TEST_F(ResumeRejection, SeedMismatch) {
  opts_.seed = 999;
  EXPECT_THROW(resume_into_ncf(), CheckpointError);
}

TEST_F(ResumeRejection, WrongBenchmark) {
  auto w = harness::make_reference_workload(BenchmarkId::kImageClassification,
                                            WorkloadScale::kSmoke);
  core::SteadyClock clock;
  EXPECT_THROW(harness::run_to_target(*w, target_, opts_, clock), CheckpointError);
}

TEST_F(ResumeRejection, CorruptFile) {
  std::vector<std::uint8_t> bytes = slurp(opts_.checkpoint_path);
  bytes[bytes.size() - 3] ^= 0x40;
  spit(opts_.checkpoint_path, bytes);
  EXPECT_THROW(resume_into_ncf(), CheckpointError);
}

TEST_F(ResumeRejection, VersionFromTheFuture) {
  std::vector<std::uint8_t> bytes = slurp(opts_.checkpoint_path);
  bytes[4] = static_cast<std::uint8_t>(kFormatVersion + 1);
  spit(opts_.checkpoint_path, bytes);
  EXPECT_THROW(resume_into_ncf(), CheckpointError);
}

TEST_F(ResumeRejection, MissingFile) {
  opts_.resume_from = tmp_path("does_not_exist.ckpt");
  EXPECT_THROW(resume_into_ncf(), std::runtime_error);
}

TEST(Harness, CheckpointOptionsRejectedForUnsupportedWorkload) {
  // MiniGo has no checkpoint hooks yet: asking for them must fail fast, not
  // silently skip checkpointing.
  auto w = harness::make_reference_workload(BenchmarkId::kReinforcementLearning,
                                            WorkloadScale::kSmoke);
  RunOptions opts;
  opts.max_epochs = 1;
  opts.checkpoint_every_n_epochs = 1;
  opts.checkpoint_path = tmp_path("unsupported.ckpt");
  core::SteadyClock clock;
  core::QualityMetric target{"q", 0.99, true};
  EXPECT_THROW(harness::run_to_target(*w, target, opts, clock), std::logic_error);
}

TEST(Harness, CheckpointEventsCarryAuditMetadata) {
  const core::SuiteVersion suite = core::suite_v05();
  const core::BenchmarkSpec& spec = core::find_spec(suite, BenchmarkId::kRecommendation);
  core::QualityMetric target = harness::scaled_target(spec, WorkloadScale::kSmoke);
  target.target = 1.1;  // unreachable: run all epochs, checkpoint each one
  RunOptions opts;
  opts.seed = 2;
  opts.max_epochs = 3;
  opts.checkpoint_every_n_epochs = 1;
  opts.checkpoint_path = tmp_path("events.ckpt");
  auto w = harness::make_reference_workload(BenchmarkId::kRecommendation,
                                            WorkloadScale::kSmoke);
  core::SteadyClock clock;
  const RunOutcome out = harness::run_to_target(*w, target, opts, clock);
  EXPECT_EQ(out.checkpoints_written, 3);
  const auto saves = out.log.find_all(core::keys::kCheckpointSaved);
  ASSERT_EQ(static_cast<std::int64_t>(saves.size()), out.checkpoints_written);
  for (const auto* e : saves) {
    EXPECT_NE(e->meta.find("bytes"), e->meta.end());
    EXPECT_NE(e->meta.find("write_ms"), e->meta.end());
    EXPECT_EQ(e->meta.at("path"), opts.checkpoint_path);
  }
  // The checkpoint on disk preserves the prior session's log verbatim.
  CheckpointReader r = CheckpointReader::read_file(opts.checkpoint_path);
  ByteReader log_in = r.section("log");
  const core::MlLog prior = core::MlLog::parse(log_in.get_string());
  EXPECT_NE(prior.find(core::keys::kRunStart), nullptr);
}

}  // namespace
}  // namespace mlperf::checkpoint
