#include "tensor/pool.h"

#include <gtest/gtest.h>

#include <future>
#include <set>
#include <thread>
#include <vector>

#include "autograd/variable.h"
#include "nn/layers.h"
#include "optim/optimizer.h"
#include "tensor/tensor.h"

namespace mlperf::tensor {
namespace {

using autograd::GraphEpoch;
using autograd::Variable;

TEST(TensorPoolBuckets, RoundsUpToPowerOfTwoWithFloor) {
  EXPECT_EQ(TensorPool::bucket_for(1), TensorPool::kMinBucketFloats);
  EXPECT_EQ(TensorPool::bucket_for(TensorPool::kMinBucketFloats),
            TensorPool::kMinBucketFloats);
  EXPECT_EQ(TensorPool::bucket_for(TensorPool::kMinBucketFloats + 1),
            2 * TensorPool::kMinBucketFloats);
  EXPECT_EQ(TensorPool::bucket_for(std::int64_t{1} << 20), std::int64_t{1} << 20);
  EXPECT_EQ(TensorPool::bucket_for((std::int64_t{1} << 20) + 1), std::int64_t{1} << 21);
  EXPECT_EQ(TensorPool::bucket_for(0), 0);
  EXPECT_EQ(TensorPool::bucket_for(-5), 0);
}

TEST(TensorPoolCounters, AcquireReleaseDeltasAreExact) {
  TensorPool& pool = TensorPool::instance();
  pool.trim();
  const TensorPool::Stats s0 = pool.stats();

  // Cold acquire: one miss, bucket-sized bytes outstanding.
  std::vector<float> buf = pool.acquire(100);  // bucket 128 -> 512 bytes
  const TensorPool::Stats s1 = pool.stats();
  EXPECT_EQ(s1.misses - s0.misses, 1);
  EXPECT_EQ(s1.hits - s0.hits, 0);
  EXPECT_EQ(s1.bytes_outstanding - s0.bytes_outstanding, 512);
  EXPECT_GE(buf.capacity(), 128u);

  // Release parks it: one release, bytes move from outstanding to cached.
  pool.release(std::move(buf));
  const TensorPool::Stats s2 = pool.stats();
  EXPECT_EQ(s2.releases - s0.releases, 1);
  EXPECT_EQ(s2.bytes_outstanding, s0.bytes_outstanding);
  EXPECT_EQ(s2.bytes_cached - s0.bytes_cached, 512);

  // Warm acquire: one hit, no new miss, cache drained.
  std::vector<float> again = pool.acquire(128);
  const TensorPool::Stats s3 = pool.stats();
  EXPECT_EQ(s3.hits - s0.hits, 1);
  EXPECT_EQ(s3.misses - s0.misses, 1);
  EXPECT_EQ(s3.bytes_cached, s0.bytes_cached);
  pool.release(std::move(again));
}

TEST(TensorPoolCounters, TinyAndDisabledRequestsBypassThePool) {
  TensorPool& pool = TensorPool::instance();
  pool.trim();
  const TensorPool::Stats s0 = pool.stats();
  // Sub-minimum capacities are simply freed, never parked.
  std::vector<float> tiny(8);
  pool.release(std::move(tiny));
  EXPECT_EQ(pool.stats().bytes_cached, s0.bytes_cached);

  pool.set_enabled(false);
  std::vector<float> off = pool.acquire(256);
  EXPECT_EQ(off.capacity(), 0u);  // caller falls back to plain heap growth
  pool.release(std::move(off));
  pool.set_enabled(true);
  const TensorPool::Stats s1 = pool.stats();
  EXPECT_EQ(s1.hits, s0.hits);
  EXPECT_EQ(s1.misses, s0.misses);
}

TEST(TensorPoolThreading, SmallBucketsAreThreadLocalWhileOwnerLives) {
  TensorPool& pool = TensorPool::instance();
  pool.trim();
  std::promise<void> parked;
  std::promise<void> done;
  std::thread owner([&] {
    std::vector<float> buf = pool.acquire(256);
    pool.release(std::move(buf));  // lands in THIS thread's cache
    parked.set_value();
    done.get_future().wait();  // keep the thread (and its cache) alive
  });
  parked.get_future().wait();

  const TensorPool::Stats s0 = pool.stats();
  std::vector<float> mine = pool.acquire(256);
  const TensorPool::Stats s1 = pool.stats();
  // The other thread's cached buffer is invisible here: small buckets do not
  // cross live threads.
  EXPECT_EQ(s1.misses - s0.misses, 1);
  pool.release(std::move(mine));
  done.set_value();
  owner.join();
}

TEST(TensorPoolThreading, LargeBucketsRecycleAcrossThreads) {
  TensorPool& pool = TensorPool::instance();
  pool.trim();
  const std::int64_t big = TensorPool::kSharedBucketFloats;  // shared tier
  std::thread producer([&] {
    std::vector<float> buf = pool.acquire(big);
    pool.release(std::move(buf));
  });
  producer.join();

  const TensorPool::Stats s0 = pool.stats();
  std::vector<float> mine = pool.acquire(big);
  const TensorPool::Stats s1 = pool.stats();
  // Loader pattern: produced on a worker, freed/reused on the consumer — the
  // shared tier makes it a hit, not a once-per-batch miss.
  EXPECT_EQ(s1.hits - s0.hits, 1);
  EXPECT_EQ(s1.misses - s0.misses, 0);
  pool.release(std::move(mine));
}

TEST(TensorPoolRecycling, LiveTensorsNeverAlias) {
  TensorPool::instance().trim();
  const float* recycled = nullptr;
  {
    Tensor dead({64}, 1.0f);
    recycled = dead.data();
  }
  // The dead tensor's buffer comes back for the same bucket...
  Tensor a({64}, 2.0f);
  EXPECT_EQ(a.data(), recycled);
  // ...but two live tensors can never share storage, and recycled buffers
  // carry no stale contents past the fill.
  std::vector<Tensor> live;
  for (int i = 0; i < 8; ++i) live.emplace_back(Shape{64}, static_cast<float>(i));
  std::set<const float*> addrs;
  addrs.insert(a.data());
  for (const Tensor& t : live) addrs.insert(t.data());
  EXPECT_EQ(addrs.size(), live.size() + 1);
  for (int i = 0; i < 8; ++i)
    for (std::int64_t j = 0; j < 64; ++j)
      ASSERT_EQ(live[static_cast<std::size_t>(i)][j], static_cast<float>(i));
  for (std::int64_t j = 0; j < 64; ++j) ASSERT_EQ(a[j], 2.0f);
}

TEST(TensorPoolRecycling, TrimDropsCachedBytes) {
  TensorPool& pool = TensorPool::instance();
  pool.release(pool.acquire(1024));
  EXPECT_GT(pool.stats().bytes_cached, 0);
  pool.trim();
  EXPECT_EQ(pool.stats().bytes_cached, 0);
}

// ---- steady-state zero-allocation pins -------------------------------------
//
// "Zero allocation" here means zero TensorPool misses: every float buffer the
// step creates is served from the pool once shapes have been seen. (Shape
// vectors, nodes, and closures still use the heap — they are not what the
// pool exists to eliminate.)

TEST(TensorPoolSteadyState, ConvTrainStepHasZeroPoolMisses) {
  TensorPool::instance().trim();
  tensor::Rng rng(7);
  nn::Conv2d conv(3, 4, 3, 1, 1, rng);
  optim::SgdMomentum opt(conv.parameters(), 0.9f, 1e-4f);
  const Tensor images = Tensor::randn({2, 3, 8, 8}, rng);

  auto step = [&] {
    GraphEpoch scope;
    Variable out = conv.forward(Variable(images));
    Variable loss = autograd::mean_all(out);
    opt.zero_grad();
    loss.backward();
    opt.step(0.05f);
  };
  for (int i = 0; i < 3; ++i) step();  // warm-up: populate the pool
  for (int i = 0; i < 5; ++i) {
    step();
    EXPECT_EQ(GraphEpoch::last_pool_misses(), 0) << "steady-state step " << i;
    EXPECT_GT(GraphEpoch::last_pool_hits(), 0);
  }
}

TEST(TensorPoolSteadyState, AttentionTrainStepHasZeroPoolMisses) {
  TensorPool::instance().trim();
  tensor::Rng rng(11);
  nn::MultiHeadAttention attn(16, 4, rng);
  optim::Adam opt(attn.parameters());
  const Tensor x = Tensor::randn({2, 5, 16}, rng);

  auto step = [&] {
    GraphEpoch scope;
    Variable q(x);
    Variable out = attn.forward(q, q, q, /*causal=*/true);
    Variable loss = autograd::mean_all(out);
    opt.zero_grad();
    loss.backward();
    opt.step(1e-3f);
  };
  for (int i = 0; i < 3; ++i) step();
  for (int i = 0; i < 5; ++i) {
    step();
    EXPECT_EQ(GraphEpoch::last_pool_misses(), 0) << "steady-state step " << i;
    EXPECT_GT(GraphEpoch::last_pool_hits(), 0);
  }
}

}  // namespace
}  // namespace mlperf::tensor
