#include "harness/run.h"

#include <gtest/gtest.h>

#include <set>

#include "core/review.h"
#include "harness/reference.h"

namespace mlperf::harness {
namespace {

using core::BenchmarkId;

/// A deterministic toy workload whose quality is a pure function of the epoch
/// count — lets us test the harness plumbing without real training.
class ScriptedWorkload : public models::Workload {
 public:
  explicit ScriptedWorkload(std::vector<double> quality_per_epoch)
      : qualities_(std::move(quality_per_epoch)) {}

  std::string name() const override { return "scripted"; }
  void prepare_data() override { prepared_ = true; }
  void build_model(std::uint64_t seed) override { seed_ = seed; }
  void train_epoch() override {
    if (!prepared_) throw std::logic_error("data not prepared");
    ++epoch_;
  }
  double evaluate() override {
    const std::size_t idx = std::min(static_cast<std::size_t>(epoch_) - 1, qualities_.size() - 1);
    return qualities_[idx];
  }
  std::map<std::string, double> hyperparameters() const override {
    return {{"learning_rate", 0.1}};
  }
  std::int64_t global_batch_size() const override { return 8; }
  std::string model_signature() const override { return "scripted-model"; }
  std::string optimizer_name() const override { return "sgd_momentum"; }

  std::uint64_t seed_ = 0;

 private:
  std::vector<double> qualities_;
  bool prepared_ = false;
  std::int64_t epoch_ = 0;
};

TEST(Harness, StopsAtQualityTarget) {
  ScriptedWorkload w({0.1, 0.3, 0.6, 0.9});
  core::QualityMetric target{"q", 0.5, true};
  RunOptions opts;
  opts.max_epochs = 10;
  core::ManualClock clock;
  const RunOutcome out = run_to_target(w, target, opts, clock);
  EXPECT_TRUE(out.quality_reached);
  EXPECT_EQ(out.epochs, 3);
  EXPECT_DOUBLE_EQ(out.final_quality, 0.6);
}

TEST(Harness, MaxEpochsBoundsRun) {
  ScriptedWorkload w({0.1, 0.2});
  core::QualityMetric target{"q", 0.99, true};
  RunOptions opts;
  opts.max_epochs = 4;
  core::ManualClock clock;
  const RunOutcome out = run_to_target(w, target, opts, clock);
  EXPECT_FALSE(out.quality_reached);
  EXPECT_EQ(out.epochs, 4);
}

TEST(Harness, CurveRecordsEveryEvaluation) {
  ScriptedWorkload w({0.1, 0.2, 0.3, 0.9});
  core::QualityMetric target{"q", 0.9, true};
  RunOptions opts;
  opts.max_epochs = 10;
  core::ManualClock clock;
  const RunOutcome out = run_to_target(w, target, opts, clock);
  ASSERT_EQ(out.curve.size(), 4u);
  EXPECT_EQ(out.curve[0].epoch, 1);
  EXPECT_DOUBLE_EQ(out.curve[3].quality, 0.9);
}

TEST(Harness, EvalIntervalSkipsEvaluations) {
  ScriptedWorkload w({0.1, 0.2, 0.3, 0.4, 0.95, 0.95});
  core::QualityMetric target{"q", 0.9, true};
  RunOptions opts;
  opts.max_epochs = 10;
  opts.eval_interval = 2;
  core::ManualClock clock;
  const RunOutcome out = run_to_target(w, target, opts, clock);
  EXPECT_TRUE(out.quality_reached);
  EXPECT_EQ(out.epochs, 6);         // evals at 2, 4, 6
  EXPECT_EQ(out.curve.size(), 3u);
}

TEST(Harness, SeedIsPassedToWorkloadAndLogged) {
  ScriptedWorkload w({1.0});
  core::QualityMetric target{"q", 0.5, true};
  RunOptions opts;
  opts.seed = 777;
  core::ManualClock clock;
  const RunOutcome out = run_to_target(w, target, opts, clock);
  EXPECT_EQ(w.seed_, 777u);
  EXPECT_DOUBLE_EQ(out.log.find(core::keys::kSeed)->as_number(), 777.0);
}

TEST(Harness, LogPassesComplianceReview) {
  // The harness's own logs must satisfy the paper's rules end-to-end.
  auto make_run = [&](std::uint64_t seed) {
    ScriptedWorkload w({0.2, 0.95});
    core::QualityMetric target{"q", 0.9, true};
    RunOptions opts;
    opts.seed = seed;
    core::ManualClock clock;
    return run_to_target(w, target, opts, clock);
  };
  core::BenchmarkEntry entry;
  entry.benchmark = BenchmarkId::kImageClassification;
  entry.optimizer_name = "sgd_momentum";
  entry.model_signature = "ResNet-50 v1.5";
  entry.augmentation_signature = "random_crop|horizontal_flip|color_jitter";
  entry.hyperparameters["learning_rate"] = 0.1;
  for (std::uint64_t s = 1; s <= 5; ++s) entry.runs.push_back(to_run_result(make_run(s)));
  const auto report =
      review_entry(entry, core::suite_v05(), core::Division::kClosed, 1e9);
  EXPECT_TRUE(report.compliant()) << report.to_string();
}

TEST(Harness, ReviewWorksFromSerializedArtifactsAlone) {
  // The real review process consumes submitted FILES; round-trip every log
  // through serialize/parse and verify the verdict is unchanged.
  auto make_run = [&](std::uint64_t seed) {
    ScriptedWorkload w({0.2, 0.95});
    core::QualityMetric target{"q", 0.9, true};
    RunOptions opts;
    opts.seed = seed;
    core::ManualClock clock;
    return run_to_target(w, target, opts, clock);
  };
  core::BenchmarkEntry entry;
  entry.benchmark = BenchmarkId::kImageClassification;
  entry.optimizer_name = "sgd_momentum";
  entry.model_signature = "ResNet-50 v1.5";
  entry.augmentation_signature = "random_crop|horizontal_flip|color_jitter";
  for (std::uint64_t s = 1; s <= 5; ++s) {
    core::RunResult r = to_run_result(make_run(s));
    r.log = core::MlLog::parse(r.log.serialize());  // file round-trip
    entry.runs.push_back(std::move(r));
  }
  EXPECT_TRUE(
      review_entry(entry, core::suite_v05(), core::Division::kClosed, 1e9).compliant());
  // Tamper with one artifact: the checker must notice from the file alone.
  std::string text = entry.runs[2].log.serialize();
  const auto pos = text.find("\"key\": \"run_stop\"");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 17, "\"key\": \"run_stopX\"");
  entry.runs[2].log = core::MlLog::parse(text);
  EXPECT_FALSE(
      review_entry(entry, core::suite_v05(), core::Division::kClosed, 1e9).compliant());
}

TEST(Harness, RunProtocolVariesSeeds) {
  core::QualityMetric target{"q", 0.5, true};
  RunOptions opts;
  opts.seed = 100;
  std::vector<std::uint64_t> seeds;
  auto outcomes = run_protocol(
      [&] {
        auto w = std::make_unique<ScriptedWorkload>(std::vector<double>{0.9});
        return w;
      },
      target, opts, 5);
  EXPECT_EQ(outcomes.size(), 5u);
  std::set<double> seed_values;
  for (const auto& o : outcomes)
    seed_values.insert(o.log.find(core::keys::kSeed)->as_number());
  EXPECT_EQ(seed_values.size(), 5u);
}

TEST(Harness, TimingRulesExcludeRegionsInRealClock) {
  ScriptedWorkload w({0.95});
  core::QualityMetric target{"q", 0.9, true};
  RunOptions opts;
  core::ManualClock clock;
  const RunOutcome out = run_to_target(w, target, opts, clock);
  // ManualClock never advances -> zero-duration run, but all events present.
  EXPECT_NE(out.log.find(core::keys::kReformatStart), nullptr);
  EXPECT_NE(out.log.find(core::keys::kModelCreationStart), nullptr);
  EXPECT_NE(out.log.find(core::keys::kQualityTarget), nullptr);
  EXPECT_NE(out.log.find(core::keys::kGlobalBatchSize), nullptr);
  EXPECT_TRUE(out.log.find_last(core::keys::kQualityReached)->as_bool());
}

TEST(Registry, BuildsAllSevenReferenceWorkloads) {
  const auto suite = core::suite_v05();
  for (const auto& spec : suite.benchmarks) {
    auto w = make_reference_workload(spec.id, WorkloadScale::kSmoke);
    ASSERT_NE(w, nullptr) << spec.name;
    EXPECT_EQ(w->name(), spec.name);
    EXPECT_EQ(w->model_signature(), spec.model) << spec.name;
    EXPECT_GT(w->global_batch_size(), 0);
    EXPECT_FALSE(w->optimizer_name().empty());
    EXPECT_FALSE(w->hyperparameters().empty());
  }
}

TEST(Registry, ClosedDivisionSignaturesMatchRules) {
  // Every reference workload must satisfy its own closed-division rulebook —
  // otherwise no compliant closed submission could exist.
  const auto suite = core::suite_v05();
  for (const auto& spec : suite.benchmarks) {
    auto w = make_reference_workload(spec.id, WorkloadScale::kSmoke);
    const auto rules = core::closed_rules(suite, spec.id);
    EXPECT_EQ(w->model_signature(), rules.reference_model_signature) << spec.name;
    EXPECT_TRUE(rules.optimizer_allowed(w->optimizer_name())) << spec.name;
    EXPECT_EQ(w->augmentation_signature(), rules.reference_augmentation_signature)
        << spec.name;
  }
}

TEST(Registry, SmokeTargetsAreReduced) {
  const auto suite = core::suite_v05();
  for (const auto& spec : suite.benchmarks) {
    const auto smoke = scaled_target(spec, WorkloadScale::kSmoke);
    const auto full = scaled_target(spec, WorkloadScale::kReference);
    EXPECT_DOUBLE_EQ(full.target, spec.mini_quality.target);
    EXPECT_LE(smoke.target, full.target) << spec.name;
  }
}

// End-to-end: the two fastest real workloads run to their smoke targets
// through the full harness (reformat -> model creation -> timed epochs).
class SmokeEndToEnd : public ::testing::TestWithParam<BenchmarkId> {};

TEST_P(SmokeEndToEnd, ReachesSmokeTarget) {
  const auto suite = core::suite_v05();
  const auto& spec = core::find_spec(suite, GetParam());
  auto w = make_reference_workload(spec.id, WorkloadScale::kSmoke);
  RunOptions opts;
  opts.seed = 42;
  opts.max_epochs = 40;
  const RunOutcome out = run_to_target(*w, scaled_target(spec, WorkloadScale::kSmoke), opts);
  EXPECT_TRUE(out.quality_reached)
      << spec.name << " final quality " << out.final_quality;
  EXPECT_GT(out.time_to_train_ms, 0.0);
  EXPECT_GE(out.unexcluded_time_ms, out.time_to_train_ms);
}

INSTANTIATE_TEST_SUITE_P(FastWorkloads, SmokeEndToEnd,
                         ::testing::Values(BenchmarkId::kRecommendation,
                                           BenchmarkId::kObjectDetectionLight));

}  // namespace
}  // namespace mlperf::harness
