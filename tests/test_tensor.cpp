#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mlperf::tensor {
namespace {

TEST(TensorBasics, DefaultIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.numel(), 0);
  EXPECT_EQ(t.ndim(), 0);
}

TEST(TensorBasics, ZeroFilledConstruction) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  for (std::int64_t i = 0; i < 6; ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorBasics, FillConstruction) {
  Tensor t({2, 2}, 3.5f);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_EQ(t[i], 3.5f);
}

TEST(TensorBasics, DataConstructionSizeMismatchThrows) {
  EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1.0f}), std::invalid_argument);
}

TEST(TensorBasics, NegativeExtentThrows) {
  EXPECT_THROW(Tensor({-1, 2}), std::invalid_argument);
}

TEST(TensorBasics, AtIndexing) {
  Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
  EXPECT_EQ(t.at({0, 0}), 0.0f);
  EXPECT_EQ(t.at({0, 2}), 2.0f);
  EXPECT_EQ(t.at({1, 0}), 3.0f);
  EXPECT_EQ(t.at({1, 2}), 5.0f);
}

TEST(TensorBasics, AtOutOfRangeThrows) {
  Tensor t({2, 3});
  EXPECT_THROW(t.at({2, 0}), std::invalid_argument);
  EXPECT_THROW(t.at({0, 3}), std::invalid_argument);
  EXPECT_THROW(t.at({0}), std::invalid_argument);  // rank mismatch
}

TEST(TensorBasics, SizeNegativeDimWraps) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.size(-1), 4);
  EXPECT_EQ(t.size(-3), 2);
  EXPECT_THROW(t.size(3), std::invalid_argument);
}

TEST(TensorBasics, Arange) {
  Tensor t = Tensor::arange(5);
  for (std::int64_t i = 0; i < 5; ++i) EXPECT_EQ(t[i], static_cast<float>(i));
}

TEST(TensorReshape, InferredExtent) {
  Tensor t = Tensor::arange(12);
  Tensor r = t.reshape({3, -1});
  EXPECT_EQ(r.shape(), (Shape{3, 4}));
  EXPECT_EQ(r.at({2, 3}), 11.0f);
}

TEST(TensorReshape, NumelMismatchThrows) {
  EXPECT_THROW(Tensor::arange(12).reshape({5, 2}), std::invalid_argument);
}

TEST(TensorReshape, DoubleInferThrows) {
  EXPECT_THROW(Tensor::arange(12).reshape({-1, -1}), std::invalid_argument);
}

TEST(TensorPermute, Transpose2d) {
  Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
  Tensor tt = t.transpose2d();
  EXPECT_EQ(tt.shape(), (Shape{3, 2}));
  EXPECT_EQ(tt.at({0, 1}), 3.0f);
  EXPECT_EQ(tt.at({2, 0}), 2.0f);
}

TEST(TensorPermute, Rank3Permutation) {
  Tensor t({2, 3, 4});
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(i);
  Tensor p = t.permute({2, 0, 1});
  EXPECT_EQ(p.shape(), (Shape{4, 2, 3}));
  // p[k, i, j] == t[i, j, k]
  for (std::int64_t i = 0; i < 2; ++i)
    for (std::int64_t j = 0; j < 3; ++j)
      for (std::int64_t k = 0; k < 4; ++k) EXPECT_EQ(p.at({k, i, j}), t.at({i, j, k}));
}

TEST(TensorPermute, RoundTripIsIdentity) {
  Rng rng(1);
  Tensor t = Tensor::randn({3, 4, 5}, rng);
  Tensor back = t.permute({1, 2, 0}).permute({2, 0, 1});
  ASSERT_TRUE(back.same_shape(t));
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(back[i], t[i]);
}

TEST(TensorPermute, BadDimsThrow) {
  Tensor t({2, 3});
  EXPECT_THROW(t.permute({0, 0}), std::invalid_argument);
  EXPECT_THROW(t.permute({0}), std::invalid_argument);
}

TEST(TensorSliceCat, Slice0Basic) {
  Tensor t = Tensor::arange(12).reshape({4, 3});
  Tensor s = t.slice0(1, 3);
  EXPECT_EQ(s.shape(), (Shape{2, 3}));
  EXPECT_EQ(s.at({0, 0}), 3.0f);
  EXPECT_EQ(s.at({1, 2}), 8.0f);
}

TEST(TensorSliceCat, Cat0ConcatenatesAndRoundTrips) {
  Tensor t = Tensor::arange(12).reshape({4, 3});
  Tensor joined = Tensor::cat0({t.slice0(0, 2), t.slice0(2, 4)});
  ASSERT_TRUE(joined.same_shape(t));
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(joined[i], t[i]);
}

TEST(TensorSliceCat, Cat0MismatchThrows) {
  EXPECT_THROW(Tensor::cat0({Tensor({2, 3}), Tensor({2, 4})}), std::invalid_argument);
}

TEST(TensorBroadcast, SameShapeFastPath) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 2}, {10, 20, 30, 40});
  Tensor c = a.add(b);
  EXPECT_EQ(c.at({1, 1}), 44.0f);
}

TEST(TensorBroadcast, RowVectorBroadcast) {
  Tensor a({2, 3}, {0, 1, 2, 3, 4, 5});
  Tensor b({3}, {10, 20, 30});
  Tensor c = a.add(b);
  EXPECT_EQ(c.at({0, 0}), 10.0f);
  EXPECT_EQ(c.at({1, 2}), 35.0f);
}

TEST(TensorBroadcast, ColumnBroadcast) {
  Tensor a({2, 3}, {0, 1, 2, 3, 4, 5});
  Tensor b({2, 1}, {100, 200});
  Tensor c = a.add(b);
  EXPECT_EQ(c.at({0, 2}), 102.0f);
  EXPECT_EQ(c.at({1, 0}), 203.0f);
}

TEST(TensorBroadcast, IncompatibleThrows) {
  EXPECT_THROW(Tensor({2, 3}).add(Tensor({2, 2})), std::invalid_argument);
}

TEST(TensorBroadcast, BroadcastShapeComputation) {
  EXPECT_EQ(Tensor::broadcast_shape({4, 1, 3}, {2, 1}), (Shape{4, 2, 3}));
  EXPECT_EQ(Tensor::broadcast_shape({5}, {3, 1}), (Shape{3, 5}));
}

TEST(TensorBroadcast, ReduceToInvertsBroadcast) {
  Tensor a({2, 3}, 1.0f);
  Tensor reduced = a.reduce_to({3});
  EXPECT_EQ(reduced.shape(), (Shape{3}));
  for (std::int64_t i = 0; i < 3; ++i) EXPECT_EQ(reduced[i], 2.0f);  // summed over rows
  Tensor col = a.reduce_to({2, 1});
  EXPECT_EQ(col.at({0, 0}), 3.0f);
}

TEST(TensorReductions, SumMeanMaxMin) {
  Tensor t({4}, {1, -2, 3, 0});
  EXPECT_FLOAT_EQ(t.sum(), 2.0f);
  EXPECT_FLOAT_EQ(t.mean(), 0.5f);
  EXPECT_FLOAT_EQ(t.max(), 3.0f);
  EXPECT_FLOAT_EQ(t.min(), -2.0f);
  EXPECT_EQ(t.argmax(), 2);
}

TEST(TensorReductions, SumAxis) {
  Tensor t = Tensor::arange(6).reshape({2, 3});
  Tensor s0 = t.sum_axis(0);
  EXPECT_EQ(s0.shape(), (Shape{3}));
  EXPECT_FLOAT_EQ(s0[0], 3.0f);
  EXPECT_FLOAT_EQ(s0[2], 7.0f);
  Tensor s1 = t.sum_axis(1, /*keepdim=*/true);
  EXPECT_EQ(s1.shape(), (Shape{2, 1}));
  EXPECT_FLOAT_EQ(s1[0], 3.0f);
  EXPECT_FLOAT_EQ(s1[1], 12.0f);
}

TEST(TensorReductions, MeanAndMaxAxis) {
  Tensor t({2, 2}, {1, 5, 3, 2});
  Tensor m = t.mean_axis(1);
  EXPECT_FLOAT_EQ(m[0], 3.0f);
  EXPECT_FLOAT_EQ(m[1], 2.5f);
  Tensor mx = t.max_axis(0);
  EXPECT_FLOAT_EQ(mx[0], 3.0f);
  EXPECT_FLOAT_EQ(mx[1], 5.0f);
}

TEST(TensorReductions, ArgmaxLast) {
  Tensor t({2, 3}, {0, 5, 1, 9, 2, 3});
  const auto am = t.argmax_last();
  ASSERT_EQ(am.size(), 2u);
  EXPECT_EQ(am[0], 1);
  EXPECT_EQ(am[1], 0);
}

TEST(TensorMatmul, AgainstNaive) {
  Rng rng(7);
  Tensor a = Tensor::randn({5, 4}, rng);
  Tensor b = Tensor::randn({4, 6}, rng);
  Tensor c = a.matmul(b);
  ASSERT_EQ(c.shape(), (Shape{5, 6}));
  for (std::int64_t i = 0; i < 5; ++i)
    for (std::int64_t j = 0; j < 6; ++j) {
      double acc = 0.0;
      for (std::int64_t k = 0; k < 4; ++k) acc += a.at({i, k}) * b.at({k, j});
      EXPECT_NEAR(c.at({i, j}), acc, 1e-4);
    }
}

TEST(TensorMatmul, InnerDimMismatchThrows) {
  EXPECT_THROW(Tensor({2, 3}).matmul(Tensor({2, 3})), std::invalid_argument);
}

TEST(TensorMatmul, BatchedAgainstLoop) {
  Rng rng(8);
  Tensor a = Tensor::randn({3, 2, 4}, rng);
  Tensor b = Tensor::randn({3, 4, 5}, rng);
  Tensor c = a.bmm(b);
  ASSERT_EQ(c.shape(), (Shape{3, 2, 5}));
  for (std::int64_t s = 0; s < 3; ++s) {
    Tensor as = a.slice0(s, s + 1).reshape({2, 4});
    Tensor bs = b.slice0(s, s + 1).reshape({4, 5});
    Tensor cs = as.matmul(bs);
    for (std::int64_t i = 0; i < 10; ++i)
      EXPECT_NEAR(c[s * 10 + i], cs[i], 1e-4);
  }
}

TEST(TensorSoftmax, RowsSumToOne) {
  Rng rng(9);
  Tensor t = Tensor::randn({4, 7}, rng, 0.0f, 5.0f);
  Tensor s = t.softmax_last();
  for (std::int64_t r = 0; r < 4; ++r) {
    double sum = 0.0;
    for (std::int64_t j = 0; j < 7; ++j) {
      EXPECT_GT(s.at({r, j}), 0.0f);
      sum += s.at({r, j});
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(TensorSoftmax, StableUnderLargeLogits) {
  Tensor t({1, 3}, {1000.0f, 1001.0f, 999.0f});
  Tensor s = t.softmax_last();
  EXPECT_TRUE(s.all_finite());
  EXPECT_GT(s[1], s[0]);
}

TEST(TensorSoftmax, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng(10);
  Tensor t = Tensor::randn({3, 5}, rng);
  Tensor a = t.log_softmax_last();
  Tensor b = t.softmax_last().log();
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_NEAR(a[i], b[i], 1e-5);
}

TEST(TensorUnary, MapAndChains) {
  Tensor t({3}, {-1.0f, 0.0f, 2.0f});
  Tensor r = t.relu();
  EXPECT_EQ(r[0], 0.0f);
  EXPECT_EQ(r[2], 2.0f);
  Tensor c = t.clamp(-0.5f, 1.0f);
  EXPECT_EQ(c[0], -0.5f);
  EXPECT_EQ(c[2], 1.0f);
  Tensor sig = Tensor({1}, {0.0f}).sigmoid();
  EXPECT_FLOAT_EQ(sig[0], 0.5f);
}

TEST(TensorMisc, L2NormAndFinite) {
  Tensor t({2}, {3.0f, 4.0f});
  EXPECT_FLOAT_EQ(t.l2_norm_sq(), 25.0f);
  EXPECT_TRUE(t.all_finite());
  Tensor bad({1}, {std::nanf("")});
  EXPECT_FALSE(bad.all_finite());
}

TEST(TensorMisc, ToStringTruncates) {
  Tensor t = Tensor::arange(100);
  const std::string s = t.to_string(4);
  EXPECT_NE(s.find("..."), std::string::npos);
}

// Property sweep: broadcast binary add agrees with manual loop for a family
// of right-aligned shapes.
class BroadcastProperty : public ::testing::TestWithParam<std::pair<Shape, Shape>> {};

TEST_P(BroadcastProperty, AddMatchesManualExpansion) {
  const auto& [sa, sb] = GetParam();
  Rng rng(11);
  Tensor a = Tensor::randn(sa, rng);
  Tensor b = Tensor::randn(sb, rng);
  Tensor c = a.add(b);
  const Shape out = Tensor::broadcast_shape(sa, sb);
  ASSERT_EQ(c.shape(), out);
  // Verify on a handful of sample positions via modular index math.
  auto fetch = [](const Tensor& t, const Shape& out_shape, std::int64_t flat) {
    const auto& ts = t.shape();
    std::int64_t idx = 0, stride = 1;
    // build index in t by right-aligned coordinates
    std::vector<std::int64_t> coords(out_shape.size());
    for (std::size_t d = out_shape.size(); d-- > 0;) {
      coords[d] = flat % out_shape[d];
      flat /= out_shape[d];
    }
    for (std::size_t i = ts.size(); i-- > 0;) {
      const std::size_t od = out_shape.size() - (ts.size() - i);
      const std::int64_t coord = ts[i] == 1 ? 0 : coords[od];
      idx += coord * stride;
      stride *= ts[i];
    }
    return t[idx];
  };
  for (std::int64_t flat = 0; flat < c.numel(); ++flat)
    EXPECT_NEAR(c[flat], fetch(a, c.shape(), flat) + fetch(b, c.shape(), flat), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BroadcastProperty,
    ::testing::Values(std::pair<Shape, Shape>{{2, 3}, {3}},
                      std::pair<Shape, Shape>{{2, 3}, {2, 1}},
                      std::pair<Shape, Shape>{{4, 1, 3}, {2, 3}},
                      std::pair<Shape, Shape>{{1}, {2, 2}},
                      std::pair<Shape, Shape>{{3, 1, 2, 1}, {1, 4, 1, 5}}));

// GEMM property: identity, associativity with scalar.
TEST(GemmProperty, IdentityMatrix) {
  Rng rng(12);
  Tensor a = Tensor::randn({6, 6}, rng);
  Tensor eye({6, 6});
  for (std::int64_t i = 0; i < 6; ++i) eye.at({i, i}) = 1.0f;
  Tensor c = a.matmul(eye);
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_NEAR(c[i], a[i], 1e-5);
}

TEST(GemmProperty, TransposeIdentity) {
  // (A B)^T == B^T A^T
  Rng rng(13);
  Tensor a = Tensor::randn({3, 5}, rng);
  Tensor b = Tensor::randn({5, 2}, rng);
  Tensor lhs = a.matmul(b).transpose2d();
  Tensor rhs = b.transpose2d().matmul(a.transpose2d());
  for (std::int64_t i = 0; i < lhs.numel(); ++i) EXPECT_NEAR(lhs[i], rhs[i], 1e-4);
}

}  // namespace
}  // namespace mlperf::tensor
