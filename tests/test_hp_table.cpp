#include "harness/hp_table.h"

#include <gtest/gtest.h>

namespace mlperf::harness {
namespace {

using core::BenchmarkId;

double hp(const HpRecommendation& r, const std::string& name) {
  const auto& v = r.hyperparameters.at(name);
  if (const double* d = std::get_if<double>(&v)) return *d;
  return static_cast<double>(std::get<std::int64_t>(v));
}

TEST(HpTable, GlobalBatchScalesWithChips) {
  const auto suite = core::suite_v05();
  const auto r1 = recommend_hyperparameters(suite, BenchmarkId::kImageClassification, 1,
                                            numerics::Format::kFP32);
  const auto r16 = recommend_hyperparameters(suite, BenchmarkId::kImageClassification, 16,
                                             numerics::Format::kFP32);
  EXPECT_DOUBLE_EQ(hp(r16, "global_batch_size"), 16.0 * hp(r1, "global_batch_size"));
}

TEST(HpTable, LinearScalingRuleForSgdBenchmarks) {
  const auto suite = core::suite_v05();
  const auto r4 = recommend_hyperparameters(suite, BenchmarkId::kImageClassification, 4,
                                            numerics::Format::kFP32);
  const auto r8 = recommend_hyperparameters(suite, BenchmarkId::kImageClassification, 8,
                                            numerics::Format::kFP32);
  EXPECT_NEAR(hp(r8, "learning_rate") / hp(r4, "learning_rate"), 2.0, 1e-9);
}

TEST(HpTable, AdamBenchmarksScaleSublinearly) {
  const auto suite = core::suite_v05();
  const auto r4 = recommend_hyperparameters(suite, BenchmarkId::kTranslationNonRecurrent, 4,
                                            numerics::Format::kFP32);
  const auto r16 = recommend_hyperparameters(suite, BenchmarkId::kTranslationNonRecurrent, 16,
                                             numerics::Format::kFP32);
  const double ratio = hp(r16, "learning_rate") / hp(r4, "learning_rate");
  EXPECT_NEAR(ratio, 2.0, 1e-9);  // sqrt(4x)
}

TEST(HpTable, WarmupGrowsWithScale) {
  const auto suite = core::suite_v05();
  const auto small = recommend_hyperparameters(suite, BenchmarkId::kImageClassification, 4,
                                               numerics::Format::kFP32);
  const auto large = recommend_hyperparameters(suite, BenchmarkId::kImageClassification, 256,
                                               numerics::Format::kFP32);
  EXPECT_GT(hp(large, "warmup_steps"), hp(small, "warmup_steps"));
}

TEST(HpTable, LarsRecommendedOnlyAtLargeScaleInV06) {
  const auto v5 = core::suite_v05();
  const auto v6 = core::suite_v06();
  // 256 chips * 64 per-chip = 16384 >= LARS threshold 8192.
  EXPECT_EQ(recommend_hyperparameters(v5, BenchmarkId::kImageClassification, 256,
                                      numerics::Format::kFP32)
                .optimizer,
            "sgd_momentum");  // LARS not allowed in v0.5
  const auto rec6 = recommend_hyperparameters(v6, BenchmarkId::kImageClassification, 256,
                                              numerics::Format::kFP32);
  EXPECT_EQ(rec6.optimizer, "lars");
  EXPECT_TRUE(rec6.hyperparameters.count("lars_eta"));
  // Small scale: plain SGD even in v0.6.
  EXPECT_EQ(recommend_hyperparameters(v6, BenchmarkId::kImageClassification, 4,
                                      numerics::Format::kFP32)
                .optimizer,
            "sgd_momentum");
}

TEST(HpTable, LossScaleOnlyForNarrowExponentFormats) {
  const auto suite = core::suite_v05();
  EXPECT_EQ(recommend_hyperparameters(suite, BenchmarkId::kImageClassification, 8,
                                      numerics::Format::kFP32)
                .loss_scale,
            1.0f);
  EXPECT_EQ(recommend_hyperparameters(suite, BenchmarkId::kImageClassification, 8,
                                      numerics::Format::kBF16)
                .loss_scale,
            1.0f);
  EXPECT_GT(recommend_hyperparameters(suite, BenchmarkId::kImageClassification, 8,
                                      numerics::Format::kFP16)
                .loss_scale,
            1.0f);
  EXPECT_GT(recommend_hyperparameters(suite, BenchmarkId::kImageClassification, 8,
                                      numerics::Format::kFP8E4M3)
                .loss_scale,
            recommend_hyperparameters(suite, BenchmarkId::kImageClassification, 8,
                                      numerics::Format::kFP16)
                .loss_scale);
}

TEST(HpTable, RecommendationsStayInsideClosedDivisionWhitelist) {
  // The table must only recommend knobs a Closed submission may actually set.
  const auto v5 = core::suite_v05();
  const auto v6 = core::suite_v06();
  for (const auto& suite : {v5, v6}) {
    for (const auto& spec : suite.benchmarks) {
      for (std::int64_t chips : {1, 16, 1024}) {
        const auto rec =
            recommend_hyperparameters(suite, spec.id, chips, numerics::Format::kFP32);
        const auto rules = core::closed_rules(suite, spec.id);
        for (const auto& [name, value] : rec.hyperparameters)
          EXPECT_TRUE(rules.hyperparameter_allowed(name))
              << suite.version << " " << spec.name << " " << name;
        EXPECT_TRUE(rules.optimizer_allowed(rec.optimizer))
            << suite.version << " " << spec.name;
      }
    }
  }
}

TEST(HpTable, BadInputsThrow) {
  const auto suite = core::suite_v05();
  EXPECT_THROW(recommend_hyperparameters(suite, BenchmarkId::kImageClassification, 0,
                                         numerics::Format::kFP32),
               std::invalid_argument);
  const auto v6 = core::suite_v06();
  EXPECT_THROW(recommend_hyperparameters(v6, BenchmarkId::kRecommendation, 8,
                                         numerics::Format::kFP32),
               std::out_of_range);  // NCF not in v0.6
}

TEST(HpTable, FormatsAllBenchmarks) {
  const auto suite = core::suite_v05();
  const std::string table = format_hp_table(suite, {1, 16, 256}, numerics::Format::kFP16);
  for (const auto& spec : suite.benchmarks)
    EXPECT_NE(table.find(spec.name), std::string::npos) << spec.name;
  EXPECT_NE(table.find("fp16"), std::string::npos);
}

}  // namespace
}  // namespace mlperf::harness
