#include "optim/optimizer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>

#include "tensor/rng.h"

namespace mlperf::optim {
namespace {

using autograd::Variable;
using tensor::Tensor;

Variable make_param(float value) { return Variable(Tensor({1}, value), true); }

void set_grad(Variable& p, float g) {
  p.zero_grad();
  p.node()->grad[0] = g;
}

TEST(Schedules, ConstantLr) {
  ConstantLr s(0.1f);
  EXPECT_FLOAT_EQ(s.lr(0), 0.1f);
  EXPECT_FLOAT_EQ(s.lr(1000000), 0.1f);
}

TEST(Schedules, StepDecayStaircase) {
  StepDecayLr s(1.0f, 0.5f, 10);
  EXPECT_FLOAT_EQ(s.lr(0), 1.0f);
  EXPECT_FLOAT_EQ(s.lr(9), 1.0f);
  EXPECT_FLOAT_EQ(s.lr(10), 0.5f);
  EXPECT_FLOAT_EQ(s.lr(25), 0.25f);
  EXPECT_THROW(StepDecayLr(1.0f, 0.5f, 0), std::invalid_argument);
}

TEST(Schedules, LinearScalingPeakFollowsBatch) {
  // Goyal et al. linear scaling: peak lr proportional to batch size.
  LinearScalingWarmupLr small(0.1f, 256, 256, 5, 0.1f, 100);
  LinearScalingWarmupLr large(0.1f, 1024, 256, 5, 0.1f, 100);
  EXPECT_FLOAT_EQ(small.peak_lr(), 0.1f);
  EXPECT_FLOAT_EQ(large.peak_lr(), 0.4f);
}

TEST(Schedules, WarmupRampsLinearly) {
  LinearScalingWarmupLr s(1.0f, 32, 32, 10, 0.5f, 100);
  EXPECT_LT(s.lr(0), s.lr(5));
  EXPECT_LT(s.lr(5), s.lr(9));
  EXPECT_FLOAT_EQ(s.lr(9), 1.0f);
  EXPECT_FLOAT_EQ(s.lr(10), 1.0f);   // decay epoch 0
  EXPECT_FLOAT_EQ(s.lr(110), 0.5f);  // one decay step after warmup
}

TEST(Schedules, CosineEndsNearZero) {
  CosineLr s(2.0f, 100);
  EXPECT_FLOAT_EQ(s.lr(0), 2.0f);
  EXPECT_NEAR(s.lr(50), 1.0f, 1e-5);
  EXPECT_NEAR(s.lr(100), 0.0f, 1e-5);
  EXPECT_NEAR(s.lr(200), 0.0f, 1e-5);  // clamps past the horizon
}

TEST(SgdMomentum, PlainStepNoMomentum) {
  auto p = make_param(1.0f);
  SgdMomentum opt({p}, /*momentum=*/0.0f);
  set_grad(p, 0.5f);
  opt.step(0.1f);
  EXPECT_NEAR(p.value()[0], 1.0f - 0.05f, 1e-6);
}

TEST(SgdMomentum, TwoSemanticsIdenticalUnderConstantLr) {
  // The paper's §2.2.4 point, part 1: Eq.1 and Eq.2 agree while lr is fixed.
  auto p1 = make_param(1.0f);
  auto p2 = make_param(1.0f);
  SgdMomentum a({p1}, 0.9f, 0.0f, MomentumSemantics::kLrInsideMomentum);
  SgdMomentum b({p2}, 0.9f, 0.0f, MomentumSemantics::kLrOutsideMomentum);
  for (int i = 0; i < 20; ++i) {
    set_grad(p1, 0.3f);
    set_grad(p2, 0.3f);
    a.step(0.01f);
    b.step(0.01f);
    EXPECT_NEAR(p1.value()[0], p2.value()[0], 1e-5) << "step " << i;
  }
}

TEST(SgdMomentum, TwoSemanticsDivergeWhenLrDecays) {
  // Part 2: they differ once the schedule changes the lr mid-training,
  // because Eq.1 bakes the old lr into the momentum buffer.
  auto p1 = make_param(1.0f);
  auto p2 = make_param(1.0f);
  SgdMomentum a({p1}, 0.9f, 0.0f, MomentumSemantics::kLrInsideMomentum);
  SgdMomentum b({p2}, 0.9f, 0.0f, MomentumSemantics::kLrOutsideMomentum);
  StepDecayLr sched(0.1f, 0.1f, 5);
  for (int i = 0; i < 10; ++i) {
    set_grad(p1, 1.0f);
    set_grad(p2, 1.0f);
    a.step(sched.lr(i));
    b.step(sched.lr(i));
  }
  EXPECT_GT(std::fabs(p1.value()[0] - p2.value()[0]), 1e-3f);
}

TEST(SgdMomentum, WeightDecayPullsTowardZero) {
  auto p = make_param(10.0f);
  SgdMomentum opt({p}, 0.0f, /*weight_decay=*/0.1f);
  set_grad(p, 0.0f);
  opt.step(1.0f);
  EXPECT_NEAR(p.value()[0], 9.0f, 1e-5);
}

TEST(SgdMomentum, MomentumAccumulates) {
  auto p = make_param(0.0f);
  SgdMomentum opt({p}, 0.9f);
  set_grad(p, 1.0f);
  opt.step(1.0f);
  EXPECT_NEAR(p.value()[0], -1.0f, 1e-5);
  set_grad(p, 1.0f);
  opt.step(1.0f);
  EXPECT_NEAR(p.value()[0], -1.0f - 1.9f, 1e-5);  // v = 0.9*1 + 1
}

TEST(Adam, FirstStepIsLrSized) {
  auto p = make_param(0.0f);
  Adam opt({p});
  set_grad(p, 0.123f);
  opt.step(0.01f);
  // Bias-corrected Adam first step == lr * sign(grad) (approximately).
  EXPECT_NEAR(p.value()[0], -0.01f, 1e-4);
}

TEST(Adam, AdaptsToGradientScale) {
  // Two params with gradients of very different scale move ~equally.
  auto p1 = make_param(0.0f);
  auto p2 = make_param(0.0f);
  Adam opt({p1, p2});
  for (int i = 0; i < 10; ++i) {
    set_grad(p1, 100.0f);
    set_grad(p2, 0.01f);
    opt.step(0.01f);
  }
  EXPECT_NEAR(p1.value()[0], p2.value()[0], 2e-3);
}

TEST(Adam, ConvergesOnQuadratic) {
  auto p = make_param(5.0f);
  Adam opt({p});
  for (int i = 0; i < 800; ++i) {
    set_grad(p, 2.0f * p.value()[0]);  // d/dx x^2
    opt.step(0.05f);
  }
  EXPECT_NEAR(p.value()[0], 0.0f, 0.05f);
}

TEST(Lars, TrustRatioScalesUpdate) {
  // Large weight norm + small grad norm => trust ratio amplifies the step
  // relative to plain SGD with the same lr.
  auto p_lars = Variable(Tensor({4}, 10.0f), true);
  auto p_sgd = Variable(Tensor({4}, 10.0f), true);
  Lars lars({p_lars}, 0.0f, 0.0f, /*eta=*/0.1f);
  SgdMomentum sgd({p_sgd}, 0.0f);
  for (auto* p : {&p_lars, &p_sgd}) {
    p->zero_grad();
    for (int i = 0; i < 4; ++i) p->node()->grad[i] = 0.001f;
  }
  lars.step(0.1f);
  sgd.step(0.1f);
  const float lars_delta = std::fabs(p_lars.value()[0] - 10.0f);
  const float sgd_delta = std::fabs(p_sgd.value()[0] - 10.0f);
  EXPECT_GT(lars_delta, sgd_delta * 10.0f);
}

TEST(Lars, ZeroWeightFallsBackToPlainStep) {
  auto p = make_param(0.0f);
  Lars lars({p}, 0.0f, 0.0f, 0.001f);
  set_grad(p, 1.0f);
  lars.step(0.1f);
  EXPECT_NEAR(p.value()[0], -0.1f, 1e-6);  // trust ratio defaults to 1
}

TEST(Lars, ConvergesOnQuadratic) {
  auto p = make_param(3.0f);
  Lars lars({p}, 0.9f, 0.0f, 0.05f);
  for (int i = 0; i < 500; ++i) {
    set_grad(p, 2.0f * p.value()[0]);
    lars.step(0.5f);
  }
  EXPECT_NEAR(p.value()[0], 0.0f, 0.1f);
}

TEST(ClipGradNorm, ClipsOnlyWhenAboveMax) {
  auto p = Variable(Tensor({2}, 0.0f), true);
  p.zero_grad();
  p.node()->grad[0] = 3.0f;
  p.node()->grad[1] = 4.0f;
  const float norm = clip_grad_norm({p}, 10.0f);
  EXPECT_FLOAT_EQ(norm, 5.0f);
  EXPECT_FLOAT_EQ(p.grad()[0], 3.0f);  // unchanged
  const float norm2 = clip_grad_norm({p}, 1.0f);
  EXPECT_FLOAT_EQ(norm2, 5.0f);
  EXPECT_NEAR(std::sqrt(p.grad().l2_norm_sq()), 1.0f, 1e-5);
}

TEST(Optimizer, ZeroGradResetsAllParams) {
  auto p1 = make_param(1.0f);
  auto p2 = make_param(2.0f);
  SgdMomentum opt({p1, p2});
  set_grad(p1, 1.0f);
  set_grad(p2, 1.0f);
  opt.zero_grad();
  EXPECT_EQ(p1.grad()[0], 0.0f);
  EXPECT_EQ(p2.grad()[0], 0.0f);
}

// Property sweep: every optimizer reduces a convex loss from several starts.
class OptimizerConvergence : public ::testing::TestWithParam<int> {};

TEST_P(OptimizerConvergence, ReducesQuadraticLoss) {
  const float x0 = static_cast<float>(GetParam());
  auto p = make_param(x0);
  std::unique_ptr<Optimizer> opt;
  switch (GetParam() % 3) {
    case 0: opt = std::make_unique<SgdMomentum>(std::vector<Variable>{p}, 0.9f); break;
    case 1: opt = std::make_unique<Adam>(std::vector<Variable>{p}); break;
    default: opt = std::make_unique<Lars>(std::vector<Variable>{p}, 0.9f, 0.0f, 0.05f); break;
  }
  for (int i = 0; i < 300; ++i) {
    set_grad(p, 2.0f * p.value()[0]);
    opt->step(0.03f);
  }
  EXPECT_LT(std::fabs(p.value()[0]), std::fabs(x0) * 0.5f + 0.2f);
}

INSTANTIATE_TEST_SUITE_P(Starts, OptimizerConvergence, ::testing::Values(1, 2, 3, -4, 5, -6));

// ---- fused-vs-unfused bitwise refchecks ------------------------------------
//
// step() is a fused single-sweep kernel; step_unfused() is the retained
// per-element reference. The contract is BITWISE equality — same weights,
// same slot buffers, after multiple steps with a decaying LR (the regime
// where momentum semantics and accumulated state diverge fastest). The big
// parameter exceeds the ordered-reduction chunk (1<<16 floats) so LARS's
// fused pair-norm exercises the multi-chunk combine path.

std::vector<Variable> make_twin(tensor::Rng& rng) {
  // Recreate from an identical rng stream so both twins start bit-equal.
  std::vector<Variable> params;
  params.push_back(Variable(Tensor::randn({7}, rng), true));
  params.push_back(Variable(Tensor::randn({300, 220}, rng), true));  // > 1<<16
  params.push_back(Variable(Tensor::randn({33}, rng), true));
  return params;
}

void load_grads(std::vector<Variable>& params, tensor::Rng& rng) {
  for (auto& p : params) {
    p.zero_grad();
    const Tensor g = Tensor::randn(p.shape(), rng);
    std::copy(g.data(), g.data() + g.numel(), p.node()->grad.data());
  }
}

void expect_bitwise_equal(const Tensor& a, const Tensor& b, const std::string& what) {
  ASSERT_EQ(a.numel(), b.numel()) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<std::size_t>(a.numel()) * sizeof(float)),
            0)
      << what;
}

template <typename Opt, typename... Args>
void check_fused_matches_unfused(Args... args) {
  tensor::Rng init_a(123), init_b(123);
  std::vector<Variable> pa = make_twin(init_a);
  std::vector<Variable> pb = make_twin(init_b);
  Opt fused(pa, args...);
  Opt reference(pb, args...);
  const float lrs[] = {0.1f, 0.1f, 0.05f, 0.05f, 0.025f, 0.0125f};
  tensor::Rng grad_a(456), grad_b(456);
  for (float lr : lrs) {
    load_grads(pa, grad_a);
    load_grads(pb, grad_b);
    fused.step(lr);
    reference.step_unfused(lr);
  }
  for (std::size_t i = 0; i < pa.size(); ++i)
    expect_bitwise_equal(pa[i].value(), pb[i].value(), "param " + std::to_string(i));
  OptimizerStateDict da = fused.state_dict();
  OptimizerStateDict db = reference.state_dict();
  ASSERT_EQ(da.tensors.size(), db.tensors.size());
  for (std::size_t i = 0; i < da.tensors.size(); ++i)
    expect_bitwise_equal(*da.tensors[i].second, *db.tensors[i].second, da.tensors[i].first);
}

TEST(FusedOptimizer, SgdLrInsideMomentumMatchesReferenceBitwise) {
  check_fused_matches_unfused<SgdMomentum>(0.9f, 1e-4f,
                                           MomentumSemantics::kLrInsideMomentum);
}

TEST(FusedOptimizer, SgdLrOutsideMomentumMatchesReferenceBitwise) {
  check_fused_matches_unfused<SgdMomentum>(0.9f, 1e-4f,
                                           MomentumSemantics::kLrOutsideMomentum);
}

TEST(FusedOptimizer, AdamMatchesReferenceBitwise) {
  check_fused_matches_unfused<Adam>(0.9f, 0.999f, 1e-8f, 1e-5f);
}

TEST(FusedOptimizer, LarsMatchesReferenceBitwise) {
  check_fused_matches_unfused<Lars>(0.9f, 1e-4f, 0.001f);
}

}  // namespace
}  // namespace mlperf::optim
