// Contract tests for the packed GEMM kernel (src/tensor/gemm.cpp) and the
// per-thread scratch arena it allocates from.
//
// The load-bearing contract: the packed kernel is BITWISE identical to the
// retained scalar reference kernel (gemm_accumulate_ref). Both fold each C
// element's k-products in ascending k order with a single float accumulator,
// so tiling, packing, vectorization and row-partitioned threading change
// nothing about the rounding. The refcheck below therefore runs at a
// tolerance of 0 ULP; the ULP machinery exists so that a future kernel that
// reorders summation can widen the tolerance explicitly (and must update
// EXPERIMENTS.md in the same change) instead of silently switching the test
// to an epsilon compare.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "autograd/variable.h"
#include "nn/functional.h"
#include "nn/layers.h"
#include "parallel/parallel_for.h"
#include "tensor/gemm.h"
#include "tensor/scratch.h"
#include "tensor/tensor.h"

using namespace mlperf;
using tensor::Rng;
using tensor::Tensor;
using tensor::Trans;

namespace {

// Distance in representable floats between two values (0 == bitwise equal,
// after mapping the sign-magnitude bit patterns onto a monotone integer
// line). NaNs compare as far apart.
std::int64_t ulp_distance(float a, float b) {
  if (std::isnan(a) || std::isnan(b)) return INT64_MAX;
  std::int32_t ia, ib;
  std::memcpy(&ia, &a, sizeof(ia));
  std::memcpy(&ib, &b, sizeof(ib));
  if (ia < 0) ia = std::numeric_limits<std::int32_t>::min() - ia;
  if (ib < 0) ib = std::numeric_limits<std::int32_t>::min() - ib;
  return std::abs(static_cast<std::int64_t>(ia) - static_cast<std::int64_t>(ib));
}

std::int64_t max_ulp_distance(const std::vector<float>& a, const std::vector<float>& b) {
  EXPECT_EQ(a.size(), b.size());
  std::int64_t worst = 0;
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i)
    worst = std::max(worst, ulp_distance(a[i], b[i]));
  return worst;
}

void expect_bitwise_equal(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  ASSERT_EQ(0, std::memcmp(a.data(), b.data(),
                           static_cast<std::size_t>(a.numel()) * sizeof(float)))
      << what << ": max ULP distance " << max_ulp_distance(a.vec(), b.vec());
}

class GemmTest : public ::testing::Test {
 protected:
  void TearDown() override { parallel::set_num_threads(1); }
};

// Edge and non-tile-multiple shapes exercised throughout: degenerate rows
// and columns, empty inner dimension, and dims straddling the MR=4 / NR=8 /
// MC=64 blocking boundaries.
struct Mkn {
  std::int64_t m, k, n;
};
const Mkn kShapes[] = {
    {1, 1, 1},   {1, 7, 13},  {5, 9, 1},   {1, 0, 6},  {3, 0, 3},   {4, 8, 8},
    {17, 5, 23}, {33, 17, 9}, {65, 31, 40}, {64, 64, 8}, {66, 3, 17}, {128, 2, 5},
};

}  // namespace

TEST_F(GemmTest, PackedMatchesRefBitwise) {
  Rng rng(101);
  for (const auto& s : kShapes) {
    Tensor a = Tensor::randn({s.m, s.k}, rng);
    Tensor b = Tensor::randn({s.k, s.n}, rng);
    Tensor want({s.m, s.n});
    Tensor got({s.m, s.n});
    // Nonzero initial C: the kernel contract is accumulation, not overwrite.
    for (std::int64_t i = 0; i < want.numel(); ++i) want[i] = got[i] = 0.25f * float(i % 7) - 0.5f;
    tensor::gemm_accumulate_ref(a.data(), b.data(), want.data(), s.m, s.k, s.n);
    tensor::gemm_accumulate(a.data(), b.data(), got.data(), s.m, s.k, s.n);
    EXPECT_EQ(0, max_ulp_distance(want.vec(), got.vec()))
        << "m=" << s.m << " k=" << s.k << " n=" << s.n;
    expect_bitwise_equal(want, got, "packed vs ref");
  }
}

TEST_F(GemmTest, TransposedVariantsMatchExplicitTranspose) {
  Rng rng(102);
  for (const auto& s : kShapes) {
    Tensor a = Tensor::randn({s.m, s.k}, rng);
    Tensor b = Tensor::randn({s.k, s.n}, rng);
    Tensor at = a.transpose2d();  // stored [k, m], consumed as A via Trans::T
    Tensor bt = b.transpose2d();  // stored [n, k], consumed as B via Trans::T
    Tensor want = a.matmul(b);
    expect_bitwise_equal(want, a.matmul(b, Trans::N, Trans::N), "NN");
    expect_bitwise_equal(want, at.matmul(b, Trans::T, Trans::N), "TN");
    expect_bitwise_equal(want, a.matmul(bt, Trans::N, Trans::T), "NT");
    expect_bitwise_equal(want, at.matmul(bt, Trans::T, Trans::T), "TT");
  }
}

TEST_F(GemmTest, MatmulBitwiseIdenticalAcrossThreadCounts) {
  for (const auto& s : kShapes) {
    Rng rng(103);
    Tensor a = Tensor::randn({s.m, s.k}, rng);
    Tensor b = Tensor::randn({s.k, s.n}, rng);
    Tensor bt = b.transpose2d();
    parallel::set_num_threads(1);
    Tensor base = a.matmul(b);
    Tensor base_nt = a.matmul(bt, Trans::N, Trans::T);
    for (int threads : {2, 4, 8}) {
      parallel::set_num_threads(threads);
      expect_bitwise_equal(base, a.matmul(b), "threaded NN");
      expect_bitwise_equal(base_nt, a.matmul(bt, Trans::N, Trans::T), "threaded NT");
    }
  }
}

TEST_F(GemmTest, BmmTransVariantsAcrossThreadCounts) {
  Rng rng(104);
  Tensor a = Tensor::randn({6, 9, 5}, rng);
  Tensor b = Tensor::randn({6, 5, 11}, rng);
  // Explicitly permuted copies consumed through the transposed variants.
  Tensor at = a.permute({0, 2, 1});
  Tensor bt = b.permute({0, 2, 1});
  parallel::set_num_threads(1);
  Tensor base = a.bmm(b);
  for (int threads : {1, 4}) {
    parallel::set_num_threads(threads);
    expect_bitwise_equal(base, a.bmm(b), "bmm NN");
    expect_bitwise_equal(base, at.bmm(b, Trans::T, Trans::N), "bmm TN");
    expect_bitwise_equal(base, a.bmm(bt, Trans::N, Trans::T), "bmm NT");
    expect_bitwise_equal(base, at.bmm(bt, Trans::T, Trans::T), "bmm TT");
  }
}

TEST_F(GemmTest, KZeroLeavesCUntouched) {
  Tensor a({3, 0});
  Tensor b({0, 4});
  Tensor c = a.matmul(b);
  ASSERT_EQ(c.shape(), (tensor::Shape{3, 4}));
  for (std::int64_t i = 0; i < c.numel(); ++i) EXPECT_EQ(0.0f, c[i]);
  // Accumulate form: k == 0 must be a no-op on existing C contents.
  Tensor acc({3, 4}, 2.5f);
  tensor::gemm_accumulate(Trans::N, Trans::N, 3, 4, 0, a.data(), 0, b.data(), 4, acc.data(), 4);
  for (std::int64_t i = 0; i < acc.numel(); ++i) EXPECT_EQ(2.5f, acc[i]);
}

TEST_F(GemmTest, MatmulShapeValidation) {
  Tensor a({2, 3});
  Tensor b({4, 5});
  EXPECT_THROW(a.matmul(b), std::invalid_argument);
  EXPECT_THROW(a.matmul(b, Trans::N, Trans::T), std::invalid_argument);  // 3 vs 5
  EXPECT_NO_THROW(a.matmul(Tensor({5, 3}), Trans::N, Trans::T));  // op(B) = [3, 5]
}

// ---- autograd: transpose-free forward/backward ----------------------------

TEST_F(GemmTest, MatmulBackwardUsesNoTransposeCopies) {
  Rng rng(105);
  autograd::Variable a(Tensor::randn({7, 5}, rng), true);
  autograd::Variable b(Tensor::randn({5, 9}, rng), true);
  const std::int64_t before = tensor::transpose2d_calls();
  auto y = autograd::matmul(a, b);
  autograd::sum_all(y).backward();
  auto yt = autograd::matmul(a, autograd::Variable(Tensor::randn({9, 5}, rng), true), Trans::N,
                             Trans::T);
  autograd::sum_all(yt).backward();
  EXPECT_EQ(before, tensor::transpose2d_calls())
      << "matmul forward+backward materialized a transpose copy";
  EXPECT_GT(a.grad().l2_norm_sq(), 0.0f);
  EXPECT_GT(b.grad().l2_norm_sq(), 0.0f);
}

TEST_F(GemmTest, TransposedMatmulGradsMatchExplicitComposition) {
  Rng rng(106);
  Tensor wa = Tensor::randn({7, 5}, rng);
  Tensor wb = Tensor::randn({9, 5}, rng);  // consumed as B^T: [5, 9]
  // Reference: explicit transpose through autograd::permute.
  autograd::Variable a1(wa, true), b1(wb, true);
  auto y1 = autograd::matmul(a1, autograd::permute(b1, {1, 0}));
  autograd::sum_all(y1).backward();
  // Under test: the in-place transposed variant.
  autograd::Variable a2(wa, true), b2(wb, true);
  auto y2 = autograd::matmul(a2, b2, Trans::N, Trans::T);
  autograd::sum_all(y2).backward();
  expect_bitwise_equal(y1.value(), y2.value(), "NT forward");
  expect_bitwise_equal(a1.grad(), a2.grad(), "dA");
  // dB via the permute path is transpose-of-a-GEMM; the direct path computes
  // the same sums in the same per-element order, so still bitwise.
  expect_bitwise_equal(b1.grad(), b2.grad(), "dB");

  // And the TA case.
  Tensor wat = wa.transpose2d();  // [5, 7]
  autograd::Variable a3(wat, true), b3(wb, true);
  auto y3 = autograd::matmul(a3, b3, Trans::T, Trans::T);
  autograd::sum_all(y3).backward();
  expect_bitwise_equal(y1.value(), y3.value(), "TT forward");
  expect_bitwise_equal(b1.grad(), b3.grad(), "TT dB");
}

TEST_F(GemmTest, Conv2dBackwardUsesNoTransposeCopies) {
  Rng rng(107);
  autograd::Variable x(Tensor::randn({2, 3, 6, 6}, rng), true);
  autograd::Variable w(Tensor::randn({4, 3, 3, 3}, rng), true);
  const std::int64_t before = tensor::transpose2d_calls();
  auto y = nn::conv2d(x, w, autograd::Variable(), 1, 1);
  autograd::sum_all(y).backward();
  EXPECT_EQ(before, tensor::transpose2d_calls())
      << "conv2d forward+backward materialized a transpose copy";
  EXPECT_GT(x.grad().l2_norm_sq(), 0.0f);
  EXPECT_GT(w.grad().l2_norm_sq(), 0.0f);
}

TEST_F(GemmTest, LinearForwardUsesNoTransposeCopies) {
  Rng rng(108);
  nn::Linear fc(12, 8, rng);
  autograd::Variable x(Tensor::randn({5, 12}, rng), true);
  const std::int64_t before = tensor::transpose2d_calls();
  auto y = fc.forward(x);
  autograd::sum_all(y).backward();
  EXPECT_EQ(before, tensor::transpose2d_calls());
}

// ---- scratch arena --------------------------------------------------------

TEST(ScratchArenaTest, FrameRestoresWatermarkAndReusesMemory) {
  tensor::ScratchArena arena;
  float* first = nullptr;
  {
    tensor::ScratchArena::Frame f(arena);
    first = f.alloc(1000);
    ASSERT_NE(nullptr, first);
    first[0] = 1.0f;
    first[999] = 2.0f;
  }
  const std::int64_t allocs = arena.chunk_allocations();
  {
    tensor::ScratchArena::Frame f(arena);
    float* again = f.alloc(1000);
    EXPECT_EQ(first, again) << "frame pop must rewind the bump pointer";
  }
  EXPECT_EQ(allocs, arena.chunk_allocations()) << "reuse must not allocate";
}

TEST(ScratchArenaTest, AllocationsAreAligned) {
  tensor::ScratchArena arena;
  tensor::ScratchArena::Frame f(arena);
  for (std::int64_t n : {1, 3, 16, 17, 100}) {
    float* p = f.alloc(n);
    EXPECT_EQ(0u, reinterpret_cast<std::uintptr_t>(p) % 64)
        << "n=" << n << " not 64-byte aligned";
    p[0] = 0.0f;
    p[n - 1] = 0.0f;
  }
}

TEST(ScratchArenaTest, NestedFramesAndGrowthKeepPointersValid) {
  tensor::ScratchArena arena;
  tensor::ScratchArena::Frame outer(arena);
  float* a = outer.alloc(100);
  a[0] = 42.0f;
  {
    tensor::ScratchArena::Frame inner(arena);
    // Force growth past the first chunk: outer pointer must stay valid.
    float* big = inner.alloc(1 << 20);
    big[0] = 1.0f;
    big[(1 << 20) - 1] = 2.0f;
    EXPECT_EQ(42.0f, a[0]);
  }
  float* b = outer.alloc(10);
  EXPECT_EQ(42.0f, a[0]);
  EXPECT_NE(a, b);
}

TEST(ScratchArenaTest, ZeroSizedAllocIsSafe) {
  tensor::ScratchArena arena;
  tensor::ScratchArena::Frame f(arena);
  EXPECT_NO_THROW(f.alloc(0));
}

// Steady state: after one warmup step, further training steps perform zero
// scratch chunk allocations — the arena has seen its peak working set.
TEST_F(GemmTest, SteadyStateTrainingStepAllocatesNoScratch) {
  Rng rng(109);
  Tensor x = Tensor::randn({2, 4, 8, 8}, rng);
  Tensor w = Tensor::randn({4, 4, 3, 3}, rng);
  auto step = [&] {
    autograd::Variable vw(w, true);
    auto y = nn::conv2d(autograd::Variable(x), vw, autograd::Variable(), 1, 1);
    auto z = autograd::matmul(autograd::reshape(y, {2, -1}),
                              autograd::Variable(Tensor::randn({4 * 8 * 8, 3}, rng), true));
    autograd::sum_all(z).backward();
  };
  step();  // warmup grows the arena to the peak working set
  const std::int64_t warm = tensor::ScratchArena::tls().chunk_allocations();
  for (int i = 0; i < 3; ++i) step();
  EXPECT_EQ(warm, tensor::ScratchArena::tls().chunk_allocations())
      << "steady-state step allocated scratch chunks";
}

// ---- gemm_f64acc: the conv dW kernel ---------------------------------------
//
// Same 0-ULP discipline as the float kernel, with a different numerics
// contract: OVERWRITE semantics, float products folded into one DOUBLE
// accumulator per element in ascending k — exactly the naive dot-product loop
// conv2d's weight gradient used before the packed kernel (retained verbatim
// as gemm_f64acc_ref).

TEST_F(GemmTest, F64AccMatchesNaiveDoubleLoopBitwise) {
  Rng rng(110);
  for (const auto& s : kShapes) {
    Tensor a = Tensor::randn({std::max<std::int64_t>(s.m, 1), std::max<std::int64_t>(s.k, 1)},
                             rng);
    Tensor b = Tensor::randn({std::max<std::int64_t>(s.k, 1), std::max<std::int64_t>(s.n, 1)},
                             rng);
    // The literal naive loop (independent of gemm_f64acc_ref): float product,
    // double ascending-k fold, float store.
    Tensor want = Tensor::uninitialized({s.m, s.n});
    for (std::int64_t i = 0; i < s.m; ++i)
      for (std::int64_t j = 0; j < s.n; ++j) {
        double acc = 0.0;
        for (std::int64_t p = 0; p < s.k; ++p) acc += a[i * s.k + p] * b[p * s.n + j];
        want[i * s.n + j] = static_cast<float>(acc);
      }
    // Stale garbage in C pins the overwrite contract.
    Tensor got({s.m, s.n}, -7.75f);
    tensor::gemm_f64acc(Trans::N, Trans::N, s.m, s.n, s.k, a.data(), s.k, b.data(), s.n,
                        got.data(), s.n);
    expect_bitwise_equal(want, got, "f64acc vs naive double loop");
    Tensor ref({s.m, s.n}, 3.5f);
    tensor::gemm_f64acc_ref(Trans::N, Trans::N, s.m, s.n, s.k, a.data(), s.k, b.data(), s.n,
                            ref.data(), s.n);
    expect_bitwise_equal(want, ref, "f64acc_ref vs naive double loop");
  }
}

TEST_F(GemmTest, F64AccTransVariantsMatchRefAcrossThreads) {
  for (const auto& s : kShapes) {
    Rng rng(111);
    Tensor a = Tensor::randn({std::max<std::int64_t>(s.m, 1), std::max<std::int64_t>(s.k, 1)},
                             rng);
    Tensor b = Tensor::randn({std::max<std::int64_t>(s.k, 1), std::max<std::int64_t>(s.n, 1)},
                             rng);
    Tensor at = a.transpose2d();
    Tensor bt = b.transpose2d();
    Tensor want({s.m, s.n}, 9.0f);
    tensor::gemm_f64acc_ref(Trans::N, Trans::N, s.m, s.n, s.k, a.data(), s.k, b.data(), s.n,
                            want.data(), s.n);
    for (int threads : {1, 2, 4, 8}) {
      parallel::set_num_threads(threads);
      struct Case {
        Trans ta, tb;
        const Tensor *pa, *pb;
        std::int64_t lda, ldb;
        const char* name;
      } cases[] = {
          {Trans::N, Trans::N, &a, &b, s.k, s.n, "f64acc NN"},
          {Trans::T, Trans::N, &at, &b, std::max<std::int64_t>(s.m, 1), s.n, "f64acc TN"},
          {Trans::N, Trans::T, &a, &bt, s.k, std::max<std::int64_t>(s.k, 1), "f64acc NT"},
          {Trans::T, Trans::T, &at, &bt, std::max<std::int64_t>(s.m, 1),
           std::max<std::int64_t>(s.k, 1), "f64acc TT"},
      };
      for (const Case& c : cases) {
        Tensor got({s.m, s.n}, -1.25f);
        tensor::gemm_f64acc(c.ta, c.tb, s.m, s.n, s.k, c.pa->data(), c.lda, c.pb->data(),
                            c.ldb, got.data(), s.n);
        expect_bitwise_equal(want, got, c.name);
      }
    }
  }
}

TEST_F(GemmTest, F64AccKZeroZeroesC) {
  // The naive loop's empty fold writes float(0.0) to every element; both the
  // packed kernel and the reference must do the same, not no-op like the
  // accumulate kernel.
  Tensor a({3, 1});
  Tensor b({1, 4});
  Tensor got({3, 4}, 2.5f);
  tensor::gemm_f64acc(Trans::N, Trans::N, 3, 4, 0, a.data(), 1, b.data(), 4, got.data(), 4);
  for (std::int64_t i = 0; i < got.numel(); ++i) EXPECT_EQ(0.0f, got[i]);
  Tensor ref({3, 4}, -2.5f);
  tensor::gemm_f64acc_ref(Trans::N, Trans::N, 3, 4, 0, a.data(), 1, b.data(), 4, ref.data(), 4);
  for (std::int64_t i = 0; i < ref.numel(); ++i) EXPECT_EQ(0.0f, ref[i]);
}

TEST_F(GemmTest, ConvDwOrientationMatchesOldInlineLoop) {
  // The exact call conv2d's backward makes: dW_s = g_s [O, Q] x cols^T [Q, R]
  // via (Trans::N, Trans::T), refchecked against the pre-PR5 inline loop.
  Rng rng(112);
  const std::int64_t O = 5, R = 27, Q = 33;  // deliberately off every tile size
  Tensor g = Tensor::randn({O, Q}, rng);
  Tensor cols = Tensor::randn({R, Q}, rng);
  Tensor want = Tensor::uninitialized({O, R});
  for (std::int64_t o = 0; o < O; ++o)
    for (std::int64_t r = 0; r < R; ++r) {
      const float* grow = g.data() + o * Q;
      const float* crow = cols.data() + r * Q;
      double acc = 0.0;
      for (std::int64_t q = 0; q < Q; ++q) acc += grow[q] * crow[q];
      want[o * R + r] = static_cast<float>(acc);
    }
  for (int threads : {1, 2, 4, 8}) {
    parallel::set_num_threads(threads);
    Tensor got({O, R}, 4.0f);
    tensor::gemm_f64acc(Trans::N, Trans::T, O, R, Q, g.data(), Q, cols.data(), Q, got.data(),
                        R);
    expect_bitwise_equal(want, got, "conv dW orientation");
  }
}
