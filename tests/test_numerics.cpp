#include "numerics/format.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace mlperf::numerics {
namespace {

using tensor::Tensor;

TEST(Fp16, ExactSmallValuesRoundTrip) {
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, -3.25f, 1024.0f, 65504.0f}) {
    EXPECT_EQ(half_bits_to_float(float_to_half_bits(v)), v) << v;
  }
}

TEST(Fp16, KnownBitPatterns) {
  EXPECT_EQ(float_to_half_bits(1.0f), 0x3C00);
  EXPECT_EQ(float_to_half_bits(-2.0f), 0xC000);
  EXPECT_EQ(float_to_half_bits(0.0f), 0x0000);
  EXPECT_EQ(float_to_half_bits(65504.0f), 0x7BFF);  // max normal half
}

TEST(Fp16, OverflowSaturatesToInf) {
  EXPECT_EQ(float_to_half_bits(1e6f), 0x7C00);
  EXPECT_TRUE(std::isinf(half_bits_to_float(0x7C00)));
}

TEST(Fp16, SubnormalsRepresented) {
  const float tiny = 1e-5f;  // below half's min normal (6.1e-5)
  const float rt = half_bits_to_float(float_to_half_bits(tiny));
  EXPECT_GT(rt, 0.0f);
  EXPECT_NEAR(rt, tiny, 1e-6f);
}

TEST(Fp16, UnderflowToZero) {
  EXPECT_EQ(half_bits_to_float(float_to_half_bits(1e-12f)), 0.0f);
}

TEST(Fp16, NanPreserved) {
  EXPECT_TRUE(std::isnan(half_bits_to_float(float_to_half_bits(std::nanf("")))));
}

TEST(Fp16, RoundingIsNearest) {
  // 1 + 2^-11 rounds to 1 (half has 10 mantissa bits => ulp(1) = 2^-10).
  const float v = 1.0f + std::ldexp(1.0f, -12);
  EXPECT_EQ(half_bits_to_float(float_to_half_bits(v)), 1.0f);
  // 1 + 2^-10 is exactly representable.
  const float v2 = 1.0f + std::ldexp(1.0f, -10);
  EXPECT_EQ(half_bits_to_float(float_to_half_bits(v2)), v2);
}

TEST(Bf16, ExactValuesRoundTrip) {
  for (float v : {0.0f, 1.0f, -2.0f, 0.5f, 128.0f}) {
    EXPECT_EQ(bf16_bits_to_float(float_to_bf16_bits(v)), v) << v;
  }
}

TEST(Bf16, PreservesFloatRange) {
  // bf16 has float32's exponent: huge values survive (coarsely).
  const float v = 1e30f;
  const float rt = bf16_bits_to_float(float_to_bf16_bits(v));
  EXPECT_NEAR(rt / v, 1.0f, 0.01f);
}

TEST(Bf16, CoarserThanFp16Near1) {
  // bf16 ulp(1) = 2^-7; 1 + 2^-9 rounds back to 1.
  const float v = 1.0f + std::ldexp(1.0f, -9);
  EXPECT_EQ(bf16_bits_to_float(float_to_bf16_bits(v)), 1.0f);
}

TEST(Fp8E4M3, BasicValues) {
  EXPECT_EQ(fp8_e4m3_bits_to_float(float_to_fp8_e4m3_bits(1.0f)), 1.0f);
  EXPECT_EQ(fp8_e4m3_bits_to_float(float_to_fp8_e4m3_bits(-2.0f)), -2.0f);
  EXPECT_EQ(fp8_e4m3_bits_to_float(float_to_fp8_e4m3_bits(0.0f)), 0.0f);
  EXPECT_EQ(fp8_e4m3_bits_to_float(float_to_fp8_e4m3_bits(448.0f)), 448.0f);
}

TEST(Fp8E4M3, SaturatesAtMax) {
  EXPECT_EQ(fp8_e4m3_bits_to_float(float_to_fp8_e4m3_bits(1e9f)), 448.0f);
  EXPECT_EQ(fp8_e4m3_bits_to_float(float_to_fp8_e4m3_bits(-1e9f)), -448.0f);
}

TEST(Fp8E4M3, VeryCoarseNear1) {
  // ulp(1) in e4m3 = 1/8.
  const float v = 1.05f;
  const float rt = fp8_e4m3_bits_to_float(float_to_fp8_e4m3_bits(v));
  EXPECT_NEAR(rt, 1.0f, 0.0626f);
}

TEST(Fp8E4M3, RelativeErrorBounded) {
  for (float v = 0.02f; v < 400.0f; v *= 1.37f) {
    const float rt = fp8_e4m3_bits_to_float(float_to_fp8_e4m3_bits(v));
    EXPECT_NEAR(rt / v, 1.0f, 0.07f) << v;  // 3 mantissa bits => <= ~6.25%
  }
}

TEST(QuantizeValue, Fp32IsIdentity) {
  EXPECT_EQ(quantize_value(0.123456789f, Format::kFP32), 0.123456789f);
}

TEST(QuantizeTensor, TernaryProducesThreeLevels) {
  tensor::Rng rng(1);
  Tensor t = Tensor::randn({100}, rng);
  Tensor q = quantize_tensor(t, Format::kTernary);
  float pos = 0.0f;
  for (std::int64_t i = 0; i < q.numel(); ++i)
    if (q[i] > 0.0f) pos = q[i];  // the (single) positive level
  ASSERT_GT(pos, 0.0f);
  bool has_zero = false, has_neg = false;
  for (std::int64_t i = 0; i < q.numel(); ++i) {
    if (q[i] == 0.0f) {
      has_zero = true;
    } else if (q[i] > 0.0f) {
      EXPECT_EQ(q[i], pos);  // single positive level
    } else {
      has_neg = true;
      EXPECT_EQ(q[i], -pos);
    }
  }
  EXPECT_TRUE(has_zero && has_neg);
}

TEST(QuantizeTensor, TernaryPreservesSign) {
  Tensor t({4}, {1.0f, -1.0f, 0.01f, -0.01f});
  Tensor q = quantize_tensor(t, Format::kTernary);
  EXPECT_GT(q[0], 0.0f);
  EXPECT_LT(q[1], 0.0f);
  EXPECT_EQ(q[2], 0.0f);  // below delta
  EXPECT_EQ(q[3], 0.0f);
}

TEST(QuantizeTensor, ErrorOrderingMatchesPrecision) {
  // The Figure-1 premise: quantization error grows fp32 < bf16-ish formats
  // < fp8 < ternary on generic weights.
  tensor::Rng rng(2);
  Tensor t = Tensor::randn({512}, rng, 0.0f, 0.2f);
  auto err = [&](Format f) {
    Tensor q = quantize_tensor(t, f);
    double e = 0.0;
    for (std::int64_t i = 0; i < t.numel(); ++i)
      e += std::fabs(static_cast<double>(q[i]) - t[i]);
    return e;
  };
  const double e_fp32 = err(Format::kFP32);
  const double e_fp16 = err(Format::kFP16);
  const double e_fp8 = err(Format::kFP8E4M3);
  const double e_ternary = err(Format::kTernary);
  EXPECT_EQ(e_fp32, 0.0);
  EXPECT_LT(e_fp16, e_fp8);
  EXPECT_LT(e_fp8, e_ternary);
}

TEST(QuantizeTensor, ToStringNames) {
  EXPECT_EQ(to_string(Format::kFP32), "fp32");
  EXPECT_EQ(to_string(Format::kFP16), "fp16");
  EXPECT_EQ(to_string(Format::kBF16), "bf16");
  EXPECT_EQ(to_string(Format::kFP8E4M3), "fp8_e4m3");
  EXPECT_EQ(to_string(Format::kTernary), "ternary");
}

// Property: round-trip through each format is idempotent (quantizing a
// quantized tensor changes nothing).
class IdempotenceTest : public ::testing::TestWithParam<Format> {};

TEST_P(IdempotenceTest, QuantizeTwiceEqualsOnce) {
  tensor::Rng rng(3);
  Tensor t = Tensor::randn({256}, rng);
  Tensor q1 = quantize_tensor(t, GetParam());
  Tensor q2 = quantize_tensor(q1, GetParam());
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(q1[i], q2[i]);
}

INSTANTIATE_TEST_SUITE_P(Formats, IdempotenceTest,
                         ::testing::Values(Format::kFP32, Format::kFP16, Format::kBF16,
                                           Format::kFP8E4M3));

}  // namespace
}  // namespace mlperf::numerics
