#include "tensor/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace mlperf::tensor {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng r(4);
  for (int i = 0; i < 1000; ++i) {
    const float u = r.uniform(-2.0f, 5.0f);
    EXPECT_GE(u, -2.0f);
    EXPECT_LT(u, 5.0f);
  }
}

TEST(Rng, UniformMeanApproximatelyHalf) {
  Rng r(5);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, RandintBounds) {
  Rng r(6);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.randint(17), 17u);
  EXPECT_THROW(r.randint(0), std::invalid_argument);
}

TEST(Rng, RandintCoversAllValues) {
  Rng r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(r.randint(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NormalMomentsApproximate) {
  Rng r(8);
  const int n = 20000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(Rng, NormalScaleShift) {
  Rng r(9);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += r.normal(5.0, 0.1);
  EXPECT_NEAR(sum / n, 5.0, 0.01);
}

TEST(Rng, PermutationIsValid) {
  Rng r(10);
  const auto p = r.permutation(50);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Rng, PermutationShufflesSomething) {
  Rng r(11);
  const auto p = r.permutation(100);
  std::size_t fixed = 0;
  for (std::size_t i = 0; i < p.size(); ++i)
    if (p[i] == i) ++fixed;
  EXPECT_LT(fixed, 20u);
}

TEST(Rng, ShuffleKeepsMultiset) {
  Rng r(12);
  std::vector<int> v = {1, 1, 2, 3, 5, 8, 13};
  std::vector<int> orig = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  std::sort(orig.begin(), orig.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, SplitGivesIndependentStream) {
  Rng parent(13);
  Rng child = parent.split();
  // The child must not replicate the parent's subsequent stream.
  Rng parent2(13);
  (void)parent2.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (child.next_u64() == parent.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(14), b(14);
  Rng ca = a.split(), cb = b.split();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

// The §2.2.3 protocol hinges on this: same seed => identical run trajectory.
TEST(Rng, FullDeterminismAcrossOperationMix) {
  auto run = [](std::uint64_t seed) {
    Rng r(seed);
    double acc = 0.0;
    for (int i = 0; i < 100; ++i) {
      acc += r.uniform();
      acc += r.normal();
      acc += static_cast<double>(r.randint(1000));
    }
    return acc;
  };
  EXPECT_EQ(run(77), run(77));
  EXPECT_NE(run(77), run(78));
}

}  // namespace
}  // namespace mlperf::tensor
