#include <gtest/gtest.h>

#include <cmath>

#include "core/aggregate.h"
#include "core/benchmark_spec.h"
#include "core/category.h"
#include "core/division.h"
#include "core/mlog.h"
#include "core/review.h"
#include "core/scale.h"
#include "core/submission.h"
#include "core/timer.h"

namespace mlperf::core {
namespace {

// ---- mlog -------------------------------------------------------------------

TEST(MlLog, SerializeParseRoundTrip) {
  MlLog log;
  log.log(1.5, keys::kRunStart, true);
  log.log(2.0, keys::kEvalAccuracy, 0.75, {{"epoch", "3"}});
  log.log(3.0, keys::kSubmissionOrg, std::string("acme \"labs\""));
  MlLog parsed = MlLog::parse(log.serialize());
  ASSERT_EQ(parsed.events().size(), 3u);
  EXPECT_EQ(parsed.events()[0].key, keys::kRunStart);
  EXPECT_TRUE(parsed.events()[0].as_bool());
  EXPECT_DOUBLE_EQ(parsed.events()[1].as_number(), 0.75);
  EXPECT_EQ(parsed.events()[1].meta.at("epoch"), "3");
  EXPECT_EQ(parsed.events()[2].as_string(), "acme \"labs\"");
  EXPECT_DOUBLE_EQ(parsed.events()[1].time_ms, 2.0);
}

TEST(MlLog, FindVariants) {
  MlLog log;
  log.log(1.0, "k", 1.0);
  log.log(2.0, "k", 2.0);
  log.log(3.0, "other", 0.0);
  EXPECT_DOUBLE_EQ(log.find("k")->as_number(), 1.0);
  EXPECT_DOUBLE_EQ(log.find_last("k")->as_number(), 2.0);
  EXPECT_EQ(log.find_all("k").size(), 2u);
  EXPECT_EQ(log.find("missing"), nullptr);
}

TEST(MlLog, WrongTypeAccessThrows) {
  MlLog log;
  log.log(0.0, "k", std::string("str"));
  EXPECT_THROW(log.find("k")->as_number(), std::logic_error);
  EXPECT_THROW(log.find("k")->as_bool(), std::logic_error);
}

TEST(MlLog, EscapingHandlesNewlinesAndBackslashes) {
  MlLog log;
  log.log(0.0, "k", std::string("a\nb\\c\td"));
  MlLog parsed = MlLog::parse(log.serialize());
  EXPECT_EQ(parsed.events()[0].as_string(), "a\nb\\c\td");
}

TEST(MlLog, FileRoundTrip) {
  MlLog log;
  log.log(1.0, keys::kRunStart, true);
  log.log(2.5, keys::kEvalAccuracy, 0.5, {{"epoch", "1"}});
  const std::string path = ::testing::TempDir() + "mlog_roundtrip.jsonl";
  log.write_file(path);
  const MlLog back = MlLog::read_file(path);
  ASSERT_EQ(back.events().size(), 2u);
  EXPECT_DOUBLE_EQ(back.events()[1].as_number(), 0.5);
  EXPECT_THROW(MlLog::read_file("/nonexistent/dir/x.jsonl"), std::runtime_error);
}

// ---- timer ------------------------------------------------------------------

TEST(Timer, BasicTimedRun) {
  ManualClock clock;
  MlLog log;
  TrainingTimer timer(clock, log, 1000.0);
  timer.start_run();
  clock.advance_ms(500.0);
  timer.stop_run();
  EXPECT_DOUBLE_EQ(timer.time_to_train_ms(), 500.0);
}

TEST(Timer, InitAndReformatExcluded) {
  ManualClock clock;
  MlLog log;
  TrainingTimer timer(clock, log, 1000.0);
  {
    auto r = timer.untimed_init_region();
    clock.advance_ms(10000.0);  // cluster diagnostics etc.
  }
  {
    auto r = timer.reformat_region();
    clock.advance_ms(5000.0);
  }
  timer.start_run();
  clock.advance_ms(300.0);
  timer.stop_run();
  EXPECT_DOUBLE_EQ(timer.time_to_train_ms(), 300.0);
  EXPECT_DOUBLE_EQ(timer.unexcluded_time_ms(), 15300.0);
}

TEST(Timer, ModelCreationExcludedUpToCap) {
  ManualClock clock;
  MlLog log;
  TrainingTimer timer(clock, log, /*cap=*/1000.0);
  {
    auto r = timer.model_creation_region();
    clock.advance_ms(900.0);  // under the cap: fully excluded
  }
  timer.start_run();
  clock.advance_ms(100.0);
  timer.stop_run();
  EXPECT_DOUBLE_EQ(timer.time_to_train_ms(), 100.0);
}

TEST(Timer, ModelCreationExcessCharged) {
  // The paper's 20-minute rule: only the cap is excluded; the excess counts,
  // discouraging impractically expensive compilation.
  ManualClock clock;
  MlLog log;
  TrainingTimer timer(clock, log, 1000.0);
  {
    auto r = timer.model_creation_region();
    clock.advance_ms(2500.0);
  }
  timer.start_run();
  clock.advance_ms(100.0);
  timer.stop_run();
  EXPECT_DOUBLE_EQ(timer.time_to_train_ms(), 100.0 + 1500.0);
}

TEST(Timer, MultipleModelCreationRegionsAccumulate) {
  ManualClock clock;
  MlLog log;
  TrainingTimer timer(clock, log, 1000.0);
  for (int i = 0; i < 3; ++i) {
    auto r = timer.model_creation_region();
    clock.advance_ms(600.0);
  }
  timer.start_run();
  timer.stop_run();
  EXPECT_DOUBLE_EQ(timer.time_to_train_ms(), 800.0);  // 1800 total - 1000 cap
}

TEST(Timer, RegionAfterStartThrows) {
  ManualClock clock;
  MlLog log;
  TrainingTimer timer(clock, log, 1000.0);
  timer.start_run();
  EXPECT_THROW(timer.untimed_init_region(), std::logic_error);
}

TEST(Timer, DoubleStartOrStopThrows) {
  ManualClock clock;
  MlLog log;
  TrainingTimer timer(clock, log, 1000.0);
  EXPECT_THROW(timer.stop_run(), std::logic_error);
  timer.start_run();
  EXPECT_THROW(timer.start_run(), std::logic_error);
  timer.stop_run();
  EXPECT_THROW(timer.stop_run(), std::logic_error);
  EXPECT_NO_THROW(timer.time_to_train_ms());
}

TEST(Timer, RegionsCannotNest) {
  ManualClock clock;
  MlLog log;
  TrainingTimer timer(clock, log, 1000.0);
  auto outer = timer.untimed_init_region();
  EXPECT_THROW(timer.reformat_region(), std::logic_error);
}

TEST(Timer, StartRunWithOpenRegionThrows) {
  ManualClock clock;
  MlLog log;
  TrainingTimer timer(clock, log, 1000.0);
  auto region = timer.reformat_region();
  EXPECT_THROW(timer.start_run(), std::logic_error);
}

TEST(Timer, EventsAreLogged) {
  ManualClock clock;
  MlLog log;
  TrainingTimer timer(clock, log, 1000.0);
  {
    auto r = timer.reformat_region();
  }
  timer.start_run();
  timer.stop_run();
  EXPECT_NE(log.find(keys::kReformatStart), nullptr);
  EXPECT_NE(log.find(keys::kReformatStop), nullptr);
  EXPECT_NE(log.find(keys::kRunStart), nullptr);
  EXPECT_NE(log.find(keys::kRunStop), nullptr);
}

// ---- aggregation (§3.2.2) ----------------------------------------------------

TEST(Aggregate, OlympicMeanDropsExtremes) {
  const std::vector<double> runs = {100.0, 1.0, 10.0, 12.0, 14.0};
  // drop 1.0 and 100.0 -> mean(10, 12, 14) = 12.
  EXPECT_DOUBLE_EQ(olympic_mean(runs, AggregationPolicy::vision()), 12.0);
}

TEST(Aggregate, VisionRequiresFiveRuns) {
  EXPECT_THROW(olympic_mean({1.0, 2.0, 3.0, 4.0}, AggregationPolicy::vision()),
               std::invalid_argument);
}

TEST(Aggregate, OtherRequiresTenRuns) {
  std::vector<double> nine(9, 1.0);
  EXPECT_THROW(olympic_mean(nine, AggregationPolicy::other()), std::invalid_argument);
  std::vector<double> ten(10, 1.0);
  EXPECT_DOUBLE_EQ(olympic_mean(ten, AggregationPolicy::other()), 1.0);
}

TEST(Aggregate, OlympicMeanRobustToOneOutlier) {
  std::vector<double> runs = {10.0, 10.0, 10.0, 10.0, 1000.0};
  EXPECT_DOUBLE_EQ(olympic_mean(runs, AggregationPolicy::vision()), 10.0);
  // Plain mean would be 208.
  EXPECT_GT(mean(runs), 200.0);
}

TEST(Aggregate, StatsHelpers) {
  EXPECT_DOUBLE_EQ(mean({2.0, 4.0}), 3.0);
  EXPECT_NEAR(stddev({2.0, 4.0}), std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
  EXPECT_THROW(mean({}), std::invalid_argument);
}

TEST(Aggregate, FractionWithinTolerance) {
  const std::vector<double> xs = {100, 101, 99, 104, 96, 130};
  EXPECT_NEAR(fraction_within(xs, 0.05), 5.0 / 6.0, 1e-12);
  EXPECT_NEAR(fraction_within(xs, 0.5), 1.0, 1e-12);
}

TEST(Aggregate, AggregateRunsSummary) {
  const std::vector<double> runs = {10, 11, 12, 13, 14};
  AggregatedResult r = aggregate_runs(runs, AggregationPolicy::vision());
  EXPECT_DOUBLE_EQ(r.score_ms, 12.0);
  EXPECT_EQ(r.runs_used, 3);
  EXPECT_DOUBLE_EQ(r.raw_mean_ms, 12.0);
}

// ---- benchmark suite (Table 1) -------------------------------------------------

TEST(Suite, V05HasSevenBenchmarksMatchingTable1) {
  const SuiteVersion s = suite_v05();
  EXPECT_EQ(s.version, "v0.5");
  ASSERT_EQ(s.benchmarks.size(), 7u);
  EXPECT_FALSE(s.lars_allowed);

  const auto& resnet = find_spec(s, BenchmarkId::kImageClassification);
  EXPECT_EQ(resnet.dataset, "ImageNet");
  EXPECT_EQ(resnet.model, "ResNet-50 v1.5");
  EXPECT_DOUBLE_EQ(resnet.paper_quality.target, 0.749);
  EXPECT_EQ(resnet.aggregation.required_runs, 5);  // vision

  const auto& ssd = find_spec(s, BenchmarkId::kObjectDetectionLight);
  EXPECT_DOUBLE_EQ(ssd.paper_quality.target, 0.212);

  const auto& mask = find_spec(s, BenchmarkId::kObjectDetectionHeavy);
  EXPECT_DOUBLE_EQ(mask.paper_quality.target, 0.377);
  ASSERT_TRUE(mask.paper_quality_secondary.has_value());
  EXPECT_DOUBLE_EQ(mask.paper_quality_secondary->target, 0.339);

  const auto& gnmt = find_spec(s, BenchmarkId::kTranslationRecurrent);
  EXPECT_DOUBLE_EQ(gnmt.paper_quality.target, 21.8);
  EXPECT_EQ(gnmt.aggregation.required_runs, 10);  // non-vision

  const auto& tfm = find_spec(s, BenchmarkId::kTranslationNonRecurrent);
  EXPECT_DOUBLE_EQ(tfm.paper_quality.target, 25.0);

  const auto& ncf = find_spec(s, BenchmarkId::kRecommendation);
  EXPECT_DOUBLE_EQ(ncf.paper_quality.target, 0.635);
  EXPECT_EQ(ncf.dataset, "MovieLens-20M");

  const auto& minigo = find_spec(s, BenchmarkId::kReinforcementLearning);
  EXPECT_DOUBLE_EQ(minigo.paper_quality.target, 0.40);
}

TEST(Suite, V06RaisesTargetsAndAllowsLars) {
  const SuiteVersion s6 = suite_v06();
  EXPECT_TRUE(s6.lars_allowed);
  EXPECT_DOUBLE_EQ(find_spec(s6, BenchmarkId::kImageClassification).paper_quality.target,
                   0.759);
  EXPECT_DOUBLE_EQ(find_spec(s6, BenchmarkId::kTranslationRecurrent).paper_quality.target,
                   24.0);
  // NCF dropped in v0.6.
  EXPECT_THROW(find_spec(s6, BenchmarkId::kRecommendation), std::out_of_range);
}

TEST(Suite, QualityMetricDirection) {
  QualityMetric higher{"acc", 0.5, true};
  EXPECT_TRUE(higher.reached(0.5));
  EXPECT_FALSE(higher.reached(0.49));
  QualityMetric lower{"loss", 0.5, false};
  EXPECT_TRUE(lower.reached(0.4));
  EXPECT_FALSE(lower.reached(0.6));
}

// ---- divisions --------------------------------------------------------------

TEST(Division, ClosedRulesAlwaysAllowBatchSize) {
  for (const auto& spec : suite_v05().benchmarks) {
    const auto rules = closed_rules(suite_v05(), spec.id);
    EXPECT_TRUE(rules.hyperparameter_allowed("global_batch_size")) << spec.name;
    EXPECT_TRUE(rules.hyperparameter_allowed("learning_rate")) << spec.name;
  }
}

TEST(Division, LarsOnlyAllowedInV06ForResNet) {
  const auto r5 = closed_rules(suite_v05(), BenchmarkId::kImageClassification);
  EXPECT_FALSE(r5.optimizer_allowed("lars"));
  const auto r6 = closed_rules(suite_v06(), BenchmarkId::kImageClassification);
  EXPECT_TRUE(r6.optimizer_allowed("lars"));
  EXPECT_TRUE(r6.hyperparameter_allowed("lars_eta"));
}

TEST(Division, UnlistedHyperparameterRejected) {
  const auto rules = closed_rules(suite_v05(), BenchmarkId::kImageClassification);
  EXPECT_FALSE(rules.hyperparameter_allowed("dropout_rate"));
  EXPECT_FALSE(rules.hyperparameter_allowed("model_depth"));
}

TEST(Division, ToStringValues) {
  EXPECT_EQ(to_string(Division::kClosed), "closed");
  EXPECT_EQ(to_string(Division::kOpen), "open");
  EXPECT_EQ(to_string(HpValue{std::int64_t{42}}), "42");
  EXPECT_EQ(to_string(HpValue{std::string("adam")}), "adam");
}

// ---- categories ----------------------------------------------------------------

TEST(Category, AvailableCriteria) {
  AvailabilityEvidence e;
  EXPECT_FALSE(e.meets_available_criteria());
  e.hardware_rentable_or_purchasable = true;
  e.software_versioned = true;
  e.software_supported = true;
  EXPECT_TRUE(e.meets_available_criteria());
}

TEST(Category, PreviewDeadlineIsLaterOf60DaysOrNextCycle) {
  PreviewDeadline d{100, 140};
  EXPECT_EQ(d.deadline_day(), 160);  // 100+60 > 140
  PreviewDeadline d2{100, 200};
  EXPECT_EQ(d2.deadline_day(), 200);
  EXPECT_TRUE(d2.is_met(199));
  EXPECT_FALSE(d2.is_met(201));
}

// ---- scale ---------------------------------------------------------------------

TEST(Scale, CloudScaleFromComponents) {
  SystemDescription sys;
  sys.num_nodes = 2;
  sys.processors_per_node = 4;
  sys.host_memory_gb = 100.0;
  sys.accelerators_per_node = 8;
  sys.accelerator_model = "accel-x";
  CloudScaleModel model;
  model.accelerator_weights = {{"accel-x", 10.0}};
  // 8 cpus * 1 + 200 GB * 0.05 + 16 accel * 10.
  EXPECT_DOUBLE_EQ(model.scale(sys), 8.0 + 10.0 + 160.0);
}

TEST(Scale, ChipsPreferAccelerators) {
  SystemDescription sys;
  sys.num_nodes = 4;
  sys.processors_per_node = 2;
  sys.accelerators_per_node = 8;
  EXPECT_EQ(sys.total_chips(), 32);
  sys.accelerators_per_node = 0;
  EXPECT_EQ(sys.total_chips(), 8);
}

// ---- submission scoring ---------------------------------------------------------

RunResult good_run(double ttt_ms) {
  RunResult r;
  r.time_to_train_ms = ttt_ms;
  r.final_quality = 0.99;
  r.quality_reached = true;
  return r;
}

Submission make_submission(std::size_t n_runs) {
  Submission sub;
  sub.organization = "acme";
  sub.system.system_name = "box";
  sub.system.num_nodes = 1;
  sub.system.accelerators_per_node = 16;
  BenchmarkEntry entry;
  entry.benchmark = BenchmarkId::kImageClassification;
  for (std::size_t i = 0; i < n_runs; ++i)
    entry.runs.push_back(good_run(1000.0 + 10.0 * static_cast<double>(i)));
  sub.entries.push_back(std::move(entry));
  return sub;
}

TEST(Submission, ScoreComputesOlympicMean) {
  const Submission sub = make_submission(5);
  const ResultsReport report = score_submission(sub, suite_v05(), CloudScaleModel{});
  ASSERT_EQ(report.entries.size(), 1u);
  EXPECT_DOUBLE_EQ(report.entries[0].result.score_ms, 1020.0);
  EXPECT_EQ(report.entries[0].chips, 16);
}

TEST(Submission, TooFewRunsRejected) {
  const Submission sub = make_submission(3);
  EXPECT_THROW(score_submission(sub, suite_v05(), CloudScaleModel{}), std::invalid_argument);
}

TEST(Submission, FailedQualityRunRejected) {
  Submission sub = make_submission(5);
  sub.entries[0].runs[2].quality_reached = false;
  EXPECT_THROW(score_submission(sub, suite_v05(), CloudScaleModel{}), std::invalid_argument);
}

TEST(Submission, ReportHasNoSummaryScoreAndFormats) {
  const Submission sub = make_submission(5);
  const ResultsReport report = score_submission(sub, suite_v05(), CloudScaleModel{});
  const std::string text = format_report(report);
  EXPECT_NE(text.find("image_classification"), std::string::npos);
  EXPECT_NE(text.find("acme"), std::string::npos);
  // §4.2.4: no aggregate across benchmarks.
  EXPECT_EQ(text.find("summary"), std::string::npos);
  EXPECT_EQ(text.find("overall"), std::string::npos);
}

TEST(Submission, CloudScaleOnlyForCloudSystems) {
  Submission sub = make_submission(5);
  sub.system_type = SystemType::kCloud;
  sub.system.host_memory_gb = 10.0;
  const ResultsReport r = score_submission(sub, suite_v05(), CloudScaleModel{});
  EXPECT_GT(r.entries[0].cloud_scale, 0.0);
  sub.system_type = SystemType::kOnPremise;
  const ResultsReport r2 = score_submission(sub, suite_v05(), CloudScaleModel{});
  EXPECT_DOUBLE_EQ(r2.entries[0].cloud_scale, 0.0);
}

// ---- review / compliance ---------------------------------------------------------

MlLog compliant_log(double seed, double quality = 0.95) {
  ManualClock clock;
  MlLog log;
  TrainingTimer timer(clock, log, 1000.0);
  log.log(clock.now_ms(), keys::kSeed, seed);
  log.log(clock.now_ms(), keys::kGlobalBatchSize, 32.0);
  {
    auto r = timer.reformat_region();
    log.log(clock.now_ms(), keys::kDataTouch, std::string("reformat"));
    clock.advance_ms(50.0);
  }
  {
    auto r = timer.model_creation_region();
    clock.advance_ms(10.0);
  }
  timer.start_run();
  clock.advance_ms(100.0);
  log.log(clock.now_ms(), keys::kDataTouch, std::string("train"));
  log.log(clock.now_ms(), keys::kEvalAccuracy, quality);
  timer.stop_run();
  return log;
}

BenchmarkEntry compliant_entry(std::int64_t runs = 5) {
  BenchmarkEntry e;
  e.benchmark = BenchmarkId::kImageClassification;
  e.optimizer_name = "sgd_momentum";
  e.model_signature = "ResNet-50 v1.5";
  e.augmentation_signature = "random_crop|horizontal_flip|color_jitter";
  e.hyperparameters["global_batch_size"] = std::int64_t{32};
  e.hyperparameters["learning_rate"] = 0.1;
  for (std::int64_t i = 0; i < runs; ++i) {
    RunResult r;
    r.log = compliant_log(static_cast<double>(i + 1));
    r.quality_reached = true;
    r.time_to_train_ms = 100.0;
    e.runs.push_back(std::move(r));
  }
  return e;
}

TEST(Review, CompliantEntryPasses) {
  const auto report =
      review_entry(compliant_entry(), suite_v05(), Division::kClosed, 1000.0);
  EXPECT_TRUE(report.compliant()) << report.to_string();
}

TEST(Review, TooFewRunsFlagged) {
  const auto report =
      review_entry(compliant_entry(3), suite_v05(), Division::kClosed, 1000.0);
  EXPECT_FALSE(report.compliant());
}

TEST(Review, DuplicateSeedFlagged) {
  auto entry = compliant_entry();
  entry.runs[1].log = compliant_log(1.0);  // same seed as run 0
  const auto report = review_entry(entry, suite_v05(), Division::kClosed, 1000.0);
  EXPECT_FALSE(report.compliant());
  bool found = false;
  for (const auto& i : report.issues)
    if (i.code == "duplicate_seed") found = true;
  EXPECT_TRUE(found);
}

TEST(Review, DataTouchedBeforeRunStartFlagged) {
  auto entry = compliant_entry();
  // Forge a log where data is touched before run_start outside reformat.
  ManualClock clock;
  MlLog log;
  TrainingTimer timer(clock, log, 1000.0);
  log.log(clock.now_ms(), keys::kSeed, 99.0);
  log.log(clock.now_ms(), keys::kGlobalBatchSize, 32.0);
  clock.advance_ms(5.0);
  log.log(clock.now_ms(), keys::kDataTouch, std::string("train"));  // violation
  clock.advance_ms(5.0);
  timer.start_run();
  log.log(clock.now_ms(), keys::kEvalAccuracy, 0.95);
  timer.stop_run();
  entry.runs[0].log = log;
  const auto report = review_entry(entry, suite_v05(), Division::kClosed, 1000.0);
  EXPECT_FALSE(report.compliant());
  bool found = false;
  for (const auto& i : report.issues)
    if (i.code == "data_touched_untimed") found = true;
  EXPECT_TRUE(found);
}

TEST(Review, QualityMissFlagged) {
  auto entry = compliant_entry();
  entry.runs[0].log = compliant_log(42.0, /*quality=*/0.10);  // below mini target
  const auto report = review_entry(entry, suite_v05(), Division::kClosed, 1000.0);
  EXPECT_FALSE(report.compliant());
}

TEST(Review, DisallowedHyperparameterFlaggedInClosedOnly) {
  auto entry = compliant_entry();
  entry.hyperparameters["secret_sauce"] = 3.0;
  EXPECT_FALSE(review_entry(entry, suite_v05(), Division::kClosed, 1000.0).compliant());
  // Open division allows it.
  EXPECT_TRUE(review_entry(entry, suite_v05(), Division::kOpen, 1000.0).compliant());
}

TEST(Review, WrongOptimizerFlagged) {
  auto entry = compliant_entry();
  entry.optimizer_name = "lars";  // not allowed in v0.5
  EXPECT_FALSE(review_entry(entry, suite_v05(), Division::kClosed, 1000.0).compliant());
  // ...but fine under v0.6 rules.
  auto entry6 = compliant_entry();
  entry6.optimizer_name = "lars";
  EXPECT_TRUE(review_entry(entry6, suite_v06(), Division::kClosed, 1000.0).compliant());
}

TEST(Review, AugmentationOrderMattersForEquivalence) {
  auto entry = compliant_entry();
  entry.augmentation_signature = "horizontal_flip|random_crop|color_jitter";
  const auto report = review_entry(entry, suite_v05(), Division::kClosed, 1000.0);
  EXPECT_FALSE(report.compliant());
}

TEST(Review, ModelCreationOverCapIsWarningNotError) {
  auto entry = compliant_entry();
  ManualClock clock;
  MlLog log;
  TrainingTimer timer(clock, log, 1e9);  // permissive timer; checker uses its own cap
  log.log(clock.now_ms(), keys::kSeed, 7.0);
  log.log(clock.now_ms(), keys::kGlobalBatchSize, 32.0);
  {
    auto r = timer.model_creation_region();
    clock.advance_ms(5000.0);
  }
  timer.start_run();
  log.log(clock.now_ms(), keys::kEvalAccuracy, 0.95);
  timer.stop_run();
  entry.runs[0].log = log;
  const auto report = review_entry(entry, suite_v05(), Division::kClosed, 1000.0);
  EXPECT_TRUE(report.compliant()) << report.to_string();
  bool warned = false;
  for (const auto& i : report.issues)
    if (i.code == "model_creation_over_cap") warned = true;
  EXPECT_TRUE(warned);
}

TEST(Review, MissingRunStopFlagged) {
  auto entry = compliant_entry();
  ManualClock clock;
  MlLog log;
  TrainingTimer timer(clock, log, 1000.0);
  log.log(clock.now_ms(), keys::kSeed, 50.0);
  log.log(clock.now_ms(), keys::kGlobalBatchSize, 32.0);
  timer.start_run();
  log.log(clock.now_ms(), keys::kEvalAccuracy, 0.95);
  // run_stop never logged
  entry.runs[0].log = log;
  const auto report = review_entry(entry, suite_v05(), Division::kClosed, 1000.0);
  EXPECT_FALSE(report.compliant());
  bool found = false;
  for (const auto& i : report.issues)
    if (i.code == "run_stop_count") found = true;
  EXPECT_TRUE(found);
}

TEST(Review, MissingEvalFlagged) {
  auto entry = compliant_entry();
  ManualClock clock;
  MlLog log;
  TrainingTimer timer(clock, log, 1000.0);
  log.log(clock.now_ms(), keys::kSeed, 51.0);
  log.log(clock.now_ms(), keys::kGlobalBatchSize, 32.0);
  timer.start_run();
  timer.stop_run();
  entry.runs[0].log = log;
  const auto report = review_entry(entry, suite_v05(), Division::kClosed, 1000.0);
  EXPECT_FALSE(report.compliant());
  bool found = false;
  for (const auto& i : report.issues)
    if (i.code == "no_eval") found = true;
  EXPECT_TRUE(found);
}

TEST(Review, HyperparameterBorrowing) {
  auto target = compliant_entry();
  target.hyperparameters.erase("learning_rate");
  auto source = compliant_entry();
  source.hyperparameters["learning_rate"] = 0.25;
  source.hyperparameters["illegal_knob"] = 1.0;  // must not be borrowed
  const auto rules = closed_rules(suite_v05(), BenchmarkId::kImageClassification);
  const std::int64_t borrowed = borrow_hyperparameters(target, source, rules);
  EXPECT_EQ(borrowed, 1);
  EXPECT_DOUBLE_EQ(std::get<double>(target.hyperparameters.at("learning_rate")), 0.25);
  EXPECT_EQ(target.hyperparameters.count("illegal_knob"), 0u);
  // Existing values are not overwritten.
  auto target2 = compliant_entry();
  EXPECT_EQ(borrow_hyperparameters(target2, source, rules), 0);
}

TEST(Review, SubmissionLevelReviewAggregates) {
  Submission sub;
  sub.division = Division::kClosed;
  sub.entries.push_back(compliant_entry());
  sub.entries.push_back(compliant_entry(2));  // bad: too few runs
  const auto report = review_submission(sub, suite_v05(), 1000.0);
  EXPECT_FALSE(report.compliant());
}

}  // namespace
}  // namespace mlperf::core
