// Tests for the parallel execution layer (src/parallel): pool lifecycle,
// the deterministic parallel_for/parallel_reduce contracts, and — the hard
// requirement — bitwise-identical kernel outputs at any thread count.
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "data/dataset.h"
#include "data/loader.h"
#include "nn/functional.h"
#include "tensor/tensor.h"

namespace mlperf::parallel {
namespace {

using tensor::Rng;
using tensor::Tensor;

/// Every test leaves the process back in single-threaded mode so the rest of
/// the suite (and test-order shuffling) sees the default configuration.
class ParallelTest : public ::testing::Test {
 protected:
  void TearDown() override { set_num_threads(1); }
};

TEST_F(ParallelTest, PoolRunsEnqueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    EXPECT_EQ(pool.num_workers(), 3);
    for (int i = 0; i < 64; ++i)
      pool.enqueue([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }  // destructor drains the queue before joining
  EXPECT_EQ(ran.load(), 64);
}

TEST_F(ParallelTest, ZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0);
  bool ran = false;
  pool.enqueue([&ran] { ran = true; });
  EXPECT_TRUE(ran);  // no workers -> enqueue executes on the caller
}

TEST_F(ParallelTest, OnWorkerThreadFlag) {
  EXPECT_FALSE(ThreadPool::on_worker_thread());
  std::atomic<bool> on_worker{false};
  std::atomic<bool> done{false};
  ThreadPool pool(1);
  pool.enqueue([&] {
    on_worker.store(ThreadPool::on_worker_thread());
    done.store(true);
  });
  while (!done.load()) {}
  EXPECT_TRUE(on_worker.load());
  EXPECT_FALSE(ThreadPool::on_worker_thread());
}

TEST_F(ParallelTest, SetNumThreadsControlsGlobalPool) {
  EXPECT_EQ(num_threads(), 1);
  EXPECT_EQ(global_pool(), nullptr);
  set_num_threads(4);
  EXPECT_EQ(num_threads(), 4);
  ASSERT_NE(global_pool(), nullptr);
  EXPECT_EQ(global_pool()->num_workers(), 4);  // caller blocks; pool holds all n
  set_num_threads(1);
  EXPECT_EQ(global_pool(), nullptr);
  EXPECT_THROW(set_num_threads(0), std::invalid_argument);
}

TEST_F(ParallelTest, ParallelForCoversRangeExactlyOnce) {
  for (std::int64_t threads : {1, 2, 4}) {
    set_num_threads(threads);
    for (std::int64_t range : {std::int64_t{1}, std::int64_t{7}, std::int64_t{1000}}) {
      std::vector<std::atomic<int>> hits(static_cast<std::size_t>(range));
      for (auto& h : hits) h.store(0);
      parallel_for(3, range, [&](std::int64_t begin, std::int64_t end) {
        ASSERT_LE(std::int64_t{0}, begin);
        ASSERT_LE(begin, end);
        ASSERT_LE(end, range);
        for (std::int64_t i = begin; i < end; ++i) hits[static_cast<std::size_t>(i)]++;
      });
      for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    }
  }
}

TEST_F(ParallelTest, EmptyAndNegativeRangesAreNoOps) {
  set_num_threads(4);
  bool called = false;
  parallel_for(1, 0, [&](std::int64_t, std::int64_t) { called = true; });
  parallel_for(1, -5, [&](std::int64_t, std::int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST_F(ParallelTest, SingleElementRange) {
  set_num_threads(4);
  int calls = 0;
  parallel_for(8, 1, [&](std::int64_t begin, std::int64_t end) {
    ++calls;
    EXPECT_EQ(begin, 0);
    EXPECT_EQ(end, 1);
  });
  EXPECT_EQ(calls, 1);
}

TEST_F(ParallelTest, ExceptionPropagatesAndPoolStaysUsable) {
  set_num_threads(4);
  EXPECT_THROW(
      parallel_for(1, 100,
                   [](std::int64_t begin, std::int64_t) {
                     if (begin >= 50) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // The pool must survive a throwing body and keep serving work.
  std::atomic<std::int64_t> total{0};
  parallel_for(1, 100, [&](std::int64_t begin, std::int64_t end) {
    total.fetch_add(end - begin, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 100);
}

TEST_F(ParallelTest, NestedParallelForRunsInline) {
  set_num_threads(4);
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h.store(0);
  parallel_for(1, 8, [&](std::int64_t ob, std::int64_t oe) {
    for (std::int64_t o = ob; o < oe; ++o)
      parallel_for(1, 8, [&](std::int64_t ib, std::int64_t ie) {
        for (std::int64_t i = ib; i < ie; ++i) hits[static_cast<std::size_t>(o * 8 + i)]++;
      });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_F(ParallelTest, GrainForTargetsFixedWork) {
  EXPECT_GE(grain_for(1), 1);
  EXPECT_EQ(grain_for(1 << 20), 1);  // huge per-item work -> chunk of one
  EXPECT_GT(grain_for(1), grain_for(64));
}

TEST_F(ParallelTest, ParallelReduceIsThreadCountInvariant) {
  // Float summation is non-associative, so invariance here exercises the
  // fixed-chunk + ordered-combine contract, not luck.
  Rng rng(99);
  Tensor big = Tensor::randn({1 << 18}, rng);
  set_num_threads(1);
  const double sum1 = big.sum();
  const float l21 = big.l2_norm_sq();
  const float max1 = big.max();
  for (std::int64_t threads : {2, 4, 8}) {
    set_num_threads(threads);
    EXPECT_EQ(big.sum(), sum1);
    EXPECT_EQ(big.l2_norm_sq(), l21);
    EXPECT_EQ(big.max(), max1);
  }
}

/// Bytewise equality — EXPECT_EQ on floats would also pass for -0.0 vs 0.0
/// and miss NaN payloads; the determinism contract is *bitwise*.
void expect_bitwise_equal(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  ASSERT_EQ(0, std::memcmp(a.data(), b.data(),
                           static_cast<std::size_t>(a.numel()) * sizeof(float)));
}

TEST_F(ParallelTest, MatmulBitwiseIdenticalAcrossThreadCounts) {
  Rng rng(7);
  Tensor a = Tensor::randn({67, 45}, rng);
  Tensor b = Tensor::randn({45, 81}, rng);
  set_num_threads(1);
  const Tensor ref = a.matmul(b);
  for (std::int64_t threads : {2, 3, 4, 8}) {
    set_num_threads(threads);
    expect_bitwise_equal(a.matmul(b), ref);
  }
}

TEST_F(ParallelTest, Conv2dForwardAndBackwardBitwiseIdentical) {
  Rng rng(8);
  Tensor x = Tensor::randn({5, 4, 13, 11}, rng);
  Tensor w = Tensor::randn({6, 4, 3, 3}, rng);
  Tensor b = Tensor::randn({6}, rng);

  auto run = [&] {
    autograd::Variable vx(x, true), vw(w, true), vb(b, true);
    autograd::Variable y = nn::conv2d(vx, vw, vb, 2, 1);
    autograd::sum_all(y).backward();
    return std::tuple<Tensor, Tensor, Tensor, Tensor>{y.value(), vw.grad(), vx.grad(),
                                                      vb.grad()};
  };

  set_num_threads(1);
  const auto [y1, dw1, dx1, db1] = run();
  for (std::int64_t threads : {2, 4, 8}) {
    set_num_threads(threads);
    const auto [yn, dwn, dxn, dbn] = run();
    expect_bitwise_equal(yn, y1);
    expect_bitwise_equal(dwn, dw1);
    expect_bitwise_equal(dxn, dx1);
    expect_bitwise_equal(dbn, db1);
  }
}

TEST_F(ParallelTest, PoolingBitwiseIdenticalAcrossThreadCounts) {
  Rng rng(9);
  Tensor x = Tensor::randn({4, 6, 12, 12}, rng);
  auto run = [&] {
    autograd::Variable vx(x, true);
    autograd::Variable y = nn::max_pool2d(vx, 2, 2);
    autograd::sum_all(y).backward();
    return std::pair<Tensor, Tensor>{y.value(), vx.grad()};
  };
  set_num_threads(1);
  const auto [y1, dx1] = run();
  set_num_threads(4);
  const auto [y4, dx4] = run();
  expect_bitwise_equal(y4, y1);
  expect_bitwise_equal(dx4, dx1);
}

TEST_F(ParallelTest, PrefetchLoaderDeterministicAcrossThreadCounts) {
  data::SyntheticImageDataset::Config cfg;
  cfg.train_size = 23;
  data::SyntheticImageDataset ds(cfg);
  data::ReformattedSplits splits = data::reformat(ds);
  data::AugmentationPipeline aug = data::AugmentationPipeline::reference_image_pipeline();

  auto collect = [&](std::int64_t threads) {
    set_num_threads(threads);
    Rng rng(321);
    data::ImageLoader loader(splits.train, 5, &aug, rng, /*drop_last=*/false,
                             /*prefetch=*/true);
    std::vector<data::ImageBatch> batches;
    while (loader.has_next()) batches.push_back(loader.next());
    return batches;
  };

  const auto ref = collect(1);
  EXPECT_EQ(ref.size(), 5u);  // 23 = 5*4 + 3
  for (std::int64_t threads : {2, 4}) {
    const auto got = collect(threads);
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(got[i].labels, ref[i].labels);
      expect_bitwise_equal(got[i].images, ref[i].images);
    }
  }
}

}  // namespace
}  // namespace mlperf::parallel
