#include "data/augment.h"
#include "data/dataset.h"
#include "data/detection.h"
#include "data/loader.h"
#include "data/recsys.h"
#include "data/translation.h"

#include <gtest/gtest.h>

#include <set>

namespace mlperf::data {
namespace {

using tensor::Rng;
using tensor::Tensor;

TEST(ImageDataset, SizesAndDeterminism) {
  SyntheticImageDataset::Config cfg;
  cfg.train_size = 64;
  cfg.val_size = 32;
  SyntheticImageDataset a(cfg), b(cfg);
  EXPECT_EQ(a.train_size(), 64);
  EXPECT_EQ(a.val_size(), 32);
  // Same seed -> byte-identical records (the dataset is a fixed artifact).
  for (std::int64_t i = 0; i < 8; ++i)
    EXPECT_EQ(a.train_raw(i).pixels, b.train_raw(i).pixels);
}

TEST(ImageDataset, DifferentSeedDifferentData) {
  SyntheticImageDataset::Config cfg;
  cfg.train_size = 8;
  SyntheticImageDataset a(cfg);
  cfg.seed = 999;
  SyntheticImageDataset b(cfg);
  EXPECT_NE(a.train_raw(0).pixels, b.train_raw(0).pixels);
}

TEST(ImageDataset, ClassesBalancedRoundRobin) {
  SyntheticImageDataset::Config cfg;
  cfg.num_classes = 4;
  cfg.train_size = 40;
  SyntheticImageDataset ds(cfg);
  std::vector<int> counts(4, 0);
  for (std::int64_t i = 0; i < 40; ++i) ++counts[static_cast<std::size_t>(ds.train_raw(i).label)];
  for (int c : counts) EXPECT_EQ(c, 10);
}

TEST(ImageDataset, DecodeNormalizesToUnitRange) {
  SyntheticImageDataset ds({});
  const ImageExample ex = SyntheticImageDataset::decode(ds.train_raw(0));
  EXPECT_EQ(ex.image.ndim(), 3);
  for (std::int64_t i = 0; i < ex.image.numel(); ++i) {
    EXPECT_GE(ex.image[i], 0.0f);
    EXPECT_LE(ex.image[i], 1.0f);
  }
}

TEST(Reformat, PreservesCountAndLabels) {
  SyntheticImageDataset::Config cfg;
  cfg.train_size = 16;
  cfg.val_size = 8;
  SyntheticImageDataset ds(cfg);
  ReformattedSplits splits = reformat(ds);
  EXPECT_EQ(splits.train.size(), 16);
  EXPECT_EQ(splits.val.size(), 8);
  for (std::int64_t i = 0; i < 16; ++i)
    EXPECT_EQ(splits.train.get(i).label, ds.train_raw(i).label);
}

TEST(Augment, CropPreservesShape) {
  Rng rng(1);
  Tensor img = Tensor::rand({3, 8, 8}, rng);
  RandomCrop crop(2);
  Tensor out = crop.apply(img, rng);
  EXPECT_EQ(out.shape(), img.shape());
}

TEST(Augment, FlipIsExactMirror) {
  Rng rng(2);
  Tensor img = Tensor::rand({1, 2, 4}, rng);
  RandomHorizontalFlip flip(1.0f);  // always
  Tensor out = flip.apply(img, rng);
  for (std::int64_t i = 0; i < 2; ++i)
    for (std::int64_t j = 0; j < 4; ++j)
      EXPECT_EQ(out.at({0, i, j}), img.at({0, i, 3 - j}));
}

TEST(Augment, FlipProbabilityZeroIsIdentity) {
  Rng rng(3);
  Tensor img = Tensor::rand({1, 2, 2}, rng);
  RandomHorizontalFlip flip(0.0f);
  Tensor out = flip.apply(img, rng);
  for (std::int64_t i = 0; i < img.numel(); ++i) EXPECT_EQ(out[i], img[i]);
}

TEST(Augment, JitterStaysInRange) {
  Rng rng(4);
  Tensor img = Tensor::rand({3, 4, 4}, rng);
  ColorJitter jitter(0.5f);
  Tensor out = jitter.apply(img, rng);
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_GE(out[i], 0.0f);
    EXPECT_LE(out[i], 1.0f);
  }
}

TEST(Augment, PipelineSignatureEncodesOrder) {
  // §2.2.4: augmentation order is part of workload identity.
  AugmentationPipeline p1;
  p1.add(std::make_unique<RandomCrop>(2)).add(std::make_unique<RandomHorizontalFlip>());
  AugmentationPipeline p2;
  p2.add(std::make_unique<RandomHorizontalFlip>()).add(std::make_unique<RandomCrop>(2));
  EXPECT_NE(p1.signature(), p2.signature());
  EXPECT_EQ(p1.signature(), "random_crop|horizontal_flip");
}

TEST(Augment, ReferencePipelineSignature) {
  EXPECT_EQ(AugmentationPipeline::reference_image_pipeline().signature(),
            "random_crop|horizontal_flip|color_jitter");
}

TEST(Augment, DeterministicGivenRngState) {
  Tensor img({3, 6, 6}, 0.5f);
  AugmentationPipeline p = AugmentationPipeline::reference_image_pipeline();
  Rng r1(7), r2(7);
  Tensor a = p.apply(img, r1);
  Tensor b = p.apply(img, r2);
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Loader, EpochCoversEverySampleOnce) {
  SyntheticImageDataset::Config cfg;
  cfg.train_size = 20;
  SyntheticImageDataset ds(cfg);
  ReformattedSplits splits = reformat(ds);
  Rng rng(5);
  ImageLoader loader(splits.train, 6, nullptr, rng);
  std::int64_t total = 0;
  std::vector<int> label_counts(cfg.num_classes, 0);
  while (loader.has_next()) {
    ImageBatch b = loader.next();
    total += static_cast<std::int64_t>(b.labels.size());
    for (auto l : b.labels) ++label_counts[static_cast<std::size_t>(l)];
  }
  EXPECT_EQ(total, 20);
  EXPECT_THROW(loader.next(), std::logic_error);
}

TEST(Loader, DropLastMakesFullBatchesOnly) {
  SyntheticImageDataset::Config cfg;
  cfg.train_size = 20;
  SyntheticImageDataset ds(cfg);
  ReformattedSplits splits = reformat(ds);
  Rng rng(6);
  ImageLoader loader(splits.train, 6, nullptr, rng, /*drop_last=*/true);
  std::int64_t batches = 0;
  while (loader.has_next()) {
    EXPECT_EQ(loader.next().labels.size(), 6u);
    ++batches;
  }
  EXPECT_EQ(batches, 3);
  EXPECT_EQ(loader.batches_per_epoch(), 3);
}

TEST(Loader, RaggedLastBatchKeptWithoutDropLast) {
  // dataset_size % batch_size != 0: 10 = 4 + 4 + 2.
  SyntheticImageDataset::Config cfg;
  cfg.train_size = 10;
  SyntheticImageDataset ds(cfg);
  ReformattedSplits splits = reformat(ds);
  for (bool prefetch : {false, true}) {
    Rng rng(21);
    ImageLoader loader(splits.train, 4, nullptr, rng, /*drop_last=*/false, prefetch);
    std::vector<std::size_t> sizes;
    while (loader.has_next()) sizes.push_back(loader.next().labels.size());
    EXPECT_EQ(sizes, (std::vector<std::size_t>{4, 4, 2})) << "prefetch=" << prefetch;
    EXPECT_EQ(loader.batches_per_epoch(), 3);
    EXPECT_THROW(loader.next(), std::logic_error);
  }
}

TEST(Loader, RaggedLastBatchDroppedWithDropLast) {
  SyntheticImageDataset::Config cfg;
  cfg.train_size = 10;
  SyntheticImageDataset ds(cfg);
  ReformattedSplits splits = reformat(ds);
  for (bool prefetch : {false, true}) {
    Rng rng(22);
    ImageLoader loader(splits.train, 4, nullptr, rng, /*drop_last=*/true, prefetch);
    std::vector<std::size_t> sizes;
    while (loader.has_next()) sizes.push_back(loader.next().labels.size());
    EXPECT_EQ(sizes, (std::vector<std::size_t>{4, 4})) << "prefetch=" << prefetch;
    EXPECT_EQ(loader.batches_per_epoch(), 2);
  }
}

TEST(Loader, BatchLargerThanDataset) {
  SyntheticImageDataset::Config cfg;
  cfg.train_size = 3;
  SyntheticImageDataset ds(cfg);
  ReformattedSplits splits = reformat(ds);
  for (bool prefetch : {false, true}) {
    // drop_last off: one short batch holding the whole dataset.
    Rng rng(23);
    ImageLoader keep(splits.train, 8, nullptr, rng, /*drop_last=*/false, prefetch);
    EXPECT_EQ(keep.batches_per_epoch(), 1);
    ASSERT_TRUE(keep.has_next());
    EXPECT_EQ(keep.next().labels.size(), 3u);
    EXPECT_FALSE(keep.has_next());
    // drop_last on: no full batch exists -> the epoch is empty.
    ImageLoader drop(splits.train, 8, nullptr, rng, /*drop_last=*/true, prefetch);
    EXPECT_EQ(drop.batches_per_epoch(), 0);
    EXPECT_FALSE(drop.has_next());
    EXPECT_THROW(drop.next(), std::logic_error);
  }
}

TEST(Loader, InvalidBatchSizeThrows) {
  SyntheticImageDataset::Config cfg;
  cfg.train_size = 4;
  SyntheticImageDataset ds(cfg);
  ReformattedSplits splits = reformat(ds);
  Rng rng(24);
  EXPECT_THROW(ImageLoader(splits.train, 0, nullptr, rng), std::invalid_argument);
  EXPECT_THROW(ImageLoader(splits.train, -2, nullptr, rng), std::invalid_argument);
}

TEST(Loader, PrefetchWithoutAugmentMatchesInlineLoader) {
  // With no augmentation the prefetching loader consumes no Rng draws per
  // batch, so its batches must equal the inline loader's exactly.
  SyntheticImageDataset::Config cfg;
  cfg.train_size = 14;
  SyntheticImageDataset ds(cfg);
  ReformattedSplits splits = reformat(ds);
  Rng rng_a(31), rng_b(31);
  ImageLoader inline_loader(splits.train, 4, nullptr, rng_a);
  ImageLoader prefetch_loader(splits.train, 4, nullptr, rng_b, /*drop_last=*/false,
                              /*prefetch=*/true);
  while (inline_loader.has_next()) {
    ASSERT_TRUE(prefetch_loader.has_next());
    ImageBatch a = inline_loader.next();
    ImageBatch b = prefetch_loader.next();
    EXPECT_EQ(a.labels, b.labels);
    ASSERT_EQ(a.images.numel(), b.images.numel());
    for (std::int64_t i = 0; i < a.images.numel(); ++i) EXPECT_EQ(a.images[i], b.images[i]);
  }
  EXPECT_FALSE(prefetch_loader.has_next());
}

TEST(Loader, ReshufflesBetweenEpochs) {
  SyntheticImageDataset::Config cfg;
  cfg.train_size = 32;
  SyntheticImageDataset ds(cfg);
  ReformattedSplits splits = reformat(ds);
  Rng rng(7);
  ImageLoader loader(splits.train, 32, nullptr, rng);
  const auto e1 = loader.next().labels;
  loader.start_epoch();
  const auto e2 = loader.next().labels;
  EXPECT_NE(e1, e2);  // astronomically unlikely to coincide
}

TEST(Loader, BatchTensorShape) {
  SyntheticImageDataset::Config cfg;
  cfg.train_size = 8;
  SyntheticImageDataset ds(cfg);
  ReformattedSplits splits = reformat(ds);
  Rng rng(8);
  ImageLoader loader(splits.train, 4, nullptr, rng);
  ImageBatch b = loader.next();
  EXPECT_EQ(b.images.shape(),
            (tensor::Shape{4, cfg.channels, cfg.height, cfg.width}));
}

TEST(DetectionData, BoxesMatchMasks) {
  SyntheticDetectionDataset ds({});
  for (std::int64_t i = 0; i < 10; ++i) {
    const auto& ex = ds.train(i);
    EXPECT_GE(ex.objects.size(), 1u);
    for (const auto& o : ex.objects) {
      EXPECT_GT(o.box.area(), 0.0f);
      EXPECT_GE(o.box.x1, 0.0f);
      EXPECT_LE(o.box.x2, 1.0f);
      // The mask must live inside the (slightly padded) box.
      const std::int64_t h = o.mask.shape()[0], w = o.mask.shape()[1];
      float mask_area = 0.0f;
      for (std::int64_t r = 0; r < h; ++r)
        for (std::int64_t c = 0; c < w; ++c) {
          if (o.mask.at({r, c}) < 0.5f) continue;
          mask_area += 1.0f;
          const float y = (static_cast<float>(r) + 0.5f) / static_cast<float>(h);
          const float x = (static_cast<float>(c) + 0.5f) / static_cast<float>(w);
          EXPECT_GE(y, o.box.y1 - 0.05f);
          EXPECT_LE(y, o.box.y2 + 0.05f);
          EXPECT_GE(x, o.box.x1 - 0.05f);
          EXPECT_LE(x, o.box.x2 + 0.05f);
        }
      EXPECT_GT(mask_area, 0.0f);
    }
  }
}

TEST(DetectionData, IouSelfIsOneDisjointIsZero) {
  Box a{0.1f, 0.1f, 0.5f, 0.5f};
  Box b{0.6f, 0.6f, 0.9f, 0.9f};
  EXPECT_FLOAT_EQ(iou(a, a), 1.0f);
  EXPECT_FLOAT_EQ(iou(a, b), 0.0f);
}

TEST(DetectionData, IouPartialOverlap) {
  Box a{0.0f, 0.0f, 0.5f, 0.5f};
  Box b{0.25f, 0.0f, 0.75f, 0.5f};
  // inter = 0.25*0.5 = 0.125; union = 0.25 + 0.25 - 0.125.
  EXPECT_NEAR(iou(a, b), 0.125f / 0.375f, 1e-5);
}

TEST(TranslationData, ReferenceMappingIsBijective) {
  SyntheticTranslationDataset ds({});
  std::set<std::int64_t> images;
  for (std::int64_t word = 0; word < ds.config().vocab; ++word) {
    TokenSeq one = {kFirstWord + word, kFirstWord + word};
    const TokenSeq t = ds.translate_reference(one);
    images.insert(t[0]);
  }
  EXPECT_EQ(static_cast<std::int64_t>(images.size()), ds.config().vocab);
}

TEST(TranslationData, ReorderRules) {
  SyntheticTranslationDataset::Config cfg;
  cfg.reorder = ReorderRule::kSwapAdjacent;
  SyntheticTranslationDataset swap_ds(cfg);
  cfg.reorder = ReorderRule::kNone;
  SyntheticTranslationDataset none_ds(cfg);
  TokenSeq src = {kFirstWord, kFirstWord + 1, kFirstWord + 2, kFirstWord + 3};
  const TokenSeq plain = none_ds.translate_reference(src);
  const TokenSeq swapped = swap_ds.translate_reference(src);
  EXPECT_EQ(plain[0], swapped[1]);
  EXPECT_EQ(plain[1], swapped[0]);
  EXPECT_EQ(plain[2], swapped[3]);
}

TEST(TranslationData, TargetsAreConsistentWithReference) {
  SyntheticTranslationDataset ds({});
  for (std::int64_t i = 0; i < 20; ++i) {
    const auto& p = ds.train(i);
    EXPECT_EQ(p.target, ds.translate_reference(p.source));
  }
}

TEST(TranslationData, LengthsWithinConfig) {
  SyntheticTranslationDataset::Config cfg;
  cfg.min_len = 4;
  cfg.max_len = 7;
  SyntheticTranslationDataset ds(cfg);
  for (std::int64_t i = 0; i < ds.train_size(); ++i) {
    const auto len = static_cast<std::int64_t>(ds.train(i).source.size());
    EXPECT_GE(len, 4);
    EXPECT_LE(len, 7);
  }
}

TEST(TranslationData, PadBatchAligns) {
  std::vector<TokenSeq> seqs = {{3, 4}, {3, 4, 5, 6}, {3}};
  std::int64_t len = 0;
  const auto padded = pad_batch(seqs, &len);
  EXPECT_EQ(len, 4);
  for (const auto& s : padded) EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(padded[2][1], kPad);
}

TEST(RecsysData, HoldoutDisjointFromTraining) {
  ImplicitCfDataset ds({});
  for (const auto& inter : ds.train_interactions())
    EXPECT_NE(inter.item, ds.holdout()[static_cast<std::size_t>(inter.user)])
        << "user " << inter.user;
}

TEST(RecsysData, EvalCandidatesStartWithHoldout) {
  ImplicitCfDataset ds({});
  for (std::int64_t u = 0; u < ds.num_users(); ++u) {
    const auto& cand = ds.eval_candidates()[static_cast<std::size_t>(u)];
    EXPECT_EQ(cand[0], ds.holdout()[static_cast<std::size_t>(u)]);
    EXPECT_EQ(static_cast<std::int64_t>(cand.size()), ds.config().num_eval_negatives + 1);
    // Negatives are not positives.
    for (std::size_t i = 1; i < cand.size(); ++i) EXPECT_FALSE(ds.is_positive(u, cand[i]));
  }
}

TEST(RecsysData, NegativeSamplerAvoidsPositives) {
  ImplicitCfDataset ds({});
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const std::int64_t item = ds.sample_negative(0, rng);
    EXPECT_FALSE(ds.is_positive(0, item));
  }
}

TEST(RecsysData, PopularitySkewExists) {
  // Heavy-tailed item popularity: the top decile of items (by interaction
  // count) must hold well over its proportional share of interactions — the
  // embedding-access characteristic the paper says makes recommendation
  // datasets representative (§3.1.5).
  ImplicitCfDataset::Config cfg;
  cfg.num_users = 128;
  ImplicitCfDataset ds(cfg);
  std::vector<std::int64_t> counts(static_cast<std::size_t>(cfg.num_items), 0);
  for (const auto& i : ds.train_interactions()) ++counts[static_cast<std::size_t>(i.item)];
  std::sort(counts.rbegin(), counts.rend());
  const std::size_t decile = static_cast<std::size_t>(cfg.num_items) / 10;
  std::int64_t top = 0, total = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    total += counts[i];
    if (i < decile) top += counts[i];
  }
  const double top_share = static_cast<double>(top) / static_cast<double>(total);
  EXPECT_GT(top_share, 1.5 * 0.10);
}

TEST(RecsysData, TooFewInteractionsThrows) {
  ImplicitCfDataset::Config cfg;
  cfg.interactions_per_user = 1;
  EXPECT_THROW(ImplicitCfDataset{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace mlperf::data
