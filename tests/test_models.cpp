#include <gtest/gtest.h>

#include <set>

#include "models/gnmt.h"
#include "models/maskrcnn.h"
#include "models/minigo.h"
#include "models/ncf.h"
#include "models/resnet.h"
#include "models/ssd.h"
#include "models/transformer.h"

namespace mlperf::models {
namespace {

using autograd::Variable;
using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

// ---- ResNet ------------------------------------------------------------------

TEST(ResNet, ForwardShape) {
  Rng rng(1);
  ResNetMini::Config cfg;
  ResNetMini net(cfg, rng);
  Variable out = net.forward(Variable(Tensor({2, 3, 16, 16})));
  EXPECT_EQ(out.value().shape(), (Shape{2, 10}));
}

TEST(ResNet, V15FirstBlockHasIdentitySkipWhenShapesMatch) {
  // A block with in==out channels and stride 1 must have exactly the 6
  // conv/bn modules' parameters — no projection (the v1.5 rule).
  Rng rng(2);
  BottleneckBlock same(16, 8, 16, 1, rng);
  BottleneckBlock proj(8, 8, 16, 1, rng);
  EXPECT_LT(same.num_parameters(), proj.num_parameters());
}

TEST(ResNet, StrideTwoHalvesResolutionViaThreeByThree) {
  Rng rng(3);
  BottleneckBlock block(8, 8, 16, 2, rng);
  Variable out = block.forward(Variable(Tensor({1, 8, 8, 8})));
  EXPECT_EQ(out.value().shape(), (Shape{1, 16, 4, 4}));
}

TEST(ResNet, GradientsFlowToAllParameters) {
  Rng rng(4);
  ResNetMini::Config cfg;
  cfg.stage_channels = {4};
  cfg.stage_blocks = {1};
  cfg.stem_channels = 4;
  ResNetMini net(cfg, rng);
  Variable out = net.forward(Variable(Tensor::randn({2, 3, 8, 8}, rng)));
  autograd::sum_all(out).backward();
  for (const auto& [name, p] : net.named_parameters())
    EXPECT_GT(p.grad().l2_norm_sq(), 0.0f) << name;
}

TEST(ResNetWorkload, SmokeRunsConvergeAndAreSeedDeterministic) {
  ResNetWorkload::Config cfg;
  cfg.dataset.height = 8;
  cfg.dataset.width = 8;
  cfg.dataset.num_classes = 4;
  cfg.dataset.train_size = 64;
  cfg.dataset.val_size = 32;
  cfg.dataset.noise = 0.2f;
  cfg.model.num_classes = 4;
  cfg.model.stage_channels = {6, 8};

  auto run_once = [&](std::uint64_t seed) {
    ResNetWorkload w(cfg);
    w.prepare_data();
    w.build_model(seed);
    std::vector<double> curve;
    for (int e = 0; e < 3; ++e) {
      w.train_epoch();
      curve.push_back(w.evaluate());
    }
    return curve;
  };
  const auto a = run_once(11);
  const auto b = run_once(11);
  const auto c = run_once(12);
  EXPECT_EQ(a, b);  // §2.2.3 protocol: seed fixes the trajectory
  EXPECT_NE(a, c);
  EXPECT_GT(a.back(), 0.3);  // learning is happening (chance = 0.25)
}

TEST(ResNetWorkload, QuantizedTrainingStillLearnsButDiffers) {
  ResNetWorkload::Config cfg;
  cfg.dataset.height = 8;
  cfg.dataset.width = 8;
  cfg.dataset.num_classes = 4;
  cfg.dataset.train_size = 64;
  cfg.dataset.val_size = 32;
  cfg.model.num_classes = 4;
  cfg.model.stage_channels = {6, 8};
  cfg.weight_format = numerics::Format::kBF16;
  ResNetWorkload w(cfg);
  w.prepare_data();
  w.build_model(5);
  for (int e = 0; e < 8; ++e) w.train_epoch();
  EXPECT_GT(w.evaluate(), 0.30);  // > chance (0.25) with margin
}

// ---- SSD ---------------------------------------------------------------------

TEST(Ssd, AnchorGridCoversUnitSquare) {
  AnchorSet set = AnchorSet::make_grid(4, 4, {0.25f});
  EXPECT_EQ(set.size(), 16);
  for (const auto& a : set.anchors) {
    EXPECT_GT(a.cx(), 0.0f);
    EXPECT_LT(a.cx(), 1.0f);
    EXPECT_NEAR(a.w(), 0.25f, 1e-5);
  }
}

TEST(Ssd, BoxCodecRoundTrips) {
  BoxCodec codec;
  data::Box anchor{0.4f, 0.4f, 0.6f, 0.6f};
  data::Box gt{0.35f, 0.42f, 0.58f, 0.66f};
  const auto enc = codec.encode(gt, anchor);
  const data::Box dec = codec.decode(enc.data(), anchor);
  EXPECT_NEAR(dec.x1, gt.x1, 1e-4);
  EXPECT_NEAR(dec.y1, gt.y1, 1e-4);
  EXPECT_NEAR(dec.x2, gt.x2, 1e-4);
  EXPECT_NEAR(dec.y2, gt.y2, 1e-4);
}

TEST(Ssd, MatchingGuaranteesEveryGtGetsAnAnchor) {
  AnchorSet set = AnchorSet::make_grid(6, 6, {0.3f});
  std::vector<data::GtObject> gts(2);
  gts[0].box = data::Box{0.05f, 0.05f, 0.25f, 0.25f};
  gts[0].cls = 0;
  gts[1].box = data::Box{0.6f, 0.6f, 0.95f, 0.95f};
  gts[1].cls = 1;
  const MatchResult m = match_anchors(set, gts, 0.5f);
  std::set<std::int64_t> matched;
  for (std::int64_t g : m.gt_index)
    if (g >= 0) matched.insert(g);
  EXPECT_EQ(matched.size(), 2u);
}

TEST(Ssd, NmsSuppressesOverlaps) {
  std::vector<data::Box> boxes = {{0.1f, 0.1f, 0.5f, 0.5f},
                                  {0.12f, 0.12f, 0.52f, 0.52f},
                                  {0.7f, 0.7f, 0.9f, 0.9f}};
  std::vector<float> scores = {0.9f, 0.8f, 0.7f};
  const auto keep = nms(boxes, scores, 0.45f);
  ASSERT_EQ(keep.size(), 2u);
  EXPECT_EQ(keep[0], 0u);
  EXPECT_EQ(keep[1], 2u);
}

TEST(Ssd, NmsKeepsHighestScoreFirst) {
  std::vector<data::Box> boxes = {{0.1f, 0.1f, 0.5f, 0.5f}, {0.1f, 0.1f, 0.5f, 0.5f}};
  std::vector<float> scores = {0.3f, 0.9f};
  const auto keep = nms(boxes, scores, 0.5f);
  ASSERT_EQ(keep.size(), 1u);
  EXPECT_EQ(keep[0], 1u);
}

TEST(Ssd, ModelOutputShapesMatchAnchors) {
  Rng rng(6);
  SsdModel::Config cfg;
  SsdModel model(cfg, rng);
  SsdModel::Output out = model.forward(Variable(Tensor({2, 3, 24, 24})));
  const std::int64_t a = model.anchors().size();
  EXPECT_EQ(out.class_logits.value().shape(), (Shape{2 * a, cfg.num_classes + 1}));
  EXPECT_EQ(out.box_offsets.value().shape(), (Shape{2 * a, 4}));
}

TEST(SsdWorkload, LearnsOnSmokeConfig) {
  SsdWorkload::Config cfg;
  cfg.dataset.train_size = 48;
  cfg.dataset.val_size = 24;
  SsdWorkload w(cfg);
  w.prepare_data();
  w.build_model(3);
  const double before = w.evaluate();
  for (int e = 0; e < 4; ++e) w.train_epoch();
  const double after = w.evaluate();
  EXPECT_GT(after, before + 0.05);
}

// ---- Mask R-CNN -----------------------------------------------------------------

TEST(MaskRcnn, RoiAlignExtractsAndBackprops) {
  Rng rng(7);
  Tensor feats = Tensor::randn({1, 2, 8, 8}, rng);
  Variable vf(feats, true);
  std::vector<data::Box> rois = {{0.0f, 0.0f, 0.5f, 0.5f}, {0.25f, 0.25f, 1.0f, 1.0f}};
  Variable out = roi_align(vf, rois, 4);
  EXPECT_EQ(out.value().shape(), (Shape{2, 2, 4, 4}));
  autograd::sum_all(out).backward();
  EXPECT_GT(vf.grad().l2_norm_sq(), 0.0f);
}

TEST(MaskRcnn, RoiAlignConstantFeatureGivesConstantOutput) {
  Tensor feats({1, 1, 6, 6}, 3.25f);
  Variable out = roi_align(Variable(feats), {{0.1f, 0.2f, 0.8f, 0.9f}}, 3);
  for (std::int64_t i = 0; i < out.value().numel(); ++i)
    EXPECT_NEAR(out.value()[i], 3.25f, 1e-5);
}

TEST(MaskRcnn, RoiAlignGradcheck) {
  Rng rng(8);
  Tensor feats = Tensor::randn({1, 1, 5, 5}, rng);
  std::vector<data::Box> rois = {{0.1f, 0.1f, 0.7f, 0.8f}};
  const float eps = 1e-2f;
  Variable vf(feats, true);
  autograd::sum_all(roi_align(vf, rois, 3)).backward();
  for (std::int64_t i = 0; i < feats.numel(); i += 3) {
    Tensor fp = feats, fm = feats;
    fp[i] += eps;
    fm[i] -= eps;
    const float lp = roi_align(Variable(fp), rois, 3).value().sum();
    const float lm = roi_align(Variable(fm), rois, 3).value().sum();
    EXPECT_NEAR(vf.grad()[i], (lp - lm) / (2 * eps), 5e-2) << i;
  }
}

TEST(MaskRcnn, RpnShapesMatchAnchors) {
  Rng rng(9);
  MaskRcnnModel::Config cfg;
  MaskRcnnModel model(cfg, rng);
  Variable feats = model.backbone(Variable(Tensor({1, 3, 24, 24})));
  auto rpn = model.rpn(feats);
  EXPECT_EQ(rpn.objectness.value().numel(), model.rpn_anchors().size());
  EXPECT_EQ(rpn.deltas.value().shape(), (Shape{model.rpn_anchors().size(), 4}));
}

TEST(MaskRcnn, ProposalsAreValidBoxes) {
  Rng rng(10);
  MaskRcnnModel::Config cfg;
  MaskRcnnModel model(cfg, rng);
  Variable feats = model.backbone(Variable(Tensor::randn({1, 3, 24, 24}, rng)));
  auto rpn = model.rpn(feats);
  const auto proposals = model.decode_proposals(rpn);
  EXPECT_LE(static_cast<std::int64_t>(proposals.size()), cfg.proposals_per_image);
  for (const auto& p : proposals) {
    EXPECT_GE(p.x1, 0.0f);
    EXPECT_LE(p.x2, 1.0f);
    EXPECT_GT(p.area(), 0.0f);
  }
}

TEST(MaskRcnnWorkload, LearnsOnSmokeConfig) {
  MaskRcnnWorkload::Config cfg;
  cfg.dataset.train_size = 24;
  cfg.dataset.val_size = 12;
  MaskRcnnWorkload w(cfg);
  w.prepare_data();
  w.build_model(4);
  for (int e = 0; e < 4; ++e) w.train_epoch();
  const auto detail = w.evaluate_detail();
  EXPECT_GT(detail.box_map, 0.05);
  EXPECT_GT(detail.mask_map, 0.05);
  EXPECT_DOUBLE_EQ(w.evaluate(), std::min(detail.box_map, detail.mask_map));
}

// ---- Transformer ------------------------------------------------------------------

TEST(Transformer, TeacherForcedShapes) {
  Rng rng(11);
  TransformerModel::Config cfg;
  cfg.vocab = 20;
  TransformerModel model(cfg, rng);
  std::vector<data::TokenSeq> src = {{3, 4, 5}, {6, 7, 8}};
  std::vector<data::TokenSeq> tgt_in = {{1, 9, 10}, {1, 11, 12}};
  Variable mem = model.encode(src);
  EXPECT_EQ(mem.value().shape(), (Shape{2, 3, cfg.model_dim}));
  Variable logits = model.decode(tgt_in, mem);
  EXPECT_EQ(logits.value().shape(), (Shape{6, 20}));
}

TEST(Transformer, RaggedBatchThrows) {
  Rng rng(12);
  TransformerModel model({}, rng);
  EXPECT_THROW(model.encode({{3, 4}, {3, 4, 5}}), std::invalid_argument);
}

TEST(Transformer, GreedyDecodeStopsAtEosAndTrims) {
  Rng rng(13);
  TransformerModel model({}, rng);
  const auto out = model.greedy_translate({{3, 4, 5, 6}}, 8);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_LE(out[0].size(), 8u);
  for (auto tok : out[0]) {
    EXPECT_NE(tok, data::kEos);
    EXPECT_NE(tok, data::kBos);
    EXPECT_NE(tok, data::kPad);
  }
}

TEST(Transformer, TrainingStepReducesLoss) {
  TransformerWorkload::Config cfg;
  cfg.dataset.vocab = 12;
  cfg.dataset.min_len = 3;
  cfg.dataset.max_len = 5;
  cfg.dataset.train_size = 64;
  cfg.dataset.val_size = 16;
  TransformerWorkload w(cfg);
  w.prepare_data();
  w.build_model(6);
  const double before = w.evaluate();
  for (int e = 0; e < 12; ++e) w.train_epoch();
  EXPECT_GE(w.evaluate(), before);  // BLEU should not regress from ~0
}

// ---- GNMT ---------------------------------------------------------------------------

TEST(Gnmt, TeacherForcedShapes) {
  Rng rng(14);
  GnmtModel::Config cfg;
  cfg.vocab = 16;
  GnmtModel model(cfg, rng);
  std::vector<data::TokenSeq> src = {{3, 4, 5}, {6, 7, 8}};
  std::vector<data::TokenSeq> tgt_in = {{1, 9}, {1, 10}};
  Variable logits = model.forward_teacher(src, tgt_in);
  EXPECT_EQ(logits.value().shape(), (Shape{4, 16}));
}

TEST(Gnmt, GreedyDecodeProducesTokensInVocab) {
  Rng rng(15);
  GnmtModel::Config cfg;
  cfg.vocab = 16;
  GnmtModel model(cfg, rng);
  const auto out = model.greedy_translate({{3, 4, 5}}, 6);
  ASSERT_EQ(out.size(), 1u);
  for (auto tok : out[0]) {
    EXPECT_GE(tok, 0);
    EXPECT_LT(tok, 16);
  }
}

TEST(Gnmt, GradientsReachEncoderThroughAttention) {
  Rng rng(16);
  GnmtModel::Config cfg;
  cfg.vocab = 16;
  GnmtModel model(cfg, rng);
  std::vector<data::TokenSeq> src = {{3, 4, 5}};
  std::vector<data::TokenSeq> tgt_in = {{1, 6, 7}};
  Variable logits = model.forward_teacher(src, tgt_in);
  autograd::sum_all(logits).backward();
  for (const auto& [name, p] : model.named_parameters()) {
    if (name.rfind("encoder", 0) == 0) {
      EXPECT_GT(p.grad().l2_norm_sq(), 0.0f) << name;
    }
  }
}

// ---- NCF -----------------------------------------------------------------------------

TEST(Ncf, ScoreShape) {
  Rng rng(17);
  NeuMf::Config cfg;
  NeuMf model(cfg, rng);
  Variable s = model.forward({0, 1, 2}, {5, 6, 7});
  EXPECT_EQ(s.value().shape(), (Shape{3, 1}));
}

TEST(Ncf, MismatchedInputsThrow) {
  Rng rng(18);
  NeuMf model({}, rng);
  EXPECT_THROW(model.forward({0, 1}, {5}), std::invalid_argument);
}

TEST(NcfWorkload, SmokeConvergesAboveChance) {
  NcfWorkload::Config cfg;
  cfg.dataset.num_users = 32;
  cfg.dataset.num_items = 64;
  cfg.dataset.interactions_per_user = 10;
  cfg.dataset.num_eval_negatives = 30;
  NcfWorkload w(cfg);
  w.prepare_data();
  w.build_model(9);
  for (int e = 0; e < 10; ++e) w.train_epoch();
  // Chance HR@10 with 51 candidates ~ 0.196.
  EXPECT_GT(w.evaluate(), 0.3);
}

// ---- MiniGo -------------------------------------------------------------------------

TEST(Transformer, LabelSmoothingConfigTrains) {
  TransformerWorkload::Config cfg;
  cfg.dataset.vocab = 12;
  cfg.dataset.min_len = 3;
  cfg.dataset.max_len = 5;
  cfg.dataset.train_size = 48;
  cfg.dataset.val_size = 16;
  cfg.label_smoothing = 0.1f;
  TransformerWorkload w(cfg);
  w.prepare_data();
  w.build_model(3);
  for (int e = 0; e < 4; ++e) w.train_epoch();  // must not throw / diverge
  EXPECT_GE(w.evaluate(), 0.0);
}

TEST(MiniGo, BoardPlanesPerspective) {
  go::Board b(9);
  b.play(go::Move::at(0));  // black
  Tensor planes_white_view = board_planes(b);  // white to play
  // Plane 0 = own (white) stones: empty. Plane 1 = opponent (black): point 0.
  EXPECT_EQ(planes_white_view[0], 0.0f);
  EXPECT_EQ(planes_white_view[81], 1.0f);
  EXPECT_EQ(planes_white_view[2 * 81], 0.0f);  // colour plane: white
}

TEST(MiniGo, NetOutputShapes) {
  Rng rng(19);
  PolicyValueNet net({}, rng);
  auto out = net.forward(Variable(Tensor({2, 3, 9, 9})));
  EXPECT_EQ(out.policy_logits.value().shape(), (Shape{2, 82}));
  EXPECT_EQ(out.value.value().shape(), (Shape{2, 1}));
  EXPECT_LE(out.value.value().max(), 1.0f);
  EXPECT_GE(out.value.value().min(), -1.0f);
}

TEST(MiniGo, InferReturnsDistribution) {
  Rng rng(20);
  PolicyValueNet net({}, rng);
  go::Board b(9);
  auto [prior, value] = net.infer(b);
  EXPECT_EQ(prior.size(), 82u);
  double sum = 0.0;
  for (float p : prior) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-4);
  EXPECT_GE(value, -1.0f);
  EXPECT_LE(value, 1.0f);
}

TEST(MiniGo, MctsVisitsSumToOneAndRespectLegality) {
  Rng rng(21);
  go::Board b(9);
  b.play(go::Move::at(40));
  Mcts mcts({.simulations = 32}, heuristic_evaluator());
  const auto pi = mcts.search(b, rng);
  double sum = 0.0;
  for (float p : pi) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-4);
  EXPECT_EQ(pi[40], 0.0f);  // occupied point cannot be visited
}

TEST(MiniGo, MctsPrefersCapturingValue) {
  // Teacher MCTS with the score-based heuristic should put most visits on
  // legal moves (sanity of the search plumbing, not strength).
  Rng rng(22);
  go::Board b(5, 0.5f);
  Mcts mcts({.simulations = 64}, heuristic_evaluator());
  const auto pi = mcts.search(b, rng);
  const go::Move best = Mcts::select_move(pi, b, 0.0f, rng);
  EXPECT_TRUE(b.is_legal(best));
}

TEST(MiniGo, SelfPlayProducesConsistentExamples) {
  Rng rng(23);
  SelfPlayResult game = self_play_game({.simulations = 8}, heuristic_evaluator(), 5, 0.5f,
                                       /*max_moves=*/20, /*temperature_moves=*/4, rng);
  EXPECT_FALSE(game.examples.empty());
  EXPECT_EQ(game.examples.size(), game.record.moves.size());
  for (const auto& ex : game.examples) {
    EXPECT_EQ(ex.planes.shape(), (Shape{3, 5, 5}));
    EXPECT_TRUE(ex.z == 1.0f || ex.z == -1.0f || ex.z == 0.0f);
    double sum = 0.0;
    for (float p : ex.pi) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-4);
  }
}

TEST(MiniGo, MctsSearchIsSeedDeterministic) {
  go::Board b(9);
  Mcts mcts({.simulations = 16}, heuristic_evaluator());
  Rng r1(5), r2(5), r3(6);
  const auto pi1 = mcts.search(b, r1);
  const auto pi2 = mcts.search(b, r2);
  EXPECT_EQ(pi1, pi2);
  const auto pi3 = mcts.search(b, r3);  // different seed -> different noise
  EXPECT_NE(pi1, pi3);
}

TEST(MiniGo, MctsMoreSimulationsConcentrateVisits) {
  // With more simulations, the visit distribution's max should not decrease
  // dramatically — the search converges on preferred moves. (Weak sanity
  // property; exact values depend on the evaluator.)
  go::Board b(5, 0.5f);
  Mcts small({.simulations = 8, .dirichlet_weight = 0.0f}, heuristic_evaluator());
  Mcts big({.simulations = 128, .dirichlet_weight = 0.0f}, heuristic_evaluator());
  Rng r1(9), r2(9);
  const auto pi_small = small.search(b, r1);
  const auto pi_big = big.search(b, r2);
  auto max_of = [](const std::vector<float>& v) {
    float m = 0.0f;
    for (float x : v) m = std::max(m, x);
    return m;
  };
  EXPECT_GT(max_of(pi_big), 0.0f);
  EXPECT_GT(max_of(pi_small), 0.0f);
}

TEST(MiniGo, SelectMoveTemperatureZeroIsArgmax) {
  go::Board b(9);
  std::vector<float> visits(82, 0.0f);
  visits[40] = 0.7f;
  visits[41] = 0.3f;
  Rng rng(10);
  const go::Move m = Mcts::select_move(visits, b, 0.0f, rng);
  EXPECT_EQ(m.point, 40);
}

TEST(MiniGo, SelectMoveSamplesWithTemperature) {
  go::Board b(9);
  std::vector<float> visits(82, 0.0f);
  visits[10] = 0.5f;
  visits[20] = 0.5f;
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 50; ++i) seen.insert(Mcts::select_move(visits, b, 1.0f, rng).point);
  EXPECT_EQ(seen.size(), 2u);
}

TEST(MiniGoWorkload, MovePredictionImprovesOnSmoke) {
  MiniGoWorkload::Config cfg;
  cfg.mcts.simulations = 8;
  cfg.selfplay_games_per_epoch = 1;
  cfg.max_game_moves = 16;
  cfg.train_batches_per_epoch = 12;
  cfg.reference_games = 2;
  cfg.reference_teacher_sims = 16;
  cfg.reference_moves_per_game = 8;
  MiniGoWorkload w(cfg);
  w.prepare_data();
  EXPECT_EQ(w.reference_games().size(), 2u);
  w.build_model(10);
  const double before = w.evaluate();
  for (int e = 0; e < 6; ++e) w.train_epoch();
  EXPECT_GT(w.evaluate(), before);
}

TEST(MiniGoWorkload, FixedSeedNondeterminismFlag) {
  // With the flag off, same seed => same first evaluation after an epoch.
  MiniGoWorkload::Config cfg;
  cfg.mcts.simulations = 4;
  cfg.selfplay_games_per_epoch = 1;
  cfg.max_game_moves = 10;
  cfg.train_batches_per_epoch = 4;
  cfg.reference_games = 1;
  cfg.reference_teacher_sims = 8;
  cfg.reference_moves_per_game = 6;
  auto run = [&](bool nondet) {
    cfg.nondeterministic_scheduling = nondet;
    MiniGoWorkload w(cfg);
    w.prepare_data();
    w.build_model(77);
    w.train_epoch();
    return w.evaluate();
  };
  EXPECT_EQ(run(false), run(false));
}

}  // namespace
}  // namespace mlperf::models
