#include "go/board.h"

#include <gtest/gtest.h>

#include "tensor/rng.h"

namespace mlperf::go {
namespace {

std::int64_t pt(const Board& b, std::int64_t row, std::int64_t col) {
  return row * b.size() + col;
}

TEST(Board, StartsEmptyBlackToPlay) {
  Board b(9);
  EXPECT_EQ(b.size(), 9);
  EXPECT_EQ(b.to_play(), Stone::kBlack);
  EXPECT_FALSE(b.game_over());
  for (std::int64_t p = 0; p < 81; ++p) EXPECT_EQ(b.at(p), Stone::kEmpty);
}

TEST(Board, BadSizeThrows) {
  EXPECT_THROW(Board(1), std::invalid_argument);
  EXPECT_THROW(Board(20), std::invalid_argument);
}

TEST(Board, PlayAlternatesColors) {
  Board b(9);
  b.play(Move::at(0));
  EXPECT_EQ(b.at(0), Stone::kBlack);
  EXPECT_EQ(b.to_play(), Stone::kWhite);
  b.play(Move::at(1));
  EXPECT_EQ(b.at(1), Stone::kWhite);
}

TEST(Board, OccupiedPointIsIllegal) {
  Board b(9);
  b.play(Move::at(40));
  EXPECT_FALSE(b.is_legal(Move::at(40)));
  EXPECT_THROW(b.play(Move::at(40)), std::invalid_argument);
}

TEST(Board, TwoPassesEndGame) {
  Board b(9);
  b.play(Move::pass());
  EXPECT_FALSE(b.game_over());
  b.play(Move::pass());
  EXPECT_TRUE(b.game_over());
  EXPECT_FALSE(b.is_legal(Move::pass()));
  EXPECT_TRUE(b.legal_moves().empty());
}

TEST(Board, PassResetsOnStonePlay) {
  Board b(9);
  b.play(Move::pass());
  b.play(Move::at(0));
  b.play(Move::pass());
  EXPECT_FALSE(b.game_over());
}

TEST(Board, LibertiesCountedCorrectly) {
  Board b(9);
  b.play(Move::at(pt(b, 4, 4)));  // center: 4 liberties
  EXPECT_EQ(b.liberties(pt(b, 4, 4)), 4);
  Board c(9);
  c.play(Move::at(pt(c, 0, 0)));  // corner: 2 liberties
  EXPECT_EQ(c.liberties(pt(c, 0, 0)), 2);
}

TEST(Board, GroupLibertiesShared) {
  Board b(9);
  b.play(Move::at(pt(b, 4, 4)));  // black
  b.play(Move::at(pt(b, 0, 0)));  // white elsewhere
  b.play(Move::at(pt(b, 4, 5)));  // black: group of two
  EXPECT_EQ(b.liberties(pt(b, 4, 4)), 6);
  EXPECT_EQ(b.liberties(pt(b, 4, 5)), 6);
}

TEST(Board, SingleStoneCapture) {
  Board b(9);
  // White stone at (0,0) captured by black at (0,1) and (1,0).
  b.play(Move::at(pt(b, 4, 4)));  // B filler
  b.play(Move::at(pt(b, 0, 0)));  // W corner
  b.play(Move::at(pt(b, 0, 1)));  // B
  b.play(Move::at(pt(b, 5, 5)));  // W filler
  b.play(Move::at(pt(b, 1, 0)));  // B captures
  EXPECT_EQ(b.at(pt(b, 0, 0)), Stone::kEmpty);
}

TEST(Board, GroupCapture) {
  Board b(9);
  // Build a white group of two at (0,0) (0,1) and capture it.
  b.play(Move::at(pt(b, 4, 4)));  // B
  b.play(Move::at(pt(b, 0, 0)));  // W
  b.play(Move::at(pt(b, 1, 0)));  // B
  b.play(Move::at(pt(b, 0, 1)));  // W group of 2
  b.play(Move::at(pt(b, 1, 1)));  // B
  b.play(Move::at(pt(b, 5, 5)));  // W filler
  b.play(Move::at(pt(b, 0, 2)));  // B captures both
  EXPECT_EQ(b.at(pt(b, 0, 0)), Stone::kEmpty);
  EXPECT_EQ(b.at(pt(b, 0, 1)), Stone::kEmpty);
}

TEST(Board, SuicideIsIllegal) {
  Board b(9);
  // Black surrounds (0,0); white playing there would be suicide.
  b.play(Move::at(pt(b, 0, 1)));  // B
  b.play(Move::at(pt(b, 5, 5)));  // W
  b.play(Move::at(pt(b, 1, 0)));  // B
  EXPECT_EQ(b.to_play(), Stone::kWhite);
  EXPECT_FALSE(b.is_legal(Move::at(pt(b, 0, 0))));
}

TEST(Board, CapturingIntoZeroLibertyPointIsLegal) {
  // Black plays (0,0) — a point with no liberties of its own — but the move
  // captures the adjacent white group, so it is legal (not suicide).
  Board b(5);
  b.play(Move::at(pt(b, 0, 2)));  // B
  b.play(Move::at(pt(b, 0, 1)));  // W
  b.play(Move::at(pt(b, 2, 0)));  // B
  b.play(Move::at(pt(b, 1, 0)));  // W
  b.play(Move::at(pt(b, 2, 1)));  // B
  b.play(Move::at(pt(b, 1, 1)));  // W group {(0,1),(1,0),(1,1)}
  b.play(Move::at(pt(b, 1, 2)));  // B — white group's last liberty is (0,0)
  b.play(Move::pass());           // W
  EXPECT_EQ(b.to_play(), Stone::kBlack);
  ASSERT_TRUE(b.is_legal(Move::at(pt(b, 0, 0))));
  b.play(Move::at(pt(b, 0, 0)));
  EXPECT_EQ(b.at(pt(b, 0, 1)), Stone::kEmpty);  // white captured
  EXPECT_EQ(b.at(pt(b, 1, 0)), Stone::kEmpty);
  EXPECT_EQ(b.at(pt(b, 1, 1)), Stone::kEmpty);
  EXPECT_EQ(b.at(pt(b, 0, 0)), Stone::kBlack);
  EXPECT_GT(b.liberties(pt(b, 0, 0)), 0);
}

TEST(Board, SimpleKoForbidden) {
  Board b(9);
  // Classic ko shape around (1,1)/(1,2).
  // B: (0,1), (1,0), (2,1); W: (0,2), (1,3), (2,2); B plays (1,2), W captures
  // at (1,1), then B immediate recapture at (1,2) must be illegal (superko).
  b.play(Move::at(pt(b, 0, 1)));  // B
  b.play(Move::at(pt(b, 0, 2)));  // W
  b.play(Move::at(pt(b, 1, 0)));  // B
  b.play(Move::at(pt(b, 1, 3)));  // W
  b.play(Move::at(pt(b, 2, 1)));  // B
  b.play(Move::at(pt(b, 2, 2)));  // W
  b.play(Move::at(pt(b, 1, 2)));  // B stone in the ko
  b.play(Move::at(pt(b, 1, 1)));  // W captures the B stone (ko)
  EXPECT_EQ(b.at(pt(b, 1, 2)), Stone::kEmpty);
  EXPECT_FALSE(b.is_legal(Move::at(pt(b, 1, 2))))
      << "immediate ko recapture must violate positional superko";
}

TEST(Board, ScoringEmptyBoardIsKomi) {
  Board b(9, 5.5f);
  EXPECT_FLOAT_EQ(b.tromp_taylor_score(), -5.5f);
  EXPECT_EQ(b.winner(), Stone::kWhite);
}

TEST(Board, ScoringCountsTerritory) {
  Board b(5, 0.5f);
  // Black wall on column 2 splits the board; black owns left side if white
  // has no stones there.
  for (std::int64_t r = 0; r < 5; ++r) {
    b.play(Move::at(pt(b, r, 2)));         // B wall
    if (r < 4) b.play(Move::at(pt(b, r, 4)));  // W column
  }
  // Black: 5 stones + 10 territory (cols 0-1). White: 4 stones + col-3 region
  // touches both colors -> neutral.
  const float score = b.tromp_taylor_score();
  EXPECT_FLOAT_EQ(score, 5.0f + 10.0f - 4.0f - 0.5f);
  EXPECT_EQ(b.winner(), Stone::kBlack);
}

TEST(Board, LegalMovesShrinkAsBoardFills) {
  Board b(5);
  const auto before = b.legal_moves().size();
  b.play(Move::at(0));
  EXPECT_LT(b.legal_moves().size(), before);
}

TEST(Board, LegalMovesAlwaysIncludePass) {
  Board b(5);
  const auto moves = b.legal_moves();
  bool has_pass = false;
  for (const auto& m : moves)
    if (m.is_pass()) has_pass = true;
  EXPECT_TRUE(has_pass);
}

TEST(Board, PositionHashChangesWithStones) {
  Board b(9);
  const auto h0 = b.position_hash();
  b.play(Move::at(3));
  EXPECT_NE(b.position_hash(), h0);
}

TEST(Board, HashIdenticalForIdenticalPositions) {
  Board a(9), b(9);
  a.play(Move::at(1));
  a.play(Move::at(2));
  b.play(Move::at(1));
  b.play(Move::at(2));
  EXPECT_EQ(a.position_hash(), b.position_hash());
}

TEST(Board, CaptureRestoresHashOfEmptyPoint) {
  // After capture, position hash reflects the removed stone.
  Board b(9);
  b.play(Move::at(pt(b, 4, 4)));
  b.play(Move::at(pt(b, 0, 0)));
  b.play(Move::at(pt(b, 0, 1)));
  b.play(Move::at(pt(b, 5, 5)));
  Board reference = b;  // before capture
  b.play(Move::at(pt(b, 1, 0)));  // captures W (0,0)
  EXPECT_NE(b.position_hash(), reference.position_hash());
  EXPECT_EQ(b.at(pt(b, 0, 0)), Stone::kEmpty);
}

TEST(Board, ToStringRendersStones) {
  Board b(5);
  b.play(Move::at(0));
  const std::string s = b.to_string();
  EXPECT_EQ(s[0], 'X');
  EXPECT_NE(s.find("white to play"), std::string::npos);
}

// Property: random legal playouts terminate and never throw.
class RandomPlayout : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomPlayout, CompletesWithoutRuleViolations) {
  tensor::Rng rng(GetParam());
  Board b(5, 0.5f);
  std::int64_t moves = 0;
  while (!b.game_over() && moves < 200) {
    const auto legal = b.legal_moves();
    ASSERT_FALSE(legal.empty());
    const Move m = legal[static_cast<std::size_t>(rng.randint(legal.size()))];
    ASSERT_TRUE(b.is_legal(m));
    b.play(m);
    ++moves;
  }
  // Scoring always works on any reachable position.
  (void)b.tromp_taylor_score();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPlayout, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace mlperf::go
