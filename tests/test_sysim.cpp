#include "sysim/cluster.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mlperf::sysim {
namespace {

TEST(Interconnect, SingleChipNeedsNoAllreduce) {
  Interconnect net = cluster_interconnect();
  EXPECT_DOUBLE_EQ(net.allreduce_seconds(1e9, 1), 0.0);
}

TEST(Interconnect, CostGrowsWithParticipantsAndBytes) {
  Interconnect net = cluster_interconnect();
  EXPECT_GT(net.allreduce_seconds(1e8, 4), net.allreduce_seconds(1e8, 2));
  EXPECT_GT(net.allreduce_seconds(2e8, 4), net.allreduce_seconds(1e8, 4));
}

TEST(Interconnect, TreeBeatsRingAtHighLatencyLargeScale) {
  Interconnect ring{"r", 50.0, 100.0, Interconnect::Topology::kRing};
  Interconnect tree{"t", 50.0, 100.0, Interconnect::Topology::kTree};
  // Latency-dominated regime: ring pays O(n), tree O(log n).
  EXPECT_GT(ring.allreduce_seconds(1e6, 512), tree.allreduce_seconds(1e6, 512));
}

TEST(Convergence, EpochInflationMatchesPaperDataPoints) {
  // §2.2.2: ResNet needs ~64 epochs at 4K batch, 80+ at 16K (a ~30% increase
  // in computation). Our calibrated curve must reproduce those two points.
  const auto workloads = comparable_workloads();
  const WorkloadProfile& resnet = workloads[0];
  ASSERT_EQ(resnet.name, "image_classification");
  const double e4k = resnet.epochs_at_batch(4096);
  const double e16k = resnet.epochs_at_batch(16384);
  EXPECT_NEAR(e4k, 64.0, 3.0);
  EXPECT_GT(e16k, 80.0);
  EXPECT_NEAR(e16k / e4k, 1.3, 0.1);
}

TEST(Convergence, EpochsMonotoneInBatch) {
  for (const auto& w : comparable_workloads()) {
    double prev = 0.0;
    for (double b = 64; b <= 65536; b *= 2) {
      const double e = w.epochs_at_batch(b);
      EXPECT_GE(e, prev) << w.name;
      prev = e;
    }
  }
}

TEST(Simulate, StepTimeDecomposes) {
  ClusterConfig cfg{accelerator_2019(), 16, cluster_interconnect(), stack_v05(), 64};
  const auto workloads = comparable_workloads();
  const auto& w = workloads[0];
  const SimResult r = simulate(w, cfg);
  EXPECT_GT(r.step_seconds, 0.0);
  EXPECT_GT(r.time_to_train_s, 0.0);
  EXPECT_DOUBLE_EQ(r.global_batch, 1024.0);
  EXPECT_TRUE(r.converges);
}

TEST(Simulate, ExceedingBatchCeilingDoesNotConverge) {
  ClusterConfig cfg{accelerator_2019(), 1024, cluster_interconnect(), stack_v05(), 64};
  const auto workloads = comparable_workloads();
  const auto& w = workloads[0];  // ceiling 8192 without LARS
  EXPECT_FALSE(simulate(w, cfg).converges);
}

TEST(Simulate, LarsLiftsResnetCeiling) {
  const auto workloads_r = comparable_workloads();
  const auto& resnet = workloads_r[0];
  const WorkloadProfile v6 = apply_round(resnet, stack_v06());
  EXPECT_GT(v6.max_batch, resnet.max_batch);
  // Non-ResNet workloads are untouched by the LARS rule.
  const auto& gnmt = workloads_r[3];
  EXPECT_DOUBLE_EQ(apply_round(gnmt, stack_v06()).max_batch, gnmt.max_batch);
}

TEST(BestBatch, PicksConvergentFastest) {
  ClusterConfig cfg{accelerator_2019(), 16, cluster_interconnect(), stack_v05(), 1};
  const auto workloads = comparable_workloads();
  const auto& w = workloads[0];
  const SimResult r = best_batch(w, cfg);
  EXPECT_TRUE(r.converges);
  // Sweeping manually can't beat it.
  for (std::int64_t b = 1; b <= 512; b *= 2) {
    cfg.per_chip_batch = b;
    const SimResult probe = simulate(w, cfg);
    if (probe.converges) {
      EXPECT_GE(probe.time_to_train_s, r.time_to_train_s * 0.999);
    }
  }
}

TEST(FastestScale, MoreChipsHelpUpToConvergenceLimit) {
  ClusterConfig base{accelerator_2019(), 1, cluster_interconnect(), stack_v05(), 1};
  const auto workloads = comparable_workloads();
  const auto& w = workloads[0];
  const ScaleResult r = fastest_scale(w, base, 1 << 14);
  EXPECT_GT(r.chips, 16);       // scaling out pays for a while
  EXPECT_LT(r.chips, 1 << 14);  // but epoch inflation caps useful scale
}

TEST(Figure4Shape, V06FasterAt16ChipsDespiteRaisedTargets) {
  // The paper's headline §5 result: avg ~1.3x at fixed 16-chip scale.
  ClusterConfig v5{accelerator_2019(), 16, cluster_interconnect(), stack_v05(), 1};
  ClusterConfig v6{accelerator_2019(), 16, cluster_interconnect(), stack_v06(), 1};
  double speedup_product = 1.0;
  int n = 0;
  for (const auto& w : comparable_workloads()) {
    const SimResult r5 = best_batch(apply_round(w, stack_v05()), v5, false);
    const SimResult r6 = best_batch(apply_round(w, stack_v06()), v6, true);
    const double speedup = r5.time_to_train_s / r6.time_to_train_s;
    EXPECT_GT(speedup, 1.0) << w.name;
    speedup_product *= speedup;
    ++n;
  }
  const double geo_mean = std::pow(speedup_product, 1.0 / n);
  EXPECT_GT(geo_mean, 1.15);
  EXPECT_LT(geo_mean, 1.8);
}

TEST(Figure5Shape, BestEntryUsesManyMoreChipsInV06) {
  // §5: chips behind the fastest entry grew ~5.5x on average.
  ClusterConfig base{accelerator_2019(), 1, cluster_interconnect(), stack_v05(), 1};
  double ratio_product = 1.0;
  int n = 0;
  for (const auto& w : comparable_workloads()) {
    ClusterConfig b5 = base;
    b5.stack = stack_v05();
    ClusterConfig b6 = base;
    b6.stack = stack_v06();
    const ScaleResult s5 = fastest_scale(apply_round(w, stack_v05()), b5, 1 << 15, false);
    const ScaleResult s6 = fastest_scale(apply_round(w, stack_v06()), b6, 1 << 15, true);
    EXPECT_GE(s6.chips, s5.chips) << w.name;
    ratio_product *= static_cast<double>(s6.chips) / static_cast<double>(s5.chips);
    ++n;
  }
  const double geo_mean = std::pow(ratio_product, 1.0 / n);
  EXPECT_GT(geo_mean, 2.0);
  EXPECT_LT(geo_mean, 16.0);
}

TEST(Profiles, FiveComparableWorkloads) {
  const auto w = comparable_workloads();
  ASSERT_EQ(w.size(), 5u);  // §5: "the five benchmarks that were unmodified
                            // or modified in limited ways"
  EXPECT_EQ(w[0].name, "image_classification");
  EXPECT_EQ(w[4].name, "translation_nonrecurrent");
}

TEST(Profiles, V06StackStrictlyBetter) {
  const SoftwareStack a = stack_v05(), b = stack_v06();
  EXPECT_GT(b.compute_efficiency, a.compute_efficiency);
  EXPECT_GT(b.comm_overlap, a.comm_overlap);
  EXPECT_TRUE(b.lars_available);
  EXPECT_FALSE(a.lars_available);
}

}  // namespace
}  // namespace mlperf::sysim
