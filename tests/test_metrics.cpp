#include "metrics/metrics.h"

#include <gtest/gtest.h>

namespace mlperf::metrics {
namespace {

using data::Box;
using data::GtObject;
using tensor::Tensor;

TEST(Top1, ExactFraction) {
  EXPECT_DOUBLE_EQ(top1_accuracy({1, 2, 3, 4}, {1, 2, 0, 0}), 0.5);
  EXPECT_DOUBLE_EQ(top1_accuracy({1}, {1}), 1.0);
}

TEST(Top1, MismatchedSizesThrow) {
  EXPECT_THROW(top1_accuracy({1}, {1, 2}), std::invalid_argument);
  EXPECT_THROW(top1_accuracy({}, {}), std::invalid_argument);
}

GtObject make_gt(float x1, float y1, float x2, float y2, std::int64_t cls) {
  GtObject o;
  o.box = Box{x1, y1, x2, y2};
  o.cls = cls;
  return o;
}

Detection make_det(std::int64_t image, std::int64_t cls, float score, Box b) {
  Detection d;
  d.image_id = image;
  d.cls = cls;
  d.score = score;
  d.box = b;
  return d;
}

TEST(AveragePrecision, PerfectDetectionsScoreOne) {
  GroundTruth gt;
  gt.per_image.push_back({make_gt(0.1f, 0.1f, 0.4f, 0.4f, 0)});
  std::vector<Detection> dets = {make_det(0, 0, 0.9f, Box{0.1f, 0.1f, 0.4f, 0.4f})};
  EXPECT_DOUBLE_EQ(average_precision(dets, gt, 1, 0.5f), 1.0);
}

TEST(AveragePrecision, MissedGtReducesRecall) {
  GroundTruth gt;
  gt.per_image.push_back(
      {make_gt(0.1f, 0.1f, 0.4f, 0.4f, 0), make_gt(0.6f, 0.6f, 0.9f, 0.9f, 0)});
  std::vector<Detection> dets = {make_det(0, 0, 0.9f, Box{0.1f, 0.1f, 0.4f, 0.4f})};
  EXPECT_DOUBLE_EQ(average_precision(dets, gt, 1, 0.5f), 0.5);
}

TEST(AveragePrecision, FalsePositiveBeforeTruePositiveHurtsPrecision) {
  GroundTruth gt;
  gt.per_image.push_back({make_gt(0.1f, 0.1f, 0.4f, 0.4f, 0)});
  std::vector<Detection> dets = {
      make_det(0, 0, 0.95f, Box{0.6f, 0.6f, 0.9f, 0.9f}),  // FP, higher score
      make_det(0, 0, 0.9f, Box{0.1f, 0.1f, 0.4f, 0.4f}),   // TP
  };
  EXPECT_DOUBLE_EQ(average_precision(dets, gt, 1, 0.5f), 0.5);  // p=0.5 at r=1
}

TEST(AveragePrecision, DuplicateDetectionCountsOnce) {
  GroundTruth gt;
  gt.per_image.push_back({make_gt(0.1f, 0.1f, 0.4f, 0.4f, 0)});
  std::vector<Detection> dets = {
      make_det(0, 0, 0.9f, Box{0.1f, 0.1f, 0.4f, 0.4f}),
      make_det(0, 0, 0.8f, Box{0.1f, 0.1f, 0.4f, 0.4f}),  // duplicate -> FP
  };
  EXPECT_DOUBLE_EQ(average_precision(dets, gt, 1, 0.5f), 1.0);  // AP unaffected after TP
}

TEST(AveragePrecision, WrongClassNeverMatches) {
  GroundTruth gt;
  gt.per_image.push_back({make_gt(0.1f, 0.1f, 0.4f, 0.4f, 0)});
  std::vector<Detection> dets = {make_det(0, 1, 0.9f, Box{0.1f, 0.1f, 0.4f, 0.4f})};
  EXPECT_DOUBLE_EQ(average_precision(dets, gt, 2, 0.5f), 0.0);
}

TEST(AveragePrecision, MacroAveragesOverClasses) {
  GroundTruth gt;
  gt.per_image.push_back(
      {make_gt(0.1f, 0.1f, 0.4f, 0.4f, 0), make_gt(0.6f, 0.6f, 0.9f, 0.9f, 1)});
  std::vector<Detection> dets = {make_det(0, 0, 0.9f, Box{0.1f, 0.1f, 0.4f, 0.4f})};
  // class 0 AP = 1, class 1 AP = 0.
  EXPECT_DOUBLE_EQ(average_precision(dets, gt, 2, 0.5f), 0.5);
}

TEST(CocoMap, StricterThanSingleThreshold) {
  GroundTruth gt;
  gt.per_image.push_back({make_gt(0.10f, 0.10f, 0.40f, 0.40f, 0)});
  // Detection offset slightly: passes IoU 0.5 but fails 0.9.
  std::vector<Detection> dets = {make_det(0, 0, 0.9f, Box{0.12f, 0.12f, 0.42f, 0.42f})};
  const double ap50 = average_precision(dets, gt, 1, 0.5f);
  const double map = coco_map(dets, gt, 1);
  EXPECT_DOUBLE_EQ(ap50, 1.0);
  EXPECT_LT(map, ap50);
  EXPECT_GT(map, 0.0);
}

TEST(MaskIou, ExactAndEmpty) {
  Tensor a({2, 2}, {1, 1, 0, 0});
  Tensor b({2, 2}, {1, 0, 1, 0});
  EXPECT_DOUBLE_EQ(mask_iou(a, a), 1.0);
  EXPECT_NEAR(mask_iou(a, b), 1.0 / 3.0, 1e-9);
  Tensor z({2, 2});
  EXPECT_DOUBLE_EQ(mask_iou(z, z), 0.0);
}

TEST(Bleu, PerfectMatchIs100) {
  std::vector<data::TokenSeq> hyp = {{3, 4, 5, 6, 7}};
  EXPECT_NEAR(bleu(hyp, hyp), 100.0, 1e-6);
}

TEST(Bleu, NoOverlapIsZero) {
  std::vector<data::TokenSeq> hyp = {{3, 4, 5, 6}};
  std::vector<data::TokenSeq> ref = {{7, 8, 9, 10}};
  EXPECT_DOUBLE_EQ(bleu(hyp, ref), 0.0);
}

TEST(Bleu, BrevityPenaltyApplies) {
  // Identical prefix, hypothesis shorter than reference.
  std::vector<data::TokenSeq> hyp = {{3, 4, 5, 6}};
  std::vector<data::TokenSeq> ref = {{3, 4, 5, 6, 7, 8, 9, 10}};
  const double b = bleu(hyp, ref);
  EXPECT_GT(b, 0.0);
  EXPECT_LT(b, 50.0);  // heavily penalized
}

TEST(Bleu, OrderMatters) {
  std::vector<data::TokenSeq> ref = {{3, 4, 5, 6, 7}};
  std::vector<data::TokenSeq> good = {{3, 4, 5, 6, 7}};
  std::vector<data::TokenSeq> scrambled = {{7, 5, 3, 6, 4}};
  EXPECT_GT(bleu(good, ref), bleu(scrambled, ref));
}

TEST(Bleu, CorpusLevelAggregation) {
  std::vector<data::TokenSeq> hyp = {{3, 4, 5, 6}, {7, 8, 9, 10}};
  std::vector<data::TokenSeq> ref = {{3, 4, 5, 6}, {7, 8, 9, 10}};
  EXPECT_NEAR(bleu(hyp, ref), 100.0, 1e-6);
}

TEST(Bleu, SizeMismatchThrows) {
  EXPECT_THROW(bleu({{1}}, {{1}, {2}}), std::invalid_argument);
}

TEST(HitRate, CountsTopK) {
  // candidate 0 is the positive; rank by score.
  std::vector<std::vector<float>> scores = {
      {0.9f, 0.1f, 0.2f},   // positive ranked 1 -> hit at k=1
      {0.1f, 0.9f, 0.05f},  // positive ranked 2 -> hit at k>=2
  };
  EXPECT_DOUBLE_EQ(hit_rate_at_k(scores, 1), 0.5);
  EXPECT_DOUBLE_EQ(hit_rate_at_k(scores, 2), 1.0);
}

TEST(HitRate, EmptyThrows) {
  EXPECT_THROW(hit_rate_at_k({}, 10), std::invalid_argument);
  EXPECT_THROW(hit_rate_at_k({{}}, 10), std::invalid_argument);
}

TEST(MovePrediction, DelegatesToTop1) {
  EXPECT_DOUBLE_EQ(move_prediction_accuracy({1, 2, 3}, {1, 0, 3}), 2.0 / 3.0);
}

// AP at varying IoU thresholds is monotonically non-increasing.
class ApMonotonicity : public ::testing::TestWithParam<float> {};

TEST_P(ApMonotonicity, TighterIouNeverHelps) {
  GroundTruth gt;
  gt.per_image.push_back({make_gt(0.1f, 0.1f, 0.5f, 0.5f, 0)});
  gt.per_image.push_back({make_gt(0.2f, 0.2f, 0.6f, 0.6f, 0)});
  std::vector<Detection> dets = {
      make_det(0, 0, 0.9f, Box{0.12f, 0.12f, 0.52f, 0.52f}),
      make_det(1, 0, 0.8f, Box{0.25f, 0.25f, 0.6f, 0.6f}),
  };
  const float thr = GetParam();
  EXPECT_GE(average_precision(dets, gt, 1, thr),
            average_precision(dets, gt, 1, thr + 0.1f));
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ApMonotonicity, ::testing::Values(0.5f, 0.6f, 0.7f, 0.8f));

}  // namespace
}  // namespace mlperf::metrics
