#include "nn/layers.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "nn/functional.h"
#include "nn/serialize.h"
#include "parallel/parallel_for.h"

namespace mlperf::nn {
namespace {

using autograd::Variable;
using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

/// Naive direct convolution for cross-checking the im2col path.
Tensor conv2d_naive(const Tensor& x, const Tensor& w, std::int64_t stride, std::int64_t pad) {
  const std::int64_t n = x.shape()[0], c = x.shape()[1], h = x.shape()[2], ww = x.shape()[3];
  const std::int64_t o = w.shape()[0], kh = w.shape()[2], kw = w.shape()[3];
  const std::int64_t oh = (h + 2 * pad - kh) / stride + 1;
  const std::int64_t ow = (ww + 2 * pad - kw) / stride + 1;
  Tensor out({n, o, oh, ow});
  for (std::int64_t s = 0; s < n; ++s)
    for (std::int64_t oc = 0; oc < o; ++oc)
      for (std::int64_t i = 0; i < oh; ++i)
        for (std::int64_t j = 0; j < ow; ++j) {
          double acc = 0.0;
          for (std::int64_t ic = 0; ic < c; ++ic)
            for (std::int64_t ki = 0; ki < kh; ++ki)
              for (std::int64_t kj = 0; kj < kw; ++kj) {
                const std::int64_t ii = i * stride - pad + ki;
                const std::int64_t jj = j * stride - pad + kj;
                if (ii < 0 || ii >= h || jj < 0 || jj >= ww) continue;
                acc += x.at({s, ic, ii, jj}) * w.at({oc, ic, ki, kj});
              }
          out.at({s, oc, i, j}) = static_cast<float>(acc);
        }
  return out;
}

TEST(Conv2d, MatchesNaiveReference) {
  Rng rng(1);
  Tensor x = Tensor::randn({2, 3, 6, 6}, rng);
  Tensor w = Tensor::randn({4, 3, 3, 3}, rng);
  for (std::int64_t stride : {1, 2}) {
    for (std::int64_t pad : {0, 1}) {
      Variable out = conv2d(Variable(x), Variable(w), Variable(), stride, pad);
      Tensor ref = conv2d_naive(x, w, stride, pad);
      ASSERT_EQ(out.value().shape(), ref.shape()) << stride << " " << pad;
      for (std::int64_t i = 0; i < ref.numel(); ++i)
        EXPECT_NEAR(out.value()[i], ref[i], 1e-4);
    }
  }
}

TEST(Conv2d, BiasIsAddedPerChannel) {
  Tensor x({1, 1, 2, 2}, 0.0f);
  Tensor w({2, 1, 1, 1}, 0.0f);
  Tensor b({2}, {1.5f, -2.0f});
  Variable out = conv2d(Variable(x), Variable(w), Variable(b), 1, 0);
  EXPECT_FLOAT_EQ(out.value().at({0, 0, 1, 1}), 1.5f);
  EXPECT_FLOAT_EQ(out.value().at({0, 1, 0, 0}), -2.0f);
}

TEST(Conv2d, GradcheckInputWeightBias) {
  Rng rng(2);
  Tensor x = Tensor::randn({1, 2, 4, 4}, rng);
  Tensor w = Tensor::randn({2, 2, 3, 3}, rng, 0.0f, 0.5f);
  Tensor b = Tensor::randn({2}, rng);
  const float eps = 1e-2f;

  Variable vx(x, true), vw(w, true), vb(b, true);
  Variable loss = autograd::sum_all(conv2d(vx, vw, vb, 1, 1));
  loss.backward();

  auto numeric = [&](Tensor& target, std::int64_t i) {
    target[i] += eps;
    const float lp = conv2d(Variable(x), Variable(w), Variable(b), 1, 1).value().sum();
    target[i] -= 2 * eps;
    const float lm = conv2d(Variable(x), Variable(w), Variable(b), 1, 1).value().sum();
    target[i] += eps;
    return (static_cast<double>(lp) - lm) / (2.0 * eps);
  };
  for (std::int64_t i = 0; i < x.numel(); i += 7)
    EXPECT_NEAR(vx.grad()[i], numeric(x, i), 5e-2) << "x" << i;
  for (std::int64_t i = 0; i < w.numel(); i += 5)
    EXPECT_NEAR(vw.grad()[i], numeric(w, i), 5e-2) << "w" << i;
  for (std::int64_t i = 0; i < b.numel(); ++i)
    EXPECT_NEAR(vb.grad()[i], numeric(b, i), 5e-2) << "b" << i;
}

// Property sweep: im2col conv matches the naive direct convolution across a
// grid of kernel/stride/padding/channel configurations.
struct ConvCase {
  std::int64_t in_ch, out_ch, kernel, stride, pad, hw;
};

class ConvParamSweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvParamSweep, MatchesNaive) {
  const ConvCase& cc = GetParam();
  Rng rng(100);
  Tensor x = Tensor::randn({2, cc.in_ch, cc.hw, cc.hw}, rng);
  Tensor w = Tensor::randn({cc.out_ch, cc.in_ch, cc.kernel, cc.kernel}, rng);
  Variable out = conv2d(Variable(x), Variable(w), Variable(), cc.stride, cc.pad);
  Tensor ref = conv2d_naive(x, w, cc.stride, cc.pad);
  ASSERT_EQ(out.value().shape(), ref.shape());
  for (std::int64_t i = 0; i < ref.numel(); ++i) EXPECT_NEAR(out.value()[i], ref[i], 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Configs, ConvParamSweep,
                         ::testing::Values(ConvCase{1, 1, 1, 1, 0, 5},   // pointwise
                                           ConvCase{2, 4, 3, 1, 1, 6},   // same-pad 3x3
                                           ConvCase{3, 2, 3, 2, 1, 8},   // strided
                                           ConvCase{2, 2, 5, 1, 2, 9},   // 5x5
                                           ConvCase{4, 1, 3, 3, 0, 9},   // stride 3
                                           ConvCase{1, 3, 2, 2, 0, 8})); // even kernel

TEST(Conv2d, ShapeErrorsThrow) {
  Rng rng(101);
  Tensor x = Tensor::randn({1, 3, 4, 4}, rng);
  Tensor w_badch = Tensor::randn({2, 4, 3, 3}, rng);
  EXPECT_THROW(conv2d(Variable(x), Variable(w_badch), Variable(), 1, 1),
               std::invalid_argument);
  Tensor w_toolarge = Tensor::randn({2, 3, 7, 7}, rng);
  EXPECT_THROW(conv2d(Variable(x), Variable(w_toolarge), Variable(), 1, 0),
               std::invalid_argument);
}

TEST(Pooling, MaxPoolForward) {
  Tensor x({1, 1, 4, 4});
  for (std::int64_t i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  Variable out = max_pool2d(Variable(x), 2, 2);
  ASSERT_EQ(out.value().shape(), (Shape{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(out.value()[0], 5.0f);
  EXPECT_FLOAT_EQ(out.value()[3], 15.0f);
}

TEST(Pooling, MaxPoolGradientGoesToArgmax) {
  Tensor x({1, 1, 2, 2}, {1.0f, 9.0f, 3.0f, 4.0f});
  Variable vx(x, true);
  autograd::sum_all(max_pool2d(vx, 2, 2)).backward();
  EXPECT_FLOAT_EQ(vx.grad()[0], 0.0f);
  EXPECT_FLOAT_EQ(vx.grad()[1], 1.0f);
}

TEST(Pooling, AvgPoolForwardAndBackward) {
  Tensor x({1, 1, 2, 2}, {1.0f, 2.0f, 3.0f, 6.0f});
  Variable vx(x, true);
  Variable out = avg_pool2d(vx, 2, 2);
  EXPECT_FLOAT_EQ(out.value()[0], 3.0f);
  autograd::sum_all(out).backward();
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(vx.grad()[i], 0.25f);
}

TEST(Pooling, GlobalAvgPool) {
  Tensor x({2, 3, 2, 2}, 2.0f);
  Variable out = global_avg_pool(Variable(x));
  ASSERT_EQ(out.value().shape(), (Shape{2, 3}));
  for (std::int64_t i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(out.value()[i], 2.0f);
}

TEST(Upsample, NearestDoubles) {
  Tensor x({1, 1, 2, 2}, {1, 2, 3, 4});
  Variable out = upsample2x(Variable(x));
  ASSERT_EQ(out.value().shape(), (Shape{1, 1, 4, 4}));
  EXPECT_FLOAT_EQ(out.value().at({0, 0, 0, 1}), 1.0f);
  EXPECT_FLOAT_EQ(out.value().at({0, 0, 3, 3}), 4.0f);
}

TEST(Upsample, BackwardSumsQuads) {
  Tensor x({1, 1, 1, 1}, 5.0f);
  Variable vx(x, true);
  autograd::sum_all(upsample2x(vx)).backward();
  EXPECT_FLOAT_EQ(vx.grad()[0], 4.0f);
}

TEST(Dropout, EvalModeIsIdentity) {
  Rng rng(3);
  Tensor x = Tensor::randn({10}, rng);
  Variable out = dropout(Variable(x), 0.5f, /*training=*/false, rng);
  for (std::int64_t i = 0; i < 10; ++i) EXPECT_EQ(out.value()[i], x[i]);
}

TEST(Dropout, TrainingZeroesAndRescales) {
  Rng rng(4);
  Tensor x({1000}, 1.0f);
  Variable out = dropout(Variable(x), 0.25f, true, rng);
  std::int64_t zeros = 0;
  for (std::int64_t i = 0; i < 1000; ++i) {
    if (out.value()[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(out.value()[i], 1.0f / 0.75f, 1e-5);
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 1000.0, 0.25, 0.06);
}

TEST(Linear, ShapesAndBias) {
  Rng rng(5);
  Linear layer(4, 3, rng);
  Variable out = layer.forward(Variable(Tensor({2, 4}, 1.0f)));
  EXPECT_EQ(out.value().shape(), (Shape{2, 3}));
  EXPECT_EQ(layer.parameters().size(), 2u);
  Linear no_bias(4, 3, rng, false);
  EXPECT_EQ(no_bias.parameters().size(), 1u);
}

TEST(BatchNorm, NormalizesTrainingBatch) {
  Rng rng(6);
  BatchNorm2d bn(3);
  Tensor x = Tensor::randn({4, 3, 5, 5}, rng, 2.0f, 3.0f);
  Variable out = bn.forward(Variable(x, true));
  // Per channel: mean ~0, var ~1.
  const std::int64_t hw = 25;
  for (std::int64_t c = 0; c < 3; ++c) {
    double sum = 0.0, sumsq = 0.0;
    for (std::int64_t n = 0; n < 4; ++n)
      for (std::int64_t i = 0; i < hw; ++i) {
        const float v = out.value()[(n * 3 + c) * hw + i];
        sum += v;
        sumsq += static_cast<double>(v) * v;
      }
    const double mean = sum / (4 * hw);
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(sumsq / (4 * hw) - mean * mean, 1.0, 1e-2);
  }
}

TEST(BatchNorm, RunningStatsConvergeAndDriveEval) {
  Rng rng(7);
  BatchNorm2d bn(1, 1e-5f, 0.5f);
  for (int it = 0; it < 30; ++it) {
    Tensor x = Tensor::randn({8, 1, 4, 4}, rng, 10.0f, 2.0f);
    bn.forward(Variable(x));
  }
  EXPECT_NEAR(bn.running_mean[0], 10.0f, 0.5f);
  EXPECT_NEAR(bn.running_var[0], 4.0f, 1.0f);
  bn.set_training(false);
  Tensor probe({1, 1, 1, 1}, 10.0f);
  Variable out = bn.forward(Variable(probe));
  EXPECT_NEAR(out.value()[0], 0.0f, 0.3f);
}

TEST(BatchNorm, GradcheckAllInputs) {
  Rng rng(8);
  Tensor x = Tensor::randn({3, 2, 2, 2}, rng);
  const float eps = 1e-2f;
  BatchNorm2d bn(2);
  // Make gamma/beta non-trivial.
  bn.gamma.mutable_value() = Tensor({2}, {1.3f, 0.7f});
  bn.beta.mutable_value() = Tensor({2}, {0.2f, -0.1f});
  Variable vx(x, true);
  autograd::sum_all(autograd::mul(bn.forward(vx), bn.forward(vx))).backward();
  // Numeric check on a few input components (loss = sum(bn(x)^2)).
  auto loss_at = [&](const Tensor& xt) {
    BatchNorm2d bn2(2);
    bn2.gamma.mutable_value() = Tensor({2}, {1.3f, 0.7f});
    bn2.beta.mutable_value() = Tensor({2}, {0.2f, -0.1f});
    Variable o = bn2.forward(Variable(xt));
    return o.value().mul(o.value()).sum();
  };
  for (std::int64_t i = 0; i < x.numel(); i += 5) {
    Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const double numeric = (static_cast<double>(loss_at(xp)) - loss_at(xm)) / (2.0 * eps);
    EXPECT_NEAR(vx.grad()[i], numeric, 5e-2) << i;
  }
}

TEST(LayerNorm, NormalizesRows) {
  Rng rng(9);
  LayerNorm ln(6);
  Tensor x = Tensor::randn({4, 6}, rng, 3.0f, 2.0f);
  Variable out = ln.forward(Variable(x));
  for (std::int64_t r = 0; r < 4; ++r) {
    double sum = 0.0;
    for (std::int64_t j = 0; j < 6; ++j) sum += out.value()[r * 6 + j];
    EXPECT_NEAR(sum / 6.0, 0.0, 1e-4);
  }
}

TEST(LayerNorm, GradcheckInput) {
  Rng rng(10);
  Tensor x = Tensor::randn({2, 4}, rng);
  const float eps = 1e-2f;
  LayerNorm ln(4);
  Variable vx(x, true);
  Variable out = ln.forward(vx);
  autograd::sum_all(autograd::mul(out, out)).backward();
  auto loss_at = [&](const Tensor& xt) {
    LayerNorm ln2(4);
    Variable o = ln2.forward(Variable(xt));
    return o.value().mul(o.value()).sum();
  };
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const double numeric = (static_cast<double>(loss_at(xp)) - loss_at(xm)) / (2.0 * eps);
    EXPECT_NEAR(vx.grad()[i], numeric, 5e-2) << i;
  }
}

TEST(Losses, CrossEntropyMatchesManual) {
  Tensor logits({2, 3}, {1.0f, 2.0f, 0.5f, 0.0f, 0.0f, 0.0f});
  Variable v(logits, true);
  Variable loss = cross_entropy(v, {1, 2});
  // Manual: -log softmax values.
  const Tensor logp = logits.log_softmax_last();
  const float expected = -(logp[1] + logp[5]) / 2.0f;
  EXPECT_NEAR(loss.value()[0], expected, 1e-5);
  loss.backward();
  // Gradient rows sum to zero (softmax - onehot scaled).
  EXPECT_NEAR(v.grad()[0] + v.grad()[1] + v.grad()[2], 0.0f, 1e-5);
}

TEST(Losses, WeightedCrossEntropyIgnoresZeroWeight) {
  Tensor logits({2, 2}, {5.0f, 0.0f, 0.0f, 5.0f});
  Variable v(logits, true);
  Variable loss = weighted_cross_entropy(v, {1, 0}, {1.0f, 0.0f});
  loss.backward();
  EXPECT_EQ(v.grad()[2], 0.0f);
  EXPECT_EQ(v.grad()[3], 0.0f);
  EXPECT_NE(v.grad()[0], 0.0f);
}

TEST(Losses, CrossEntropyTargetOutOfRangeThrows) {
  Variable v(Tensor({1, 2}), true);
  EXPECT_THROW(cross_entropy(v, {2}), std::out_of_range);
}

TEST(Losses, SmoothedCrossEntropyReducesToPlainAtZero) {
  Rng rng(20);
  Tensor logits = Tensor::randn({3, 4}, rng);
  Variable a(logits, true), b(logits, true);
  Variable plain = cross_entropy(a, {1, 0, 3});
  Variable smoothed = smoothed_cross_entropy(b, {1, 0, 3}, 0.0f);
  EXPECT_NEAR(plain.value()[0], smoothed.value()[0], 1e-6);
  plain.backward();
  smoothed.backward();
  for (std::int64_t i = 0; i < logits.numel(); ++i)
    EXPECT_NEAR(a.grad()[i], b.grad()[i], 1e-6) << i;
}

TEST(Losses, SmoothedCrossEntropyPenalizesOverconfidence) {
  // With smoothing, an extremely confident correct prediction still has loss
  // above the entropy floor, and its gradient pushes mass to other classes.
  Tensor confident({1, 3}, {50.0f, 0.0f, 0.0f});
  Variable v(confident, true);
  Variable loss = smoothed_cross_entropy(v, {0}, 0.2f);
  EXPECT_GT(loss.value()[0], 1.0f);  // ~ eps * 50-ish logit gap
  loss.backward();
  EXPECT_GT(v.grad()[0], 0.0f);   // pull the winning logit DOWN
  EXPECT_LT(v.grad()[1], 0.0f);   // push others up
}

TEST(Losses, SmoothedCrossEntropyGradcheck) {
  Rng rng(21);
  Tensor logits = Tensor::randn({2, 3}, rng);
  const float eps = 1e-2f;
  Variable v(logits, true);
  smoothed_cross_entropy(v, {2, 1}, 0.1f).backward();
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    Tensor lp = logits, lm = logits;
    lp[i] += eps;
    lm[i] -= eps;
    const float up = smoothed_cross_entropy(Variable(lp), {2, 1}, 0.1f).value()[0];
    const float dn = smoothed_cross_entropy(Variable(lm), {2, 1}, 0.1f).value()[0];
    EXPECT_NEAR(v.grad()[i], (up - dn) / (2 * eps), 2e-3) << i;
  }
}

TEST(Losses, SmoothedCrossEntropyBadArgsThrow) {
  Variable v(Tensor({1, 2}), true);
  EXPECT_THROW(smoothed_cross_entropy(v, {0}, 1.0f), std::invalid_argument);
  EXPECT_THROW(smoothed_cross_entropy(v, {0}, -0.1f), std::invalid_argument);
  EXPECT_THROW(smoothed_cross_entropy(v, {5}, 0.1f), std::out_of_range);
}

TEST(Losses, BceWithLogitsMatchesManualAndIsStable) {
  Tensor logits({3}, {0.0f, 100.0f, -100.0f});
  Variable v(logits, true);
  Variable loss = bce_with_logits(v, {1.0f, 1.0f, 0.0f});
  // -log(0.5)/3 + ~0 + ~0
  EXPECT_NEAR(loss.value()[0], std::log(2.0f) / 3.0f, 1e-4);
  EXPECT_TRUE(loss.value().all_finite());
  loss.backward();
  EXPECT_TRUE(v.grad().all_finite());
  EXPECT_LT(v.grad()[0], 0.0f);  // push logit up toward target 1
}

TEST(Losses, SmoothL1QuadraticAndLinearRegimes) {
  Tensor pred({2, 1}, {0.5f, 3.0f});
  Tensor target({2, 1}, {0.0f, 0.0f});
  Variable v(pred, true);
  Variable loss = smooth_l1(v, target, {1.0f, 1.0f});
  // (0.5*0.25 + (3 - 0.5)) / 2
  EXPECT_NEAR(loss.value()[0], (0.125f + 2.5f) / 2.0f, 1e-5);
  loss.backward();
  EXPECT_NEAR(v.grad()[0], 0.5f / 2.0f, 1e-5);  // quadratic: d = 0.5
  EXPECT_NEAR(v.grad()[1], 1.0f / 2.0f, 1e-5);  // linear: sign = +1
}

TEST(Losses, MseValueAndGrad) {
  Tensor pred({2}, {1.0f, 3.0f});
  Tensor target({2}, {0.0f, 0.0f});
  Variable v(pred, true);
  Variable loss = mse(v, target);
  EXPECT_NEAR(loss.value()[0], (1.0f + 9.0f) / 2.0f, 1e-5);
  loss.backward();
  EXPECT_NEAR(v.grad()[0], 1.0f, 1e-5);
  EXPECT_NEAR(v.grad()[1], 3.0f, 1e-5);
}

TEST(Attention, OutputShapeAndGradFlow) {
  Rng rng(11);
  MultiHeadAttention mha(8, 2, rng);
  Variable x(Tensor::randn({2, 3, 8}, rng), true);
  Variable out = mha.forward(x, x, x);
  EXPECT_EQ(out.value().shape(), (Shape{2, 3, 8}));
  autograd::sum_all(out).backward();
  EXPECT_GT(x.grad().l2_norm_sq(), 0.0f);
  for (const auto& p : mha.parameters()) EXPECT_GT(p.grad().l2_norm_sq(), 0.0f);
}

TEST(Attention, CausalMaskBlocksFuture) {
  Rng rng(12);
  MultiHeadAttention mha(4, 1, rng);
  // Two inputs identical in the first position, different later: causal
  // attention output at position 0 must be identical.
  Tensor a = Tensor::randn({1, 3, 4}, rng);
  Tensor b = a;
  for (std::int64_t i = 4; i < 12; ++i) b[i] += 1.0f;  // change positions 1..2
  Variable oa = mha.forward(Variable(a), Variable(a), Variable(a), /*causal=*/true);
  Variable ob = mha.forward(Variable(b), Variable(b), Variable(b), /*causal=*/true);
  for (std::int64_t j = 0; j < 4; ++j)
    EXPECT_NEAR(oa.value()[j], ob.value()[j], 1e-5) << j;
}

TEST(Attention, NonCausalSeesEverything) {
  Rng rng(13);
  MultiHeadAttention mha(4, 1, rng);
  Tensor a = Tensor::randn({1, 3, 4}, rng);
  Tensor b = a;
  for (std::int64_t i = 4; i < 12; ++i) b[i] += 1.0f;
  Variable oa = mha.forward(Variable(a), Variable(a), Variable(a), false);
  Variable ob = mha.forward(Variable(b), Variable(b), Variable(b), false);
  float diff = 0.0f;
  for (std::int64_t j = 0; j < 4; ++j) diff += std::fabs(oa.value()[j] - ob.value()[j]);
  EXPECT_GT(diff, 1e-4f);
}

TEST(Lstm, CellShapesAndStateEvolution) {
  Rng rng(14);
  LSTMCell cell(3, 5, rng);
  auto state = cell.zero_state(2);
  Variable x(Tensor::randn({2, 3}, rng));
  auto next = cell.forward(x, state);
  EXPECT_EQ(next.h.value().shape(), (Shape{2, 5}));
  EXPECT_EQ(next.c.value().shape(), (Shape{2, 5}));
  EXPECT_GT(next.h.value().l2_norm_sq(), 0.0f);
}

TEST(Lstm, MultiLayerSequenceAndGradFlow) {
  Rng rng(15);
  LSTM lstm(3, 4, 2, rng);
  std::vector<Variable> xs;
  for (int t = 0; t < 4; ++t) xs.emplace_back(Tensor::randn({2, 3}, rng), true);
  auto out = lstm.forward(xs);
  EXPECT_EQ(out.hiddens.size(), 4u);
  EXPECT_EQ(out.final_states.size(), 2u);
  autograd::sum_all(out.hiddens.back()).backward();
  EXPECT_GT(xs[0].grad().l2_norm_sq(), 0.0f);  // BPTT reaches the first step
}

TEST(Serialize, SaveLoadRoundTripsWeights) {
  Rng rng(30);
  MultiHeadAttention a(8, 2, rng);
  MultiHeadAttention b(8, 2, rng);  // different init
  const std::string path = ::testing::TempDir() + "weights_roundtrip.bin";
  save_weights(a, path);
  load_weights(b, path);
  const auto pa = a.named_parameters();
  const auto pb = b.named_parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i)
    for (std::int64_t j = 0; j < pa[i].second.numel(); ++j)
      EXPECT_EQ(pa[i].second.value()[j], pb[i].second.value()[j]) << pa[i].first;
}

TEST(Serialize, LoadedModelProducesIdenticalOutputs) {
  Rng rng(31);
  Linear a(5, 3, rng);
  Linear b(5, 3, rng);
  const std::string path = ::testing::TempDir() + "weights_linear.bin";
  save_weights(a, path);
  load_weights(b, path);
  Tensor x = Tensor::randn({2, 5}, rng);
  Variable ya = a.forward(Variable(x));
  Variable yb = b.forward(Variable(x));
  for (std::int64_t i = 0; i < ya.value().numel(); ++i)
    EXPECT_EQ(ya.value()[i], yb.value()[i]);
}

TEST(Serialize, ArchitectureMismatchThrows) {
  Rng rng(32);
  Linear a(5, 3, rng);
  const std::string path = ::testing::TempDir() + "weights_mismatch.bin";
  save_weights(a, path);
  Linear wrong_shape(5, 4, rng);
  EXPECT_THROW(load_weights(wrong_shape, path), std::runtime_error);
  MultiHeadAttention wrong_arch(8, 2, rng);
  EXPECT_THROW(load_weights(wrong_arch, path), std::runtime_error);
}

TEST(Serialize, MissingFileThrows) {
  Rng rng(33);
  Linear a(2, 2, rng);
  EXPECT_THROW(load_weights(a, "/nonexistent/weights.bin"), std::runtime_error);
}

TEST(Module, ParameterRegistryAndNames) {
  Rng rng(16);
  MultiHeadAttention mha(8, 2, rng);
  const auto named = mha.named_parameters();
  EXPECT_EQ(named.size(), 8u);  // 4 linears x (weight, bias)
  bool found = false;
  for (const auto& [name, v] : named)
    if (name == "wq.weight") found = true;
  EXPECT_TRUE(found);
  EXPECT_GT(mha.num_parameters(), 0);
}

TEST(Module, ZeroGradClearsAll) {
  Rng rng(17);
  Linear l(3, 3, rng);
  Variable out = autograd::sum_all(l.forward(Variable(Tensor({1, 3}, 1.0f))));
  out.backward();
  EXPECT_GT(l.weight.grad().l2_norm_sq(), 0.0f);
  l.zero_grad();
  EXPECT_EQ(l.weight.grad().l2_norm_sq(), 0.0f);
}


// ---- fused_scaled_softmax ---------------------------------------------------

namespace fused_softmax_detail {

void expect_same_bits(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  ASSERT_EQ(0, std::memcmp(a.data(), b.data(),
                           static_cast<std::size_t>(a.numel()) * sizeof(float)))
      << what;
}

}  // namespace fused_softmax_detail

// The fused op's contract is 0 ULP against the chain it replaced in
// attention: mul_scalar -> add(mask) -> softmax_last, forward AND backward,
// at any thread count.
TEST(FusedScaledSoftmax, BitwiseIdenticalToUnfusedChain) {
  using fused_softmax_detail::expect_same_bits;
  Rng rng(61);
  const std::int64_t b = 3, t = 7;
  const Tensor scores = Tensor::randn({b, t, t}, rng);
  const float scale = 1.0f / std::sqrt(5.0f);
  Tensor mask = Tensor::uninitialized({t, t});
  for (std::int64_t i = 0; i < t; ++i)
    for (std::int64_t j = 0; j < t; ++j) mask[i * t + j] = j > i ? -1e9f : 0.0f;
  const Tensor seed = Tensor::randn({b, t, t}, rng);

  for (int threads : {1, 2, 4, 8}) {
    parallel::set_num_threads(threads);
    for (bool masked : {false, true}) {
      Variable s1(scores, true);
      Variable fused =
          fused_scaled_softmax(s1, scale, masked ? mask : Tensor());
      fused.backward(seed);

      Variable s2(scores, true);
      Variable chain = autograd::mul_scalar(s2, scale);
      if (masked) chain = autograd::add(chain, Variable(mask));
      chain = autograd::softmax_last(chain);
      chain.backward(seed);

      expect_same_bits(fused.value(), chain.value(), masked ? "fwd masked" : "fwd");
      expect_same_bits(s1.grad(), s2.grad(), masked ? "bwd masked" : "bwd");
    }
  }
  parallel::set_num_threads(1);
}

TEST(FusedScaledSoftmax, RowsSumToOneAndMaskZeroes) {
  Rng rng(62);
  const std::int64_t t = 6;
  const Tensor scores = Tensor::randn({2, t, t}, rng);
  Tensor mask = Tensor::uninitialized({t, t});
  for (std::int64_t i = 0; i < t; ++i)
    for (std::int64_t j = 0; j < t; ++j) mask[i * t + j] = j > i ? -1e9f : 0.0f;
  Variable y = fused_scaled_softmax(Variable(scores), 0.5f, mask);
  for (std::int64_t r = 0; r < 2 * t; ++r) {
    double sum = 0.0;
    for (std::int64_t j = 0; j < t; ++j) sum += y.value()[r * t + j];
    EXPECT_NEAR(1.0, sum, 1e-5) << "row " << r;
    const std::int64_t i = r % t;
    for (std::int64_t j = i + 1; j < t; ++j)
      EXPECT_NEAR(0.0f, y.value()[r * t + j], 1e-12f) << "masked entry leaked";
  }
}

TEST(FusedScaledSoftmax, BadMaskShapeThrows) {
  Rng rng(63);
  const Tensor scores = Tensor::randn({2, 4, 4}, rng);
  EXPECT_THROW(fused_scaled_softmax(Variable(scores), 1.0f, Tensor({4, 5})),
               std::invalid_argument);
  EXPECT_THROW(fused_scaled_softmax(Variable(scores), 1.0f, Tensor({3, 4})),
               std::invalid_argument);
}

// The conv bias gradient is now a channel-parallel reduction; pin that the
// result is bitwise the sequential sample-outer loop at any thread count.
TEST(Conv2d, BiasGradBitwiseAcrossThreadCounts) {
  Rng rng(64);
  const Tensor x = Tensor::randn({3, 2, 9, 9}, rng);
  const Tensor wt = Tensor::randn({5, 2, 3, 3}, rng);
  const Tensor bt = Tensor::randn({5}, rng);
  auto bias_grad = [&](int threads) {
    parallel::set_num_threads(threads);
    Variable w(wt, true), bias(bt, true);
    Variable y = conv2d(Variable(x), w, bias, 1, 1);
    autograd::sum_all(autograd::mul(y, y)).backward();
    Tensor g = bias.grad();
    parallel::set_num_threads(1);
    return g;
  };
  const Tensor want = bias_grad(1);
  // The pre-PR5 sequential loop, s-outer / o-inner, for reference.
  Variable w(wt, true), bias(bt, true);
  Variable y = conv2d(Variable(x), w, bias, 1, 1);
  const Tensor g_out = [&] {
    Variable loss = autograd::sum_all(autograd::mul(y, y));
    loss.backward();
    return bias.grad();
  }();
  fused_softmax_detail::expect_same_bits(want, g_out, "bias grad self-check");
  for (int threads : {2, 4, 8})
    fused_softmax_detail::expect_same_bits(want, bias_grad(threads), "bias grad threaded");
}

}  // namespace
}  // namespace mlperf::nn
