// ckpt_inspect: examine an MLCK checkpoint file from the command line.
//
//   $ ./ckpt_inspect FILE            dump header + per-section sizes/CRCs
//   $ ./ckpt_inspect FILE --eval     additionally rebuild the workload named in
//                                    the checkpoint, restore it, and run one
//                                    evaluation (proves the file restores)
//   $ ./ckpt_inspect FILE --eval --scale=smoke   use the smoke-scale workload
//                                    (checkpoints written by the test suite)
//
// The dump pass is deliberately lenient (checkpoint::inspect_file): a damaged
// file is reported field by field instead of rejected outright, so this tool
// is usable for post-mortems on exactly the files the runtime refuses to load.
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "checkpoint/format.h"
#include "core/benchmark_spec.h"
#include "harness/reference.h"

using namespace mlperf;

namespace {

int inspect(const std::string& path) {
  const checkpoint::InspectReport report = checkpoint::inspect_file(path);
  std::printf("%s: %llu bytes\n", path.c_str(),
              static_cast<unsigned long long>(report.file_bytes));
  std::printf("  magic   0x%08X  %s\n", report.magic,
              report.magic_ok ? "ok (MLCK)" : "BAD (not an MLCK checkpoint)");
  std::printf("  version %u  %s\n", report.version,
              report.version_ok
                  ? "ok"
                  : ("UNSUPPORTED (this build reads version " +
                     std::to_string(checkpoint::kFormatVersion) + ")")
                        .c_str());
  std::printf("  %zu section(s):\n", report.sections.size());
  bool all_ok = report.magic_ok && report.version_ok;
  for (const auto& s : report.sections) {
    std::printf("    %-12s %10llu bytes  crc32c stored=%08X computed=%08X  %s\n",
                s.name.c_str(), static_cast<unsigned long long>(s.size), s.stored_crc,
                s.computed_crc, s.crc_ok() ? "ok" : "CORRUPT");
    all_ok = all_ok && s.crc_ok();
  }
  return all_ok ? 0 : 2;
}

int restore_and_eval(const std::string& path, harness::WorkloadScale scale) {
  // The strict reader: this is exactly the validation the training harness
  // applies on --resume_from, so success here means the file would resume.
  checkpoint::CheckpointReader ckpt = checkpoint::CheckpointReader::read_file(path);
  checkpoint::ByteReader meta = ckpt.section("meta");
  const std::string benchmark = meta.get_string();
  const std::string signature = meta.get_string();
  const std::uint64_t seed = meta.get_u64();
  const std::int64_t epochs = meta.get_i64();
  const double saved_quality = meta.get_f64();
  std::printf("\nrestore-to-eval:\n");
  std::printf("  benchmark  %s (%s)\n", benchmark.c_str(), signature.c_str());
  std::printf("  seed       %llu\n", static_cast<unsigned long long>(seed));
  std::printf("  epochs     %lld (saved quality %.4f)\n", static_cast<long long>(epochs),
              saved_quality);

  const core::SuiteVersion suite = core::suite_v05();
  std::optional<core::BenchmarkId> id;
  for (const auto& spec : suite.benchmarks)
    if (spec.name == benchmark) id = spec.id;
  if (!id) {
    std::fprintf(stderr, "  unknown benchmark '%s' in this build\n", benchmark.c_str());
    return 2;
  }
  auto workload = harness::make_reference_workload(*id, scale);
  workload->prepare_data();
  workload->build_model(seed);
  workload->restore_state(ckpt);
  const double quality = workload->evaluate();
  std::printf("  restored model evaluates to %.4f %s\n", quality,
              quality == saved_quality ? "(matches saved quality exactly)"
                                       : "(differs from saved quality — wrong scale?)");
  return quality == saved_quality ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool eval = false;
  harness::WorkloadScale scale = harness::WorkloadScale::kReference;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--eval") {
      eval = true;
    } else if (arg == "--scale=smoke") {
      scale = harness::WorkloadScale::kSmoke;
    } else if (arg == "--scale=reference") {
      scale = harness::WorkloadScale::kReference;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return 1;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "usage: ckpt_inspect FILE [--eval] [--scale=smoke|reference]\n");
      return 1;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: ckpt_inspect FILE [--eval] [--scale=smoke|reference]\n");
    return 1;
  }
  try {
    const int rc = inspect(path);
    if (!eval) return rc;
    const int eval_rc = restore_and_eval(path, scale);
    return rc != 0 ? rc : eval_rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
