// §3.3 ablation: why quality thresholds sit near state-of-the-art rather than
// at an easy early value. Using the ResNet workload across seeds, we measure
// epochs-to-target at a LOW threshold (hit during the noisy early phase of
// Figure 3) versus the suite's HIGH threshold, and compare relative variance.
// The paper's claim: early thresholds make time-to-train much noisier, and
// they also cannot protect against optimizations that hurt FINAL quality.
#include <cstdio>
#include <vector>

#include "core/aggregate.h"
#include "harness/run.h"
#include "models/resnet.h"

using namespace mlperf;

int main() {
  const int runs = 5;
  std::printf("Threshold-choice ablation: ResNet epochs-to-target across %d seeds\n\n", runs);
  std::printf("%-14s", "threshold");
  for (int r = 0; r < runs; ++r) std::printf("  run%-3d", r);
  std::printf("%10s %10s\n", "mean", "cv");

  for (double threshold : {0.45, 0.60, 0.80}) {
    std::vector<double> epochs;
    for (int r = 0; r < runs; ++r) {
      models::ResNetWorkload w({});
      core::QualityMetric target{"top1_accuracy", threshold, true};
      harness::RunOptions opts;
      opts.seed = 42 + static_cast<std::uint64_t>(r) * 7919;
      opts.max_epochs = 40;
      epochs.push_back(static_cast<double>(harness::run_to_target(w, target, opts).epochs));
    }
    std::printf("%-14.2f", threshold);
    for (double e : epochs) std::printf("  %-6.0f", e);
    const double m = core::mean(epochs);
    std::printf("%10.1f %9.1f%%\n", m, 100.0 * core::stddev(epochs) / m);
    std::fflush(stdout);
  }
  std::printf("\npaper §3.3: thresholds achievable in the noisy early phase (Fig. 3) give\n");
  std::printf("high run-to-run variance; near-SOTA thresholds stabilize timing AND catch\n");
  std::printf("optimizations that only hurt late-training quality (Fig. 1).\n");
  return 0;
}
