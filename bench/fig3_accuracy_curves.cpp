// Regenerates Figure 3: top-1 accuracy of the ResNet workload over epochs for
// 5 runs with identical hyperparameters other than the seed, with the dotted
// quality-target line. The claims to reproduce: trajectories fan out early in
// training (the noisy phase) and converge near the threshold late — the
// paper's rationale for choosing HIGH quality thresholds (§3.3).
#include <cstdio>
#include <vector>

#include "core/aggregate.h"
#include "harness/run.h"
#include "models/resnet.h"

using namespace mlperf;

int main() {
  const double target = 0.80;
  const std::int64_t epochs = 14;
  const int runs = 5;

  std::vector<std::vector<double>> curves;
  for (int r = 0; r < runs; ++r) {
    models::ResNetWorkload w({});
    core::QualityMetric unreachable{"top1_accuracy", 2.0, true};
    harness::RunOptions opts;
    opts.seed = 42 + static_cast<std::uint64_t>(r) * 7919;
    opts.max_epochs = epochs;
    const auto out = harness::run_to_target(w, unreachable, opts);
    std::vector<double> c;
    for (const auto& p : out.curve) c.push_back(p.quality);
    curves.push_back(std::move(c));
  }

  std::printf("Figure 3: ResNet top-1 accuracy vs epoch, %d seeds (target %.3f)\n\n", runs,
              target);
  std::printf("%-8s", "epoch");
  for (int r = 0; r < runs; ++r) std::printf("   seed%-4d", r);
  std::printf("%12s%10s\n", "spread", "");
  for (std::int64_t e = 0; e < epochs; ++e) {
    std::printf("%-8lld", static_cast<long long>(e + 1));
    std::vector<double> at_epoch;
    for (const auto& c : curves) {
      std::printf("   %8.3f", c[static_cast<std::size_t>(e)]);
      at_epoch.push_back(c[static_cast<std::size_t>(e)]);
    }
    double lo = at_epoch[0], hi = at_epoch[0];
    for (double v : at_epoch) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    std::printf("%12.3f%s\n", hi - lo, hi >= target ? "   <-- some runs past target" : "");
  }

  // Early-vs-late variability, the §3.3 argument in one number.
  auto spread_at = [&](std::int64_t e) {
    double lo = 1e9, hi = -1e9;
    for (const auto& c : curves) {
      lo = std::min(lo, c[static_cast<std::size_t>(e)]);
      hi = std::max(hi, c[static_cast<std::size_t>(e)]);
    }
    return hi - lo;
  };
  double early = 0.0, late = 0.0;
  for (std::int64_t e = 0; e < epochs / 2; ++e) early += spread_at(e);
  for (std::int64_t e = epochs / 2; e < epochs; ++e) late += spread_at(e);
  early /= static_cast<double>(epochs / 2);
  late /= static_cast<double>(epochs - epochs / 2);
  std::printf("\nmean cross-seed spread: first half %.3f vs second half %.3f (paper: early "
              "phase is markedly noisier)\n",
              early, late);
  return 0;
}
