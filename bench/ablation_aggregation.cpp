// §3.2.2 ablation: why 5 runs (vision) / 10 runs (other) with drop-min/max?
//
// Part (1): REAL epochs-to-target samples from the NCF workload. These turn
// out to be heavy-tailed (a minority of seeds converge several times slower)
// — informative in itself: with a strongly bimodal distribution no small-
// sample aggregate is stable, which is why thresholds are calibrated so runs
// converge consistently (§3.3).
//
// Part (2): the regime the rule was designed for — a unimodal timing
// distribution (cv of a few percent) with occasional stragglers, matching
// the reference-implementation behavior the paper studied. Bootstrapped
// reported scores show the drop-min/max ("olympic") mean suppressing the
// straggler tail that plain means inherit, and the 5/10-run counts pushing
// the within-5%/10% fraction toward the paper's ~90% design point.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/aggregate.h"
#include "harness/run.h"
#include "models/ncf.h"
#include "tensor/rng.h"

using namespace mlperf;

namespace {

std::vector<double> bootstrap(const std::vector<double>& population, std::size_t k,
                              bool olympic, tensor::Rng& rng) {
  std::vector<double> scores;
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<double> sample;
    for (std::size_t i = 0; i < k; ++i)
      sample.push_back(population[static_cast<std::size_t>(rng.randint(population.size()))]);
    if (olympic && k >= 3) {
      std::sort(sample.begin(), sample.end());
      sample.erase(sample.begin());
      sample.pop_back();
    }
    scores.push_back(core::mean(sample));
  }
  return scores;
}

void report(const char* title, const std::vector<double>& population, double tolerance,
            tensor::Rng& rng) {
  std::printf("%s\n", title);
  std::printf("%-28s %10s %14s %16s\n", "reporting policy", "runs", "score cv",
              "within tolerance");
  struct Row {
    const char* name;
    std::size_t k;
    bool olympic;
  };
  const Row rows[] = {{"single run", 1, false},
                      {"plain mean", 5, false},
                      {"olympic mean (vision)", 5, true},
                      {"plain mean", 10, false},
                      {"olympic mean (other)", 10, true}};
  for (const auto& row : rows) {
    const auto scores = bootstrap(population, row.k, row.olympic, rng);
    std::printf("%-28s %10zu %13.1f%% %15.0f%%\n", row.name, row.k,
                100.0 * core::stddev(scores) / core::mean(scores),
                100.0 * core::fraction_within(scores, tolerance));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  tensor::Rng rng(7);

  // (1) Real measurements: 14 independent NCF runs.
  std::vector<double> ttt;
  for (int r = 0; r < 14; ++r) {
    models::NcfWorkload w({});
    core::QualityMetric target{"hr_at_10", 0.52, true};
    harness::RunOptions opts;
    opts.seed = 500 + static_cast<std::uint64_t>(r) * 31;
    opts.max_epochs = 60;
    ttt.push_back(harness::run_to_target(w, target, opts).time_to_train_ms);
  }
  std::printf("(1) real NCF time-to-train samples (ms):");
  for (double t : ttt) std::printf(" %.0f", t);
  std::printf("\n    raw cv: %.1f%% — heavy-tailed: a minority of seeds converge much\n",
              100.0 * core::stddev(ttt) / core::mean(ttt));
  std::printf("    slower. No 5-10 run aggregate stabilizes a distribution like this;\n");
  std::printf("    the paper's remedy is threshold calibration (§3.3), then aggregation.\n\n");
  report("    bootstrapped reporting policies over the real samples (tol 10%):", ttt, 0.10,
         rng);

  // (2) The designed-for regime: unimodal timing (cv ~4%) with a 10% chance
  // of a 1.5x straggler (node hiccup, unlucky data order).
  std::vector<double> designed;
  for (int i = 0; i < 4000; ++i) {
    double t = 100.0 * (1.0 + 0.04 * rng.normal());
    if (rng.uniform() < 0.10) t *= 1.5;
    designed.push_back(t);
  }
  report("(2) designed-for regime: unimodal +-4%, 10% chance of a 1.5x straggler "
         "(tol 5%):",
         designed, 0.05, rng);

  std::printf("paper: 5-run (vision) / 10-run (other) drop-min/max scoring was chosen so\n");
  std::printf("~90%% of same-system entries land within 5%%/10%%; in regime (2) the olympic\n");
  std::printf("mean reaches that band while plain means stay exposed to the straggler tail.\n");
  return 0;
}
