// §3.2.1 ablation: what the timing-rule exclusions change. We run a real
// workload once, then replay the same stage durations through TrainingTimer
// variants to show (a) init/reformat exclusion, (b) the model-creation cap
// charging only the excess, and (c) how much the unexcluded number would
// distort a fast-training result (the paper's argument for the rules).
#include <cstdio>

#include "core/timer.h"
#include "harness/reference.h"
#include "harness/run.h"

using namespace mlperf;

int main() {
  // (1) A real run: measure actual stage costs of the NCF reference.
  auto w = harness::make_reference_workload(core::BenchmarkId::kRecommendation,
                                            harness::WorkloadScale::kReference);
  const auto spec = core::find_spec(core::suite_v05(), core::BenchmarkId::kRecommendation);
  harness::RunOptions opts;
  opts.seed = 42;
  opts.max_epochs = 60;
  const auto out = harness::run_to_target(*w, spec.mini_quality, opts);
  std::printf("Timing-rules ablation on a real run (recommendation workload)\n\n");
  std::printf("official time-to-train (rules applied): %10.1f ms\n", out.time_to_train_ms);
  std::printf("unexcluded wall time (no rules):        %10.1f ms\n", out.unexcluded_time_ms);
  std::printf("distortion if rules were dropped:       %9.1f%%\n\n",
              100.0 * (out.unexcluded_time_ms / out.time_to_train_ms - 1.0));

  // (2) Controlled replay on a manual clock: the cap semantics.
  std::printf("model-creation cap semantics (cap = 1000 ms):\n");
  std::printf("%-22s %16s %18s\n", "creation time (ms)", "charged (ms)", "TTT for 500ms run");
  for (double creation : {200.0, 1000.0, 1500.0, 4000.0}) {
    core::ManualClock clock;
    core::MlLog log;
    core::TrainingTimer timer(clock, log, 1000.0);
    {
      auto r = timer.model_creation_region();
      clock.advance_ms(creation);
    }
    timer.start_run();
    clock.advance_ms(500.0);
    timer.stop_run();
    std::printf("%-22.0f %16.0f %18.0f\n", creation, timer.time_to_train_ms() - 500.0,
                timer.time_to_train_ms());
  }
  std::printf("\npaper: up to 20 min of model creation excluded; excess charged, which\n");
  std::printf("discourages compilation strategies too expensive for practice.\n");
  return 0;
}
