// Regenerates Figure 4: speedup of the fastest 16-chip entry from MLPerf v0.5
// to v0.6, despite the raised quality targets, via the calibrated cluster
// simulator (see src/sysim and DESIGN.md). The paper reports an average of
// ~1.3x across the five comparable benchmarks.
#include <cmath>
#include <cstdio>

#include "sysim/cluster.h"

using namespace mlperf::sysim;

int main() {
  std::printf("Figure 4: fastest 16-chip time-to-train, v0.5 -> v0.6\n");
  std::printf("(v0.6 includes raised quality targets where the round raised them)\n\n");
  std::printf("%-28s %14s %14s %10s\n", "benchmark", "v0.5 TTT (s)", "v0.6 TTT (s)",
              "speedup");

  ClusterConfig v5{accelerator_2019(), 16, cluster_interconnect(), stack_v05(), 1};
  ClusterConfig v6{accelerator_2019(), 16, cluster_interconnect(), stack_v06(), 1};

  double product = 1.0;
  int n = 0;
  for (const auto& w : comparable_workloads()) {
    const SimResult r5 = best_batch(apply_round(w, stack_v05()), v5, /*target_raise=*/false);
    const SimResult r6 = best_batch(apply_round(w, stack_v06()), v6, /*target_raise=*/true);
    const double speedup = r5.time_to_train_s / r6.time_to_train_s;
    std::printf("%-28s %14.1f %14.1f %9.2fx\n", w.name.c_str(), r5.time_to_train_s,
                r6.time_to_train_s, speedup);
    product *= speedup;
    ++n;
  }
  std::printf("\naverage speedup (geomean): %.2fx   (paper: ~1.3x average)\n",
              std::pow(product, 1.0 / n));
  return 0;
}
