// Regenerates Table 1 of the paper: the full MLPerf Training v0.5 suite, with
// each mini reference workload actually trained to its (scaled) quality
// target under the §3.2 timing rules. Prints the paper's columns alongside
// the measured mini-workload results.
//
// Pass --runs N to repeat each benchmark N times (seeds vary); default 1 so
// the whole suite finishes in a few minutes on one core.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/benchmark_spec.h"
#include "harness/reference.h"
#include "harness/run.h"

using namespace mlperf;

int main(int argc, char** argv) {
  std::int64_t runs = 1;
  for (int i = 1; i < argc - 1; ++i)
    if (std::strcmp(argv[i], "--runs") == 0) runs = std::atoll(argv[i + 1]);

  const core::SuiteVersion suite = core::suite_v05();
  std::printf("MLPerf Training v0.5 benchmark suite (Table 1) — mini reproduction\n");
  std::printf("%-26s %-16s %-16s %-22s %-14s %10s %8s %12s\n", "benchmark", "dataset",
              "model", "paper threshold", "mini target", "quality", "epochs", "TTT (ms)");

  for (const auto& spec : suite.benchmarks) {
    for (std::int64_t r = 0; r < runs; ++r) {
      auto w = harness::make_reference_workload(spec.id, harness::WorkloadScale::kReference);
      harness::RunOptions opts;
      opts.seed = 42 + static_cast<std::uint64_t>(r) * 101;
      opts.max_epochs = 120;
      const harness::RunOutcome out =
          harness::run_to_target(*w, spec.mini_quality, opts);
      char paper_thr[64];
      std::snprintf(paper_thr, sizeof(paper_thr), "%.3g %s", spec.paper_quality.target,
                    spec.paper_quality.name.c_str());
      char mini_thr[32];
      std::snprintf(mini_thr, sizeof(mini_thr), "%.3g", spec.mini_quality.target);
      std::printf("%-26s %-16s %-16s %-22s %-14s %10.3f %8lld %12.0f%s\n", spec.name.c_str(),
                  spec.dataset.c_str(), spec.model.c_str(), paper_thr, mini_thr,
                  out.final_quality, static_cast<long long>(out.epochs),
                  out.time_to_train_ms, out.quality_reached ? "" : "  [MISSED TARGET]");
      std::fflush(stdout);
    }
  }
  std::printf("\nruns per benchmark: %lld (paper protocol: 5 for vision, 10 otherwise;\n",
              static_cast<long long>(runs));
  std::printf("see bench/ablation_aggregation for the full drop-min/max scoring study)\n");
  return 0;
}
