// Regenerates Figure 5: number of chips in the system producing the fastest
// overall score, v0.5 -> v0.6, via the cluster simulator. The paper reports
// an average growth of ~5.5x, driven by software-stack scaling work and rule
// changes (LARS for large-batch ResNet).
#include <cmath>
#include <cstdio>

#include "sysim/cluster.h"

using namespace mlperf::sysim;

int main() {
  std::printf("Figure 5: chips behind the fastest overall entry, v0.5 -> v0.6\n\n");
  std::printf("%-28s %12s %12s %10s %16s\n", "benchmark", "v0.5 chips", "v0.6 chips",
              "growth", "v0.6 TTT (s)");

  ClusterConfig base{accelerator_2019(), 1, cluster_interconnect(), stack_v05(), 1};
  const std::int64_t max_chips = 1 << 15;

  double product = 1.0;
  int n = 0;
  for (const auto& w : comparable_workloads()) {
    ClusterConfig b5 = base;
    b5.stack = stack_v05();
    ClusterConfig b6 = base;
    b6.stack = stack_v06();
    const ScaleResult s5 = fastest_scale(apply_round(w, stack_v05()), b5, max_chips, false);
    const ScaleResult s6 = fastest_scale(apply_round(w, stack_v06()), b6, max_chips, true);
    const double growth = static_cast<double>(s6.chips) / static_cast<double>(s5.chips);
    std::printf("%-28s %12lld %12lld %9.1fx %16.1f\n", w.name.c_str(),
                static_cast<long long>(s5.chips), static_cast<long long>(s6.chips), growth,
                s6.result.time_to_train_s);
    product *= growth;
    ++n;
  }
  std::printf("\naverage growth (geomean): %.1fx   (paper: ~5.5x average)\n",
              std::pow(product, 1.0 / n));
  return 0;
}
