// §2.2.4 ablation: the two SGD-with-momentum semantics (Eq. 1, Caffe-style,
// lr inside the momentum buffer; Eq. 2, PyTorch/TF-style, lr outside).
//
// Part (1) isolates the mathematics with OPEN-LOOP gradient replay: both
// optimizers consume the identical pre-recorded gradient sequence, so the
// only difference is the update rule itself. Under a constant lr the two are
// provably identical (v1_t == lr * v2_t by induction); under a decayed lr
// they diverge — the paper's exact point.
//
// Part (2) runs CLOSED-LOOP training (real ResNet workload) and shows that
// even the "identical" constant-lr pair separates over a full session: the
// updates differ in rounding (a*(b*c) vs (a*b)*c), and training dynamics
// amplify last-bit differences — the other §2.2.4 observation, that
// mathematically equivalent implementations still produce numerically
// different results under finite precision.
#include <cmath>
#include <cstdio>
#include <vector>

#include "models/resnet.h"

using namespace mlperf;

namespace {

// ---- part 1: open-loop replay ------------------------------------------------

double open_loop_divergence(bool decay_lr) {
  tensor::Rng rng(7);
  const std::int64_t dim = 64;
  const std::int64_t steps = 200;
  // Pre-recorded gradient sequence, shared by both optimizers.
  std::vector<tensor::Tensor> grads;
  for (std::int64_t s = 0; s < steps; ++s)
    grads.push_back(tensor::Tensor::randn({dim}, rng, 0.0f, 0.3f));

  auto p1 = autograd::Variable(tensor::Tensor({dim}, 1.0f), true);
  auto p2 = autograd::Variable(tensor::Tensor({dim}, 1.0f), true);
  optim::SgdMomentum eq1({p1}, 0.9f, 0.0f, optim::MomentumSemantics::kLrInsideMomentum);
  optim::SgdMomentum eq2({p2}, 0.9f, 0.0f, optim::MomentumSemantics::kLrOutsideMomentum);
  optim::StepDecayLr sched(0.05f, decay_lr ? 0.3f : 1.0f, 50);
  for (std::int64_t s = 0; s < steps; ++s) {
    for (auto* p : {&p1, &p2}) {
      p->zero_grad();
      p->node()->accumulate_grad(grads[static_cast<std::size_t>(s)]);
    }
    const float lr = sched.lr(s);
    eq1.step(lr);
    eq2.step(lr);
  }
  double d = 0.0;
  for (std::int64_t i = 0; i < dim; ++i) {
    const double diff = static_cast<double>(p1.value()[i]) - p2.value()[i];
    d += diff * diff;
  }
  return std::sqrt(d);
}

// ---- part 2: closed-loop training ---------------------------------------------

struct Outcome {
  double final_accuracy = 0.0;
  std::vector<float> weights;
};

Outcome closed_loop_train(optim::MomentumSemantics sem, bool decay_lr) {
  models::ResNetWorkload::Config cfg;
  cfg.dataset.train_size = 256;
  cfg.momentum_semantics = sem;
  cfg.warmup_steps = 0;
  cfg.lr_decay_gamma = decay_lr ? 0.3f : 1.0f;
  cfg.lr_decay_epochs = 2;
  models::ResNetWorkload w(cfg);
  w.prepare_data();
  w.build_model(42);
  for (int e = 0; e < 8; ++e) w.train_epoch();
  Outcome out;
  out.final_accuracy = w.evaluate();
  for (const auto& p : w.model()->parameters())
    for (std::int64_t i = 0; i < p.numel(); ++i) out.weights.push_back(p.value()[i]);
  return out;
}

double weight_distance(const Outcome& a, const Outcome& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.weights.size(); ++i) {
    const double diff = static_cast<double>(a.weights[i]) - b.weights[i];
    d += diff * diff;
  }
  return std::sqrt(d);
}

}  // namespace

int main() {
  std::printf("Momentum-semantics ablation (paper Eq. 1 vs Eq. 2, §2.2.4)\n\n");

  std::printf("(1) open-loop gradient replay — the update rules in isolation:\n");
  std::printf("    constant lr:  ||w_eq1 - w_eq2|| = %.2e   (identical up to rounding)\n",
              open_loop_divergence(false));
  std::printf("    decayed lr:   ||w_eq1 - w_eq2|| = %.2e   (genuinely different rules)\n\n",
              open_loop_divergence(true));

  std::printf("(2) closed-loop training (real workload, same seed):\n");
  const Outcome c1 = closed_loop_train(optim::MomentumSemantics::kLrInsideMomentum, false);
  const Outcome c2 = closed_loop_train(optim::MomentumSemantics::kLrOutsideMomentum, false);
  std::printf("    constant lr:  ||w|| dist %.4f, acc %.3f vs %.3f — equivalent math still\n"
              "                  drifts apart: rounding differences are amplified by the\n"
              "                  training feedback loop (a §2.2.3 variance source)\n",
              weight_distance(c1, c2), c1.final_accuracy, c2.final_accuracy);
  const Outcome d1 = closed_loop_train(optim::MomentumSemantics::kLrInsideMomentum, true);
  const Outcome d2 = closed_loop_train(optim::MomentumSemantics::kLrOutsideMomentum, true);
  std::printf("    decayed lr:   ||w|| dist %.4f, acc %.3f vs %.3f\n\n",
              weight_distance(d1, d2), d1.final_accuracy, d2.final_accuracy);

  std::printf("paper: the two definitions only coincide mathematically while lr is fixed;\n");
  std::printf("workload equivalence (Closed division) must therefore pin the optimizer\n");
  std::printf("definition, not just its hyperparameters.\n");
  return 0;
}
