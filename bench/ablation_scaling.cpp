// Scale study with REAL training on a virtual clock: the §2.2.2 trade-off
// end-to-end. The ResNet mini workload is trained data-parallel (real sharded
// gradients + ordered all-reduce) at increasing worker counts with a fixed
// per-worker batch, while a ManualClock is advanced by the modeled
// synchronous step time (compute + interconnect all-reduce). Reported:
// epochs-to-target (grows with the global batch) and simulated time-to-train
// (falls with parallelism, until epoch inflation and communication eat the
// gains) — the full mechanism behind Figures 4/5, driven by actual learning
// dynamics instead of the closed-form sysim curve.
#include <cstdio>
#include <vector>

#include "data/loader.h"
#include "metrics/metrics.h"
#include "models/resnet.h"
#include "nn/functional.h"
#include "sysim/data_parallel.h"

using namespace mlperf;

int main() {
  const double target = 0.75;
  const std::int64_t per_worker_batch = 16;
  const std::int64_t max_epochs = 30;

  std::printf("Data-parallel scale study (real training, virtual clock)\n");
  std::printf("per-worker batch %lld, target top-1 %.2f\n\n",
              static_cast<long long>(per_worker_batch), target);
  std::printf("%-10s %12s %10s %14s %16s\n", "workers", "global batch", "epochs",
              "sim step (ms)", "sim TTT (s)");

  const sysim::ChipProfile chip = sysim::accelerator_2019();
  const sysim::Interconnect net = sysim::cluster_interconnect();
  const sysim::SoftwareStack stack = sysim::stack_v05();

  for (std::int64_t workers : {1, 2, 4, 8, 16}) {
    const std::int64_t global_batch = workers * per_worker_batch;

    data::SyntheticImageDataset dataset({});
    data::ReformattedSplits splits = data::reformat(dataset);
    tensor::Rng rng(42);
    tensor::Rng init_rng = rng.split();
    models::ResNetMini model({}, init_rng);
    std::vector<autograd::Variable> params = model.parameters();
    optim::SgdMomentum opt(params, 0.9f, 5e-4f);
    // Linear-scaling rule so larger global batches stay convergent.
    const std::int64_t steps_per_epoch =
        (dataset.train_size() + global_batch - 1) / global_batch;
    optim::LinearScalingWarmupLr schedule(0.08f, global_batch, 32, 10, 0.6f,
                                          4 * steps_per_epoch);
    data::AugmentationPipeline augment =
        data::AugmentationPipeline::reference_image_pipeline();

    tensor::Rng dp_rng(7);
    sysim::DataParallelStep::Config cfg;
    cfg.num_workers = workers;
    cfg.reduction_order = sysim::ReductionOrder::kPermuted;
    cfg.chip = &chip;
    cfg.interconnect = &net;
    cfg.stack = &stack;
    cfg.flops_per_sample = 12e9 / 1000.0;  // mini model ~ 1/1000th of ResNet-50
    sysim::DataParallelStep dp(cfg, dp_rng);

    core::ManualClock clock;
    std::int64_t step_idx = 0;
    std::int64_t epochs_used = 0;
    double last_step_s = 0.0;
    double accuracy = 0.0;
    for (std::int64_t epoch = 0; epoch < max_epochs; ++epoch) {
      model.set_training(true);
      data::ImageLoader loader(splits.train, global_batch, &augment, rng,
                               /*drop_last=*/true);
      while (loader.has_next()) {
        data::ImageBatch batch = loader.next();
        last_step_s = dp.step(
            global_batch,
            [&](std::int64_t b, std::int64_t e) {
              model.zero_grad();
              tensor::Tensor shard = batch.images.slice0(b, e);
              std::vector<std::int64_t> labels(batch.labels.begin() + b,
                                               batch.labels.begin() + e);
              autograd::Variable loss =
                  nn::cross_entropy(model.forward(autograd::Variable(shard)), labels);
              autograd::mul_scalar(loss, static_cast<float>(e - b)).backward();
              std::vector<tensor::Tensor> grads;
              for (const auto& p : params) grads.push_back(p.grad());
              return grads;
            },
            params, &clock);
        opt.step(schedule.lr(step_idx++));
      }
      epochs_used = epoch + 1;
      // Evaluate.
      model.set_training(false);
      tensor::Rng eval_rng(0);
      data::ImageLoader eval(splits.val, 64, nullptr, eval_rng);
      std::vector<std::int64_t> preds, targets;
      while (eval.has_next()) {
        data::ImageBatch b = eval.next();
        for (auto p : model.forward(autograd::Variable(b.images)).value().argmax_last())
          preds.push_back(p);
        targets.insert(targets.end(), b.labels.begin(), b.labels.end());
      }
      accuracy = metrics::top1_accuracy(preds, targets);
      if (accuracy >= target) break;
    }
    std::printf("%-10lld %12lld %10lld %14.2f %16.2f%s\n", static_cast<long long>(workers),
                static_cast<long long>(global_batch), static_cast<long long>(epochs_used),
                last_step_s * 1e3, clock.now_ms() / 1e3,
                accuracy >= target ? "" : "  [missed]");
    std::fflush(stdout);
  }
  std::printf("\nepochs grow with the global batch (the paper's §2.2.2 effect, here from\n");
  std::printf("real learning dynamics); simulated TTT improves with workers until epoch\n");
  std::printf("inflation and all-reduce cost absorb the parallelism.\n");
  return 0;
}
