// Regenerates Figure 2: run-to-run variation in epochs-to-target for NCF
// (top) and MiniGo (bottom), with identical hyperparameters except the seed.
// The paper's claims to reproduce: NCF epochs-to-target varies across seeds,
// and MiniGo shows substantially higher relative variance — including
// variability under a FIXED seed (we model that with the workload's
// nondeterministic_scheduling flag; see models/minigo.h).
#include <cstdio>
#include <vector>

#include "core/aggregate.h"
#include "harness/run.h"
#include "models/minigo.h"
#include "models/ncf.h"

using namespace mlperf;

namespace {

void print_histogram(const char* name, const std::vector<double>& epochs) {
  std::printf("%s epochs-to-target per run:", name);
  for (double e : epochs) std::printf(" %.0f", e);
  const double m = core::mean(epochs);
  const double s = core::stddev(epochs);
  std::printf("\n  mean %.1f  stddev %.2f  cv %.2f%%\n\n", m, s, 100.0 * s / m);
}

}  // namespace

int main() {
  std::printf("Figure 2: epochs to reach the quality target across repetitions\n\n");

  // (a) NCF: 10 runs, identical HPs, different seeds.
  {
    std::vector<double> epochs;
    for (int r = 0; r < 10; ++r) {
      models::NcfWorkload w({});
      core::QualityMetric target{"hr_at_10", 0.52, true};
      harness::RunOptions opts;
      opts.seed = 1000 + static_cast<std::uint64_t>(r) * 37;
      opts.max_epochs = 60;
      const auto out = harness::run_to_target(w, target, opts);
      epochs.push_back(static_cast<double>(out.epochs));
    }
    print_histogram("(a) NCF", epochs);
  }

  // (b) MiniGo: fewer, slower runs; higher variance expected. A reduced
  // config keeps each run ~10 s.
  models::MiniGoWorkload::Config mg;
  mg.mcts.simulations = 12;
  mg.selfplay_games_per_epoch = 2;
  mg.max_game_moves = 28;
  mg.train_batches_per_epoch = 12;
  mg.reference_games = 4;
  mg.reference_teacher_sims = 24;
  mg.reference_moves_per_game = 12;
  const core::QualityMetric mg_target{"move_prediction", 0.25, true};
  {
    std::vector<double> epochs;
    for (int r = 0; r < 5; ++r) {
      models::MiniGoWorkload w(mg);
      harness::RunOptions opts;
      opts.seed = 2000 + static_cast<std::uint64_t>(r) * 37;
      opts.max_epochs = 60;
      const auto out = harness::run_to_target(w, mg_target, opts);
      epochs.push_back(static_cast<double>(out.epochs));
    }
    print_histogram("(b) MiniGo (varying seeds)", epochs);
  }

  // (b') MiniGo with a FIXED seed and scheduling nondeterminism on — the
  // paper's colored-groupings observation.
  {
    std::vector<double> epochs;
    models::MiniGoWorkload::Config fixed = mg;
    fixed.nondeterministic_scheduling = true;
    for (int r = 0; r < 3; ++r) {
      models::MiniGoWorkload w(fixed);
      harness::RunOptions opts;
      opts.seed = 2020;  // identical seed every repetition
      opts.max_epochs = 60;
      const auto out = harness::run_to_target(w, mg_target, opts);
      epochs.push_back(static_cast<double>(out.epochs));
    }
    print_histogram("(b') MiniGo (fixed seed, nondeterministic scheduling)", epochs);
  }
  return 0;
}
