// §6 future-work item, realized: the table mapping system scale and numeric
// precision to recommended hyperparameters for each benchmark. Printed for
// both rounds so the LARS switch-over at large ResNet batches (v0.6 only) is
// visible, and for fp32 vs fp16 so the loss-scaling recommendation shows.
#include <cstdio>

#include "harness/hp_table.h"

using namespace mlperf;

int main() {
  const std::vector<std::int64_t> scales = {1, 16, 256, 1024};
  for (const auto& suite : {core::suite_v05(), core::suite_v06()}) {
    std::printf("%s\n",
                harness::format_hp_table(suite, scales, numerics::Format::kFP32).c_str());
  }
  std::printf("%s\n", harness::format_hp_table(core::suite_v06(), {16, 256},
                                               numerics::Format::kFP16)
                          .c_str());
  return 0;
}
