// §2.2.2 ablation: the batch-size / epochs-to-converge trade-off. The paper's
// data point: ResNet needs ~64 epochs at 4K global batch but 80+ at 16K — a
// ~30% computation increase that large systems accept in exchange for
// parallelism. We reproduce the shape twice:
//   (1) measured: the mini ResNet workload swept over real minibatch sizes;
//   (2) modeled: the calibrated sysim convergence curve at paper scale.
#include <cstdio>

#include "harness/run.h"
#include "models/resnet.h"
#include "sysim/cluster.h"

using namespace mlperf;

int main() {
  std::printf("(1) measured on the mini workload: epochs to reach 0.78 top-1\n");
  std::printf("%-12s %10s %12s\n", "batch", "epochs", "TTT (ms)");
  for (std::int64_t batch : {16, 32, 64, 128}) {
    models::ResNetWorkload::Config cfg;
    cfg.batch_size = batch;
    // Linear-scaling rule keeps the workload convergent across the sweep.
    models::ResNetWorkload w(cfg);
    core::QualityMetric target{"top1_accuracy", 0.78, true};
    harness::RunOptions opts;
    opts.seed = 42;
    opts.max_epochs = 60;
    const auto out = harness::run_to_target(w, target, opts);
    std::printf("%-12lld %10lld %12.0f%s\n", static_cast<long long>(batch),
                static_cast<long long>(out.epochs), out.time_to_train_ms,
                out.quality_reached ? "" : "  [missed]");
    std::fflush(stdout);
  }

  std::printf("\n(2) modeled at paper scale (sysim ResNet convergence curve):\n");
  std::printf("%-12s %10s %14s\n", "batch", "epochs", "vs 4K batch");
  const auto workloads = sysim::comparable_workloads();
  const auto& resnet = workloads[0];
  const double e4k = resnet.epochs_at_batch(4096);
  for (double b : {256.0, 1024.0, 4096.0, 8192.0, 16384.0, 32768.0}) {
    const double e = resnet.epochs_at_batch(b);
    std::printf("%-12.0f %10.1f %13.0f%%\n", b, e, 100.0 * (e / e4k - 1.0));
  }
  std::printf("\npaper §2.2.2: ~64 epochs at 4K, 80+ at 16K (+30%% computation)\n");
  return 0;
}
