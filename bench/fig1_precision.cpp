// Regenerates Figure 1: validation ERROR curves of the image-classification
// workload trained under different weight representations (after Zhu et al.
// 2016). The paper's qualitative claims to reproduce:
//   * curves only separate after a number of epochs, and
//   * the lowest-precision formats never reach the fp32 error floor.
#include <cstdio>
#include <vector>

#include "harness/run.h"
#include "models/resnet.h"

using namespace mlperf;

int main() {
  const std::vector<numerics::Format> formats = {
      numerics::Format::kFP32, numerics::Format::kBF16, numerics::Format::kFP8E4M3,
      numerics::Format::kTernary};
  const std::int64_t epochs = 14;

  std::printf("Figure 1: validation error vs epoch by weight representation\n");
  std::printf("(image_classification mini workload, one seed, %lld epochs)\n\n",
              static_cast<long long>(epochs));
  std::printf("%-8s", "epoch");
  for (const auto f : formats) std::printf("%12s", numerics::to_string(f).c_str());
  std::printf("\n");

  std::vector<std::vector<double>> error_curves;
  for (const auto f : formats) {
    models::ResNetWorkload::Config cfg;
    cfg.weight_format = f;
    models::ResNetWorkload w(cfg);
    // Fixed epoch budget: disable early stop by using an unreachable target.
    core::QualityMetric unreachable{"top1_accuracy", 2.0, true};
    harness::RunOptions opts;
    opts.seed = 42;
    opts.max_epochs = epochs;
    const harness::RunOutcome out = harness::run_to_target(w, unreachable, opts);
    std::vector<double> errors;
    for (const auto& p : out.curve) errors.push_back(1.0 - p.quality);
    error_curves.push_back(std::move(errors));
  }

  for (std::int64_t e = 0; e < epochs; ++e) {
    std::printf("%-8lld", static_cast<long long>(e + 1));
    for (const auto& curve : error_curves)
      std::printf("%12.3f", curve[static_cast<std::size_t>(e)]);
    std::printf("\n");
  }

  const double fp32_final = error_curves[0].back();
  std::printf("\nfinal validation error: fp32=%.3f bf16=%.3f fp8=%.3f ternary=%.3f\n",
              error_curves[0].back(), error_curves[1].back(), error_curves[2].back(),
              error_curves[3].back());
  std::printf("gap to fp32 floor:      bf16=%+.3f fp8=%+.3f ternary=%+.3f\n",
              error_curves[1].back() - fp32_final, error_curves[2].back() - fp32_final,
              error_curves[3].back() - fp32_final);
  return 0;
}
