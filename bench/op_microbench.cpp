// DeepBench-style kernel microbenchmarks (paper §2.3 background): the
// operations that dominate the suite's workloads, measured with
// google-benchmark. The paper's point — and the reason MLPerf is NOT a
// microbenchmark — is that these numbers say nothing about end-to-end
// time-to-quality; they are included as the baseline the suite improves on.
#include <benchmark/benchmark.h>

#include "nn/functional.h"
#include "nn/layers.h"
#include "parallel/parallel_for.h"
#include "tensor/tensor.h"

using namespace mlperf;
using tensor::Rng;
using tensor::Tensor;

static void BM_Gemm(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = a.matmul(b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

static void BM_Conv2dForward(benchmark::State& state) {
  const std::int64_t c = state.range(0);
  Rng rng(2);
  Tensor x = Tensor::randn({4, c, 16, 16}, rng);
  Tensor w = Tensor::randn({c, c, 3, 3}, rng);
  autograd::Variable vx(x), vw(w);
  for (auto _ : state) {
    auto y = nn::conv2d(vx, vw, autograd::Variable(), 1, 1);
    benchmark::DoNotOptimize(y.value().data());
  }
}
BENCHMARK(BM_Conv2dForward)->Arg(8)->Arg(16)->Arg(32);

// Threaded variants: same kernels through the parallel_for partitioner with a
// worker pool of range(1) threads. The output is bitwise identical across the
// thread counts (asserted in tests/test_parallel.cpp); only the wall time may
// move. Thread count 1 keeps the pool absent, i.e. the inline path above.
static void BM_GemmThreaded(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  parallel::set_num_threads(state.range(1));
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = a.matmul(b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  parallel::set_num_threads(1);
}
BENCHMARK(BM_GemmThreaded)
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->Args({512, 1})
    ->Args({512, 2})
    ->Args({512, 4});

static void BM_Conv2dForwardThreaded(benchmark::State& state) {
  const std::int64_t c = state.range(0);
  parallel::set_num_threads(state.range(1));
  Rng rng(2);
  Tensor x = Tensor::randn({4, c, 16, 16}, rng);
  Tensor w = Tensor::randn({c, c, 3, 3}, rng);
  autograd::Variable vx(x), vw(w);
  for (auto _ : state) {
    auto y = nn::conv2d(vx, vw, autograd::Variable(), 1, 1);
    benchmark::DoNotOptimize(y.value().data());
  }
  parallel::set_num_threads(1);
}
BENCHMARK(BM_Conv2dForwardThreaded)
    ->Args({32, 1})
    ->Args({32, 2})
    ->Args({32, 4});

static void BM_Conv2dTrainStep(benchmark::State& state) {
  const std::int64_t c = state.range(0);
  Rng rng(3);
  Tensor x = Tensor::randn({4, c, 16, 16}, rng);
  Tensor w = Tensor::randn({c, c, 3, 3}, rng);
  for (auto _ : state) {
    autograd::Variable vw(w, true);
    auto y = nn::conv2d(autograd::Variable(x), vw, autograd::Variable(), 1, 1);
    autograd::sum_all(y).backward();
    benchmark::DoNotOptimize(vw.grad().data());
  }
}
BENCHMARK(BM_Conv2dTrainStep)->Arg(8)->Arg(16);

static void BM_SoftmaxLast(benchmark::State& state) {
  Rng rng(4);
  Tensor x = Tensor::randn({256, state.range(0)}, rng);
  for (auto _ : state) {
    Tensor y = x.softmax_last();
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_SoftmaxLast)->Arg(128)->Arg(1024);

static void BM_BatchNormForward(benchmark::State& state) {
  Rng rng(5);
  nn::BatchNorm2d bn(16);
  Tensor x = Tensor::randn({8, 16, 16, 16}, rng);
  for (auto _ : state) {
    auto y = bn.forward(autograd::Variable(x));
    benchmark::DoNotOptimize(y.value().data());
  }
}
BENCHMARK(BM_BatchNormForward);

static void BM_Attention(benchmark::State& state) {
  Rng rng(6);
  nn::MultiHeadAttention mha(64, 4, rng);
  autograd::Variable x(Tensor::randn({4, state.range(0), 64}, rng));
  for (auto _ : state) {
    auto y = mha.forward(x, x, x);
    benchmark::DoNotOptimize(y.value().data());
  }
}
BENCHMARK(BM_Attention)->Arg(8)->Arg(32);

static void BM_LstmCell(benchmark::State& state) {
  Rng rng(7);
  nn::LSTMCell cell(64, 64, rng);
  auto s = cell.zero_state(16);
  autograd::Variable x(Tensor::randn({16, 64}, rng));
  for (auto _ : state) {
    auto next = cell.forward(x, s);
    benchmark::DoNotOptimize(next.h.value().data());
  }
}
BENCHMARK(BM_LstmCell);

BENCHMARK_MAIN();
