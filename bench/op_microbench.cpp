// DeepBench-style kernel microbenchmarks (paper §2.3 background): the
// operations that dominate the suite's workloads, measured with
// google-benchmark. The paper's point — and the reason MLPerf is NOT a
// microbenchmark — is that these numbers say nothing about end-to-end
// time-to-quality; they are included as the baseline the suite improves on.
//
// Run with --benchmark_format=json to get machine-readable output; the
// custom main below stamps the kernel configuration into the JSON context.
// BENCH_kernels.json at the repo root is the checked-in before/after
// snapshot of the packed-GEMM change at the ResNet and Transformer shapes
// (the *Ref benchmarks here regenerate the "before" side from the retained
// scalar kernel).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "checkpoint/format.h"
#include "checkpoint/state.h"
#include "harness/reference.h"
#include "models/ncf.h"
#include "models/resnet.h"
#include "models/transformer.h"
#include "nn/functional.h"
#include "nn/layers.h"
#include "parallel/parallel_for.h"
#include "tensor/gemm.h"
#include "tensor/tensor.h"

using namespace mlperf;
using tensor::Rng;
using tensor::Tensor;

static void BM_Gemm(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = a.matmul(b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

// The retained pre-PR2 scalar kernel at the same square sizes: the "before"
// row of BENCH_kernels.json, regenerable from this binary forever.
static void BM_GemmRef(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    std::fill(c.vec().begin(), c.vec().end(), 0.0f);
    tensor::gemm_accumulate_ref(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmRef)->Arg(64)->Arg(256);

// Rectangular GEMMs at the suite's workload shapes. Args are {m, k, n}.
// resnet: the im2col GEMM of a 3x3 conv on a 16x16 plane at 32 channels
// (weight [32, 288] x columns [288, 256]) — the per-sample product inside
// BM_Conv2dForward/32. transformer_ffn: tokens x model_dim x ff_dim for the
// suite's TransformerBlock at batch 4, seq 32.
static void gemm_shape_body(benchmark::State& state, bool use_ref) {
  const std::int64_t m = state.range(0), k = state.range(1), n = state.range(2);
  Rng rng(11);
  Tensor a = Tensor::randn({m, k}, rng);
  Tensor b = Tensor::randn({k, n}, rng);
  Tensor c({m, n});
  for (auto _ : state) {
    std::fill(c.vec().begin(), c.vec().end(), 0.0f);
    if (use_ref)
      tensor::gemm_accumulate_ref(a.data(), b.data(), c.data(), m, k, n);
    else
      tensor::gemm_accumulate(a.data(), b.data(), c.data(), m, k, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * k * n);
}
static void BM_GemmShape(benchmark::State& state) { gemm_shape_body(state, false); }
static void BM_GemmShapeRef(benchmark::State& state) { gemm_shape_body(state, true); }
BENCHMARK(BM_GemmShape)
    ->ArgNames({"m", "k", "n"})
    ->Args({32, 288, 256})    // resnet conv-as-GEMM
    ->Args({128, 32, 128});   // transformer FFN
BENCHMARK(BM_GemmShapeRef)
    ->ArgNames({"m", "k", "n"})
    ->Args({32, 288, 256})
    ->Args({128, 32, 128});

// Batched matmul at the attention shape of the suite's Transformer (batch 4,
// 4 heads, seq 32, head dim 8): scores = Q K^T through the transposed-B
// variant, exactly as MultiHeadAttention now issues it.
static void BM_BmmAttention(benchmark::State& state) {
  const std::int64_t bh = 16, t = 32, dh = 8;
  Rng rng(12);
  Tensor q = Tensor::randn({bh, t, dh}, rng);
  Tensor k = Tensor::randn({bh, t, dh}, rng);
  for (auto _ : state) {
    Tensor s = q.bmm(k, tensor::Trans::N, tensor::Trans::T);
    benchmark::DoNotOptimize(s.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * bh * t * t * dh);
}
BENCHMARK(BM_BmmAttention);

static void BM_Conv2dForward(benchmark::State& state) {
  const std::int64_t c = state.range(0);
  Rng rng(2);
  Tensor x = Tensor::randn({4, c, 16, 16}, rng);
  Tensor w = Tensor::randn({c, c, 3, 3}, rng);
  autograd::Variable vx(x), vw(w);
  for (auto _ : state) {
    auto y = nn::conv2d(vx, vw, autograd::Variable(), 1, 1);
    benchmark::DoNotOptimize(y.value().data());
  }
}
BENCHMARK(BM_Conv2dForward)->Arg(8)->Arg(16)->Arg(32);

// Threaded variants: same kernels through the parallel_for partitioner with a
// worker pool of range(1) threads. The output is bitwise identical across the
// thread counts (asserted in tests/test_parallel.cpp); only the wall time may
// move. Thread count 1 keeps the pool absent, i.e. the inline path above.
static void BM_GemmThreaded(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  parallel::set_num_threads(state.range(1));
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = a.matmul(b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  parallel::set_num_threads(1);
}
BENCHMARK(BM_GemmThreaded)
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->Args({512, 1})
    ->Args({512, 2})
    ->Args({512, 4});

static void BM_Conv2dForwardThreaded(benchmark::State& state) {
  const std::int64_t c = state.range(0);
  parallel::set_num_threads(state.range(1));
  Rng rng(2);
  Tensor x = Tensor::randn({4, c, 16, 16}, rng);
  Tensor w = Tensor::randn({c, c, 3, 3}, rng);
  autograd::Variable vx(x), vw(w);
  for (auto _ : state) {
    auto y = nn::conv2d(vx, vw, autograd::Variable(), 1, 1);
    benchmark::DoNotOptimize(y.value().data());
  }
  parallel::set_num_threads(1);
}
BENCHMARK(BM_Conv2dForwardThreaded)
    ->Args({32, 1})
    ->Args({32, 2})
    ->Args({32, 4});

static void BM_Conv2dTrainStep(benchmark::State& state) {
  const std::int64_t c = state.range(0);
  Rng rng(3);
  Tensor x = Tensor::randn({4, c, 16, 16}, rng);
  Tensor w = Tensor::randn({c, c, 3, 3}, rng);
  for (auto _ : state) {
    autograd::Variable vw(w, true);
    auto y = nn::conv2d(autograd::Variable(x), vw, autograd::Variable(), 1, 1);
    autograd::sum_all(y).backward();
    benchmark::DoNotOptimize(vw.grad().data());
  }
}
BENCHMARK(BM_Conv2dTrainStep)->Arg(8)->Arg(16);

// The weight-gradient pass in isolation (forward excluded via PauseTiming):
// the gemm_f64acc + pack-cache target of PR 5, previously a naive unblocked
// double dot-product loop plus a per-sample im2col re-pack.
static void BM_Conv2dDw(benchmark::State& state) {
  const std::int64_t c = state.range(0);
  Rng rng(13);
  Tensor x = Tensor::randn({4, c, 16, 16}, rng);
  Tensor w = Tensor::randn({c, c, 3, 3}, rng);
  for (auto _ : state) {
    state.PauseTiming();
    autograd::Variable vw(w, true);
    auto y = nn::conv2d(autograd::Variable(x), vw, autograd::Variable(), 1, 1);
    Tensor seed(y.shape(), 1.0f);
    state.ResumeTiming();
    y.backward(seed);
    benchmark::DoNotOptimize(vw.grad().data());
  }
}
BENCHMARK(BM_Conv2dDw)->Arg(8)->Arg(16);

// Full conv train step with the step-scoped im2col pack cache off (Arg 0) and
// on (Arg 1). Doubles as the CI smoke check of the cache contract: the run
// errors out unless im2col_calls() advanced by exactly one sweep per step
// cached and two uncached.
static void BM_Im2colPackCache(benchmark::State& state) {
  const bool cached = state.range(0) != 0;
  nn::set_conv_pack_cache(cached);
  Rng rng(14);
  Tensor x = Tensor::randn({4, 8, 16, 16}, rng);
  Tensor w = Tensor::randn({8, 8, 3, 3}, rng);
  std::int64_t steps = 0;
  const std::int64_t calls0 = nn::im2col_calls();
  for (auto _ : state) {
    autograd::Variable vw(w, true);
    auto y = nn::conv2d(autograd::Variable(x), vw, autograd::Variable(), 1, 1);
    autograd::sum_all(y).backward();
    benchmark::DoNotOptimize(vw.grad().data());
    ++steps;
  }
  const std::int64_t sweeps = nn::im2col_calls() - calls0;
  if (sweeps != (cached ? steps : 2 * steps))
    state.SkipWithError("im2col_calls() violates the pack-cache contract");
  nn::set_conv_pack_cache(true);
}
BENCHMARK(BM_Im2colPackCache)->Arg(0)->Arg(1);

// Attention's softmax: the fused scale+mask+softmax node vs the three-node
// chain it replaced (bitwise-identical outputs; this pair measures the win).
static void BM_FusedScaledSoftmax(benchmark::State& state) {
  const std::int64_t t = state.range(0);
  Rng rng(15);
  Tensor scores = Tensor::randn({16, t, t}, rng);
  Tensor mask = Tensor::uninitialized({t, t});
  for (std::int64_t i = 0; i < t; ++i)
    for (std::int64_t j = 0; j < t; ++j) mask[i * t + j] = j > i ? -1e9f : 0.0f;
  for (auto _ : state) {
    auto y = nn::fused_scaled_softmax(autograd::Variable(scores), 0.125f, mask);
    benchmark::DoNotOptimize(y.value().data());
  }
}
BENCHMARK(BM_FusedScaledSoftmax)->Arg(32)->Arg(64);

static void BM_ScaledSoftmaxUnfusedRef(benchmark::State& state) {
  const std::int64_t t = state.range(0);
  Rng rng(15);
  Tensor scores = Tensor::randn({16, t, t}, rng);
  Tensor mask = Tensor::uninitialized({t, t});
  for (std::int64_t i = 0; i < t; ++i)
    for (std::int64_t j = 0; j < t; ++j) mask[i * t + j] = j > i ? -1e9f : 0.0f;
  for (auto _ : state) {
    auto s = autograd::mul_scalar(autograd::Variable(scores), 0.125f);
    s = autograd::add(s, autograd::Variable(mask));
    auto y = autograd::softmax_last(s);
    benchmark::DoNotOptimize(y.value().data());
  }
}
BENCHMARK(BM_ScaledSoftmaxUnfusedRef)->Arg(32)->Arg(64);

static void BM_SoftmaxLast(benchmark::State& state) {
  Rng rng(4);
  Tensor x = Tensor::randn({256, state.range(0)}, rng);
  for (auto _ : state) {
    Tensor y = x.softmax_last();
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_SoftmaxLast)->Arg(128)->Arg(1024);

static void BM_BatchNormForward(benchmark::State& state) {
  Rng rng(5);
  nn::BatchNorm2d bn(16);
  Tensor x = Tensor::randn({8, 16, 16, 16}, rng);
  for (auto _ : state) {
    auto y = bn.forward(autograd::Variable(x));
    benchmark::DoNotOptimize(y.value().data());
  }
}
BENCHMARK(BM_BatchNormForward);

static void BM_Attention(benchmark::State& state) {
  Rng rng(6);
  nn::MultiHeadAttention mha(64, 4, rng);
  autograd::Variable x(Tensor::randn({4, state.range(0), 64}, rng));
  for (auto _ : state) {
    auto y = mha.forward(x, x, x);
    benchmark::DoNotOptimize(y.value().data());
  }
}
BENCHMARK(BM_Attention)->Arg(8)->Arg(32);

static void BM_LstmCell(benchmark::State& state) {
  Rng rng(7);
  nn::LSTMCell cell(64, 64, rng);
  auto s = cell.zero_state(16);
  autograd::Variable x(Tensor::randn({16, 64}, rng));
  for (auto _ : state) {
    auto next = cell.forward(x, s);
    benchmark::DoNotOptimize(next.h.value().data());
  }
}
BENCHMARK(BM_LstmCell);

// --- End-to-end train steps (BENCH_trainstep.json regenerates from these) ---
// One complete training step per iteration — zero_grad, forward, loss,
// backward, optimizer update — for three of the suite's reference models.
// These are the numbers the tensor-pool / fused-update work moves: the
// kernels themselves were PR 1/2; what remains per step is the allocation
// and bookkeeping around them.

static void BM_TrainStepResnet(benchmark::State& state) {
  Rng rng(21);
  tensor::Rng init_rng(7);
  models::ResNetMini::Config cfg;  // defaults: 2 stages {8,16}, expansion 2
  models::ResNetMini model(cfg, init_rng);
  optim::SgdMomentum opt(model.parameters(), 0.9f, 5e-4f);
  const std::int64_t batch = 8;
  Tensor images = Tensor::randn({batch, cfg.in_channels, 16, 16}, rng);
  std::vector<std::int64_t> labels(static_cast<std::size_t>(batch));
  for (std::size_t i = 0; i < labels.size(); ++i)
    labels[i] = static_cast<std::int64_t>(i) % cfg.num_classes;
  for (auto _ : state) {
    opt.zero_grad();
    auto logits = model.forward(autograd::Variable(images));
    auto loss = nn::cross_entropy(logits, labels);
    loss.backward();
    opt.step(0.01f);
    benchmark::DoNotOptimize(loss.value().data());
  }
}
BENCHMARK(BM_TrainStepResnet);

static void BM_TrainStepNcf(benchmark::State& state) {
  tensor::Rng init_rng(8);
  models::NeuMf::Config cfg;  // defaults: 64 users, 128 items
  models::NeuMf model(cfg, init_rng);
  optim::Adam opt(model.parameters());
  const std::int64_t batch = 256;
  std::vector<std::int64_t> users, items;
  std::vector<float> labels;
  for (std::int64_t i = 0; i < batch; ++i) {
    users.push_back(i % cfg.num_users);
    items.push_back((i * 7) % cfg.num_items);
    labels.push_back(i % 5 == 0 ? 1.0f : 0.0f);
  }
  for (auto _ : state) {
    opt.zero_grad();
    auto logits = model.forward(users, items);
    auto loss = nn::bce_with_logits(logits, labels);
    loss.backward();
    opt.step(0.002f);
    benchmark::DoNotOptimize(loss.value().data());
  }
}
BENCHMARK(BM_TrainStepNcf);

static void BM_TrainStepTransformer(benchmark::State& state) {
  tensor::Rng init_rng(9);
  models::TransformerModel::Config cfg;  // defaults: dim 32, 2+2 blocks
  models::TransformerModel model(cfg, init_rng);
  optim::Adam opt(model.parameters());
  const std::int64_t batch = 8, seq = 12;
  std::vector<data::TokenSeq> src, tgt_in;
  std::vector<std::int64_t> targets;
  for (std::int64_t b = 0; b < batch; ++b) {
    data::TokenSeq s, t{data::kBos};
    for (std::int64_t i = 0; i < seq; ++i) {
      s.push_back(data::kFirstWord + (b * 3 + i) % (cfg.vocab - data::kFirstWord));
      const std::int64_t tok = data::kFirstWord + (b * 5 + i) % (cfg.vocab - data::kFirstWord);
      t.push_back(tok);
      targets.push_back(tok);
    }
    targets.push_back(data::kEos);
    src.push_back(std::move(s));
    tgt_in.push_back(std::move(t));
  }
  for (auto _ : state) {
    opt.zero_grad();
    auto memory = model.encode(src);
    auto logits = model.decode(tgt_in, memory);
    auto loss = nn::cross_entropy(logits, targets);
    loss.backward();
    opt.step(0.003f);
    benchmark::DoNotOptimize(loss.value().data());
  }
}
BENCHMARK(BM_TrainStepTransformer);

// --- Checkpoint subsystem (BENCH_checkpoint.json regenerates from these) ---
// Checkpoint writes land INSIDE the timed §3.2.1 run window, so their cost is
// part of every fault-tolerant time-to-train result; these entries pin it.

static void BM_Crc32c(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<std::uint8_t>(i * 131);
  for (auto _ : state) {
    std::uint32_t crc = checkpoint::crc32c(buf.data(), buf.size());
    benchmark::DoNotOptimize(crc);
  }
  state.SetBytesProcessed(state.iterations() * n);
}
BENCHMARK(BM_Crc32c)->Arg(1 << 12)->Arg(1 << 20);

namespace {
std::unique_ptr<models::Workload> trained_smoke_workload() {
  auto w = harness::make_reference_workload(core::BenchmarkId::kRecommendation,
                                            harness::WorkloadScale::kSmoke);
  w->prepare_data();
  w->build_model(1);
  w->train_epoch();
  return w;
}
}  // namespace

// Full-state serialize (model + optimizer slots + rng) to memory, CRC'd.
static void BM_CheckpointSave(benchmark::State& state) {
  auto w = trained_smoke_workload();
  std::size_t bytes = 0;
  for (auto _ : state) {
    checkpoint::CheckpointWriter ckpt;
    w->save_state(ckpt);
    std::vector<std::uint8_t> buf = ckpt.serialize();
    bytes = buf.size();
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(bytes));
  state.counters["ckpt_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_CheckpointSave);

// Save plus the atomic temp-file + rename landing — the cost the harness
// actually charges per checkpoint_saved event.
static void BM_CheckpointWriteFile(benchmark::State& state) {
  auto w = trained_smoke_workload();
  const std::string path = "bench_checkpoint.ckpt";
  for (auto _ : state) {
    checkpoint::CheckpointWriter ckpt;
    w->save_state(ckpt);
    ckpt.write_file(path);
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_CheckpointWriteFile);

// Parse (magic/version/every-CRC validation) + in-place state restore — the
// cost of the checkpoint_restored event on a resumed session.
static void BM_CheckpointRestore(benchmark::State& state) {
  auto w = trained_smoke_workload();
  checkpoint::CheckpointWriter ckpt;
  w->save_state(ckpt);
  const std::vector<std::uint8_t> bytes = ckpt.serialize();
  for (auto _ : state) {
    checkpoint::CheckpointReader r = checkpoint::CheckpointReader::parse(bytes, "bench");
    w->restore_state(r);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_CheckpointRestore);

// Custom main instead of BENCHMARK_MAIN(): stamps the kernel configuration
// into the benchmark context so --benchmark_format=json output is
// self-describing (BENCH_kernels.json records which kernel produced a row).
int main(int argc, char** argv) {
  benchmark::AddCustomContext("gemm_kernel",
                              "packed mr=" + std::to_string(tensor::kGemmMR) +
                                  " nr=" + std::to_string(tensor::kGemmNR) +
                                  " mc=" + std::to_string(tensor::kGemmMC));
  benchmark::AddCustomContext("num_threads_default",
                              std::to_string(parallel::num_threads()));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
