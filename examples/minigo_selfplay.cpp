// Reinforcement-learning example: the MiniGo pipeline in the open. Plays a
// full 9x9 self-play game with MCTS (printing the final position), trains the
// policy/value network for a few epochs, and reports move-prediction accuracy
// against the reference games — the Table-1 quality metric for RL.
#include <cstdio>

#include "models/minigo.h"

using namespace mlperf;
using namespace mlperf::models;

int main() {
  std::printf("== one teacher self-play game (heuristic MCTS, 9x9) ==\n");
  tensor::Rng rng(2020);
  const SelfPlayResult game = self_play_game({.simulations = 32}, heuristic_evaluator(), 9,
                                             5.5f, /*max_moves=*/40,
                                             /*temperature_moves=*/8, rng);
  go::Board board(9, 5.5f);
  for (const auto& m : game.record.moves) board.play(m);
  std::printf("%s", board.to_string().c_str());
  std::printf("moves: %zu, Tromp-Taylor score (black-komi): %+.1f, winner: %s\n\n",
              game.record.moves.size(), board.tromp_taylor_score(),
              game.record.winner == go::Stone::kBlack   ? "black"
              : game.record.winner == go::Stone::kWhite ? "white"
                                                        : "draw");

  std::printf("== MiniGo workload: self-play RL + reference-game evaluation ==\n");
  MiniGoWorkload::Config cfg;
  cfg.selfplay_games_per_epoch = 2;
  cfg.reference_games = 4;
  MiniGoWorkload workload(cfg);
  workload.prepare_data();
  workload.build_model(/*seed=*/42);
  std::printf("reference games generated: %zu\n", workload.reference_games().size());
  std::printf("move prediction before training: %.3f (chance is ~0.014)\n",
              workload.evaluate());
  for (int epoch = 1; epoch <= 8; ++epoch) {
    workload.train_epoch();
    if (epoch % 2 == 0)
      std::printf("after epoch %d: move prediction %.3f\n", epoch, workload.evaluate());
  }
  return 0;
}
