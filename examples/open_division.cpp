// Open-division example (paper §4.2.1): the Open division exists to encourage
// innovative solutions — different model architectures, optimizers and data
// processing — as long as the dataset and quality metric stay fixed. Here we
// define a custom workload (a plain CNN trained with Adam and a different
// augmentation order) for the image-classification task, show that Closed-
// division review correctly REJECTS it, and that Open review accepts it.
#include <cstdio>
#include <memory>

#include "core/review.h"
#include "data/loader.h"
#include "harness/run.h"
#include "metrics/metrics.h"
#include "models/workload.h"
#include "nn/layers.h"
#include "optim/optimizer.h"

using namespace mlperf;

namespace {

/// A deliberately non-reference model: plain 2-conv CNN + Adam + reordered
/// augmentation. Same dataset, same top-1 metric — Open-division legal.
class CustomCnnWorkload : public models::Workload {
 public:
  CustomCnnWorkload() : dataset_(data::SyntheticImageDataset::Config{}), rng_(1) {
    augment_.add(std::make_unique<data::RandomHorizontalFlip>(0.5f))
        .add(std::make_unique<data::RandomCrop>(2));  // flipped order vs reference
  }

  std::string name() const override { return "image_classification"; }

  void prepare_data() override { splits_ = data::reformat(dataset_); }

  void build_model(std::uint64_t seed) override {
    rng_ = tensor::Rng(seed);
    tensor::Rng init = rng_.split();
    conv1_ = std::make_unique<nn::Conv2d>(3, 16, 3, 1, 1, init, true);
    conv2_ = std::make_unique<nn::Conv2d>(16, 32, 3, 2, 1, init, true);
    conv3_ = std::make_unique<nn::Conv2d>(32, 32, 3, 2, 1, init, true);
    fc_ = std::make_unique<nn::Linear>(32, 10, init);
    std::vector<autograd::Variable> params;
    for (auto* m :
         {static_cast<nn::Module*>(conv1_.get()), static_cast<nn::Module*>(conv2_.get()),
          static_cast<nn::Module*>(conv3_.get()), static_cast<nn::Module*>(fc_.get())})
      for (auto& p : m->parameters()) params.push_back(p);
    optimizer_ = std::make_unique<optim::Adam>(params);
  }

  autograd::Variable forward(const tensor::Tensor& images) {
    using namespace autograd;
    Variable x = relu(conv1_->forward(Variable(images)));
    x = relu(conv2_->forward(x));
    x = relu(conv3_->forward(x));
    return fc_->forward(nn::global_avg_pool(x));
  }

  void train_epoch() override {
    data::ImageLoader loader(splits_.train, 32, &augment_, rng_);
    while (loader.has_next()) {
      data::ImageBatch batch = loader.next();
      autograd::Variable loss = nn::cross_entropy(forward(batch.images), batch.labels);
      optimizer_->zero_grad();
      loss.backward();
      optimizer_->step(2e-3f);
    }
  }

  double evaluate() override {
    tensor::Rng eval_rng(0);
    data::ImageLoader loader(splits_.val, 64, nullptr, eval_rng);
    std::vector<std::int64_t> preds, targets;
    while (loader.has_next()) {
      data::ImageBatch batch = loader.next();
      for (auto p : forward(batch.images).value().argmax_last()) preds.push_back(p);
      targets.insert(targets.end(), batch.labels.begin(), batch.labels.end());
    }
    return metrics::top1_accuracy(preds, targets);
  }

  std::map<std::string, double> hyperparameters() const override {
    return {{"global_batch_size", 32.0}, {"learning_rate", 2e-3}};
  }
  std::int64_t global_batch_size() const override { return 32; }
  std::string model_signature() const override { return "custom-plain-cnn"; }
  std::string optimizer_name() const override { return "adam"; }
  std::string augmentation_signature() const override { return augment_.signature(); }

 private:
  data::SyntheticImageDataset dataset_;
  data::ReformattedSplits splits_;
  data::AugmentationPipeline augment_;
  std::unique_ptr<nn::Conv2d> conv1_, conv2_, conv3_;
  std::unique_ptr<nn::Linear> fc_;
  std::unique_ptr<optim::Adam> optimizer_;
  tensor::Rng rng_;
};

}  // namespace

int main() {
  const core::SuiteVersion suite = core::suite_v05();
  const auto& spec = core::find_spec(suite, core::BenchmarkId::kImageClassification);

  std::printf("training a custom (non-reference) model on the same task...\n");
  core::BenchmarkEntry entry;
  entry.benchmark = spec.id;
  harness::RunOptions opts;
  opts.seed = 11;
  opts.max_epochs = 40;
  const auto outcomes = harness::run_protocol([] { return std::make_unique<CustomCnnWorkload>(); },
                                              spec.mini_quality, opts,
                                              spec.aggregation.required_runs);
  {
    CustomCnnWorkload probe;
    entry.optimizer_name = probe.optimizer_name();
    entry.model_signature = probe.model_signature();
    entry.augmentation_signature = probe.augmentation_signature();
    for (const auto& [k, v] : probe.hyperparameters()) entry.hyperparameters[k] = v;
  }
  for (const auto& out : outcomes) {
    std::printf("  seed %.0f: %s = %.3f in %lld epochs\n",
                out.log.find(core::keys::kSeed)->as_number(), spec.mini_quality.name.c_str(),
                out.final_quality, static_cast<long long>(out.epochs));
    entry.runs.push_back(harness::to_run_result(out));
  }

  std::printf("\nClosed-division review of the custom entry (must fail — wrong model,\n");
  std::printf("wrong optimizer, reordered augmentation):\n");
  const auto closed =
      core::review_entry(entry, suite, core::Division::kClosed, 20.0 * 60e3);
  std::printf("%s", closed.to_string().c_str());

  std::printf("\nOpen-division review of the same entry (architecture freedom, §4.2.1):\n");
  const auto open = core::review_entry(entry, suite, core::Division::kOpen, 20.0 * 60e3);
  std::printf("%s", open.to_string().c_str());
  return open.compliant() && !closed.compliant() ? 0 : 1;
}
