// Quickstart: train one MLPerf reference workload to its quality target under
// the paper's timing rules, and print the structured training log.
//
//   $ ./quickstart [benchmark] [num_threads] [flags]
//
// where benchmark is one of: image_classification, object_detection_light,
// object_detection_heavy, translation_recurrent, translation_nonrecurrent,
// recommendation, reinforcement_learning (default: recommendation — the
// fastest one), and num_threads sizes the intra-op worker pool (default 1;
// the result is bitwise identical at any value). Flags:
//
//   --checkpoint_every_n_epochs=N  write a full-state checkpoint every N epochs
//   --checkpoint_path=FILE         where to write it (default quickstart.ckpt)
//   --resume_from=FILE             resume a preempted run from this checkpoint
//   --kill_after_epoch=K           fault injection: SIGKILL after epoch K
//                                  (for crash-resume testing; exits 137)
//   --pool_stats                   print tensor-pool counters after the run;
//                                  CI greps the steady-state miss line
//   --op_profile                   per-op cumulative time profile: prints one
//                                  line per instrumented op after the run
//                                  (also emitted as op_profile log events)
//   --conv_pack_cache=0|1          step-scoped im2col pack cache (default 1);
//                                  CI greps the im2col_calls line to pin the
//                                  one-sweep-per-conv-layer-per-step contract
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "core/op_profile.h"
#include "harness/reference.h"
#include "harness/run.h"
#include "nn/functional.h"
#include "tensor/pool.h"

using namespace mlperf;

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  std::string checkpoint_path = "quickstart.ckpt";
  std::string resume_from;
  long checkpoint_every = 0;
  long kill_after_epoch = -1;
  bool pool_stats = false;
  bool op_profile = false;
  bool conv_pack_cache = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto flag_value = [&](const char* name) -> std::optional<std::string> {
      const std::string prefix = std::string("--") + name + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return std::nullopt;
    };
    if (auto v = flag_value("checkpoint_every_n_epochs")) {
      checkpoint_every = std::strtol(v->c_str(), nullptr, 10);
    } else if (auto v = flag_value("checkpoint_path")) {
      checkpoint_path = *v;
    } else if (auto v = flag_value("resume_from")) {
      resume_from = *v;
    } else if (auto v = flag_value("kill_after_epoch")) {
      kill_after_epoch = std::strtol(v->c_str(), nullptr, 10);
    } else if (arg == "--pool_stats") {
      pool_stats = true;
    } else if (arg == "--op_profile") {
      op_profile = true;
    } else if (auto v = flag_value("conv_pack_cache")) {
      conv_pack_cache = std::strtol(v->c_str(), nullptr, 10) != 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return 1;
    } else {
      positional.push_back(arg);
    }
  }

  const core::SuiteVersion suite = core::suite_v05();
  core::BenchmarkId id = core::BenchmarkId::kRecommendation;
  if (!positional.empty()) {
    std::optional<core::BenchmarkId> found;
    for (const auto& spec : suite.benchmarks)
      if (spec.name == positional[0]) found = spec.id;
    if (!found) {
      std::fprintf(stderr, "unknown benchmark '%s'; options are:\n", positional[0].c_str());
      for (const auto& spec : suite.benchmarks)
        std::fprintf(stderr, "  %s\n", spec.name.c_str());
      return 1;
    }
    id = *found;
  }

  const core::BenchmarkSpec& spec = core::find_spec(suite, id);
  std::printf("== MLPerf mini reference: %s ==\n", spec.name.c_str());
  std::printf("paper workload: %s on %s, threshold %.3g %s\n", spec.model.c_str(),
              spec.dataset.c_str(), spec.paper_quality.target,
              spec.paper_quality.name.c_str());
  std::printf("mini target:    %.3g %s\n\n", spec.mini_quality.target,
              spec.mini_quality.name.c_str());

  auto workload = harness::make_reference_workload(id, harness::WorkloadScale::kReference);
  harness::RunOptions opts;
  opts.seed = 42;
  opts.max_epochs = 120;
  if (positional.size() > 1) {
    const long threads = std::strtol(positional[1].c_str(), nullptr, 10);
    if (threads < 1) {
      std::fprintf(stderr, "num_threads must be >= 1, got '%s'\n", positional[1].c_str());
      return 1;
    }
    opts.num_threads = threads;
  }
  if (checkpoint_every > 0) {
    opts.checkpoint_every_n_epochs = checkpoint_every;
    opts.checkpoint_path = checkpoint_path;
    std::printf("checkpointing every %ld epoch(s) to %s\n", checkpoint_every,
                checkpoint_path.c_str());
  }
  if (!resume_from.empty()) {
    opts.resume_from = resume_from;
    std::printf("resuming from %s\n", resume_from.c_str());
  }
  if (kill_after_epoch >= 0) {
    opts.fault.kill_after_epoch = kill_after_epoch;
    opts.fault.action = harness::FaultPlan::Action::kSigkill;
    std::printf("fault injection armed: SIGKILL after epoch %ld\n", kill_after_epoch);
  }
  opts.op_profile = op_profile;
  opts.conv_pack_cache = conv_pack_cache;
  if (!conv_pack_cache) std::printf("im2col pack cache disabled\n");
  std::printf("intra-op threads: %lld\n\n", static_cast<long long>(opts.num_threads));
  const harness::RunOutcome out =
      harness::run_to_target(*workload, spec.mini_quality, opts);
  if (out.resumed_from_epoch >= 0)
    std::printf("resumed at epoch %lld; prior timed ms carried into the result\n",
                static_cast<long long>(out.resumed_from_epoch));

  std::printf("quality curve:\n");
  for (const auto& p : out.curve)
    std::printf("  epoch %3lld  %s = %.4f  (%.0f ms elapsed)\n",
                static_cast<long long>(p.epoch), spec.mini_quality.name.c_str(), p.quality,
                p.elapsed_ms);
  std::printf("\n%s in %lld epochs; official time-to-train %.0f ms "
              "(unexcluded wall %.0f ms)\n\n",
              out.quality_reached ? "TARGET REACHED" : "target missed",
              static_cast<long long>(out.epochs), out.time_to_train_ms,
              out.unexcluded_time_ms);

  std::printf("structured mlperf log (first 12 events):\n");
  int n = 0;
  for (const auto& e : out.log.events()) {
    if (++n > 12) break;
    std::printf("  %s", e.key.c_str());
    if (const double* d = std::get_if<double>(&e.value)) std::printf(" = %g", *d);
    if (const std::string* s = std::get_if<std::string>(&e.value))
      std::printf(" = %s", s->c_str());
    std::printf("\n");
  }
  std::printf("  ... (%zu events total; serialize with MlLog::serialize())\n",
              out.log.events().size());

  if (pool_stats) {
    const tensor::TensorPool::Stats ps = tensor::TensorPool::instance().stats();
    std::printf("\ntensor pool: %lld hits, %lld misses, %lld bytes cached, "
                "%lld bytes outstanding\n",
                static_cast<long long>(ps.hits), static_cast<long long>(ps.misses),
                static_cast<long long>(ps.bytes_cached),
                static_cast<long long>(ps.bytes_outstanding));
    // The line the CI smoke leg greps: misses past the first full epoch+eval
    // iteration mean an allocation crept back into the steady-state loop.
    std::printf("steady-state pool misses after warm-up: %lld\n",
                static_cast<long long>(out.pool_steady_misses));
    // The pack-cache contract line CI greps: with the cache on, every conv
    // train step costs one im2col sweep per conv layer; uncached, two.
    std::printf("im2col sweeps: %lld (pack cache %s, %lld bytes live)\n",
                static_cast<long long>(nn::im2col_calls()),
                nn::conv_pack_cache_enabled() ? "on" : "off",
                static_cast<long long>(nn::conv_pack_cache_live_bytes()));
  }
  if (op_profile) {
    std::printf("\nper-op cumulative time (summed across worker threads):\n");
    for (const auto& e : core::OpProfile::snapshot())
      std::printf("  %-18s %10lld calls  %12.3f ms\n", e.name,
                  static_cast<long long>(e.calls), static_cast<double>(e.total_ns) * 1e-6);
  }
  return out.quality_reached ? 0 : 1;
}
