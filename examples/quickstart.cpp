// Quickstart: train one MLPerf reference workload to its quality target under
// the paper's timing rules, and print the structured training log.
//
//   $ ./quickstart [benchmark] [num_threads]
//
// where benchmark is one of: image_classification, object_detection_light,
// object_detection_heavy, translation_recurrent, translation_nonrecurrent,
// recommendation, reinforcement_learning (default: recommendation — the
// fastest one), and num_threads sizes the intra-op worker pool (default 1;
// the result is bitwise identical at any value).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "harness/reference.h"
#include "harness/run.h"

using namespace mlperf;

int main(int argc, char** argv) {
  const core::SuiteVersion suite = core::suite_v05();
  core::BenchmarkId id = core::BenchmarkId::kRecommendation;
  if (argc > 1) {
    std::optional<core::BenchmarkId> found;
    for (const auto& spec : suite.benchmarks)
      if (spec.name == argv[1]) found = spec.id;
    if (!found) {
      std::fprintf(stderr, "unknown benchmark '%s'; options are:\n", argv[1]);
      for (const auto& spec : suite.benchmarks)
        std::fprintf(stderr, "  %s\n", spec.name.c_str());
      return 1;
    }
    id = *found;
  }

  const core::BenchmarkSpec& spec = core::find_spec(suite, id);
  std::printf("== MLPerf mini reference: %s ==\n", spec.name.c_str());
  std::printf("paper workload: %s on %s, threshold %.3g %s\n", spec.model.c_str(),
              spec.dataset.c_str(), spec.paper_quality.target,
              spec.paper_quality.name.c_str());
  std::printf("mini target:    %.3g %s\n\n", spec.mini_quality.target,
              spec.mini_quality.name.c_str());

  auto workload = harness::make_reference_workload(id, harness::WorkloadScale::kReference);
  harness::RunOptions opts;
  opts.seed = 42;
  opts.max_epochs = 120;
  if (argc > 2) {
    const long threads = std::strtol(argv[2], nullptr, 10);
    if (threads < 1) {
      std::fprintf(stderr, "num_threads must be >= 1, got '%s'\n", argv[2]);
      return 1;
    }
    opts.num_threads = threads;
  }
  std::printf("intra-op threads: %lld\n\n", static_cast<long long>(opts.num_threads));
  const harness::RunOutcome out =
      harness::run_to_target(*workload, spec.mini_quality, opts);

  std::printf("quality curve:\n");
  for (const auto& p : out.curve)
    std::printf("  epoch %3lld  %s = %.4f  (%.0f ms elapsed)\n",
                static_cast<long long>(p.epoch), spec.mini_quality.name.c_str(), p.quality,
                p.elapsed_ms);
  std::printf("\n%s in %lld epochs; official time-to-train %.0f ms "
              "(unexcluded wall %.0f ms)\n\n",
              out.quality_reached ? "TARGET REACHED" : "target missed",
              static_cast<long long>(out.epochs), out.time_to_train_ms,
              out.unexcluded_time_ms);

  std::printf("structured mlperf log (first 12 events):\n");
  int n = 0;
  for (const auto& e : out.log.events()) {
    if (++n > 12) break;
    std::printf("  %s", e.key.c_str());
    if (const double* d = std::get_if<double>(&e.value)) std::printf(" = %g", *d);
    if (const std::string* s = std::get_if<std::string>(&e.value))
      std::printf(" = %s", s->c_str());
    std::printf("\n");
  }
  std::printf("  ... (%zu events total; serialize with MlLog::serialize())\n",
              out.log.events().size());
  return out.quality_reached ? 0 : 1;
}
