// End-to-end Closed-division submission (paper §4): run the full per-
// benchmark protocol (N seeds), assemble the submission with its system
// description, pass peer review (compliance checking over the logs alone),
// and publish the scored results table — exactly the lifecycle of a real
// MLPerf entry, on the two fastest mini workloads.
#include <cstdio>

#include "core/review.h"
#include "core/submission.h"
#include "harness/reference.h"
#include "harness/run.h"

using namespace mlperf;

namespace {

core::BenchmarkEntry run_protocol_for(const core::SuiteVersion& suite, core::BenchmarkId id) {
  const core::BenchmarkSpec& spec = core::find_spec(suite, id);
  std::printf("running %s: %lld runs to %s >= %.3g ...\n", spec.name.c_str(),
              static_cast<long long>(spec.aggregation.required_runs),
              spec.mini_quality.name.c_str(), spec.mini_quality.target);

  core::BenchmarkEntry entry;
  entry.benchmark = id;
  {
    auto probe = harness::make_reference_workload(id, harness::WorkloadScale::kReference);
    entry.optimizer_name = probe->optimizer_name();
    entry.model_signature = probe->model_signature();
    entry.augmentation_signature = probe->augmentation_signature();
    for (const auto& [name, value] : probe->hyperparameters())
      entry.hyperparameters[name] = value;
  }
  harness::RunOptions opts;
  opts.seed = 7;
  opts.max_epochs = 120;
  const auto outcomes = harness::run_protocol(
      [&] { return harness::make_reference_workload(id, harness::WorkloadScale::kReference); },
      spec.mini_quality, opts, spec.aggregation.required_runs);
  for (const auto& out : outcomes) {
    std::printf("  seed %.0f: %s, ttt %.0f ms\n",
                out.log.find(core::keys::kSeed)->as_number(),
                out.quality_reached ? "reached" : "MISSED", out.time_to_train_ms);
    entry.runs.push_back(harness::to_run_result(out));
  }
  return entry;
}

}  // namespace

int main() {
  const core::SuiteVersion suite = core::suite_v05();

  core::Submission sub;
  sub.organization = "mini-repro-labs";
  sub.division = core::Division::kClosed;
  sub.category = core::Category::kResearch;  // proof-of-concept hardware
  sub.system_type = core::SystemType::kOnPremise;
  sub.code_url = "https://example.org/mlperf-mini";
  sub.system.system_name = "one-core-box";
  sub.system.num_nodes = 1;
  sub.system.processor_model = "generic-x86";
  sub.system.processors_per_node = 1;
  sub.system.host_memory_gb = 4.0;
  sub.system.os = "linux";
  sub.system.libraries = {"mlperf-mini-train v1.0"};

  sub.entries.push_back(run_protocol_for(suite, core::BenchmarkId::kRecommendation));
  sub.entries.push_back(run_protocol_for(suite, core::BenchmarkId::kObjectDetectionLight));

  std::printf("\n== peer review ==\n");
  const core::ComplianceReport review = core::review_submission(sub, suite, 20.0 * 60e3);
  std::printf("%s", review.to_string().c_str());
  if (!review.compliant()) {
    std::printf("submission rejected; fix the issues above and resubmit (§4.1)\n");
    return 1;
  }

  std::printf("\n== published results (no summary score, per §4.2.4) ==\n");
  const core::ResultsReport report =
      core::score_submission(sub, suite, core::CloudScaleModel{});
  std::printf("%s", core::format_report(report).c_str());
  return 0;
}
